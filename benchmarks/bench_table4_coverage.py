"""Table IV: simulated vs replayed cycles per microbenchmark.

30 random snapshots of the replay window are captured for each of the
six Rocket microbenchmarks; the replayed cycles cover only a small
fraction of the execution (the paper reports 0.21%-2.05%), yet — per
Figure 8 — yield accurate power estimates.
"""

from repro.core import get_circuits
from repro.targets.soc import run_workload
from repro.isa.programs import MICROBENCHMARKS

from _common import emit, fmt_table

SAMPLE_SIZE = 30
REPLAY_LENGTH = 64  # paper: 128 @ ~10^5-10^6 cycles; scaled runs
# enlarge the shortest benchmarks so coverage stays representative
BENCH_KWARGS = {"towers": {"n": 8}, "coremark_lite": {},
                "dhrystone": {"iterations": 80}}


def test_table4_coverage(benchmark):
    circuit, _ = get_circuits("rocket_mini")

    def run_all():
        results = {}
        for name in sorted(MICROBENCHMARKS):
            result = run_workload(
                circuit, MICROBENCHMARKS[name](
                    **BENCH_KWARGS.get(name, {})),
                max_cycles=2_000_000, mem_latency=20, backend="auto",
                sample_size=SAMPLE_SIZE, replay_length=REPLAY_LENGTH,
                seed=11)
            assert result.passed, name
            results[name] = result
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        n_snaps = len(result.snapshots)
        replayed = n_snaps * REPLAY_LENGTH
        coverage = 100.0 * replayed / result.cycles
        rows.append([name, result.cycles,
                     f"{n_snaps}x{REPLAY_LENGTH}",
                     f"{coverage:.2f}%"])
    emit("table4_coverage", fmt_table(
        ["benchmark", "simulated cycles", "replayed cycles", "coverage"],
        rows))

    for name, result in results.items():
        n_snaps = len(result.snapshots)
        assert n_snaps >= 1
        coverage = n_snaps * REPLAY_LENGTH / result.cycles
        # small coverage, as in the paper (scaled runs allow up to ~60%)
        assert coverage < 0.65, name
        for snap in result.snapshots:
            snap.validate()
