"""Table IV: simulated vs replayed cycles per microbenchmark.

30 random snapshots of the replay window are captured for each of the
six Rocket microbenchmarks; the replayed cycles cover only a small
fraction of the execution (the paper reports 0.21%-2.05%), yet — per
Figure 8 — yield accurate power estimates.
"""

import time

from repro.core import get_circuits, get_replay_engine
from repro.targets.soc import run_workload
from repro.isa.programs import MICROBENCHMARKS

from _common import emit, fmt_table

SAMPLE_SIZE = 30
REPLAY_LENGTH = 64  # paper: 128 @ ~10^5-10^6 cycles; scaled runs
# enlarge the shortest benchmarks so coverage stays representative
BENCH_KWARGS = {"towers": {"n": 8}, "coremark_lite": {},
                "dhrystone": {"iterations": 80}}


def test_table4_coverage(benchmark, workers):
    circuit, _ = get_circuits("rocket_mini")

    def run_all():
        results = {}
        for name in sorted(MICROBENCHMARKS):
            result = run_workload(
                circuit, MICROBENCHMARKS[name](
                    **BENCH_KWARGS.get(name, {})),
                max_cycles=2_000_000, mem_latency=20, backend="auto",
                sample_size=SAMPLE_SIZE, replay_length=REPLAY_LENGTH,
                seed=11)
            assert result.passed, name
            results[name] = result
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        n_snaps = len(result.snapshots)
        replayed = n_snaps * REPLAY_LENGTH
        coverage = 100.0 * replayed / result.cycles
        rows.append([name, result.cycles,
                     f"{n_snaps}x{REPLAY_LENGTH}",
                     f"{coverage:.2f}%"])

    # replay one benchmark's snapshot set serially and through the
    # worker pool (--workers) to report the replay-phase wall-clock
    engine = get_replay_engine("rocket_mini")
    snaps = results["towers"].snapshots
    t0 = time.perf_counter()
    serial = engine.replay_all(snaps, workers=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = engine.replay_all(snaps, workers=max(2, workers))
    parallel_s = time.perf_counter() - t0
    assert [r.power.total_w for r in serial] == \
        [r.power.total_w for r in parallel]
    rows.append([f"(replay towers {len(snaps)} snaps)",
                 f"serial {serial_s:.2f}s",
                 f"workers={max(2, workers)} {parallel_s:.2f}s",
                 f"{serial_s / max(parallel_s, 1e-9):.2f}x"])

    emit("table4_coverage", fmt_table(
        ["benchmark", "simulated cycles", "replayed cycles", "coverage"],
        rows))

    for name, result in results.items():
        n_snaps = len(result.snapshots)
        assert n_snaps >= 1
        coverage = n_snaps * REPLAY_LENGTH / result.cycles
        # small coverage, as in the paper (scaled runs allow up to ~60%)
        assert coverage < 0.65, name
        for snap in result.snapshots:
            snap.validate()
