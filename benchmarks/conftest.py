"""Benchmark-suite pytest options.

``--workers N`` controls the replay worker-pool size for the
replay-heavy benches (Fig. 8, Table IV, speedup); it defaults to
``os.cpu_count()`` so benches exercise the parallel path wherever the
host has cores to offer.  ``--batch-lanes N`` sets the bit-lane width
the batched-replay bench measures (default: the full 64 lanes; CI
smoke runs pass a smaller width to stay quick).  ``--trace-dir DIR``
makes the benches that support it record Chrome-trace JSON files
(see :mod:`repro.obs`) into ``DIR`` alongside their measurements
(``--trace`` itself is taken by pytest's debugger hook).
``--gl-backend NAME`` picks the gate-level evaluation backend the
compiled-replay bench reports as its headline mode (default ``auto``:
the best rung the host supports — C where a compiler exists).
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--workers", type=int, default=None,
        help="replay worker processes (default: os.cpu_count())")
    parser.addoption(
        "--batch-lanes", type=int, default=64,
        help="bit lanes for the batched-replay bench (default: 64)")
    parser.addoption(
        "--trace-dir", type=str, default=None, metavar="DIR",
        help="write Chrome-trace JSON files for traced benches "
             "into DIR (default: tracing off)")
    parser.addoption(
        "--gl-backend", type=str, default="auto",
        choices=["interp", "compiled", "c", "auto"],
        help="gate-level backend for the compiled-replay bench "
             "(default: auto)")


@pytest.fixture
def workers(request):
    value = request.config.getoption("--workers")
    return value if value is not None else (os.cpu_count() or 1)


@pytest.fixture
def batch_lanes(request):
    return request.config.getoption("--batch-lanes")


@pytest.fixture
def trace_dir(request):
    value = request.config.getoption("--trace-dir")
    if value is not None:
        os.makedirs(value, exist_ok=True)
    return value


@pytest.fixture
def gl_backend(request):
    return request.config.getoption("--gl-backend")
