"""Benchmark-suite pytest options.

``--workers N`` controls the replay worker-pool size for the
replay-heavy benches (Fig. 8, Table IV, speedup); it defaults to
``os.cpu_count()`` so benches exercise the parallel path wherever the
host has cores to offer.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--workers", type=int, default=None,
        help="replay worker processes (default: os.cpu_count())")


@pytest.fixture
def workers(request):
    value = request.config.getoption("--workers")
    return value if value is not None else (os.cpu_count() or 1)
