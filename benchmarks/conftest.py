"""Benchmark-suite pytest options.

``--workers N`` controls the replay worker-pool size for the
replay-heavy benches (Fig. 8, Table IV, speedup); it defaults to
``os.cpu_count()`` so benches exercise the parallel path wherever the
host has cores to offer.  ``--batch-lanes N`` sets the bit-lane width
the batched-replay bench measures (default: the full 64 lanes; CI
smoke runs pass a smaller width to stay quick).
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--workers", type=int, default=None,
        help="replay worker processes (default: os.cpu_count())")
    parser.addoption(
        "--batch-lanes", type=int, default=64,
        help="bit lanes for the batched-replay bench (default: 64)")


@pytest.fixture
def workers(request):
    value = request.config.getoption("--workers")
    return value if value is not None else (os.cpu_count() or 1)


@pytest.fixture
def batch_lanes(request):
    return request.config.getoption("--batch-lanes")
