"""Figure 8: theoretical error bounds vs actual error.

For each of the six microbenchmarks, the *true* average power comes
from simulating the entire execution on the gate level (the thing
Strober avoids); repeated sampling runs then give estimates whose 99%
error bounds are compared against the actual error — the paper's key
accuracy validation.

Snapshot replays run through the worker pool (``--workers N``, default
``os.cpu_count()``); a serial-vs-parallel wall-clock comparison of one
run's replay set is appended to the emitted table.
"""

import time

import pytest

from repro.core import run_strober, get_replay_engine
from repro.isa.programs import MICROBENCHMARKS

from _common import emit, fmt_table

# scaled-down workloads keep the full-gate-level truth runs tractable
BENCH_KWARGS = {
    "vvadd": {"n": 64},
    "towers": {"n": 5},
    "dhrystone": {"iterations": 16},
    "qsort": {"n": 24},
    "spmv": {"rows": 12},
    "dgemm": {"n": 6},
}
REPETITIONS = 3
SAMPLE_SIZE = 20
REPLAY_LENGTH = 64
CONFIDENCE = 0.99


def test_fig8_power_validation(benchmark, workers):
    def run_all():
        records = []
        for name in sorted(BENCH_KWARGS):
            runs = []
            truth = None
            for rep in range(REPETITIONS):
                run = run_strober(
                    "rocket_mini", name,
                    workload_kwargs=BENCH_KWARGS[name],
                    sample_size=SAMPLE_SIZE,
                    replay_length=REPLAY_LENGTH,
                    backend="auto", seed=100 + rep,
                    confidence=CONFIDENCE,
                    workers=workers,
                    record_full_io=(rep == 0))
                if rep == 0:
                    engine = get_replay_engine("rocket_mini")
                    truth, mism = engine.replay_full_trace(
                        run.result.fame.full_io_trace)
                    assert mism == 0, name
                runs.append(run)
            records.append((name, truth, runs))
        return records

    records = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    within = 0
    total = 0
    for name, truth, runs in records:
        for rep, run in enumerate(runs, start=1):
            est = run.energy.power
            actual = abs(est.mean - truth.total_mw) / truth.total_mw
            bound = est.relative_error_bound
            total += 1
            if actual <= bound:
                within += 1
            rows.append([name, rep, f"{truth.total_mw:.2f}",
                         f"{est.mean:.2f}", f"{100 * bound:.2f}%",
                         f"{100 * actual:.2f}%",
                         "yes" if actual <= bound else "NO"])
    rows.append(["(bound coverage)", "", "", "", "",
                 f"{within}/{total}", ""])

    # serial vs worker-pool wall-clock on one run's replay set
    sample_run = records[0][2][0]
    t0 = time.perf_counter()
    serial = sample_run.engine.replay_all(sample_run.snapshots, workers=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = sample_run.engine.replay_all(sample_run.snapshots,
                                            workers=max(2, workers))
    parallel_s = time.perf_counter() - t0
    assert [r.power.total_w for r in serial] == \
        [r.power.total_w for r in parallel]
    rows.append([f"(replay {len(sample_run.snapshots)} snaps)", "",
                 f"serial {serial_s:.2f}s",
                 f"workers={max(2, workers)} {parallel_s:.2f}s",
                 f"{serial_s / max(parallel_s, 1e-9):.2f}x", "", ""])

    emit("fig8_power_validation", fmt_table(
        ["benchmark", "rep", "true mW", "estimate mW",
         "99% bound", "actual error", "within"],
        rows))

    # paper: errors are small (<~2.5%) and almost always inside the
    # bound (28/30 in the paper; allow the same probabilistic slack)
    for name, truth, runs in records:
        for run in runs:
            actual = abs(run.energy.power.mean - truth.total_mw) \
                / truth.total_mw
            assert actual < 0.15, name
    assert within >= total - 4


def test_fig8_errors_shrink_with_sample_size(benchmark):
    """More snapshots -> tighter bounds (the sqrt(n) law)."""
    def run_pair():
        small = run_strober("rocket_mini", "vvadd",
                            workload_kwargs={"n": 64},
                            sample_size=8, replay_length=64,
                            backend="auto", seed=5)
        large = run_strober("rocket_mini", "vvadd",
                            workload_kwargs={"n": 64},
                            sample_size=24, replay_length=64,
                            backend="auto", seed=5)
        return small, large

    small, large = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert large.energy.power.relative_error_bound <= \
        small.energy.power.relative_error_bound * 1.25
    assert small.energy.power.mean == pytest.approx(
        large.energy.power.mean, rel=0.25)
