"""Section III-A / Figure 1: sampling-distribution behaviour.

Empirically verifies the statistical machinery the whole methodology
rests on: confidence intervals computed from eq. (6)/(7) cover the true
population mean at (at least) the nominal rate, and the minimum-sample-
size rule (eq. 8) is conservative.
"""

import random

from repro.sampling import (
    estimate_mean, minimum_sample_size, population_mean,
)

from _common import emit, fmt_table


def _coverage(confidence, n_trials=300, sample_size=40, seed=0):
    rng = random.Random(seed)
    population = [abs(rng.gauss(200.0, 40.0)) for _ in range(5000)]
    true_mean = population_mean(population)
    covered = 0
    for _ in range(n_trials):
        sample = rng.sample(population, sample_size)
        est = estimate_mean(sample, len(population), confidence)
        if est.contains(true_mean):
            covered += 1
    return covered / n_trials


def test_confidence_interval_coverage(benchmark):
    results = benchmark.pedantic(
        lambda: {c: _coverage(c) for c in (0.90, 0.99, 0.999)},
        rounds=1, iterations=1)
    rows = [[f"{c:.3f}", f"{rate:.3f}"] for c, rate in results.items()]
    emit("stats_coverage",
         fmt_table(["nominal confidence", "empirical coverage"], rows))
    # the empirical coverage must track the nominal level (finite-n
    # normal-theory intervals run slightly below nominal)
    assert results[0.90] > 0.78
    assert results[0.99] > 0.93
    assert results[0.999] > 0.96
    assert results[0.90] < results[0.99] <= results[0.999]


def test_minimum_sample_size_rule(benchmark):
    def run():
        rng = random.Random(4)
        population = [abs(rng.gauss(100.0, 25.0)) for _ in range(4000)]
        pilot = rng.sample(population, 50)
        needed = minimum_sample_size(pilot, max_relative_error=0.05,
                                     confidence=0.99)
        # draw samples of the suggested size; measure achieved error
        true_mean = population_mean(population)
        errors = []
        for _ in range(200):
            sample = rng.sample(population, min(needed, 1000))
            est = estimate_mean(sample, len(population), 0.99)
            errors.append(abs(est.mean - true_mean) / true_mean)
        within = sum(e <= 0.05 for e in errors) / len(errors)
        return needed, within

    needed, within = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("stats_sample_size", [
        f"eq. (8) minimum n for 5% error @99%: {needed}",
        f"fraction of trials within 5%: {within:.3f}",
    ])
    assert needed >= 30
    assert within > 0.95
