"""Job service: submit-to-complete latency, queue throughput, and the
service-level chaos campaign.

Three questions the service PR must answer with numbers:

1. What does the daemon *cost*?  A job submitted over the socket runs
   the exact same ``run_strober`` flow as a direct library call — the
   service overhead (protocol round trips, journaling, the worker
   thread hop) is the price of the standing front door, measured warm
   (daemon's engine cache populated) against the direct call.

2. How does the queue *move*?  A burst of jobs through a single-slot
   queue measures sustained jobs/second including admission,
   journal-before-ack durability, and scheduling.

3. Do the guarantees *hold*?  The service-level fault campaign (client
   disconnect mid-job, poisoned compiled kernel, worker SIGKILL storm
   walking the demotion ladder, ENOSPC on the cache, daemon
   kill-and-restart) must come back all-``recovered`` — every job
   bit-identical to a clean run or typed-failed.

Writes ``results/BENCH_service.json``.
"""

import os
import shutil
import tempfile
import time

from repro.core import run_strober
from repro.robust import run_service_campaign
from repro.service import ServiceHarness, result_digest

from _common import emit, fmt_table, save_json

SPEC = dict(design="rocket_mini", workload="towers", sample_size=4,
            replay_length=32, seed=3)


def test_service(benchmark):
    t0 = time.perf_counter()
    direct = run_strober(workers=1, **SPEC)
    direct_s = time.perf_counter() - t0
    direct_digest = result_digest(direct.replays)

    state_root = tempfile.mkdtemp(prefix="bench-service-")
    times = {}
    try:
        def measure():
            with ServiceHarness(
                    state_dir=os.path.join(state_root, "state"),
                    max_queue=32) as harness:
                with harness.client() as client:
                    # cold: first job on a fresh daemon builds the
                    # engine; warm: the second rides the engine cache
                    for label in ("cold_s", "warm_s"):
                        t0 = time.perf_counter()
                        job = client.wait(client.submit(**SPEC),
                                          timeout_s=600)
                        times[label] = time.perf_counter() - t0
                        assert job["state"] == "done", job["error"]
                        assert job["digest"] == direct_digest

                    # queue throughput: a burst through one run slot
                    burst = 6
                    t0 = time.perf_counter()
                    ids = [client.submit(**SPEC) for _ in range(burst)]
                    for job_id in ids:
                        job = client.wait(job_id, timeout_s=600)
                        assert job["state"] == "done", job["error"]
                    times["burst_s"] = time.perf_counter() - t0
                    times["burst_jobs"] = burst
            return times

        times = benchmark.pedantic(measure, rounds=1, iterations=1)

        campaign_t0 = time.perf_counter()
        verdicts = run_service_campaign(timeout=600.0)
        campaign_s = time.perf_counter() - campaign_t0
    finally:
        shutil.rmtree(state_root, ignore_errors=True)

    overhead = times["warm_s"] / max(direct_s, 1e-9)
    throughput = times["burst_jobs"] / max(times["burst_s"], 1e-9)
    rows = [
        ["direct run_strober (serial)", f"{direct_s:.2f} s"],
        ["service job, cold daemon", f"{times['cold_s']:.2f} s"],
        ["service job, warm daemon", f"{times['warm_s']:.2f} s"],
        ["service overhead (warm / direct)", f"{overhead:.2f}x"],
        [f"queue burst ({times['burst_jobs']} jobs, 1 slot)",
         f"{times['burst_s']:.2f} s"],
        ["sustained throughput", f"{throughput:.2f} jobs/s"],
    ]
    rows += [[f"campaign: {fault}", verdict]
             for fault, verdict in sorted(verdicts.items())]
    rows.append(["campaign wall time", f"{campaign_s:.1f} s"])
    emit("service", fmt_table(["quantity", "value"], rows))
    save_json("BENCH_service", {
        "direct_s": direct_s,
        "cold_s": times["cold_s"],
        "warm_s": times["warm_s"],
        "service_overhead_warm": overhead,
        "burst_jobs": times["burst_jobs"],
        "burst_s": times["burst_s"],
        "throughput_jobs_per_s": throughput,
        "campaign": verdicts,
        "campaign_s": campaign_s,
        "cpu_count": os.cpu_count(),
    })

    # the acceptance bar: every fault recovered, nothing wedged
    assert all(v == "recovered" for v in verdicts.values()), \
        f"service faults went unhandled: {verdicts}"
