"""Figure 9b: CPI and EPI (energy per instruction), 3 cores x 3 loads.

The paper's case-study summary: BOOM-2w is the fastest (lowest CPI) on
compute-bound code but burns the most power; Rocket is the most
energy-efficient (lowest EPI) on CoreMark.
"""

from repro.core import run_strober

from _common import emit, fmt_table

DESIGNS = ["rocket_mini", "boom-1w_mini", "boom-2w_mini"]
WORKLOADS = {
    "coremark_lite": {"iterations": 2},
    "boot": {},
    "gcc_phases": {"rounds": 1},
}


def test_fig9b_cpi_epi(benchmark):
    def run_all():
        table = {}
        for workload, kwargs in WORKLOADS.items():
            for design in DESIGNS:
                run = run_strober(design, workload,
                                  workload_kwargs=kwargs,
                                  sample_size=16, replay_length=64,
                                  backend="auto", seed=33)
                table[(workload, design)] = run.energy
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for workload in WORKLOADS:
        for design in DESIGNS:
            e = table[(workload, design)]
            rows.append([workload, design, f"{e.cpi:.2f}",
                         f"{e.total_power_mw:.1f}",
                         f"{e.epi_nj:.3f}"])
    emit("fig9b_cpi_epi", fmt_table(
        ["workload", "design", "CPI", "power (mW)", "EPI (nJ/inst)"],
        rows))

    for workload in WORKLOADS:
        cpi = {d: table[(workload, d)].cpi for d in DESIGNS}
        # paper: BOOM is faster clock-for-clock on CoreMark...
        assert cpi["boom-2w_mini"] < cpi["boom-1w_mini"] \
            < cpi["rocket_mini"], workload
    # ...while Rocket stays the most energy-efficient on CoreMark
    epi = {d: table[("coremark_lite", d)].epi_nj for d in DESIGNS}
    assert epi["rocket_mini"] < epi["boom-2w_mini"]
