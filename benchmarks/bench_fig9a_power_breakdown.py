"""Figure 9a: power breakdown with error bounds, 3 cores x 3 workloads.

30 random snapshots per (core, workload) are replayed on gate level;
average power is decomposed into the paper's functional groups (fetch,
rename, issue, integer, LSU, FPU, ROB, caches, uncore) plus DRAM power
from the activity counters.
"""

from repro.core import run_strober

from _common import emit, fmt_table

DESIGNS = ["rocket_mini", "boom-1w_mini", "boom-2w_mini"]
WORKLOADS = {
    "coremark_lite": {"iterations": 2},
    "boot": {},
    "gcc_phases": {"rounds": 1},
}
SAMPLE_SIZE = 20
REPLAY_LENGTH = 64


def test_fig9a_power_breakdown(benchmark):
    def run_all():
        table = {}
        for workload, kwargs in WORKLOADS.items():
            for design in DESIGNS:
                run = run_strober(design, workload,
                                  workload_kwargs=kwargs,
                                  sample_size=SAMPLE_SIZE,
                                  replay_length=REPLAY_LENGTH,
                                  backend="auto", seed=21)
                table[(workload, design)] = run.energy
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    groups = sorted({g for e in table.values() for g in e.breakdown})
    lines = []
    for workload in WORKLOADS:
        lines.append(f"--- {workload}")
        headers = ["group (mW)"] + DESIGNS
        rows = []
        for group in groups:
            rows.append([group] + [
                f"{table[(workload, d)].breakdown.get(group).mean:.2f}"
                f"±{table[(workload, d)].breakdown[group].half_width:.2f}"
                if group in table[(workload, d)].breakdown else "-"
                for d in DESIGNS])
        rows.append(["DRAM"] + [
            f"{table[(workload, d)].dram_power_mw:.2f}" for d in DESIGNS])
        rows.append(["TOTAL"] + [
            f"{table[(workload, d)].total_power_mw:.2f}" for d in DESIGNS])
        lines.extend(fmt_table(headers, rows))
        lines.append("")
    emit("fig9a_power_breakdown", lines)

    for workload in WORKLOADS:
        rocket = table[(workload, "rocket_mini")]
        boom1 = table[(workload, "boom-1w_mini")]
        boom2 = table[(workload, "boom-2w_mini")]
        # paper shape: the wider OoO core burns the most core power
        assert boom2.power.mean > rocket.power.mean, workload
        assert boom2.power.mean > boom1.power.mean, workload
        # OoO-only structures draw power only on BOOM
        assert "Issue Logic" in boom2.breakdown
        assert boom2.breakdown["Issue Logic"].mean > \
            rocket.breakdown.get("Issue Logic",
                                 boom2.breakdown["Issue Logic"]).mean \
            or "Issue Logic" not in rocket.breakdown
        # every estimate carries an error bound
        for design in DESIGNS:
            energy = table[(workload, design)]
            assert energy.power.half_width >= 0
            assert energy.sample_size >= 10
