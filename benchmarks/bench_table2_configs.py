"""Table II: target processor parameters.

Prints the parameter table for Rocket / BOOM-1w / BOOM-2w, checking the
reproduction keeps the paper's parameters (with the documented scaling
of physical register count — see DESIGN.md substitutions).
"""

from repro.core import CONFIGS

from _common import emit, fmt_table


def test_table2_processor_parameters(benchmark):
    designs = ["rocket", "boom-1w", "boom-2w"]

    def build():
        rows = {}
        for name in designs:
            rows[name] = CONFIGS[name].table2_row()
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    fields = list(next(iter(rows.values())))
    table = fmt_table([""] + designs,
                      [[f] + [rows[d][f] for d in designs]
                       for f in fields])
    emit("table2_configs", table)

    assert rows["boom-2w"]["Fetch-width"] == 2
    assert rows["boom-1w"]["Issue slots"] == 12
    assert rows["boom-2w"]["Issue slots"] == 16
    assert rows["boom-1w"]["ROB size"] == 24
    assert rows["boom-2w"]["ROB size"] == 32
    assert rows["rocket"]["Issue slots"] == "-"
    assert rows["rocket"]["L1 I$ and D$"] == "16KiB/16KiB"
    assert all(rows[d]["DRAM latency"] == "100 cycles" for d in designs)
