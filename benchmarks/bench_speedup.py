"""Section V-B / I: simulation-speed hierarchy and speedups.

Measures this reproduction's actual simulation rates — golden-model ISA
simulation, FAME1 RTL simulation (Python and, when available, compiled
C), and gate-level simulation — and evaluates the Section IV-E model
with both the paper's constants and the locally measured ones.

The paper's claims: >=2 orders of magnitude over microarchitectural
software simulation and >=4 orders over commercial gate-level
simulation.  Both substrates here are Python, so the *measured* gap is
smaller; the modeled gap with the paper's constants reproduces the
paper's orders (see EXPERIMENTS.md).

Also measures the worker-pool replay speedup (snapshot replays are
embarrassingly parallel, Section IV-C) and writes every number to
``results/BENCH_speedup.json``.
"""

import os
import time

from repro.core import (
    get_circuits, get_replay_engine, strober_time, gate_sim_time,
    uarch_sim_time, PAPER_PARAMS,
)
from repro.gatelevel import GateLevelSimulator
from repro.isa import assemble, GoldenModel
from repro.isa.programs import MICROBENCHMARKS, gcc_phases
from repro.targets.soc import run_workload

from _common import emit, fmt_table, save_json


def test_speedup_hierarchy(benchmark, workers):
    source = gcc_phases(rounds=2)

    def measure():
        rates = {}
        # ISA-level golden model (the "fast functional" baseline)
        golden = GoldenModel(assemble(source))
        t0 = time.perf_counter()
        golden.run()
        rates["golden (inst/s)"] = golden.instret \
            / (time.perf_counter() - t0)

        # FAME1 simulation of the Rocket SoC
        circuit, _ = get_circuits("rocket_mini")
        result = run_workload(circuit, source, max_cycles=2_000_000,
                              mem_latency=20, backend="auto")
        assert result.passed
        rates["fame1 (cycles/s)"] = result.cycles \
            / max(result.stats.wall_seconds, 1e-9)

        # gate-level simulation rate of the same design
        engine = get_replay_engine("rocket_mini")
        gl = GateLevelSimulator(engine.flow.netlist)
        t0 = time.perf_counter()
        gl.step(300)
        rates["gate-level (cycles/s)"] = 300 / (time.perf_counter() - t0)
        return rates

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)

    measured_ratio = rates["fame1 (cycles/s)"] \
        / rates["gate-level (cycles/s)"]
    model = strober_time(100e9, 100, 1000, PAPER_PARAMS)
    modeled_gate = gate_sim_time(100e9) / model.t_overall_s
    modeled_uarch = uarch_sim_time(100e9) / model.t_overall_s

    # worker-pool replay: serial vs parallel replay_all on the same
    # snapshot set (>=8 snapshots so the pool has real work to split)
    circuit, _ = get_circuits("rocket_mini")
    sample = run_workload(circuit, MICROBENCHMARKS["towers"](n=7),
                          max_cycles=2_000_000, mem_latency=20,
                          backend="auto", sample_size=8,
                          replay_length=64, seed=7)
    assert sample.passed
    snaps = sample.snapshots
    assert len(snaps) >= 8
    engine = get_replay_engine("rocket_mini")
    n_workers = max(2, workers)
    t0 = time.perf_counter()
    serial = engine.replay_all(snaps, workers=1)
    replay_serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = engine.replay_all(snaps, workers=n_workers)
    replay_parallel_s = time.perf_counter() - t0
    assert [r.power.total_w for r in serial] == \
        [r.power.total_w for r in parallel]
    replay_speedup = replay_serial_s / max(replay_parallel_s, 1e-9)

    rows = [[k, f"{v:,.0f}"] for k, v in rates.items()]
    rows.append(["measured FAME1/gate-level ratio",
                 f"{measured_ratio:,.0f}x"])
    rows.append(["modeled speedup vs gate-level (paper consts)",
                 f"{modeled_gate:,.0f}x"])
    rows.append(["modeled speedup vs uarch sim (paper consts)",
                 f"{modeled_uarch:,.0f}x"])
    rows.append([f"replay_all serial ({len(snaps)} snapshots)",
                 f"{replay_serial_s:.2f} s"])
    rows.append([f"replay_all parallel (workers={n_workers})",
                 f"{replay_parallel_s:.2f} s"])
    rows.append(["replay parallel speedup", f"{replay_speedup:.2f}x"])
    emit("speedup", fmt_table(["quantity", "value"], rows))
    save_json("BENCH_speedup", {
        "rates": rates,
        "measured_fame1_over_gate": measured_ratio,
        "modeled_speedup_vs_gate": modeled_gate,
        "modeled_speedup_vs_uarch": modeled_uarch,
        "replay_snapshots": len(snaps),
        "replay_serial_s": replay_serial_s,
        "replay_parallel_s": replay_parallel_s,
        "replay_workers": n_workers,
        "replay_speedup": replay_speedup,
        "cpu_count": os.cpu_count(),
    })

    # shape assertions: the hierarchy must hold and the modeled
    # speedups must reproduce the paper's orders of magnitude
    assert rates["fame1 (cycles/s)"] > rates["gate-level (cycles/s)"]
    assert measured_ratio > 5
    assert modeled_gate > 1e5          # ">= 4 orders" claim
    assert modeled_uarch > 8           # ">= 2 orders" claim (per paper
    #                                    arithmetic: ~9x at N=1e11;
    #                                    grows with shorter runs? no —
    #                                    with larger N it approaches
    #                                    Kf/uarch ~ 12x; see notes)
    # replay pool: on a host with real parallelism the pool must win
    # by >=2x; single/dual-core hosts only check for no regression
    if (os.cpu_count() or 1) >= 4 and workers >= 4:
        assert replay_speedup >= 2.0


def test_batched_replay_speedup(workers, batch_lanes):
    """Bit-parallel lane batching vs the scalar replay paths.

    Measures snapshot replay throughput in four modes — serial scalar,
    single-process batched, scalar worker pool, and batched x pool —
    verifies all four are bit-identical, and writes
    ``results/BENCH_replay_batch.json``.  ``--batch-lanes`` narrows the
    lane width for quick smoke runs (CI uses 16).
    """
    lanes = max(2, min(batch_lanes, 64))
    n_workers = max(2, min(workers, 4))
    # two full-width batches' worth of snapshots, so the combined mode
    # has several batches per worker and task overhead amortizes
    n_snaps = max(2 * n_workers, 2 * lanes)
    circuit, _ = get_circuits("rocket_mini")
    sample = run_workload(circuit, MICROBENCHMARKS["towers"](n=7),
                          max_cycles=2_000_000, mem_latency=20,
                          backend="auto", sample_size=n_snaps,
                          replay_length=32, seed=7)
    assert sample.passed
    snaps = sample.snapshots
    engine = get_replay_engine("rocket_mini")
    # lanes per batch in the combined mode, so the pool has one batch
    # per worker rather than a single 64-lane batch on one worker
    combo_lanes = max(1, lanes // n_workers)

    def timed(**kwargs):
        t0 = time.perf_counter()
        results = engine.replay_all(snaps, **kwargs)
        return results, time.perf_counter() - t0

    serial, t_serial = timed(workers=1)
    batched, t_batched = timed(workers=1, batch_lanes=lanes)
    halved, t_halved = timed(workers=1, batch_lanes=combo_lanes)
    pooled, t_pool = timed(workers=n_workers)
    combo, t_combo = timed(workers=n_workers, batch_lanes=combo_lanes)
    for other in (batched, halved, pooled, combo):
        assert [r.power.total_w for r in other] == \
            [r.power.total_w for r in serial]

    rate = len(snaps) / max(t_serial, 1e-9)
    batched_speedup = t_serial / max(t_batched, 1e-9)
    halved_speedup = t_serial / max(t_halved, 1e-9)
    pool_speedup = t_serial / max(t_pool, 1e-9)
    combo_speedup = t_serial / max(t_combo, 1e-9)
    # how close combined is to perfectly multiplicative composition
    compose_ratio = combo_speedup / max(halved_speedup * pool_speedup,
                                        1e-9)

    rows = [
        [f"serial scalar ({len(snaps)} snapshots)",
         f"{t_serial:.2f} s", "1.00x"],
        [f"batched, {lanes} lanes", f"{t_batched:.2f} s",
         f"{batched_speedup:.2f}x"],
        [f"batched, {combo_lanes} lanes", f"{t_halved:.2f} s",
         f"{halved_speedup:.2f}x"],
        [f"pool, workers={n_workers}", f"{t_pool:.2f} s",
         f"{pool_speedup:.2f}x"],
        [f"batched x pool ({combo_lanes} lanes, {n_workers} workers)",
         f"{t_combo:.2f} s", f"{combo_speedup:.2f}x"],
        ["composition (combo / batched*pool)", "",
         f"{compose_ratio:.2f}"],
    ]
    emit("replay_batch", fmt_table(["mode", "wall", "speedup"], rows))
    save_json("BENCH_replay_batch", {
        "snapshots": len(snaps),
        "replay_length": 32,
        "lanes": lanes,
        "combo_lanes": combo_lanes,
        "workers": n_workers,
        "serial_s": t_serial,
        "batched_s": t_batched,
        "batched_half_s": t_halved,
        "pool_s": t_pool,
        "combo_s": t_combo,
        "serial_snapshots_per_s": rate,
        "batched_speedup": batched_speedup,
        "batched_half_speedup": halved_speedup,
        "pool_speedup": pool_speedup,
        "combo_speedup": combo_speedup,
        "compose_ratio": compose_ratio,
        "cpu_count": os.cpu_count(),
    })

    # acceptance: full-width batching must beat serial by >=4x, and on
    # a host with real parallelism the pool must compose on top of the
    # lanes (within 30% of perfectly multiplicative)
    assert batched_speedup > 1.0
    if lanes >= 32:
        assert batched_speedup >= 4.0
        assert compose_ratio >= 0.7


def test_compiled_replay_speedup(batch_lanes, gl_backend):
    """Compiled gate-level kernels vs the interpreted evaluator.

    Times the batched simulator's hot stepping loop on rocket_mini
    under every backend the host can build — interpreted, generated
    Python, and (with a C compiler) gcc+ctypes — verifies the value
    arrays stay bit-identical, computes each backend's amortization
    point (cycles of stepping needed to pay back its compile time),
    and writes ``results/BENCH_replay_compiled.json``.  The headline
    ``--gl-backend`` mode (default ``auto``) is resolved to whatever
    rung actually built, so the JSON records what this host ran.
    """
    import numpy as np
    from repro.gatelevel import BatchedGateLevelSimulator, build_kernel
    from repro.gatelevel.glcodegen import GLCodegenUnavailable

    lanes = max(2, min(batch_lanes, 64))
    warm_cycles, timed_cycles = 20, 200
    engine = get_replay_engine("rocket_mini")
    netlist = engine.flow.netlist
    schedule = engine._schedule

    kernels = {"interp": None}
    compile_s = {"interp": 0.0}
    try:
        k = build_kernel(netlist, schedule, "compiled",
                         use_cache=False)
        kernels["compiled"] = k
        compile_s["compiled"] = k.compile_seconds
    except Exception:
        pass
    try:
        k = build_kernel(netlist, schedule, "c", use_cache=False)
        if k is not None and k.backend == "c":
            kernels["c"] = k
            compile_s["c"] = k.compile_seconds
    except GLCodegenUnavailable:
        pass

    per_cycle = {}
    values = {}
    for name, kernel in kernels.items():
        sim = BatchedGateLevelSimulator(netlist, lanes=lanes,
                                        schedule=schedule,
                                        kernel=kernel)
        sim.step(warm_cycles)
        t0 = time.perf_counter()
        sim.step(timed_cycles)
        per_cycle[name] = (time.perf_counter() - t0) / timed_cycles
        values[name] = sim._values.copy()
    for name, vals in values.items():
        assert np.array_equal(vals, values["interp"]), name

    speedup = {name: per_cycle["interp"] / max(dt, 1e-12)
               for name, dt in per_cycle.items()}
    amortize = {}
    for name in kernels:
        saved = per_cycle["interp"] - per_cycle[name]
        amortize[name] = (compile_s[name] / saved if saved > 0
                          else float("inf"))

    headline = gl_backend
    if headline == "auto":
        headline = "c" if "c" in kernels else "compiled"
    if headline not in kernels:
        headline = "compiled"

    rows = [[name, f"{per_cycle[name] * 1000:.3f} ms",
             f"{speedup[name]:.2f}x",
             f"{compile_s[name]:.2f} s",
             ("-" if amortize[name] == float("inf")
              else f"{amortize[name]:,.0f} cycles")]
            for name in per_cycle]
    emit("replay_compiled",
         fmt_table(["backend", "per cycle", "speedup", "compile",
                    "amortized after"], rows))
    save_json("BENCH_replay_compiled", {
        "design": "rocket_mini",
        "lanes": lanes,
        "timed_cycles": timed_cycles,
        "headline_backend": headline,
        "per_cycle_ms": {k: v * 1000 for k, v in per_cycle.items()},
        "speedup": speedup,
        "compile_seconds": compile_s,
        "amortization_cycles": {
            k: (None if v == float("inf") else v)
            for k, v in amortize.items()},
        "have_cc": "c" in kernels,
        "cpu_count": os.cpu_count(),
    })

    # acceptance: the generated-Python kernel must not lose to the
    # interpreter it replaces (the interpreter is already numpy-
    # vectorized, so its headroom is small — see EXPERIMENTS.md), and
    # a C kernel must deliver a real multiple on full-width batches
    assert "compiled" in kernels
    assert speedup["compiled"] >= 1.0
    if "c" in kernels and lanes >= 32:
        assert speedup["c"] >= 3.0


def test_native_replay_speedup(batch_lanes):
    """Whole-cycle native stepping vs the per-eval hot loop it replaced.

    The earlier compiled backends accelerated only the combinational
    eval: every cycle still crossed back into Python for toggle
    counting, SRAM write commit, and DFF commit.  ``run_cycles`` moves
    the whole cycle — and N cycles per call — into the kernel, so the
    C backend makes one GIL-releasing foreign call per replay instead
    of one per eval.  This bench times both loops under every backend
    the host can build, verifies value arrays *and* toggle counts stay
    bit-identical, records the per-phase ``glstep.*`` breakdown of the
    native C run, and writes ``results/BENCH_replay_native.json``.
    """
    import numpy as np
    from repro.gatelevel import BatchedGateLevelSimulator, build_kernel
    from repro.gatelevel.glcodegen import GLCodegenUnavailable
    from repro.obs import get_registry

    lanes = max(2, min(batch_lanes, 64))
    warm_cycles, timed_cycles = 20, 200
    engine = get_replay_engine("rocket_mini")
    netlist = engine.flow.netlist
    schedule = engine._schedule

    kernels = {"interp": None}
    try:
        kernels["compiled"] = build_kernel(netlist, schedule,
                                           "compiled", use_cache=False)
    except Exception:
        pass
    try:
        k = build_kernel(netlist, schedule, "c", use_cache=False)
        if k is not None and k.backend == "c":
            kernels["c"] = k
    except GLCodegenUnavailable:
        pass

    def legacy_run(sim, n):
        # the pre-run_cycles replay hot loop: settle with one eval to
        # check outputs, then step() — which evaluated *again* before
        # Python-side toggle counting, SRAM write ports, and DFF
        # commit.  run_cycles collapses this to a single in-kernel
        # eval per cycle (the second eval is idempotent, so dropping
        # it is bit-identical; SRAM read counts are edge-triggered).
        sim._ensure_toggle_capacity(n)
        for _ in range(n):
            sim.eval()
            sim.eval()
            values = sim._values
            sim._count_toggles((values ^ sim._prev) & sim.active_mask)
            np.copyto(sim._prev, values)
            sim._commit()
            sim.cycles += 1

    def native_run(sim, n):
        sim.run_cycles(n)

    registry = get_registry()
    phase_names = ["stimulus", "eval", "check", "toggle", "sram",
                   "commit"]
    per_cycle = {}
    values = {}
    toggles = {}
    phases = {}
    for name, kernel in kernels.items():
        for mode, runner in (("legacy", legacy_run),
                             ("native", native_run)):
            sim = BatchedGateLevelSimulator(netlist, lanes=lanes,
                                            schedule=schedule,
                                            kernel=kernel)
            runner(sim, warm_cycles)
            before = {p: registry.value(f"glstep.{p}_seconds")
                      for p in phase_names}
            t0 = time.perf_counter()
            runner(sim, timed_cycles)
            per_cycle[(name, mode)] = (time.perf_counter() - t0) \
                / timed_cycles
            if mode == "native":
                phases[name] = {
                    p: registry.value(f"glstep.{p}_seconds")
                    - before[p] for p in phase_names}
            values[(name, mode)] = sim._values.copy()
            toggles[(name, mode)] = sim.lane_toggles(0)
    ref = ("interp", "legacy")
    for key in values:
        assert np.array_equal(values[key], values[ref]), key
        assert np.array_equal(toggles[key], toggles[ref]), key

    legacy_interp = per_cycle[("interp", "legacy")]
    rows = []
    for name in kernels:
        for mode in ("legacy", "native"):
            dt = per_cycle[(name, mode)]
            rows.append([f"{name} {mode}", f"{dt * 1000:.3f} ms",
                         f"{legacy_interp / max(dt, 1e-12):.2f}x"])
    native_over_legacy = {
        name: per_cycle[(name, "legacy")]
        / max(per_cycle[(name, "native")], 1e-12)
        for name in kernels}
    for name, ratio in native_over_legacy.items():
        rows.append([f"{name}: native vs legacy", "",
                     f"{ratio:.2f}x"])
    emit("replay_native",
         fmt_table(["loop", "per cycle", "speedup"], rows))
    save_json("BENCH_replay_native", {
        "design": "rocket_mini",
        "lanes": lanes,
        "timed_cycles": timed_cycles,
        "per_cycle_ms": {f"{name}_{mode}": dt * 1000
                         for (name, mode), dt in per_cycle.items()},
        "speedup_vs_interp_legacy": {
            f"{name}_{mode}": legacy_interp / max(dt, 1e-12)
            for (name, mode), dt in per_cycle.items()},
        "native_over_legacy": native_over_legacy,
        "native_phase_seconds": phases,
        "have_cc": "c" in kernels,
        "cpu_count": os.cpu_count(),
    })

    # acceptance: whole-cycle native stepping must never lose to the
    # per-eval loop, and with a C compiler on full-width batches the
    # one-call-per-replay kernel must deliver a real multiple over the
    # per-eval C backend it replaces
    for name, ratio in native_over_legacy.items():
        assert ratio >= 0.9, (name, ratio)
    if "c" in kernels and lanes >= 32:
        assert native_over_legacy["c"] >= 3.0


def test_obs_overhead(batch_lanes, trace_dir):
    """What the observability layer costs on the batched-replay path.

    Two numbers, written to ``results/BENCH_obs_overhead.json``:

    * *disabled*: the instrumentation's cost when tracing is off (the
      default) — the no-op tracer's per-span cost times the span sites
      an enabled run actually hits, as a fraction of the disabled
      run's wall-clock.  This is the tax every un-traced run pays and
      it must stay under 2%.
    * *enabled*: a collecting tracer's wall-clock ratio over the
      disabled run — the price of asking for a trace.

    ``--trace-dir DIR`` additionally exports the enabled run's trace.
    """
    from repro.obs import NullTracer, Tracer, export_chrome_trace, \
        get_registry, set_tracer

    lanes = max(2, min(batch_lanes, 64))
    circuit, _ = get_circuits("rocket_mini")
    sample = run_workload(circuit, MICROBENCHMARKS["towers"](n=7),
                          max_cycles=2_000_000, mem_latency=20,
                          backend="auto", sample_size=2 * lanes,
                          replay_length=32, seed=7)
    assert sample.passed
    snaps = sample.snapshots
    engine = get_replay_engine("rocket_mini")

    def timed(tracer):
        prev = set_tracer(tracer)
        try:
            t0 = time.perf_counter()
            results = engine.replay_all(snaps, workers=1,
                                        batch_lanes=lanes)
            return results, time.perf_counter() - t0
        finally:
            set_tracer(prev)

    timed(NullTracer())                       # warm every code path
    disabled, t_disabled = timed(NullTracer())
    tracer = Tracer()
    enabled, t_enabled = timed(tracer)
    assert [r.power.total_w for r in enabled] == \
        [r.power.total_w for r in disabled]
    span_sites = len(tracer.spans) + len(tracer.events)

    # per-call cost of the no-op span (enter + exit on the shared
    # null instance), measured directly
    null = NullTracer()
    reps = 200_000
    t0 = time.perf_counter()
    for _ in range(reps):
        with null.span("x"):
            pass
    noop_per_call = (time.perf_counter() - t0) / reps

    disabled_overhead = noop_per_call * span_sites \
        / max(t_disabled, 1e-9)
    enabled_ratio = t_enabled / max(t_disabled, 1e-9)

    # history-store hook: run_strober calls append_run_record exactly
    # once at teardown.  Measure the hook's per-call cost both with
    # the store disabled (the no-op every hermetic test run pays) and
    # with a live file (one framed fsync-free append), and express the
    # disabled cost as a fraction of this run's wall-clock.
    import tempfile
    from types import SimpleNamespace
    from repro.obs import append_run_record
    fake_run = SimpleNamespace(
        design="rocket_mini", workload="towers",
        wall_seconds=t_disabled, replays=disabled,
        result=SimpleNamespace(cycles=sample.cycles),
        timings={"workers": 1, "batch_lanes": lanes,
                 "replay_seconds": t_disabled},
        sampling=None, run_key="benchmark")
    prev_env = os.environ.get("REPRO_OBS_HISTORY")
    try:
        os.environ["REPRO_OBS_HISTORY"] = "off"
        hook_reps = 2_000
        t0 = time.perf_counter()
        for _ in range(hook_reps):
            append_run_record(fake_run)
        hook_disabled_per_call = (time.perf_counter() - t0) / hook_reps
        with tempfile.TemporaryDirectory() as tmp:
            os.environ["REPRO_OBS_HISTORY"] = \
                os.path.join(tmp, "history.jsonl")
            append_reps = 200
            t0 = time.perf_counter()
            for _ in range(append_reps):
                append_run_record(fake_run)
            hook_enabled_per_call = (time.perf_counter() - t0) \
                / append_reps
    finally:
        if prev_env is None:
            os.environ.pop("REPRO_OBS_HISTORY", None)
        else:
            os.environ["REPRO_OBS_HISTORY"] = prev_env
    # one hook call per run
    history_overhead = hook_disabled_per_call / max(t_disabled, 1e-9)

    if trace_dir is not None:
        export_chrome_trace(os.path.join(trace_dir, "bench_obs.json"),
                            tracer, registry=get_registry())

    rows = [
        [f"batched replay, tracing off ({len(snaps)} snapshots, "
         f"{lanes} lanes)", f"{t_disabled:.2f} s"],
        ["batched replay, tracing on", f"{t_enabled:.2f} s"],
        ["enabled / disabled", f"{enabled_ratio:.3f}x"],
        ["span sites hit per run", f"{span_sites}"],
        ["no-op span cost", f"{noop_per_call * 1e9:.0f} ns"],
        ["disabled-instrumentation overhead",
         f"{disabled_overhead * 100:.3f}%"],
        ["history hook, store disabled",
         f"{hook_disabled_per_call * 1e6:.1f} us/call"],
        ["history hook, live append",
         f"{hook_enabled_per_call * 1e6:.1f} us/call"],
        ["history-hook overhead (1 call/run)",
         f"{history_overhead * 100:.4f}%"],
    ]
    emit("obs_overhead", fmt_table(["quantity", "value"], rows))
    save_json("BENCH_obs_overhead", {
        "snapshots": len(snaps),
        "lanes": lanes,
        "disabled_s": t_disabled,
        "enabled_s": t_enabled,
        "enabled_ratio": enabled_ratio,
        "span_sites": span_sites,
        "noop_span_ns": noop_per_call * 1e9,
        "disabled_overhead_fraction": disabled_overhead,
        "history_hook_disabled_us": hook_disabled_per_call * 1e6,
        "history_hook_append_us": hook_enabled_per_call * 1e6,
        "history_hook_overhead_fraction": history_overhead,
        "cpu_count": os.cpu_count(),
    })

    # acceptance: instrumentation left in the hot path must cost the
    # un-traced run under 2%; a collecting tracer stays cheap too, and
    # the once-per-run history hook is noise against any real run
    assert disabled_overhead < 0.02
    assert enabled_ratio < 1.25
    assert history_overhead < 0.02
