"""Section V-B / I: simulation-speed hierarchy and speedups.

Measures this reproduction's actual simulation rates — golden-model ISA
simulation, FAME1 RTL simulation (Python and, when available, compiled
C), and gate-level simulation — and evaluates the Section IV-E model
with both the paper's constants and the locally measured ones.

The paper's claims: >=2 orders of magnitude over microarchitectural
software simulation and >=4 orders over commercial gate-level
simulation.  Both substrates here are Python, so the *measured* gap is
smaller; the modeled gap with the paper's constants reproduces the
paper's orders (see EXPERIMENTS.md).
"""

import time

from repro.core import (
    get_circuits, get_replay_engine, strober_time, gate_sim_time,
    uarch_sim_time, PAPER_PARAMS,
)
from repro.gatelevel import GateLevelSimulator
from repro.isa import assemble, GoldenModel
from repro.isa.programs import gcc_phases
from repro.targets.soc import run_workload

from _common import emit, fmt_table


def test_speedup_hierarchy(benchmark):
    source = gcc_phases(rounds=2)

    def measure():
        rates = {}
        # ISA-level golden model (the "fast functional" baseline)
        golden = GoldenModel(assemble(source))
        t0 = time.perf_counter()
        golden.run()
        rates["golden (inst/s)"] = golden.instret \
            / (time.perf_counter() - t0)

        # FAME1 simulation of the Rocket SoC
        circuit, _ = get_circuits("rocket_mini")
        result = run_workload(circuit, source, max_cycles=2_000_000,
                              mem_latency=20, backend="auto")
        assert result.passed
        rates["fame1 (cycles/s)"] = result.cycles \
            / max(result.stats.wall_seconds, 1e-9)

        # gate-level simulation rate of the same design
        engine = get_replay_engine("rocket_mini")
        gl = GateLevelSimulator(engine.flow.netlist)
        t0 = time.perf_counter()
        gl.step(300)
        rates["gate-level (cycles/s)"] = 300 / (time.perf_counter() - t0)
        return rates

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)

    measured_ratio = rates["fame1 (cycles/s)"] \
        / rates["gate-level (cycles/s)"]
    model = strober_time(100e9, 100, 1000, PAPER_PARAMS)
    modeled_gate = gate_sim_time(100e9) / model.t_overall_s
    modeled_uarch = uarch_sim_time(100e9) / model.t_overall_s

    rows = [[k, f"{v:,.0f}"] for k, v in rates.items()]
    rows.append(["measured FAME1/gate-level ratio",
                 f"{measured_ratio:,.0f}x"])
    rows.append(["modeled speedup vs gate-level (paper consts)",
                 f"{modeled_gate:,.0f}x"])
    rows.append(["modeled speedup vs uarch sim (paper consts)",
                 f"{modeled_uarch:,.0f}x"])
    emit("speedup", fmt_table(["quantity", "value"], rows))

    # shape assertions: the hierarchy must hold and the modeled
    # speedups must reproduce the paper's orders of magnitude
    assert rates["fame1 (cycles/s)"] > rates["gate-level (cycles/s)"]
    assert measured_ratio > 5
    assert modeled_gate > 1e5          # ">= 4 orders" claim
    assert modeled_uarch > 8           # ">= 2 orders" claim (per paper
    #                                    arithmetic: ~9x at N=1e11;
    #                                    grows with shorter runs? no —
    #                                    with larger N it approaches
    #                                    Kf/uarch ~ 12x; see notes)
