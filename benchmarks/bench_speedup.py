"""Section V-B / I: simulation-speed hierarchy and speedups.

Measures this reproduction's actual simulation rates — golden-model ISA
simulation, FAME1 RTL simulation (Python and, when available, compiled
C), and gate-level simulation — and evaluates the Section IV-E model
with both the paper's constants and the locally measured ones.

The paper's claims: >=2 orders of magnitude over microarchitectural
software simulation and >=4 orders over commercial gate-level
simulation.  Both substrates here are Python, so the *measured* gap is
smaller; the modeled gap with the paper's constants reproduces the
paper's orders (see EXPERIMENTS.md).

Also measures the worker-pool replay speedup (snapshot replays are
embarrassingly parallel, Section IV-C) and writes every number to
``results/BENCH_speedup.json``.
"""

import os
import time

from repro.core import (
    get_circuits, get_replay_engine, strober_time, gate_sim_time,
    uarch_sim_time, PAPER_PARAMS,
)
from repro.gatelevel import GateLevelSimulator
from repro.isa import assemble, GoldenModel
from repro.isa.programs import MICROBENCHMARKS, gcc_phases
from repro.targets.soc import run_workload

from _common import emit, fmt_table, save_json


def test_speedup_hierarchy(benchmark, workers):
    source = gcc_phases(rounds=2)

    def measure():
        rates = {}
        # ISA-level golden model (the "fast functional" baseline)
        golden = GoldenModel(assemble(source))
        t0 = time.perf_counter()
        golden.run()
        rates["golden (inst/s)"] = golden.instret \
            / (time.perf_counter() - t0)

        # FAME1 simulation of the Rocket SoC
        circuit, _ = get_circuits("rocket_mini")
        result = run_workload(circuit, source, max_cycles=2_000_000,
                              mem_latency=20, backend="auto")
        assert result.passed
        rates["fame1 (cycles/s)"] = result.cycles \
            / max(result.stats.wall_seconds, 1e-9)

        # gate-level simulation rate of the same design
        engine = get_replay_engine("rocket_mini")
        gl = GateLevelSimulator(engine.flow.netlist)
        t0 = time.perf_counter()
        gl.step(300)
        rates["gate-level (cycles/s)"] = 300 / (time.perf_counter() - t0)
        return rates

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)

    measured_ratio = rates["fame1 (cycles/s)"] \
        / rates["gate-level (cycles/s)"]
    model = strober_time(100e9, 100, 1000, PAPER_PARAMS)
    modeled_gate = gate_sim_time(100e9) / model.t_overall_s
    modeled_uarch = uarch_sim_time(100e9) / model.t_overall_s

    # worker-pool replay: serial vs parallel replay_all on the same
    # snapshot set (>=8 snapshots so the pool has real work to split)
    circuit, _ = get_circuits("rocket_mini")
    sample = run_workload(circuit, MICROBENCHMARKS["towers"](n=7),
                          max_cycles=2_000_000, mem_latency=20,
                          backend="auto", sample_size=8,
                          replay_length=64, seed=7)
    assert sample.passed
    snaps = sample.snapshots
    assert len(snaps) >= 8
    engine = get_replay_engine("rocket_mini")
    n_workers = max(2, workers)
    t0 = time.perf_counter()
    serial = engine.replay_all(snaps, workers=1)
    replay_serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = engine.replay_all(snaps, workers=n_workers)
    replay_parallel_s = time.perf_counter() - t0
    assert [r.power.total_w for r in serial] == \
        [r.power.total_w for r in parallel]
    replay_speedup = replay_serial_s / max(replay_parallel_s, 1e-9)

    rows = [[k, f"{v:,.0f}"] for k, v in rates.items()]
    rows.append(["measured FAME1/gate-level ratio",
                 f"{measured_ratio:,.0f}x"])
    rows.append(["modeled speedup vs gate-level (paper consts)",
                 f"{modeled_gate:,.0f}x"])
    rows.append(["modeled speedup vs uarch sim (paper consts)",
                 f"{modeled_uarch:,.0f}x"])
    rows.append([f"replay_all serial ({len(snaps)} snapshots)",
                 f"{replay_serial_s:.2f} s"])
    rows.append([f"replay_all parallel (workers={n_workers})",
                 f"{replay_parallel_s:.2f} s"])
    rows.append(["replay parallel speedup", f"{replay_speedup:.2f}x"])
    emit("speedup", fmt_table(["quantity", "value"], rows))
    save_json("BENCH_speedup", {
        "rates": rates,
        "measured_fame1_over_gate": measured_ratio,
        "modeled_speedup_vs_gate": modeled_gate,
        "modeled_speedup_vs_uarch": modeled_uarch,
        "replay_snapshots": len(snaps),
        "replay_serial_s": replay_serial_s,
        "replay_parallel_s": replay_parallel_s,
        "replay_workers": n_workers,
        "replay_speedup": replay_speedup,
        "cpu_count": os.cpu_count(),
    })

    # shape assertions: the hierarchy must hold and the modeled
    # speedups must reproduce the paper's orders of magnitude
    assert rates["fame1 (cycles/s)"] > rates["gate-level (cycles/s)"]
    assert measured_ratio > 5
    assert modeled_gate > 1e5          # ">= 4 orders" claim
    assert modeled_uarch > 8           # ">= 2 orders" claim (per paper
    #                                    arithmetic: ~9x at N=1e11;
    #                                    grows with shorter runs? no —
    #                                    with larger N it approaches
    #                                    Kf/uarch ~ 12x; see notes)
    # replay pool: on a host with real parallelism the pool must win
    # by >=2x; single/dual-core hosts only check for no regression
    if (os.cpu_count() or 1) >= 4 and workers >= 4:
        assert replay_speedup >= 2.0
