"""Section IV-E: the analytic simulation-performance model.

Regenerates the paper's worked example (two-way BOOM, 100-billion-cycle
benchmark, 100 snapshots, replay length 1000, 10 parallel gate-level
instances) and the two baselines it quotes.
"""

import pytest

from repro.core import (
    strober_time, uarch_sim_time, gate_sim_time, PAPER_PARAMS,
)

from _common import emit, fmt_table


def test_perf_model_worked_example(benchmark):
    model = benchmark.pedantic(
        lambda: strober_time(100e9, 100, 1000, PAPER_PARAMS),
        rounds=1, iterations=1)
    paper_sum = model.t_run_s + model.t_sample_s + model.t_replay_s
    rows = [
        ["T_FPGAsyn", f"{model.t_fpga_syn_s:.0f} s", "3600 s"],
        ["T_run", f"{model.t_run_s:.0f} s", "27778 s"],
        ["T_sample", f"{model.t_sample_s:.0f} s", "3592 s"],
        ["T_replay", f"{model.t_replay_s:.0f} s", "2333 s"],
        ["T_run+T_sample+T_replay",
         f"{paper_sum / 3600:.2f} h", "9.4 h"],
        ["uarch sw sim baseline",
         f"{uarch_sim_time(100e9) / 86400:.2f} days", "3.86 days"],
        ["gate-level sim baseline",
         f"{gate_sim_time(100e9) / (86400 * 365):.0f} years",
         "264 years"],
    ]
    emit("perf_model", fmt_table(["quantity", "model", "paper"], rows))
    assert paper_sum / 3600 == pytest.approx(9.4, abs=0.2)
    assert model.t_run_s == pytest.approx(27778, rel=1e-3)
