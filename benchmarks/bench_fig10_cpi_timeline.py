"""Figure 10: CPI over time with snapshot markers.

Runs the phase-varying gcc stand-in on Rocket while sampling snapshots;
renders the CPI timeline (sampled from the performance counters at a
fixed interval, like the paper's user-level sampler) with markers at
the cycles where Strober captured snapshots.
"""

from repro.core import get_circuits
from repro.targets.soc import run_workload
from repro.isa.programs import gcc_phases

from _common import emit

INTERVAL = 512  # paper samples every 100M cycles; scaled run


def test_fig10_cpi_timeline(benchmark):
    circuit, _ = get_circuits("rocket_mini")
    timeline = []

    def sample(fame):
        outs = fame.sim.peek_all()
        timeline.append((fame.stats.target_cycles,
                         outs["perf_instret"]))

    def run():
        timeline.clear()
        return run_workload(circuit, gcc_phases(rounds=3),
                            max_cycles=3_000_000, mem_latency=20,
                            backend="auto", sample_size=12,
                            replay_length=64, seed=8,
                            progress_fn=sample,
                            progress_interval=INTERVAL)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.passed

    snap_cycles = sorted(s.cycle for s in result.snapshots)
    lines = []
    prev_c, prev_i = 0, 0
    cpis = []
    snap_iter = iter(snap_cycles)
    next_snap = next(snap_iter, None)
    for cycles, instret in timeline:
        d_c, d_i = cycles - prev_c, instret - prev_i
        prev_c, prev_i = cycles, instret
        if d_i <= 0:
            continue
        cpi = d_c / d_i
        cpis.append(cpi)
        marks = ""
        while next_snap is not None and next_snap <= cycles:
            marks += "|"
            next_snap = next(snap_iter, None)
        bar = "#" * int(cpi * 12)
        lines.append(f"cycle {cycles:7d}  CPI {cpi:5.2f} {bar} {marks}")
    lines.append(f"snapshots at cycles: {snap_cycles}")
    emit("fig10_cpi_timeline", lines)

    # phase structure must be visible: CPI varies over the run
    assert len(cpis) >= 8
    assert max(cpis) > 1.25 * min(cpis)
    # snapshots must be spread across the execution, not clustered at
    # the start (reservoir sampling property)
    assert snap_cycles, "no snapshots captured"
    assert snap_cycles[-1] > result.cycles // 2
