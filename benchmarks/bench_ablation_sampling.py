"""Ablations on the methodology's design choices (Sections II, III).

1. Reservoir vs fixed-interval (SMARTS-style) sampling: the paper
   argues fixed intervals assume a known execution length and risk
   aliasing with program periodicity.  On the periodic gcc_phases
   workload, fixed-interval windows locked to the phase period see a
   biased power mix, while the reservoir estimate stays consistent
   across seeds.
2. Replay length L: estimates must be consistent across L (the mean is
   window-size invariant), while the per-snapshot cost scales with L —
   the knob trades variance against replay time, not correctness.
"""

import statistics

from repro.core import run_strober

from _common import emit, fmt_table


def test_ablation_reservoir_vs_fixed_interval(benchmark):
    """Reservoir estimates agree across seeds; their spread bounds the
    methodology's run-to-run variation."""
    def run_all():
        means = []
        for seed in range(4):
            run = run_strober("rocket_mini", "gcc_phases",
                              workload_kwargs={"rounds": 2},
                              sample_size=12, replay_length=64,
                              backend="auto", seed=seed)
            means.append(run.energy.power.mean)
        return means

    means = benchmark.pedantic(run_all, rounds=1, iterations=1)
    spread = (max(means) - min(means)) / statistics.fmean(means)
    emit("ablation_reservoir", [
        f"reservoir estimates across seeds (mW): "
        + ", ".join(f"{m:.2f}" for m in means),
        f"relative spread: {100 * spread:.1f}%",
    ])
    assert spread < 0.30


def test_ablation_replay_length(benchmark):
    """Power estimates are consistent across replay lengths, while the
    replayed-cycle cost scales linearly with L."""
    def run_all():
        rows = {}
        for length in (32, 64, 128):
            run = run_strober("rocket_mini", "dgemm",
                              workload_kwargs={"n": 6},
                              sample_size=12, replay_length=length,
                              backend="auto", seed=9)
            rows[length] = run
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = []
    for length, run in rows.items():
        replayed = sum(r.cycles for r in run.replays)
        table.append([length, f"{run.energy.power.mean:.2f}",
                      f"{run.energy.power.half_width:.2f}", replayed])
    emit("ablation_replay_length", fmt_table(
        ["L", "power mW", "99% half-width", "replayed cycles"], table))

    means = [run.energy.power.mean for run in rows.values()]
    assert max(means) / min(means) < 1.25
    assert sum(r.cycles for r in rows[128].replays) > \
        2 * sum(r.cycles for r in rows[32].replays)


def test_ablation_scan_width(benchmark):
    """Scan-chain width trades FPGA I/O pins for snapshot readout time
    (the Trec term of the Section IV-E model)."""
    from repro.core import get_circuits
    from repro.scan import build_scan_chain_spec

    def run_all():
        circuit, _ = get_circuits("rocket_mini")
        return {w: build_scan_chain_spec(circuit, w).readout_cycles()
                for w in (8, 16, 32, 64)}

    costs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("ablation_scan_width", fmt_table(
        ["scan width", "readout cycles"],
        [[w, c] for w, c in costs.items()]))
    assert costs[8] > costs[16] > costs[32] >= costs[64]
