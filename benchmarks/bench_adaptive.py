"""Adaptive error-driven sampling vs fixed-n replay.

The fixed-sample pipeline replays every captured snapshot and reports
whatever eq.-7 relative error that sample happens to deliver.  The
adaptive controller inverts the contract: name the relative error you
need (``target_rel_error``) and it replays snapshots in bit-reversal
order only until the interval meets it, cancelling the in-flight rest.
This bench measures the trade on one workload: for each target, the
fraction of snapshots the adaptive run actually replayed and the
relative error it achieved, against the fixed-n run's full cost.

Writes ``results/BENCH_adaptive.json``.
"""

from repro.core import run_strober, STOP_TARGET_MET

from _common import emit, fmt_table, save_json

KW = dict(design="rocket_mini", workload="towers", sample_size=16,
          replay_length=48, backend="auto", seed=3)
TARGETS = (0.5, 0.3, 0.2)


def test_adaptive_vs_fixed(benchmark, workers):
    def measure():
        fixed = run_strober(**KW, workers=workers)
        adaptive = [(target, run_strober(**KW, workers=workers,
                                         target_rel_error=target))
                    for target in TARGETS]
        return fixed, adaptive

    fixed, adaptive = benchmark.pedantic(measure, rounds=1,
                                         iterations=1)
    rows = []
    available = fixed.sampling["available"]
    rows.append(("fixed", "-", fixed.sampling["sample_size"],
                 "100%",
                 f"{fixed.sampling['rel_error'] * 100:.1f}%",
                 "-", f"{fixed.timings['replay_seconds']:.2f}s"))
    for target, run in adaptive:
        s = run.sampling
        rows.append((f"adaptive", f"{target:.2f}", s["sample_size"],
                     f"{s['fraction_replayed'] * 100:.0f}%",
                     f"{s['rel_error'] * 100:.1f}%",
                     s["stop_reason"],
                     f"{run.timings['replay_seconds']:.2f}s"))
    emit("adaptive_sampling", fmt_table(
        ("mode", "target", "n", "replayed", "rel error", "stop",
         "replay wall"), rows) + [
        f"snapshots available: {available}   workers: {workers}"])

    save_json("BENCH_adaptive", {
        "design": KW["design"], "workload": KW["workload"],
        "workers": workers,
        "available": available,
        "fixed": fixed.sampling,
        "adaptive": [dict(run.sampling, target=target)
                     for target, run in adaptive],
    })

    # Acceptance: every adaptive run meets its target, and at least
    # one stops early — replaying a strict fraction of the snapshots.
    for target, run in adaptive:
        s = run.sampling
        assert s["rel_error"] is not None and s["rel_error"] <= target
        if s["stop_reason"] == STOP_TARGET_MET:
            assert run.energy.power.mean > 0
    early = [run for _target, run in adaptive
             if run.sampling["early_stop"]]
    assert early, "no target produced an early stop"
    for run in early:
        assert run.sampling["fraction_replayed"] < 1.0
        assert run.sampling["sample_size"] < available
