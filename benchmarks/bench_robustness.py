"""Robustness layer: supervision overhead and the fault campaign.

Two questions the robustness PR must answer with numbers:

1. What does supervision *cost* on the happy path?  The supervised
   pool (per-snapshot deadlines, crash detection, health accounting)
   replaced the bare ``pool.map``; its overhead versus an in-process
   serial replay of the same snapshots is the price of fault
   tolerance, and it must be small.

2. Do the guarantees *hold*?  The standard fault-injection campaign
   (worker kill, worker stall, transient error, snapshot/trace
   bit-flips, cache corruption, journal corruption) must come back
   all-``recovered``/``detected`` — plus a measurement of how much a
   recovery costs in wall-clock versus a clean run.

Writes ``results/BENCH_robustness.json``.
"""

import os
import time

from repro.core import get_circuits, get_replay_engine
from repro.isa.programs import MICROBENCHMARKS
from repro.robust import FaultPlan, FaultSpec, replay_supervised, run_campaign
from repro.targets.soc import run_workload

from _common import emit, fmt_table, save_json


def test_robustness(benchmark, workers, trace_dir):
    circuit, _ = get_circuits("rocket_mini")
    sample = run_workload(circuit, MICROBENCHMARKS["towers"](n=7),
                          max_cycles=2_000_000, mem_latency=20,
                          backend="auto", sample_size=8,
                          replay_length=64, seed=7)
    assert sample.passed
    snaps = sample.snapshots
    engine = get_replay_engine("rocket_mini")
    n_workers = max(2, min(workers, len(snaps)))

    def supervised(fault_plan=None, timeout=60.0):
        return replay_supervised(
            engine.flow, snaps, workers=n_workers,
            port_names=engine._port_names, grouping=engine.grouping,
            freq_hz=engine.freq_hz, timeout=timeout, backoff_base=0.05,
            fault_plan=fault_plan, serial_engine=engine)

    def measure():
        times = {}
        t0 = time.perf_counter()
        serial = engine.replay_all(snaps, workers=1)
        times["serial_s"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        clean, health = supervised()
        times["supervised_s"] = time.perf_counter() - t0
        assert health.healthy
        assert [r.power.total_w for r in clean] == \
            [r.power.total_w for r in serial]

        t0 = time.perf_counter()
        healed, health = supervised(
            fault_plan=FaultPlan([FaultSpec("kill", index=1)]))
        times["supervised_with_kill_s"] = time.perf_counter() - t0
        assert health.crashes >= 1
        assert [r.power.total_w for r in healed] == \
            [r.power.total_w for r in serial]
        return times

    if trace_dir is None:
        times = benchmark.pedantic(measure, rounds=1, iterations=1)
    else:
        # --trace-dir DIR: record the supervised runs (worker spans,
        # supervisor incidents, recovery timeline) as a Chrome trace
        from repro.obs import Tracer, export_chrome_trace, \
            get_registry, set_tracer
        tracer = Tracer(distributed=True)
        prev = set_tracer(tracer)
        try:
            times = benchmark.pedantic(measure, rounds=1, iterations=1)
        finally:
            set_tracer(prev)
        export_chrome_trace(
            os.path.join(trace_dir, "bench_robustness.json"), tracer,
            registry=get_registry())

    campaign_t0 = time.perf_counter()
    verdicts = run_campaign(engine, snaps, workers=n_workers,
                            timeout=5.0, backoff_base=0.05)
    campaign_s = time.perf_counter() - campaign_t0

    overhead = times["supervised_s"] / max(times["serial_s"], 1e-9)
    recovery_cost = (times["supervised_with_kill_s"]
                     / max(times["supervised_s"], 1e-9))
    rows = [
        [f"replay_all serial ({len(snaps)} snapshots)",
         f"{times['serial_s']:.2f} s"],
        [f"supervised pool (workers={n_workers})",
         f"{times['supervised_s']:.2f} s"],
        ["supervised / serial", f"{overhead:.2f}x"],
        ["supervised + injected worker kill",
         f"{times['supervised_with_kill_s']:.2f} s"],
        ["recovery cost vs clean supervised",
         f"{recovery_cost:.2f}x"],
    ]
    rows += [[f"campaign: {fault}", verdict]
             for fault, verdict in sorted(verdicts.items())]
    rows.append(["campaign wall time", f"{campaign_s:.1f} s"])
    emit("robustness", fmt_table(["quantity", "value"], rows))
    save_json("BENCH_robustness", {
        "snapshots": len(snaps),
        "workers": n_workers,
        "serial_s": times["serial_s"],
        "supervised_s": times["supervised_s"],
        "supervised_with_kill_s": times["supervised_with_kill_s"],
        "supervision_overhead": overhead,
        "recovery_cost": recovery_cost,
        "campaign": verdicts,
        "campaign_s": campaign_s,
        "cpu_count": os.cpu_count(),
    })

    # the acceptance bar: nothing missed, ever
    assert all(v in ("recovered", "detected") for v in verdicts.values()), \
        f"faults went unnoticed: {verdicts}"
