"""Figure 7: DRAM timing model validation.

A pointer-chase through increasing array sizes measures load-to-load
latency; sweeping the simulated DRAM latency moves the off-chip plateau
while the in-cache region stays fixed — demonstrating, as in the paper,
that the host-decoupled timing model controls target-visible memory
latency.
"""

from repro.core import get_circuits
from repro.targets.soc import run_workload
from repro.isa.programs import pointer_chase

from _common import emit, fmt_table

ARRAY_BYTES = [512, 1024, 2048, 4096, 8192, 16384]   # D$ is 4 KiB
DRAM_LATENCIES = [20, 50, 100]
LOADS = 192


def measure(circuit, array_bytes, latency):
    source = pointer_chase(array_bytes=array_bytes, loads=LOADS)
    result = run_workload(circuit, source, max_cycles=3_000_000,
                          mem_latency=latency, backend="auto")
    assert result.passed
    # the program reports load-to-load latency * 16 through PERF
    return result.htif.perf_log[-1] / 16.0


def test_fig7_dram_timing_validation(benchmark):
    circuit, _ = get_circuits("rocket_mini")

    def sweep():
        data = {}
        for latency in DRAM_LATENCIES:
            data[latency] = [measure(circuit, size, latency)
                             for size in ARRAY_BYTES]
        return data

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for i, size in enumerate(ARRAY_BYTES):
        rows.append([f"{size} B"]
                    + [f"{data[lat][i]:.1f}" for lat in DRAM_LATENCIES])
    emit("fig7_dram_timing", fmt_table(
        ["array size"] + [f"DRAM={lat}cy" for lat in DRAM_LATENCIES],
        rows))

    for latency in DRAM_LATENCIES:
        series = data[latency]
        # in-cache region: small arrays are fast and latency-insensitive
        assert series[0] < 15
        # off-chip region: large arrays approach the DRAM latency
        assert series[-1] > latency * 0.6
        # monotone-ish growth through the capacity cliff
        assert series[-1] > series[0] * 3
    # the simulated-latency knob must move the off-chip plateau (Fig 7)
    assert data[100][-1] > data[50][-1] > data[20][-1]
    # ...and affect the in-cache region far less than the off-chip one
    # (small residual sensitivity comes from cold misses)
    in_cache_ratio = data[100][0] / data[20][0]
    off_chip_ratio = data[100][-1] / data[20][-1]
    assert in_cache_ratio < 2.0
    assert off_chip_ratio > 2.5
    assert off_chip_ratio > 1.5 * in_cache_ratio
