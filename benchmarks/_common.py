"""Shared helpers for the experiment-reproduction benchmarks.

Every ``bench_*.py`` file regenerates one table or figure from the
paper's evaluation (see DESIGN.md's per-experiment index).  Benches
print the same rows/series the paper reports and save them under
``benchmarks/results/`` so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# Cycle counts are scaled relative to the paper (see DESIGN.md): the
# paper runs 10^8..10^11 cycles on an FPGA; this reproduction runs
# 10^3..10^5 cycles in simulation.  The statistics are scale-invariant.
SCALE_NOTE = ("[scaled reproduction: cycle counts ~10^4-10^6x smaller "
              "than the paper's FPGA runs; shapes, not magnitudes]")


def save_result(name, text):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    return path


def save_json(name, payload):
    """Persist a machine-readable result next to the text table.

    Also appends the payload's numeric scalars as one row to the
    run-history store (``repro.obs.store``), so every bench emission
    extends the performance trajectory ``python -m repro.obs.regress``
    gates on.  The append never raises and is a no-op when the store
    is disabled via ``REPRO_OBS_HISTORY``.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    try:
        from repro.obs import append_bench_record
        append_bench_record(name, payload)
    except Exception:
        pass        # history is telemetry; never fail the bench
    return path


def emit(name, lines):
    """Print and persist one experiment's output."""
    text = "\n".join(lines)
    print()
    print(f"==== {name} {SCALE_NOTE}")
    print(text)
    save_result(name, text)
    return text


def fmt_table(headers, rows):
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    def line(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return out
