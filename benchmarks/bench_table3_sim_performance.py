"""Table III: simulation performance with and without sampling.

Runs the three case-study workloads on the two-way BOOM, with snapshot
sampling enabled and disabled, reporting simulation cycles, record
counts, and wall time — the paper's claim is that the record count grows
only logarithmically (reservoir sampling), so the sampling overhead is
small for long runs.
"""

import math

from repro.core import get_circuits
from repro.sampling import expected_record_count
from repro.targets.soc import run_workload
from repro.isa.programs import ALL_PROGRAMS

from _common import emit, fmt_table

WORKLOADS = [
    ("boot", {}),                      # "LinuxBoot" stand-in
    ("coremark_lite", {"iterations": 6}),
    ("gcc_phases", {"rounds": 6}),     # "gcc" stand-in (longest run)
]
REPLAY_LENGTH = 128
SAMPLE_SIZE = 30


def test_table3_simulation_performance(benchmark):
    circuit, _ = get_circuits("boom-2w_mini")

    def run_all():
        rows = []
        for name, kwargs in WORKLOADS:
            source = ALL_PROGRAMS[name](**kwargs)
            sampled = run_workload(circuit, source, max_cycles=2_000_000,
                                   mem_latency=20, backend="auto",
                                   sample_size=SAMPLE_SIZE,
                                   replay_length=REPLAY_LENGTH, seed=2)
            assert sampled.passed, name
            plain = run_workload(circuit, source, max_cycles=2_000_000,
                                 mem_latency=20, backend="auto")
            assert plain.passed, name
            rows.append((name, sampled, plain))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table_rows = []
    for name, sampled, plain in rows:
        expected = expected_record_count(
            sampled.cycles / REPLAY_LENGTH, SAMPLE_SIZE)
        table_rows.append([
            name,
            sampled.cycles,
            sampled.stats.record_count,
            f"{expected:.0f}",
            f"{sampled.stats.wall_seconds:.2f}",
            f"{plain.stats.wall_seconds:.2f}",
        ])
    emit("table3_sim_performance", fmt_table(
        ["benchmark", "cycles", "records", "records (model)",
         "time w/ sampling (s)", "time w/o sampling (s)"],
        table_rows))

    # record counts must grow ~logarithmically, not linearly
    for name, sampled, _plain in rows:
        windows = sampled.cycles / REPLAY_LENGTH
        model = expected_record_count(windows, SAMPLE_SIZE)
        assert sampled.stats.record_count < 3 * model + 10, name
        assert sampled.stats.record_count < 0.5 * windows + SAMPLE_SIZE
    # the longest run must have only moderately more records than the
    # shortest (paper: 980 vs 1497 for a 150x cycle difference)
    counts = {name: s.stats.record_count for name, s, _ in rows}
    cycles = {name: s.cycles for name, s, _ in rows}
    longest = max(counts, key=lambda n: cycles[n])
    shortest = min(counts, key=lambda n: cycles[n])
    cycle_ratio = cycles[longest] / cycles[shortest]
    count_ratio = counts[longest] / max(counts[shortest], 1)
    assert count_ratio < cycle_ratio / 1.5 or cycle_ratio < 4
