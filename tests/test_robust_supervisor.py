"""Supervised replay pool: per-snapshot timeouts, crash detection and
respawn, retry with backoff, graceful serial fallback, and the
structured health report (repro.robust.supervisor)."""

import copy
import time

import pytest

from repro.core import run_strober
from repro.core.replay import ReplayError
from repro.robust import (
    FaultPlan, FaultSpec, ReplayHealthReport, default_init_grace,
    default_replay_timeout, replay_supervised,
)
from repro.scan.snapshot import SnapshotError


@pytest.fixture(scope="module")
def towers_run():
    return run_strober("rocket_mini", "towers", sample_size=6,
                       replay_length=32, backend="auto", seed=3)


def _keys(results):
    return [(r.snapshot_cycle, r.cycles, r.mismatches, r.power.total_w,
             tuple(sorted(r.power.by_group.items()))) for r in results]


@pytest.fixture(scope="module")
def serial_baseline(towers_run):
    return _keys(towers_run.engine.replay_all(towers_run.snapshots,
                                              workers=1))


def _supervised(engine, snaps, **kwargs):
    kwargs.setdefault("timeout", 60.0)
    kwargs.setdefault("backoff_base", 0.05)
    workers = kwargs.pop("workers", 2)
    return replay_supervised(
        engine.flow, snaps, workers=workers,
        port_names=engine._port_names, grouping=engine.grouping,
        freq_hz=engine.freq_hz, serial_engine=engine, **kwargs)


class TestHappyPath:
    def test_identical_to_serial_with_healthy_report(self, towers_run,
                                                     serial_baseline):
        results, health = _supervised(towers_run.engine,
                                      list(towers_run.snapshots))
        assert _keys(results) == serial_baseline
        assert health.healthy
        assert health.completed_parallel == len(serial_baseline)
        assert health.completed_serial == 0
        assert "healthy" in health.summary()

    def test_empty_snapshot_list(self, towers_run):
        results, health = _supervised(towers_run.engine, [])
        assert results == []
        assert health.healthy

    def test_on_result_fires_with_positions(self, towers_run,
                                            serial_baseline):
        seen = {}
        results, _health = _supervised(
            towers_run.engine, list(towers_run.snapshots),
            on_result=lambda i, r: seen.__setitem__(i, r))
        assert sorted(seen) == list(range(len(results)))
        assert all(seen[i] is results[i] for i in seen)


class TestCrashRecovery:
    def test_killed_worker_is_respawned_and_snapshot_retried(
            self, towers_run, serial_baseline):
        plan = FaultPlan([FaultSpec("kill", index=1)])
        results, health = _supervised(towers_run.engine,
                                      list(towers_run.snapshots),
                                      fault_plan=plan)
        assert _keys(results) == serial_baseline
        assert not health.healthy
        assert health.crashes >= 1
        assert health.respawns >= 1
        assert health.retries >= 1
        kinds = {i.kind for i in health.incidents}
        assert "worker-crash" in kinds
        incident = next(i for i in health.incidents
                        if i.kind == "worker-crash")
        assert incident.snapshot_index == 1
        assert "exitcode" in incident.detail

    def test_two_killed_workers(self, towers_run, serial_baseline):
        plan = FaultPlan([FaultSpec("kill", index=0),
                          FaultSpec("kill", index=3)])
        results, health = _supervised(towers_run.engine,
                                      list(towers_run.snapshots),
                                      fault_plan=plan)
        assert _keys(results) == serial_baseline
        assert health.crashes >= 2


class TestStallRecovery:
    def test_stalled_worker_hits_timeout_and_recovers(self, towers_run,
                                                      serial_baseline):
        plan = FaultPlan([FaultSpec("stall", index=0, seconds=300.0)])
        t0 = time.monotonic()
        results, health = _supervised(towers_run.engine,
                                      list(towers_run.snapshots),
                                      fault_plan=plan, timeout=3.0)
        assert time.monotonic() - t0 < 60.0
        assert _keys(results) == serial_baseline
        assert health.timeouts >= 1
        assert health.respawns >= 1
        assert any(i.kind == "timeout" for i in health.incidents)


class TestRetriesAndFallback:
    def test_transient_error_is_retried(self, towers_run,
                                        serial_baseline):
        plan = FaultPlan([FaultSpec("error", index=2, times=1)])
        results, health = _supervised(towers_run.engine,
                                      list(towers_run.snapshots),
                                      fault_plan=plan)
        assert _keys(results) == serial_baseline
        assert health.worker_errors >= 1
        assert health.retries >= 1
        assert health.serial_fallbacks == 0

    def test_exhausted_retries_degrade_to_serial(self, towers_run,
                                                 serial_baseline):
        # sabotage every dispatch of snapshot 0: the pool can never
        # replay it, so the supervisor must do it in-process
        plan = FaultPlan([FaultSpec("error", index=0, times=99)])
        results, health = _supervised(towers_run.engine,
                                      list(towers_run.snapshots),
                                      fault_plan=plan, max_retries=1)
        assert _keys(results) == serial_baseline
        assert health.serial_fallbacks == 1
        assert health.completed_serial == 1
        assert health.completed_parallel == len(serial_baseline) - 1
        assert any(i.kind == "serial-fallback" for i in health.incidents)
        assert "recovered" in health.summary()


class TestFatalErrors:
    def test_strict_mismatch_is_not_retried(self, towers_run):
        snaps = list(towers_run.snapshots)
        bad = copy.deepcopy(snaps[1])
        bad.output_trace[0] = {k: v ^ 1
                               for k, v in bad.output_trace[0].items()}
        bad.checksum = None      # reach the replay comparison itself
        with pytest.raises(ReplayError):
            _supervised(towers_run.engine, [snaps[0], bad, snaps[2]])

    def test_corrupted_sealed_snapshot_is_rejected(self, towers_run):
        snaps = list(towers_run.snapshots)
        bad = copy.deepcopy(snaps[0])
        bad.state.regs[sorted(bad.state.regs)[0]] ^= 1
        with pytest.raises(SnapshotError):
            _supervised(towers_run.engine, [bad] + snaps[1:3])


class TestStartMethods:
    def test_spawn_workers_end_to_end(self, towers_run, serial_baseline):
        results, health = _supervised(towers_run.engine,
                                      list(towers_run.snapshots)[:2],
                                      start_method="spawn")
        assert _keys(results) == serial_baseline[:2]
        assert health.healthy


class TestTimeoutDerivation:
    def test_floor_and_scaling(self):
        assert default_replay_timeout(32) == pytest.approx(30.0)
        assert default_replay_timeout(10_000) == pytest.approx(2500.0)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_TIMEOUT", "7.5")
        assert default_replay_timeout(10_000) == pytest.approx(7.5)


class TestRetryJitter:
    def test_backoff_delays_are_full_jitter(self, towers_run,
                                            serial_baseline, monkeypatch):
        """Retry spacing is drawn uniformly from [0, base * 2**k]: the
        recording RNG must see a zero lower bound and doubling caps —
        fixed delays would respawn killed workers in lockstep."""
        from repro.robust import supervisor as supervisor_mod

        draws = []

        class _Recorder:
            def uniform(self, lo, hi):
                draws.append((lo, hi))
                return 0.0     # retry immediately; the cap is the claim

        monkeypatch.setattr(supervisor_mod, "_BACKOFF_RNG", _Recorder())
        plan = FaultPlan([FaultSpec("error", index=2, times=2)])
        results, health = _supervised(towers_run.engine,
                                      list(towers_run.snapshots),
                                      fault_plan=plan, max_retries=3)
        assert _keys(results) == serial_baseline
        assert health.retries == 2
        assert draws == [(0.0, pytest.approx(0.05)),
                         (0.0, pytest.approx(0.10))]


class TestInitGrace:
    def test_default_init_grace_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLAY_INIT_GRACE", raising=False)
        assert default_init_grace() == pytest.approx(300.0)
        monkeypatch.setenv("REPRO_REPLAY_INIT_GRACE", "12.5")
        assert default_init_grace() == pytest.approx(12.5)

    def test_tight_deadline_not_charged_for_worker_startup(
            self, towers_run, serial_baseline):
        """A per-batch timeout far below spawn-and-import cost must not
        fire while workers initialize: the ready handshake re-arms the
        deadline once the one-time engine cost is paid."""
        results, health = _supervised(towers_run.engine,
                                      list(towers_run.snapshots)[:3],
                                      timeout=2.0, start_method="spawn",
                                      init_grace=120.0)
        assert _keys(results) == serial_baseline[:3]
        assert health.timeouts == 0
        assert health.healthy


class TestRunStroberIntegration:
    def test_health_report_attached_to_run(self):
        run = run_strober("rocket_mini", "towers", sample_size=4,
                          replay_length=32, seed=3, workers=2)
        assert isinstance(run.health, ReplayHealthReport)
        assert run.health.healthy
        assert run.health.completed_parallel == len(run.snapshots)

    def test_serial_run_has_no_health_report(self):
        run = run_strober("rocket_mini", "towers", sample_size=4,
                          replay_length=32, seed=3, workers=1)
        assert run.health is None
