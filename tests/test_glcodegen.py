"""Compiled batched gate-level replay backends: golden equivalence of
the exec-generated Python and gcc+ctypes kernels against the
interpreted evaluator, the artifact cache (kinds glpy/glso), the
fallback ladder, and backend selection plumbing
(repro.gatelevel.glcodegen, run_strober(gl_backend=...))."""

import random

import numpy as np
import pytest

from repro.core import run_strober
from repro.core.flow import clear_caches, get_replay_engine
from repro.gatelevel import (
    BatchedGateLevelSimulator, GateLevelSimulator, MAX_LANES,
    PackedStimulus, StimulusMismatch, build_kernel, build_schedule,
    kernel_cache_key, netlist_fingerprint, pack_lane_words,
    resolve_backend, resolve_overlap, synthesize, GLCodegenError,
)
from repro.gatelevel import glcodegen
from repro.hdl import Module, elaborate
from repro.obs import get_registry
from repro.parallel import cache_stats, reset_cache_stats
from repro.parallel.cache import get_cache

# honors $REPRO_GL_CC, so a job pointing it at a nonexistent compiler
# exercises the fallback tests and skips the C-kernel ones
try:
    glcodegen._find_compiler()
    HAVE_CC = True
except glcodegen.GLCodegenUnavailable:
    HAVE_CC = False
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C compiler")

COMPILED_BACKENDS = ["compiled"] + (["c"] if HAVE_CC else [])


@pytest.fixture(scope="module")
def towers_run():
    return run_strober("rocket_mini", "towers", sample_size=8,
                       replay_length=32, backend="auto", seed=3)


def _power_key(result):
    return (result.snapshot_cycle, result.cycles, result.mismatches,
            result.load_commands, result.power.total_w,
            result.power.switching_w, result.power.clock_w,
            result.power.sram_dynamic_w, result.power.leakage_w,
            tuple(sorted(result.power.by_group.items())))


class _KernelDesign(Module):
    """Registers, feedback, and a memory — per-lane divergence fodder."""

    def build(self):
        d = self.input("d", 8)
        we = self.input("we", 1)
        acc = self.reg("acc", 12)
        acc <<= (acc + d).trunc(12)
        scratch = self.mem("scratch", 16, 8)
        ptr = self.reg("ptr", 4)
        with self.when(we):
            self.mem_write(scratch, ptr, d)
            ptr <<= ptr + 1
        self.output("acc", 12, acc)
        self.output("peek", 8, scratch.read(ptr))


def _small_netlist():
    circuit = elaborate(_KernelDesign())
    netlist, _hints = synthesize(circuit)
    return netlist


def _drive(sims, cycles=24, seed=11):
    rng = random.Random(seed)
    lanes = sims[0].lanes
    for _cycle in range(cycles):
        d = [rng.randrange(256) for _ in range(lanes)]
        we = [rng.randrange(2) for _ in range(lanes)]
        for sim in sims:
            sim.poke_lanes("d", d)
            sim.poke_lanes("we", we)
            sim.step()


def _assert_identical(ref, sim, backend):
    assert np.array_equal(ref._values, sim._values), backend
    assert np.array_equal(ref.sram_reads, sim.sram_reads), backend
    assert np.array_equal(ref.sram_writes, sim.sram_writes), backend
    assert len(ref._toggle_planes) == len(sim._toggle_planes)
    for p_ref, p_sim in zip(ref._toggle_planes, sim._toggle_planes):
        assert np.array_equal(p_ref, p_sim), backend


class TestResolveBackend:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_GL_BACKEND", "c")
        assert resolve_backend("compiled") == "compiled"

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_GL_BACKEND", "compiled")
        assert resolve_backend(None) == "compiled"
        monkeypatch.delenv("REPRO_GL_BACKEND")
        assert resolve_backend(None) == "interp"

    def test_unknown_rejected(self):
        with pytest.raises(GLCodegenError):
            resolve_backend("verilator")


class TestSmallDesignEquivalence:
    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    @pytest.mark.parametrize("lanes", [5, MAX_LANES])
    def test_bit_identical_with_interp(self, backend, lanes):
        netlist = _small_netlist()
        schedule = build_schedule(netlist)
        ref = BatchedGateLevelSimulator(netlist, lanes=lanes,
                                        schedule=schedule)
        sim = BatchedGateLevelSimulator(netlist, lanes=lanes,
                                        schedule=schedule,
                                        backend=backend)
        assert sim.backend == backend
        _drive([ref, sim])
        _assert_identical(ref, sim, backend)
        for lane in range(lanes):
            got, want = sim.activity(lane), ref.activity(lane)
            assert got["cycles"] == want["cycles"]
            assert np.array_equal(got["toggles"], want["toggles"])
            assert got["sram_reads"] == want["sram_reads"]
            assert got["sram_writes"] == want["sram_writes"]

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    def test_matches_scalar_reference(self, backend):
        netlist = _small_netlist()
        rng = random.Random(5)
        sim = BatchedGateLevelSimulator(netlist, lanes=8,
                                        backend=backend)
        scalars = [GateLevelSimulator(netlist) for _ in range(8)]
        for _cycle in range(16):
            d = [rng.randrange(256) for _ in range(8)]
            we = [rng.randrange(2) for _ in range(8)]
            sim.poke_lanes("d", d)
            sim.poke_lanes("we", we)
            for lane, scalar in enumerate(scalars):
                scalar.poke("d", d[lane])
                scalar.poke("we", we[lane])
            sim.step()
            for scalar in scalars:
                scalar.step()
            for lane, scalar in enumerate(scalars):
                assert sim.peek("acc", lane=lane) == scalar.peek("acc")
                assert sim.peek("peek", lane=lane) == \
                    scalar.peek("peek")

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    def test_forces_fall_back_bit_identically(self, backend):
        # active forces route eval through the interpreter; state and
        # activity must stay identical before, during, and after
        netlist = _small_netlist()
        netlist.preserved_nets["probe"] = list(netlist.outputs["acc"])
        ref = BatchedGateLevelSimulator(netlist, lanes=4)
        sim = BatchedGateLevelSimulator(netlist, lanes=4,
                                        backend=backend)
        _drive([ref, sim], cycles=6, seed=2)
        for s in (ref, sim):
            s.force_label("probe", 0x5A)
        _drive([ref, sim], cycles=6, seed=3)
        for s in (ref, sim):
            s.release_all()
        _drive([ref, sim], cycles=6, seed=4)
        _assert_identical(ref, sim, backend)


class TestReplayEquivalence:
    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    def test_rocket_towers_power_identical(self, towers_run, backend):
        engine = get_replay_engine("rocket_mini", gl_backend=backend)
        assert engine.gl_backend == backend
        want = [_power_key(r) for r in towers_run.replays]
        # full batches and a ragged 5-lane tail exercise both shapes
        for lanes in (len(towers_run.snapshots), 5):
            results = engine.replay_all(towers_run.snapshots,
                                        workers=1, batch_lanes=lanes)
            assert [_power_key(r) for r in results] == want

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    def test_run_strober_energy_identical(self, towers_run, backend):
        run = run_strober("rocket_mini", "towers", sample_size=8,
                          replay_length=32, backend="auto", seed=3,
                          batch_lanes=8, gl_backend=backend)
        assert run.timings["gl_backend"] == backend
        assert run.energy.epi_nj == towers_run.energy.epi_nj
        assert [_power_key(r) for r in run.replays] == \
            [_power_key(r) for r in towers_run.replays]

    def test_boom_qsort_compiled_identical(self):
        runs = [run_strober("boom-1w_mini", "qsort", sample_size=4,
                            replay_length=32, seed=5, batch_lanes=4,
                            gl_backend=be)
                for be in ("interp", "compiled")]
        assert runs[0].energy.epi_nj == runs[1].energy.epi_nj
        assert [_power_key(r) for r in runs[0].replays] == \
            [_power_key(r) for r in runs[1].replays]

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_GL_BACKEND", "compiled")
        clear_caches()
        try:
            engine = get_replay_engine("rocket_mini")
            assert engine.gl_backend == "compiled"
        finally:
            clear_caches()

    def test_journal_resumes_across_backends(self, towers_run,
                                             tmp_path):
        journal = str(tmp_path / "run.journal")
        first = run_strober("rocket_mini", "towers", sample_size=8,
                            replay_length=32, backend="auto", seed=3,
                            batch_lanes=8, journal=journal,
                            gl_backend="interp")
        resumed = run_strober("rocket_mini", "towers", sample_size=8,
                              replay_length=32, backend="auto", seed=3,
                              batch_lanes=8, journal=journal,
                              gl_backend="compiled")
        assert resumed.result.resumed
        assert resumed.energy.epi_nj == first.energy.epi_nj


class TestArtifactCache:
    def test_python_kernel_cache_hit_skips_codegen(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        netlist = _small_netlist()
        schedule = build_schedule(netlist)
        cold = build_kernel(netlist, schedule, "compiled")
        assert not cold.from_cache
        reset_cache_stats()
        warm = build_kernel(netlist, schedule, "compiled")
        assert warm.from_cache
        assert warm.source == cold.source
        stats = cache_stats()
        assert stats["hits"] >= 1
        assert get_registry().value("cache.glpy.hits") >= 1

    @needs_cc
    def test_c_kernel_cache_hit_skips_compile(self, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        netlist = _small_netlist()
        schedule = build_schedule(netlist)
        cold = build_kernel(netlist, schedule, "c")
        assert cold.backend == "c" and not cold.from_cache
        reset_cache_stats()
        warm = build_kernel(netlist, schedule, "c")
        assert warm.backend == "c" and warm.from_cache
        assert warm.compile_seconds < cold.compile_seconds
        assert get_registry().value("cache.glso.hits") >= 1
        # the reloaded kernel must actually evaluate
        ref = BatchedGateLevelSimulator(netlist, lanes=6,
                                        schedule=schedule)
        sim = BatchedGateLevelSimulator(netlist, lanes=6,
                                        schedule=schedule, kernel=warm)
        _drive([ref, sim], cycles=8)
        _assert_identical(ref, sim, "c-from-cache")

    @needs_cc
    def test_stale_so_regenerates_with_counter(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        netlist = _small_netlist()
        schedule = build_schedule(netlist)
        build_kernel(netlist, schedule, "c")
        key = kernel_cache_key(netlist, "c", schedule)
        entry = get_cache().get("glso", key)
        entry["so"] = b"\x7fELF not actually a shared object"
        get_cache().put("glso", key, entry)
        glcodegen.reset_warnings()
        before = get_registry().value("cache.glso.stale") or 0
        with pytest.warns(RuntimeWarning, match="failed to load"):
            kernel = build_kernel(netlist, schedule, "c")
        assert kernel.backend == "c" and not kernel.from_cache
        assert get_registry().value("cache.glso.stale") == before + 1
        assert cache_stats()["glso.stale"] >= 1
        sim = BatchedGateLevelSimulator(netlist, lanes=4,
                                        schedule=schedule,
                                        kernel=kernel)
        sim.step(3)     # rebuilt kernel evaluates fine

    def test_fingerprint_stable_across_instances(self):
        a, b = _small_netlist(), _small_netlist()
        assert netlist_fingerprint(a) == netlist_fingerprint(b)


class TestFallbackLadder:
    def test_no_cc_falls_back_to_compiled_python(self, monkeypatch):
        monkeypatch.setenv("REPRO_GL_CC", "/nonexistent/cc")
        netlist = _small_netlist()
        schedule = build_schedule(netlist)
        glcodegen.reset_warnings()
        before = get_registry().value("glcodegen.c_fallbacks") or 0
        with pytest.warns(RuntimeWarning, match="unavailable"):
            kernel = build_kernel(netlist, schedule, "c",
                                  use_cache=False)
        assert kernel is not None and kernel.backend == "compiled"
        assert get_registry().value("glcodegen.c_fallbacks") == \
            before + 1

    def test_auto_degrades_silently(self, monkeypatch, recwarn):
        monkeypatch.setenv("REPRO_GL_CC", "/nonexistent/cc")
        netlist = _small_netlist()
        schedule = build_schedule(netlist)
        glcodegen.reset_warnings()
        kernel = build_kernel(netlist, schedule, "auto",
                              use_cache=False)
        assert kernel is not None and kernel.backend == "compiled"
        assert not [w for w in recwarn
                    if "unavailable" in str(w.message)]

    def test_interp_requests_no_kernel(self):
        netlist = _small_netlist()
        assert build_kernel(netlist, build_schedule(netlist),
                            "interp") is None


def _whole_trace_stim(netlist, lanes, cycles=24, seed=11,
                      force_window=None):
    """Random inputs as a PackedStimulus plus per-cycle poke lists for
    the step-by-step reference loop.  ``force_window`` = (lo, hi,
    value) installs complete force segments on cycles [lo, hi)."""
    rng = random.Random(seed)
    mask = (1 << lanes) - 1 if lanes < 64 else (1 << 64) - 1
    d_nets = np.array(netlist.inputs["d"], dtype=np.int64)
    we_nets = np.array(netlist.inputs["we"], dtype=np.int64)
    stim = PackedStimulus(cycles)
    per_cycle = []
    for t in range(cycles):
        d = [rng.randrange(256) for _ in range(lanes)]
        we = [rng.randrange(2) for _ in range(lanes)]
        stim.add_poke(t, d_nets, mask, pack_lane_words(d, len(d_nets)))
        stim.add_poke(t, we_nets, mask,
                      pack_lane_words(we, len(we_nets)))
        per_cycle.append((d, we))
    if force_window is not None:
        lo, hi, value = force_window
        nets = np.array(netlist.preserved_nets["probe"], dtype=np.int64)
        words = pack_lane_words([value] * lanes, len(nets))
        vals = words & np.uint64(mask)
        masks = np.full(len(nets), np.uint64(mask), dtype=np.uint64)
        for t in range(lo, hi):
            stim.set_forces(t, nets, masks, vals)
    return stim, per_cycle


def _reference_run(netlist, schedule, lanes, per_cycle,
                   force_window=None):
    """The historical poke/eval/peek/step loop on the interpreter;
    returns the settled simulator and the per-cycle ``acc`` outputs."""
    sim = BatchedGateLevelSimulator(netlist, lanes=lanes,
                                    schedule=schedule)
    expected = []
    for t, (d, we) in enumerate(per_cycle):
        if force_window is not None:
            lo, hi, value = force_window
            if t == lo:
                sim.force_label("probe", value)
            if t == hi:
                sim.release_all()
        sim.poke_lanes("d", d)
        sim.poke_lanes("we", we)
        sim.eval()
        expected.append([sim.peek("acc", lane=lane)
                         for lane in range(lanes)])
        sim.step()
    return sim, expected


class TestRunCycles:
    """Whole-trace ``run_cycles`` semantics: one call per batch must be
    bit-identical to the historical per-cycle loop on every backend —
    pokes, checks, mid-trace force segments, SRAM write-then-read in
    the same cycle (the design reads ``scratch`` at the write pointer),
    toggle planes, and the strict-mode stop point."""

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    @pytest.mark.parametrize("lanes", [1, 5, MAX_LANES])
    def test_bit_identical_with_stepped_reference(self, backend, lanes):
        netlist = _small_netlist()
        netlist.preserved_nets["probe"] = list(netlist.outputs["acc"])
        schedule = build_schedule(netlist)
        window = (8, 16, 0x3C)
        stim, per_cycle = _whole_trace_stim(netlist, lanes,
                                            force_window=window)
        ref, expected = _reference_run(netlist, schedule, lanes,
                                       per_cycle, force_window=window)
        acc_nets = np.array(netlist.outputs["acc"], dtype=np.int64)
        mask = (1 << lanes) - 1 if lanes < 64 else (1 << 64) - 1
        for t, vals in enumerate(expected):
            stim.add_check(t, "acc", acc_nets, mask,
                           pack_lane_words(vals, len(acc_nets)))
        interp = BatchedGateLevelSimulator(netlist, lanes=lanes,
                                           schedule=schedule)
        sim = BatchedGateLevelSimulator(netlist, lanes=lanes,
                                        schedule=schedule,
                                        backend=backend)
        for s in (interp, sim):
            mismatches = s.run_cycles(stim=stim)
            assert not mismatches.any()
            assert s.cycles == len(per_cycle)
            _assert_identical(ref, s, backend)

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    def test_mismatch_counts_identical(self, backend):
        lanes = 5
        netlist = _small_netlist()
        schedule = build_schedule(netlist)
        stim, per_cycle = _whole_trace_stim(netlist, lanes, seed=7)
        _ref, expected = _reference_run(netlist, schedule, lanes,
                                        per_cycle)
        corrupt = {(5, 2), (12, 0), (12, 2), (20, 4)}
        acc_nets = np.array(netlist.outputs["acc"], dtype=np.int64)
        mask = (1 << lanes) - 1
        for t, vals in enumerate(expected):
            vals = [v ^ 1 if (t, lane) in corrupt else v
                    for lane, v in enumerate(vals)]
            stim.add_check(t, "acc", acc_nets, mask,
                           pack_lane_words(vals, len(acc_nets)))
        want = [sum(1 for t, lane in corrupt if lane == i)
                for i in range(lanes)]
        interp = BatchedGateLevelSimulator(netlist, lanes=lanes,
                                           schedule=schedule)
        sim = BatchedGateLevelSimulator(netlist, lanes=lanes,
                                        schedule=schedule,
                                        backend=backend)
        assert interp.run_cycles(stim=stim).tolist() == want
        assert sim.run_cycles(stim=stim).tolist() == want

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    def test_strict_stop_identical(self, backend):
        # strict mode must stop at the same (cycle, op, lane) on every
        # backend, leaving the failing cycle settled but uncommitted
        lanes = 4
        netlist = _small_netlist()
        schedule = build_schedule(netlist)
        stim, per_cycle = _whole_trace_stim(netlist, lanes, seed=9)
        _ref, expected = _reference_run(netlist, schedule, lanes,
                                        per_cycle)
        acc_nets = np.array(netlist.outputs["acc"], dtype=np.int64)
        mask = (1 << lanes) - 1
        for t, vals in enumerate(expected):
            if t == 10:
                vals = [v ^ 1 if lane in (1, 3) else v
                        for lane, v in enumerate(vals)]
            stim.add_check(t, "acc", acc_nets, mask,
                           pack_lane_words(vals, len(acc_nets)))
        stops = []
        for make_backend in ("interp", backend):
            sim = BatchedGateLevelSimulator(
                netlist, lanes=lanes, schedule=schedule,
                backend=make_backend)
            with pytest.raises(StimulusMismatch) as excinfo:
                sim.run_cycles(stim=stim, strict=True)
            exc = excinfo.value
            stops.append((exc.cycle, exc.name, exc.lane, sim.cycles))
        assert stops[0] == stops[1] == (10, "acc", 1, 10)

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    def test_step_phase_counters_accumulate(self, backend):
        netlist = _small_netlist()
        schedule = build_schedule(netlist)
        registry = get_registry()
        before_cycles = registry.value("glstep.cycles") or 0
        before_calls = registry.value("glstep.calls") or 0
        sim = BatchedGateLevelSimulator(netlist, lanes=8,
                                        schedule=schedule,
                                        backend=backend)
        sim.step(17)
        assert registry.value("glstep.cycles") == before_cycles + 17
        assert registry.value("glstep.calls") == before_calls + 1
        assert (registry.value("glstep.eval_seconds") or 0) > 0


class TestResolveOverlap:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_GL_OVERLAP", "4")
        assert resolve_overlap(2) == 2

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_GL_OVERLAP", "3")
        assert resolve_overlap(None) == 3
        monkeypatch.delenv("REPRO_GL_OVERLAP")
        assert resolve_overlap(None) == 1

    @pytest.mark.parametrize("bad", [0, -2, "zero"])
    def test_invalid_rejected(self, bad):
        with pytest.raises(GLCodegenError):
            resolve_overlap(bad)


class TestThreadOverlap:
    def test_overlap_power_identical(self, towers_run):
        # overlapped batched replay (ragged batches AND singleton
        # batches) must be bit-identical to the serial scalar path
        engine = get_replay_engine("rocket_mini", gl_overlap=3)
        assert engine.gl_overlap == 3
        want = [_power_key(r) for r in towers_run.replays]
        for lanes in (3, 1):
            results = engine.replay_all(towers_run.snapshots,
                                        workers=1, batch_lanes=lanes)
            assert [_power_key(r) for r in results] == want

    def test_run_strober_overlap_identical(self, towers_run):
        run = run_strober("rocket_mini", "towers", sample_size=8,
                          replay_length=32, backend="auto", seed=3,
                          batch_lanes=3, gl_overlap=2,
                          gl_backend="compiled")
        assert run.timings["gl_overlap"] == 2
        assert run.energy.epi_nj == towers_run.energy.epi_nj
        assert [_power_key(r) for r in run.replays] == \
            [_power_key(r) for r in towers_run.replays]

    def test_supervised_super_tasks_identical(self, towers_run):
        # workers > 1 dispatches super-tasks of gl_overlap batches;
        # each worker overlaps them on its own thread pool
        engine = get_replay_engine("rocket_mini", gl_overlap=2)
        results = engine.replay_all(towers_run.snapshots, workers=2,
                                    batch_lanes=3)
        assert [_power_key(r) for r in results] == \
            [_power_key(r) for r in towers_run.replays]
        assert engine.last_health is not None
        assert engine.last_health.healthy


class TestStimulusCache:
    def test_repeat_replays_hit_cache(self, towers_run):
        engine = get_replay_engine("rocket_mini")
        registry = get_registry()
        engine.replay_all(towers_run.snapshots, batch_lanes=4)
        hits0 = registry.value("replay.stim_cache.hits") or 0
        misses0 = registry.value("replay.stim_cache.misses") or 0
        engine.replay_all(towers_run.snapshots, batch_lanes=4)
        assert (registry.value("replay.stim_cache.misses") or 0) \
            == misses0
        assert (registry.value("replay.stim_cache.hits") or 0) \
            >= hits0 + 2


class TestKernelVersionResume:
    def test_journal_resumes_across_kernel_version(self, towers_run,
                                                   tmp_path,
                                                   monkeypatch):
        # a journal written under the old kernel version must resume
        # bit-identically under the new one: the kernel version keys
        # the artifact cache (forcing a rebuild), never the run key
        journal = str(tmp_path / "run.journal")
        partial = run_strober("rocket_mini", "towers", sample_size=8,
                              replay_length=32, backend="auto", seed=3,
                              batch_lanes=4, journal=journal,
                              gl_backend="compiled",
                              target_rel_error=1.0, min_sample=2,
                              max_sample=3)
        assert partial.sampling["replayed"] < 8
        monkeypatch.setattr(glcodegen, "GLCODEGEN_VERSION",
                            glcodegen.GLCODEGEN_VERSION + 1)
        clear_caches()
        try:
            resumed = run_strober("rocket_mini", "towers",
                                  sample_size=8, replay_length=32,
                                  backend="auto", seed=3,
                                  batch_lanes=4, journal=journal,
                                  gl_backend="compiled")
        finally:
            clear_caches()
        assert resumed.result.resumed
        assert resumed.energy.epi_nj == towers_run.energy.epi_nj
        assert [_power_key(r) for r in resumed.replays] == \
            [_power_key(r) for r in towers_run.replays]


class TestCompilerFlags:
    @needs_cc
    def test_cflags_change_rebuilds_not_stale(self, tmp_path,
                                              monkeypatch):
        # changing $REPRO_GL_CFLAGS must land in a different cache
        # slot — a rebuild, never a stale .so load under old flags
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        netlist = _small_netlist()
        schedule = build_schedule(netlist)
        build_kernel(netlist, schedule, "c")
        key_default = kernel_cache_key(netlist, "c", schedule)
        monkeypatch.setenv("REPRO_GL_CFLAGS", "-O0")
        key_o0 = kernel_cache_key(netlist, "c", schedule)
        assert key_o0 != key_default
        rebuilt = build_kernel(netlist, schedule, "c")
        assert rebuilt.backend == "c" and not rebuilt.from_cache
        warm = build_kernel(netlist, schedule, "c")
        assert warm.from_cache
        # and the overridden-flags kernel evaluates bit-identically
        ref = BatchedGateLevelSimulator(netlist, lanes=4,
                                        schedule=schedule)
        sim = BatchedGateLevelSimulator(netlist, lanes=4,
                                        schedule=schedule, kernel=warm)
        _drive([ref, sim], cycles=8)
        _assert_identical(ref, sim, "c-O0")
