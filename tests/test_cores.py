"""Co-simulation tests: every benchmark on every core vs the golden model.

The strongest correctness statement in the repo: three different
microarchitectures must produce architecturally identical results to
the ISA-level golden model on every workload.
"""

import pytest

from repro.isa import assemble, GoldenModel
from repro.isa.programs import ALL_PROGRAMS
from repro.core import get_circuits
from repro.targets.soc import run_workload

CORES = ["rocket_mini", "boom-1w_mini", "boom-2w_mini"]
PROGRAMS = sorted(ALL_PROGRAMS)


@pytest.fixture(scope="module", params=CORES)
def design(request):
    return request.param


class TestCoSimulation:
    @pytest.mark.parametrize("program", PROGRAMS)
    def test_program_matches_golden(self, design, program):
        source = ALL_PROGRAMS[program]()
        golden = GoldenModel(assemble(source))
        golden.run()
        sim_circuit, _ = get_circuits(design)
        result = run_workload(sim_circuit, source, max_cycles=1_000_000,
                              mem_latency=20, backend="auto")
        assert result.exit_code == (golden.exit_code >> 1), program
        # instret matches up to the final halt-loop skew
        assert abs(result.instret - golden.instret) <= 4


class TestMicroarchitecture:
    def test_cpi_ordering_matches_paper(self):
        """Figure 9b shape: BOOM-2w < BOOM-1w < Rocket CPI on CoreMark."""
        cpis = {}
        source = ALL_PROGRAMS["coremark_lite"]()
        for design in CORES:
            circuit, _ = get_circuits(design)
            result = run_workload(circuit, source, max_cycles=1_000_000,
                                  mem_latency=20, backend="auto")
            assert result.passed
            cpis[design] = result.cpi
        assert cpis["boom-2w_mini"] < cpis["boom-1w_mini"]
        assert cpis["boom-1w_mini"] < cpis["rocket_mini"]

    def test_boom2_reaches_superscalar_ipc(self):
        """A 2-wide OoO core must exceed IPC 1 on ALU-dense code."""
        circuit, _ = get_circuits("boom-2w_mini")
        result = run_workload(circuit, ALL_PROGRAMS["dgemm"](),
                              max_cycles=1_000_000, mem_latency=20,
                              backend="auto")
        assert result.passed
        assert result.cpi < 1.0

    def test_dram_latency_changes_runtime(self):
        """The DRAM timing model must be visible in performance (Fig 7)."""
        source = ALL_PROGRAMS["pointer_chase"](array_bytes=16 * 1024,
                                               loads=64)
        circuit, _ = get_circuits("rocket_mini")
        cycles = {}
        for latency in (10, 80):
            result = run_workload(circuit, source, max_cycles=1_000_000,
                                  mem_latency=latency, backend="auto")
            assert result.passed
            cycles[latency] = result.cycles
        assert cycles[80] > cycles[10] * 1.5

    def test_mul_div_against_golden(self):
        """Directed M-extension corner cases through the real pipelines."""
        source = """
        li t0, 0x80000000
        li t1, -1
        div a1, t0, t1
        rem a2, t0, t1
        li t2, 57
        li t3, 0
        divu a3, t2, t3
        remu a4, t2, t3
        li t4, 0xFFFF
        mulhu a5, t4, t4
        li a0, 0
        add a0, a0, a1      # 0x80000000
        add a0, a0, a2      # +0
        add a0, a0, a3      # +0xFFFFFFFF
        add a0, a0, a4      # +57
        add a0, a0, a5      # +0 (0xFFFE0001 >> 32 == 0)
        li t5, 0x40000000
        slli a0, a0, 1
        ori a0, a0, 1
        sw a0, 0(t5)
        h: j h
        """
        golden = GoldenModel(assemble(source))
        golden.run()
        for design in CORES:
            circuit, _ = get_circuits(design)
            result = run_workload(circuit, source, max_cycles=20000,
                                  mem_latency=20, backend="auto")
            assert result.exit_code == (golden.exit_code >> 1), design

    def test_perf_counters_sample_cpi(self):
        """gcc_phases must report distinct per-phase CPI (Fig 10 input)."""
        circuit, _ = get_circuits("rocket_mini")
        result = run_workload(circuit,
                              ALL_PROGRAMS["gcc_phases"](rounds=1),
                              max_cycles=1_000_000, mem_latency=20,
                              backend="auto")
        assert result.passed
        samples = result.htif.perf_log
        assert len(samples) == 4
        # CPI*16 samples: the ALU phase is the fastest; a memory-bound
        # phase (streaming or pointer-chase) is the slowest
        assert samples[0] == min(samples)
        assert max(samples) in (samples[1], samples[2])
        assert max(samples) > samples[0] * 1.3  # visible phase structure
