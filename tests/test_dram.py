"""Tests for the DRAM timing model, counters, and power calculator."""

import pytest

from repro.dram import (
    MemoryEndpoint, DramActivityCounters, Lpddr2PowerCalculator,
    Lpddr2Params, counter_delta, make_memory_endpoint,
)


def drive_read(endpoint, addr, length):
    """Drive the endpoint protocol manually; returns (beats, latency)."""
    outputs = {"mem_req_valid": 1, "mem_req_rw": 0, "mem_req_addr": addr,
               "mem_req_len": length, "mem_wdata_valid": 0, "mem_wdata": 0}
    inputs = endpoint.tick(outputs)
    assert inputs["mem_req_ready"] == 1 or endpoint._busy
    idle = {"mem_req_valid": 0}
    beats = []
    waited = 0
    for _ in range(1000):
        inputs = endpoint.tick(idle)
        if inputs["mem_resp_valid"]:
            beats.append(inputs["mem_resp_data"])
            if len(beats) == length:
                break
        else:
            waited += 1
    return beats, waited


class TestMemoryEndpoint:
    def test_read_returns_stored_words(self):
        ep = MemoryEndpoint(latency=5)
        ep.load_words(100, [11, 22, 33, 44])
        beats, waited = drive_read(ep, 100, 4)
        assert beats == [11, 22, 33, 44]
        assert waited == 5

    def test_latency_respected(self):
        for latency in (3, 17, 60):
            ep = MemoryEndpoint(latency=latency)
            _, waited = drive_read(ep, 0, 1)
            assert waited == latency

    def test_write_then_read(self):
        ep = MemoryEndpoint(latency=2)
        # write request
        ep.tick({"mem_req_valid": 1, "mem_req_rw": 1, "mem_req_addr": 8,
                 "mem_req_len": 2, "mem_wdata_valid": 0, "mem_wdata": 0})
        ep.tick({"mem_req_valid": 0, "mem_wdata_valid": 1, "mem_wdata": 7})
        ep.tick({"mem_req_valid": 0, "mem_wdata_valid": 1, "mem_wdata": 9})
        # wait for ack
        for _ in range(10):
            inputs = ep.tick({"mem_req_valid": 0, "mem_wdata_valid": 0})
            if inputs["mem_resp_valid"]:
                break
        assert ep.read_word(8) == 7
        assert ep.read_word(9) == 9
        beats, _ = drive_read(ep, 8, 2)
        assert beats == [7, 9]

    def test_busy_rejects_new_requests(self):
        ep = MemoryEndpoint(latency=50)
        ep.tick({"mem_req_valid": 1, "mem_req_rw": 0, "mem_req_addr": 0,
                 "mem_req_len": 1})
        inputs = ep.tick({"mem_req_valid": 1, "mem_req_rw": 0,
                          "mem_req_addr": 4, "mem_req_len": 1})
        assert inputs["mem_req_ready"] == 0
        assert ep.requests == 1

    def test_counters_wired(self):
        ep = make_memory_endpoint(latency=1, with_counters=True)
        drive_read(ep, 0, 8)
        assert ep.counters.reads == 1
        assert ep.counters.activations == 1


class TestCounters:
    def test_bank_interleaving(self):
        c = DramActivityCounters(n_banks=8, line_words=8)
        banks = {c.map_address(line * 8)[0] for line in range(8)}
        assert banks == set(range(8))

    def test_open_page_row_hits(self):
        c = DramActivityCounters(n_banks=8, line_words=8)
        # same line twice: one activation, two reads
        c.record(0, False, 8)
        c.record(0, False, 8)
        assert c.activations == 1
        assert c.reads == 2
        assert c.row_hit_rate() == 0.5

    def test_row_conflict_forces_activate(self):
        c = DramActivityCounters(n_banks=8, n_rows=4, line_words=8)
        c.record(0, False, 8)
        # same bank (line multiple of 8 lines apart), different row
        conflict_addr = 8 * 8  # line 8: same bank 0, next row
        bank0, row0 = c.map_address(0)
        bank1, row1 = c.map_address(conflict_addr)
        assert bank0 == bank1 and row0 != row1
        c.record(conflict_addr, False, 8)
        assert c.activations == 2

    def test_write_counting(self):
        c = DramActivityCounters()
        c.record(0, True, 8)
        assert c.writes == 1 and c.write_words == 8 and c.reads == 0

    def test_delta(self):
        c = DramActivityCounters()
        before = c.snapshot()
        c.record(0, False, 8)
        delta = counter_delta(before, c.snapshot())
        assert delta["reads"] == 1


class TestPowerCalculator:
    def _counters(self, reads, writes, acts):
        return {"activations": acts, "reads": reads, "writes": writes,
                "read_words": reads * 8, "write_words": writes * 8,
                "requests": reads + writes}

    def test_idle_power_is_background_only(self):
        calc = Lpddr2PowerCalculator()
        report = calc.power(self._counters(0, 0, 0), window_cycles=10000)
        assert report.activate_mw == 0
        assert report.read_mw == 0
        assert report.total_mw == pytest.approx(report.background_mw)
        assert report.background_mw > 0

    def test_power_scales_with_traffic(self):
        calc = Lpddr2PowerCalculator()
        light = calc.power(self._counters(10, 5, 15), 100000)
        heavy = calc.power(self._counters(1000, 500, 1500), 100000)
        assert heavy.total_mw > light.total_mw

    def test_total_is_sum_of_parts(self):
        calc = Lpddr2PowerCalculator()
        report = calc.power(self._counters(100, 50, 120), 50000)
        parts = report.as_dict()
        assert parts["total_mw"] == pytest.approx(
            sum(v for k, v in parts.items() if k != "total_mw"))

    def test_magnitude_is_tens_of_mw_under_load(self):
        """Fig 9a shows DRAM at ~20-150 mW; a loaded window should land
        in that order of magnitude."""
        calc = Lpddr2PowerCalculator()
        # ~1 request per 20 cycles at 1 GHz
        report = calc.power(self._counters(2500, 2500, 3000), 100000)
        assert 5.0 < report.total_mw < 500.0

    def test_zero_window_rejected(self):
        calc = Lpddr2PowerCalculator()
        with pytest.raises(ValueError):
            calc.power(self._counters(0, 0, 0), 0)

    def test_custom_params(self):
        calc = Lpddr2PowerCalculator(Lpddr2Params(idd3n_ma=16.0))
        base = Lpddr2PowerCalculator()
        high = calc.power(self._counters(0, 0, 0), 1000)
        low = base.power(self._counters(0, 0, 0), 1000)
        assert high.background_mw > low.background_mw
