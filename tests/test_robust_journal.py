"""Crash-safe run journal: framed/checksummed records, torn-tail
repair, and run_strober interrupt-and-resume (repro.robust.journal)."""

import os

import pytest

from repro.core import run_strober, clear_caches
from repro.core.replay import ReplayEngine
from repro.robust import (
    RunJournal, read_journal, corrupt_journal_tail,
    TYPE_META, TYPE_SNAPSHOT, TYPE_SIM, TYPE_RESULT,
)
from repro.robust.journal import TYPE_JOB, TYPE_JOB_UPDATE, load_resume


RUN_KW = dict(design="rocket_mini", workload="towers", sample_size=6,
              replay_length=32, backend="auto", seed=3)


@pytest.fixture(scope="module")
def baseline():
    return run_strober(**RUN_KW)


def _energy_key(energy):
    return (energy.power.mean, energy.power.half_width,
            energy.total_cycles, energy.instructions,
            energy.dram_power_mw,
            tuple(sorted((g, e.mean, e.half_width)
                         for g, e in energy.breakdown.items())))


class TestRecordFraming:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "j")
        with RunJournal(path) as journal:
            journal.append(TYPE_META, {"design": "x", "seed": 1})
            journal.append(TYPE_SNAPSHOT, {"index": 0, "snapshot": [1, 2]})
            journal.append(TYPE_RESULT, {"index": 0, "result": "r"})
        records = read_journal(path)
        assert records == [
            (TYPE_META, {"design": "x", "seed": 1}),
            (TYPE_SNAPSHOT, {"index": 0, "snapshot": [1, 2]}),
            (TYPE_RESULT, {"index": 0, "result": "r"}),
        ]

    def test_append_survives_reopen(self, tmp_path):
        path = str(tmp_path / "j")
        with RunJournal(path) as journal:
            journal.append(TYPE_META, {"a": 1})
        with RunJournal(path) as journal:
            journal.append(TYPE_SIM, {"b": 2})
        assert len(read_journal(path)) == 2

    def test_reset_empties_the_file(self, tmp_path):
        path = str(tmp_path / "j")
        with RunJournal(path) as journal:
            journal.append(TYPE_META, {"a": 1})
            journal.reset()
            journal.append(TYPE_META, {"a": 2})
        assert read_journal(path) == [(TYPE_META, {"a": 2})]


class TestTornTailRepair:
    def _journal_with(self, path, n):
        with RunJournal(path) as journal:
            for i in range(n):
                journal.append(TYPE_RESULT, {"index": i, "result": i * 10})

    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_corrupt_tail_dropped_and_truncated(self, tmp_path, mode):
        path = str(tmp_path / "j")
        self._journal_with(path, 3)
        corrupt_journal_tail(path, mode=mode)
        with pytest.warns(RuntimeWarning, match="journal"):
            records = read_journal(path)
        assert records == [(TYPE_RESULT, {"index": 0, "result": 0}),
                           (TYPE_RESULT, {"index": 1, "result": 10})]
        # the damage was physically removed: re-read is clean and the
        # journal is appendable again
        assert read_journal(path) == records
        with RunJournal(path) as journal:
            journal.append(TYPE_RESULT, {"index": 2, "result": 20})
        assert len(read_journal(path)) == 3

    def test_trailing_garbage_dropped(self, tmp_path):
        path = str(tmp_path / "j")
        self._journal_with(path, 2)
        with open(path, "ab") as f:
            f.write(b"XXXXXXXXXXXXXXXXXXXXXXX")
        with pytest.warns(RuntimeWarning, match="magic"):
            assert len(read_journal(path)) == 2

    def test_wholly_corrupt_journal_yields_nothing(self, tmp_path):
        path = str(tmp_path / "j")
        with open(path, "wb") as f:
            f.write(b"not a journal at all")
        with pytest.warns(RuntimeWarning):
            assert read_journal(path) == []


class TestLoadResume:
    def test_missing_or_empty_file(self, tmp_path):
        path = str(tmp_path / "j")
        assert load_resume(path, {"a": 1}) is None
        open(path, "wb").close()
        assert load_resume(path, {"a": 1}) is None

    def test_parameter_mismatch_starts_fresh(self, tmp_path):
        path = str(tmp_path / "j")
        with RunJournal(path) as journal:
            journal.append(TYPE_META, {"seed": 1})
        with pytest.warns(RuntimeWarning, match="different run"):
            assert load_resume(path, {"seed": 2}) is None

    def test_interrupted_before_sim_finished(self, tmp_path):
        path = str(tmp_path / "j")
        with RunJournal(path) as journal:
            journal.append(TYPE_META, {"seed": 1})
            journal.append(TYPE_SNAPSHOT, {"index": 0, "snapshot": "s"})
        with pytest.warns(RuntimeWarning, match="before the simulation"):
            assert load_resume(path, {"seed": 1}) is None


class TestRunStroberResume:
    def test_interrupt_and_resume_bit_identical(self, baseline, tmp_path,
                                                monkeypatch):
        """Acceptance: a run interrupted mid-replay resumes from the
        journal — skipping the FAME simulation and the finished
        replays — and produces a bit-identical energy estimate."""
        jpath = str(tmp_path / "run.journal")
        calls = {"n": 0}
        orig = ReplayEngine.replay

        def bomb(self, snapshot, strict=True):
            calls["n"] += 1
            if calls["n"] > 3:
                raise RuntimeError("simulated crash mid-replay")
            return orig(self, snapshot, strict=strict)

        monkeypatch.setattr(ReplayEngine, "replay", bomb)
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_strober(**RUN_KW, journal=jpath)
        monkeypatch.setattr(ReplayEngine, "replay", orig)

        # resume must not rerun the FAME simulation
        import repro.core.flow as flow_mod
        clear_caches()

        def no_sim(*args, **kwargs):
            raise AssertionError("run_workload ran despite the journal")

        monkeypatch.setattr(flow_mod, "run_workload", no_sim)
        resumed = run_strober(**RUN_KW, journal=jpath)
        assert resumed.timings["resumed_sim"]
        assert resumed.timings["resumed_replays"] == 3
        assert _energy_key(resumed.energy) == _energy_key(baseline.energy)

    def test_completed_journal_resumes_everything(self, baseline,
                                                  tmp_path):
        jpath = str(tmp_path / "run.journal")
        first = run_strober(**RUN_KW, journal=jpath)
        again = run_strober(**RUN_KW, journal=jpath)
        assert again.timings["resumed_sim"]
        assert again.timings["resumed_replays"] == len(first.snapshots)
        assert _energy_key(again.energy) == _energy_key(baseline.energy)

    def test_journal_records_are_complete(self, tmp_path):
        jpath = str(tmp_path / "run.journal")
        run = run_strober(**RUN_KW, journal=jpath)
        records = read_journal(jpath)
        types = [rtype for rtype, _obj in records]
        n = len(run.snapshots)
        assert types[0] == TYPE_META
        assert types.count(TYPE_SNAPSHOT) == n
        assert types.count(TYPE_SIM) == 1
        assert types.count(TYPE_RESULT) == n
        sim = next(obj for rtype, obj in records if rtype == TYPE_SIM)
        assert sim["cycles"] == run.cycles
        assert sim["n_snapshots"] == n

    def test_changed_parameters_invalidate_the_journal(self, tmp_path):
        jpath = str(tmp_path / "run.journal")
        run_strober(**RUN_KW, journal=jpath)
        other_kw = dict(RUN_KW, seed=RUN_KW["seed"] + 1)
        with pytest.warns(RuntimeWarning, match="different run"):
            fresh = run_strober(**other_kw, journal=jpath)
        assert not fresh.timings["resumed_sim"]
        # the journal now belongs to the new run
        resumed = run_strober(**other_kw, journal=jpath)
        assert resumed.timings["resumed_sim"]

    def test_torn_journal_tail_still_resumes(self, baseline, tmp_path):
        jpath = str(tmp_path / "run.journal")
        run_strober(**RUN_KW, journal=jpath)
        corrupt_journal_tail(jpath, mode="truncate")
        with pytest.warns(RuntimeWarning, match="journal"):
            resumed = run_strober(**RUN_KW, journal=jpath)
        # the torn final record cost one replay result, nothing more
        assert resumed.timings["resumed_sim"]
        assert resumed.timings["resumed_replays"] == \
            len(baseline.snapshots) - 1
        assert _energy_key(resumed.energy) == _energy_key(baseline.energy)


class TestForwardCompatibility:
    """Records from newer layers — the service's job records, or types
    not invented yet — must never break run-journal resume."""

    def test_unknown_record_types_skipped_on_resume(self, baseline,
                                                    tmp_path):
        jpath = str(tmp_path / "run.journal")
        run_strober(**RUN_KW, journal=jpath)
        with RunJournal(jpath) as journal:
            journal.append(TYPE_JOB, {"v": 1, "id": "job-000001",
                                      "spec": {}})
            journal.append(99, {"v": 7, "mystery": True})
        resumed = run_strober(**RUN_KW, journal=jpath)
        assert resumed.timings["resumed_sim"]
        assert resumed.timings["resumed_replays"] == \
            len(baseline.snapshots)
        assert _energy_key(resumed.energy) == _energy_key(baseline.energy)
        # the foreign records passed CRC: they are preserved, not
        # mistaken for damage and truncated away
        types = [rtype for rtype, _obj in read_journal(jpath)]
        assert TYPE_JOB in types and 99 in types


class TestServiceJournal:
    """The job daemon's queue journal (repro.service.state) rides the
    same record framing; resume semantics under damage and version
    drift."""

    def _spec(self, design="rocket_mini"):
        return {"v": 1, "design": design, "workload": "towers"}

    def test_round_trip_preserves_fifo_and_numbering(self, tmp_path):
        from repro.service import ServiceJournal, load_service_state
        path = str(tmp_path / "jobs.journal")
        with ServiceJournal(path) as journal:
            journal.job_accepted("job-000001", self._spec())
            journal.job_accepted("job-000002", self._spec())
            journal.job_finished("job-000001", "done", digest="d1",
                                 summary={"cycles": 1})
        state = load_service_state(path)
        assert [job_id for job_id, _ in state.pending] == ["job-000002"]
        assert state.finished["job-000001"]["digest"] == "d1"
        assert state.accepted["job-000002"]["spec"] == self._spec()
        assert state.next_job_number == 3
        assert state.skipped_records == 0

    def test_torn_tail_mid_job_record_loses_only_unacked_job(
            self, tmp_path):
        from repro.service import ServiceJournal, load_service_state
        path = str(tmp_path / "jobs.journal")
        with ServiceJournal(path) as journal:
            journal.job_accepted("job-000001", self._spec())
            journal.job_finished("job-000001", "done", digest="d1")
            journal.job_accepted("job-000002", self._spec())
        corrupt_journal_tail(path, mode="truncate")
        with pytest.warns(RuntimeWarning, match="journal"):
            state = load_service_state(path)
        # the torn job was journaled *before* the ack, so no client
        # ever saw its id: dropping it is correct, everything earlier
        # must survive intact
        assert not state.pending
        assert set(state.finished) == {"job-000001"}
        assert state.next_job_number == 2

    def test_torn_tail_mid_update_returns_job_to_pending(self, tmp_path):
        from repro.service import ServiceJournal, load_service_state
        path = str(tmp_path / "jobs.journal")
        with ServiceJournal(path) as journal:
            journal.job_accepted("job-000001", self._spec())
            journal.job_finished("job-000001", "done", digest="d1")
        corrupt_journal_tail(path, mode="truncate")
        with pytest.warns(RuntimeWarning, match="journal"):
            state = load_service_state(path)
        # losing the terminal record re-queues the job — safe, because
        # its run journal makes the rerun a pure resume
        assert [job_id for job_id, _ in state.pending] == ["job-000001"]
        assert not state.finished

    def test_newer_versions_and_unknown_types_skipped_and_counted(
            self, tmp_path):
        from repro.service import ServiceJournal, load_service_state
        from repro.service.state import JOB_SCHEMA_VERSION
        path = str(tmp_path / "jobs.journal")
        with ServiceJournal(path) as journal:
            journal.job_accepted("job-000001", self._spec())
        with RunJournal(path) as journal:
            journal.append(TYPE_JOB, {"v": JOB_SCHEMA_VERSION + 1,
                                      "id": "job-000002", "spec": {}})
            journal.append(TYPE_JOB_UPDATE, {"v": 1, "id": "job-000077",
                                             "state": "done"})
            journal.append(99, {"v": 1, "id": "job-000003"})
        state = load_service_state(path)
        assert set(state.accepted) == {"job-000001"}
        assert [job_id for job_id, _ in state.pending] == ["job-000001"]
        # newer-versioned job + orphan update + unknown type
        assert state.skipped_records == 3
        # the versioned-but-unknown job id must not perturb numbering
        assert state.next_job_number == 2
