"""Property-based tests: random circuits through every substrate.

Hypothesis generates random expression DAGs; each one must evaluate
identically on (a) the generated-Python RTL simulator, (b) the compiled
C backend, and (c) the synthesized gate-level netlist.  This is the
reproduction's equivalent of trusting VCS and Design Compiler to agree.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st, HealthCheck

from repro.hdl import Module, elaborate, mux, cat
from repro.hdl.ir import Node
from repro.sim import RTLSimulator
from repro.gatelevel import synthesize, GateLevelSimulator


def build_random_expr(rng, inputs, depth):
    """One random expression node over the given input signals."""
    if depth == 0 or rng.random() < 0.25:
        return rng.choice(inputs)
    kind = rng.choice(["add", "sub", "mul", "and", "or", "xor", "not",
                       "mux", "cat", "bits", "shl", "shr", "sra", "cmp",
                       "divu", "reduce"])
    a = build_random_expr(rng, inputs, depth - 1)
    b = build_random_expr(rng, inputs, depth - 1)
    if kind == "add":
        return (a + b).resize(min(a.width + 1, 24))
    if kind == "sub":
        return (a - b).resize(min(a.width + 1, 24))
    if kind == "mul":
        return (a * b).resize(min(a.width + b.width, 24))
    if kind == "and":
        return a & b
    if kind == "or":
        return a | b
    if kind == "xor":
        return a ^ b
    if kind == "not":
        return ~a
    if kind == "mux":
        sel = build_random_expr(rng, inputs, 0)
        return mux(sel[0], a, b.resize(a.width))
    if kind == "cat":
        return cat(a, b).resize(min(a.width + b.width, 24))
    if kind == "bits":
        hi = rng.randrange(a.width)
        lo = rng.randrange(hi + 1)
        return a[hi:lo]
    if kind == "shl":
        return (a << rng.randrange(1, 4)).resize(min(a.width + 3, 24))
    if kind == "shr":
        return a >> rng.randrange(1, 4)
    if kind == "sra":
        return a.sra(rng.randrange(1, 4))
    if kind == "cmp":
        op = rng.choice(["eq", "ne", "ult", "ule", "slt", "sle"])
        return getattr(a, op)(b.resize(a.width))
    if kind == "divu":
        op = rng.choice(["divu", "modu"])
        b_r = b.resize(a.width)
        return Node(op, a.width, (a, b_r))
    reduce_op = rng.choice(["orr", "andr", "xorr"])
    return getattr(a, reduce_op)()


class RandomDesign(Module):
    def __init__(self, seed, n_outputs=6, name=None):
        self.seed = seed
        self.n_outputs = n_outputs
        super().__init__(name)

    def build(self):
        rng = random.Random(self.seed)
        inputs = [self.input(f"i{k}", rng.randrange(1, 17))
                  for k in range(4)]
        state = self.reg("state", 12)
        mixed = inputs + [state]
        exprs = [build_random_expr(rng, mixed, depth=3)
                 for _ in range(self.n_outputs)]
        state <<= exprs[0].resize(12) ^ state
        for k, expr in enumerate(exprs):
            self.output(f"o{k}", expr.width, expr)


def _stimulate(sims, circuit, seed, cycles=12):
    rng = random.Random(seed ^ 0x5EED)
    for _ in range(cycles):
        values = {node.name: rng.getrandbits(node.width)
                  for node in circuit.inputs}
        outs = []
        for sim in sims:
            for name, value in values.items():
                sim.poke(name, value)
            sim.eval()
            outs.append(sim.peek_all())
        yield values, outs
        for sim in sims:
            sim.step()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_python_matches_gate_level(seed):
    circuit = elaborate(RandomDesign(seed))
    rtl = RTLSimulator(circuit, backend="python")
    netlist, _hints = synthesize(circuit)
    gl = GateLevelSimulator(netlist)
    for values, (rtl_out, gl_out) in _stimulate([rtl, gl], circuit,
                                                seed):
        assert rtl_out == gl_out, (seed, values)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_python_matches_c_backend(seed):
    pytest.importorskip("ctypes")
    circuit = elaborate(RandomDesign(seed))
    try:
        cc = RTLSimulator(circuit, backend="c")
    except Exception:
        pytest.skip("no C compiler")
    py = RTLSimulator(circuit, backend="python")
    for values, (py_out, c_out) in _stimulate([py, cc], circuit, seed):
        assert py_out == c_out, (seed, values)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_snapshot_roundtrip_property(seed):
    """Loading a snapshot must restore bit-identical behaviour."""
    circuit = elaborate(RandomDesign(seed))
    sim = RTLSimulator(circuit, backend="python")
    rng = random.Random(seed)
    for _ in range(5):
        for node in circuit.inputs:
            sim.poke(node.name, rng.getrandbits(node.width))
        sim.step()
    snap = sim.snapshot()
    stimulus = [{node.name: rng.getrandbits(node.width)
                 for node in circuit.inputs} for _ in range(5)]

    def run_from(snapshot):
        sim.load_snapshot(snapshot)
        trace = []
        for values in stimulus:
            sim.poke_all(values)
            sim.eval()
            trace.append(sim.peek_all())
            sim.step()
        return trace

    assert run_from(snap) == run_from(snap)
