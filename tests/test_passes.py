"""Tests for repro.passes: verifier, manager, ported transform passes.

Covers the PR 3 acceptance criteria: the structural verifier catches
seeded IR-bug classes (width mismatch, dangling wire, combinational
loop) with actionable messages, the PassManager schedules/skips/reports
correctly with a deterministic fingerprint, every ported pass preserves
RTL-simulation semantics on a small design and a target core, the
compiler rejects aliased build functions, instrumentation parameters
separate artifact-cache keys, and end-to-end energy numbers are
bit-identical to the pre-refactor flow.
"""

import copy

import pytest

from repro.hdl import Module, elaborate
from repro.hdl.ir import Node, circuit_fingerprint
from repro.sim import RTLSimulator
from repro.fame import fame1_transform, is_fame1, HOST_ENABLE
from repro.fame.transform import Fame1TransformPass
from repro.scan.chains import ScanChainSpecPass, InsertScanChainsPass
from repro.passes import (
    Pass, PassResult, PassManager, PassScheduleError, VerifyPass,
    compose_cache_key, verify_circuit, assert_well_formed,
    VerificationError,
)
from repro.passes.lint import lint_circuit
from repro.core import (
    StroberCompiler, StroberCompileError, get_config, run_strober,
    clear_caches, asic_pipeline,
)


class PipelinedAccumulator(Module):
    """Small sequential design with a memory, shared across these tests."""

    def build(self):
        d = self.input("d", 8)
        stage1 = self.reg("stage1", 8)
        stage1 <<= d
        acc = self.reg("acc", 16)
        acc <<= (acc + stage1).trunc(16)
        log = self.mem("log", 16, 16)
        wptr = self.reg("wptr", 4)
        wptr <<= wptr + 1
        self.mem_write(log, wptr, acc)
        self.output("acc", 16, acc)


def _issues_of_kind(issues, kind):
    return [i for i in issues if i.kind == kind]


class TestVerifier:
    def test_clean_circuit_has_no_issues(self):
        circuit = elaborate(PipelinedAccumulator())
        assert verify_circuit(circuit) == []
        assert assert_well_formed(circuit)

    def test_transformed_circuits_stay_clean(self):
        circuit = elaborate(PipelinedAccumulator())
        fame1_transform(circuit)
        assert verify_circuit(circuit) == []

    def test_seeded_width_mismatch_is_caught(self):
        circuit = elaborate(PipelinedAccumulator())
        # Seed bug class 1: a mux whose select is wider than 1 bit.
        acc = circuit.reg_by_path("acc")
        wide_sel = circuit.reg_by_path("stage1")       # 8-bit select
        bad = Node("mux", 16, (wide_sel, circuit.reg_next[acc], acc))
        circuit.reg_next[acc] = bad
        circuit.retopo()
        issues = _issues_of_kind(lint_circuit(circuit), "width")
        assert issues, "verifier missed the wide mux select"
        assert any("mux select is 8 bits" in i.message for i in issues)
        # The message tells the user how to fix it, not just that it broke.
        assert any("1 bit" in i.message for i in issues)

    def test_seeded_register_driver_width_mismatch(self):
        circuit = elaborate(PipelinedAccumulator())
        acc = circuit.reg_by_path("acc")
        stage1 = circuit.reg_by_path("stage1")
        circuit.reg_next[acc] = stage1                 # 8 bits into 16
        circuit.retopo()
        issues = _issues_of_kind(verify_circuit(circuit), "width")
        assert any("16 bits" in i.message and "8" in i.message
                   for i in issues)
        assert any("resize the driver" in i.message for i in issues)

    def test_seeded_dangling_register_is_caught(self):
        circuit = elaborate(PipelinedAccumulator())
        # Seed bug class 2: drop a register the graph still references.
        stage1 = circuit.reg_by_path("stage1")
        circuit.regs.remove(stage1)
        del circuit.reg_next[stage1]
        issues = _issues_of_kind(lint_circuit(circuit), "dangling")
        assert issues, "verifier missed the dangling register"
        assert any("not in circuit.regs" in i.message for i in issues)
        assert any("never update" in i.message for i in issues)

    def test_missing_reg_next_reported_not_crashed(self):
        circuit = elaborate(PipelinedAccumulator())
        wptr = circuit.reg_by_path("wptr")
        del circuit.reg_next[wptr]
        issues = _issues_of_kind(verify_circuit(circuit), "dangling")
        assert any("no next-state driver" in i.message for i in issues)

    def test_seeded_comb_loop_is_caught(self):
        circuit = elaborate(PipelinedAccumulator())
        # Seed bug class 3: a combinational node that feeds itself.
        acc = circuit.reg_by_path("acc")
        loop = Node("and", 16, (acc, acc))
        loop.args = (loop, acc)                        # self-reference
        circuit.outputs.append(("bad", loop))
        issues = _issues_of_kind(lint_circuit(circuit), "comb-loop")
        assert issues, "verifier missed the combinational loop"
        assert any("break it with a register" in i.message for i in issues)

    def test_verification_error_lists_issues(self):
        circuit = elaborate(PipelinedAccumulator())
        acc = circuit.reg_by_path("acc")
        circuit.reg_next[acc] = circuit.reg_by_path("stage1")
        circuit.retopo()
        with pytest.raises(VerificationError) as excinfo:
            assert_well_formed(circuit)
        assert "issue(s)" in str(excinfo.value)
        assert excinfo.value.issues


class _Produce(Pass):
    """Test pass that establishes a property without touching the IR."""

    def __init__(self, prop, **params):
        super().__init__(**params)
        self.name = f"produce-{prop}"
        self.produces = (prop,)

    def run(self, circuit, ctx):
        return PassResult(stats={"ran": 1})


class _Need(Pass):
    def __init__(self, prop):
        super().__init__()
        self.name = f"need-{prop}"
        self.requires = ("elaborated", prop)

    def run(self, circuit, ctx):
        return PassResult()


class _AlwaysSatisfied(Pass):
    name = "noop"
    produces = ("noop-done",)

    def is_satisfied(self, circuit):
        return True

    def run(self, circuit, ctx):           # pragma: no cover
        raise AssertionError("satisfied pass must not run")


class _CorruptMux(Pass):
    """Deliberately emits a malformed graph (wide mux select)."""

    name = "corrupt"

    def run(self, circuit, ctx):
        reg = circuit.regs[0]
        wide = Node("input", 4, name="wide_sel")
        circuit.inputs.append(wide)
        circuit.reg_next[reg] = Node(
            "mux", reg.width, (wide, circuit.reg_next[reg], reg))
        circuit.retopo()
        return PassResult()


class TestPassManager:
    def test_missing_requirement_raises_schedule_error(self):
        circuit = elaborate(PipelinedAccumulator())
        manager = PassManager([_Need("netlist")], name="misordered")
        with pytest.raises(PassScheduleError) as excinfo:
            manager.run(circuit)
        msg = str(excinfo.value)
        assert "netlist" in msg and "misordered" in msg
        assert "reorder" in msg

    def test_producer_unblocks_consumer(self):
        circuit = elaborate(PipelinedAccumulator())
        manager = PassManager([_Produce("netlist"), _Need("netlist")])
        ctx = manager.run(circuit)
        assert [r.skipped for r in ctx.report.records] == [False, False]

    def test_satisfied_pass_is_skipped_but_counts_as_producer(self):
        circuit = elaborate(PipelinedAccumulator())
        manager = PassManager([_AlwaysSatisfied(), _Need("noop-done")])
        ctx = manager.run(circuit)
        assert ctx.report.records[0].skipped

    def test_fame1_rerun_skips_instead_of_failing(self):
        circuit = elaborate(PipelinedAccumulator())
        PassManager([Fame1TransformPass()]).run(circuit)
        assert is_fame1(circuit)
        ctx = PassManager([Fame1TransformPass()]).run(circuit)
        assert ctx.report.records[0].skipped

    def test_report_records_timing_and_ir_delta(self):
        circuit = elaborate(PipelinedAccumulator())
        ctx = PassManager([Fame1TransformPass()],
                          name="timed").run(circuit)
        report = ctx.report
        assert report.pipeline == "timed"
        (rec,) = report.records
        assert rec.name == "fame1"
        assert rec.seconds >= 0
        assert rec.ir_delta["inputs"] == 1          # host_en added
        assert report.per_pass_seconds() == {"fame1": rec.seconds}
        as_dict = report.as_dict()
        assert as_dict["passes"][0]["name"] == "fame1"
        assert report.fingerprint

    def test_fingerprint_deterministic_and_param_sensitive(self):
        def pipe(width):
            return PassManager([Fame1TransformPass(),
                                ScanChainSpecPass(scan_width=width)])
        assert pipe(32).fingerprint() == pipe(32).fingerprint()
        assert pipe(32).fingerprint() != pipe(16).fingerprint()
        # Pass identity matters too, not just parameters.
        hw = PassManager([Fame1TransformPass(),
                          InsertScanChainsPass(scan_width=32)])
        assert hw.fingerprint() != pipe(32).fingerprint()

    def test_debug_mode_blames_the_corrupting_pass(self):
        circuit = elaborate(PipelinedAccumulator())
        manager = PassManager([Fame1TransformPass(), _CorruptMux()])
        with pytest.raises(VerificationError) as excinfo:
            manager.run(circuit, debug=True)
        assert "after pass 'corrupt'" in str(excinfo.value)

    def test_explicit_verify_pass_runs_in_release_mode(self):
        circuit = elaborate(PipelinedAccumulator())
        acc = circuit.reg_by_path("acc")
        circuit.reg_next[acc] = circuit.reg_by_path("stage1")
        circuit.retopo()
        with pytest.raises(VerificationError):
            PassManager([VerifyPass()]).run(circuit)


def _lockstep_compare(plain, transformed, cycles=32, extra_pokes=()):
    """Drive both circuits with identical inputs; outputs must match."""
    s_plain = RTLSimulator(plain)
    s_xform = RTLSimulator(transformed)
    for name, value in extra_pokes:
        s_xform.poke(name, value)
    state = 0xACE1
    for cycle in range(cycles):
        for node in plain.inputs:
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            value = state & ((1 << node.width) - 1)
            s_plain.poke(node.name, value)
            s_xform.poke(node.name, value)
        s_plain.step()
        s_xform.step()
        for out_name, _ in plain.outputs:
            assert s_plain.peek(out_name) == s_xform.peek(out_name), \
                f"output {out_name!r} diverged at cycle {cycle}"


class TestSemanticsPreservation:
    def test_fame1_pass_preserves_small_design(self):
        plain = elaborate(PipelinedAccumulator())
        famed = elaborate(PipelinedAccumulator())
        PassManager([Fame1TransformPass()]).run(famed, debug=True)
        _lockstep_compare(plain, famed,
                          extra_pokes=[(HOST_ENABLE, 1)])

    def test_scan_insert_pass_preserves_small_design(self):
        plain = elaborate(PipelinedAccumulator())
        scanned = elaborate(PipelinedAccumulator())
        ctx = PassManager([InsertScanChainsPass(scan_width=8)]).run(
            scanned, debug=True)
        assert ctx["scan_spec"].reg_chain
        # Scan hardware idle: chain control inputs default to 0.
        _lockstep_compare(plain, scanned)

    def test_full_instrumentation_preserves_target_core(self):
        config = get_config("rocket_mini")
        plain = config.build_circuit()
        instrumented = config.build_circuit()
        PassManager([Fame1TransformPass(),
                     InsertScanChainsPass(scan_width=32)]).run(
            instrumented, debug=True)
        _lockstep_compare(plain, instrumented, cycles=24,
                          extra_pokes=[(HOST_ENABLE, 1)])


class TestCompilerAliasing:
    def test_same_object_twice_raises_typed_error(self):
        circuit = elaborate(PipelinedAccumulator())
        compiler = StroberCompiler(lambda: circuit)
        with pytest.raises(StroberCompileError) as excinfo:
            compiler.compile()
        msg = str(excinfo.value)
        assert "same circuit object twice" in msg
        assert "fresh Module" in msg                  # fix hint

    def test_shared_nodes_raise_typed_error(self):
        circuit = elaborate(PipelinedAccumulator())
        twins = [circuit, copy.copy(circuit)]
        compiler = StroberCompiler(lambda: twins.pop())
        with pytest.raises(StroberCompileError) as excinfo:
            compiler.compile()
        assert "sharing" in str(excinfo.value)

    def test_compile_error_is_a_type_error(self):
        # Callers catching TypeError for the old behaviour keep working.
        assert issubclass(StroberCompileError, TypeError)

    def test_fresh_builds_compile(self):
        compiler = StroberCompiler(
            lambda: elaborate(PipelinedAccumulator()), debug=True)
        out = compiler.compile()
        assert is_fame1(out.simulator_circuit)
        assert not is_fame1(out.target_circuit)
        assert out.report.records[0].name == "fame1"
        assert out.fingerprint == compiler.pipeline_fingerprint()


class TestCacheKeys:
    def test_scan_width_separates_artifact_keys(self):
        build = lambda: elaborate(PipelinedAccumulator())
        fp = circuit_fingerprint(elaborate(PipelinedAccumulator()))
        key32 = StroberCompiler(build, scan_width=32).artifact_cache_key(fp)
        key16 = StroberCompiler(build, scan_width=16).artifact_cache_key(fp)
        assert key32 != key16
        again = StroberCompiler(build, scan_width=32).artifact_cache_key(fp)
        assert key32 == again

    def test_hardware_scan_chains_separates_keys(self):
        build = lambda: elaborate(PipelinedAccumulator())
        fp = circuit_fingerprint(elaborate(PipelinedAccumulator()))
        soft = StroberCompiler(build).artifact_cache_key(fp)
        hard = StroberCompiler(
            build, hardware_scan_chains=True).artifact_cache_key(fp)
        assert soft != hard

    def test_compose_cache_key_covers_every_part(self):
        base = compose_cache_key("circ", "pipe")
        assert compose_cache_key("circ", "pipe") == base
        assert compose_cache_key("circ2", "pipe") != base
        assert compose_cache_key("circ", "pipe2") != base
        assert compose_cache_key("circ", "pipe", scan_width=8) != base

    def test_asic_pipeline_fingerprint_stable(self):
        assert asic_pipeline().fingerprint() == \
            asic_pipeline().fingerprint()
        assert asic_pipeline(cluster_depth=3).fingerprint() != \
            asic_pipeline().fingerprint()


class TestEnergyBitIdentical:
    """Golden values captured from the pre-refactor flow (seed commit).

    The pass-pipeline refactor must not change a single bit of the
    energy math; repr() equality on the floats is the strictest check
    Python offers.
    """

    def test_rocket_mini_towers_golden(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_caches()
        run = run_strober("rocket_mini", "towers", sample_size=4,
                          replay_length=48, seed=3, backend="auto",
                          debug=True)
        assert repr(run.energy.power.mean) == "13.157135653299193"
        assert repr(run.energy.power.half_width) == "1.666286039535615"
        assert repr(run.energy.dram_power_mw) == "29.03766578249337"
        assert repr(run.energy.epi_nj) == "0.07106067708299718"
        assert run.cycles == 2639
        # The per-pass timing breakdown landed in the run timings.
        assert "strober-sim/fame1" in run.timings["passes"]
        assert "asicflow-soc/synthesis" in run.timings["passes"]

    def test_boom_mini_qsort_golden(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_caches()
        run = run_strober("boom-1w_mini", "qsort",
                          workload_kwargs={"n": 12}, sample_size=4,
                          replay_length=48, seed=3, backend="auto",
                          debug=True)
        assert repr(run.energy.power.mean) == "28.041874847280155"
        assert repr(run.energy.power.half_width) == "9.152891455099578"
        assert repr(run.energy.dram_power_mw) == "44.202076124567476"
        assert repr(run.energy.epi_nj) == "0.16260515444598106"
        assert run.cycles == 1445
