"""Run-history store and regression sentinel (repro.obs.store /
repro.obs.regress): CRC framing, torn-tail and foreign-schema skip,
concurrent multi-process appends, the record builders' schema, and the
sentinel's verdicts on synthetic performance trajectories."""

import json
import multiprocessing
import os
import zlib
from types import SimpleNamespace

import pytest

from repro.obs import (
    HistoryStore, append_bench_record, append_run_record, bench_record,
    default_history_path, get_registry, history_enabled, run_record,
)
from repro.obs.store import KIND_BENCH, KIND_RUN, MAGIC, SCHEMA_VERSION
from repro.obs.regress import (
    analyze, judge, main as regress_main, metric_direction, series_key,
)


@pytest.fixture
def store(tmp_path):
    return HistoryStore(str(tmp_path / "history.jsonl"))


def _fake_run(**overrides):
    base = dict(
        design="rocket_mini", workload="towers", wall_seconds=1.5,
        replays=[object()] * 3,
        result=SimpleNamespace(cycles=1000),
        sampling={"stop_reason": "target", "rel_error": 0.04, "n": 3},
        run_key="abc123def456",
        timings={"sim_seconds": 0.5, "flow_seconds": 0.3,
                 "replay_seconds": 0.6, "energy_seconds": 0.1,
                 "workers": 2, "batch_lanes": 8, "gl_backend": "interp",
                 "gl_overlap": 1, "flow_cache_hit": True})
    base.update(overrides)
    return SimpleNamespace(**base)


class TestFramingAndAppend:
    def test_append_read_round_trip(self, store):
        store.append({"kind": KIND_BENCH, "bench": "b",
                      "metrics": {"x_seconds": 1.0}})
        store.append({"kind": KIND_RUN, "design": "d"})
        records = store.read()
        assert len(records) == 2
        assert records[0]["kind"] == KIND_BENCH
        assert records[1]["kind"] == KIND_RUN
        # every record is stamped
        for record in records:
            assert record["v"] == SCHEMA_VERSION
            assert record["ts"] > 0
            assert record["pid"] == os.getpid()
            assert record["host"]

    def test_lines_are_crc_framed(self, store):
        store.append({"kind": KIND_BENCH, "bench": "b"})
        raw = open(store.path, "rb").read()
        assert raw.endswith(b"\n")
        magic, crc_hex, payload = raw[:-1].split(b" ", 2)
        assert magic == MAGIC.encode()
        assert int(crc_hex, 16) == zlib.crc32(payload) & 0xFFFFFFFF
        json.loads(payload)     # payload is plain JSON

    def test_kind_filter(self, store):
        store.append({"kind": KIND_BENCH, "bench": "b"})
        store.append({"kind": KIND_RUN, "design": "d"})
        assert len(store.read(kind=KIND_RUN)) == 1
        assert store.read(kind=KIND_RUN)[0]["design"] == "d"

    def test_missing_file_reads_empty(self, store):
        assert store.read() == []

    def test_disabled_store_is_noop(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_HISTORY", "off")
        assert default_history_path() is None
        assert not history_enabled()
        disabled = HistoryStore()
        assert not disabled.enabled
        assert disabled.append({"kind": KIND_BENCH}) is None
        assert disabled.read() == []

    def test_env_path_wins(self, monkeypatch, tmp_path):
        target = str(tmp_path / "explicit.jsonl")
        monkeypatch.setenv("REPRO_OBS_HISTORY", target)
        assert default_history_path() == target
        assert HistoryStore().path == target

    def test_default_path_under_cache_root(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_OBS_HISTORY", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = default_history_path()
        assert path == str(tmp_path / "cache" / "history"
                           / "history.jsonl")


class TestTolerantRead:
    def test_torn_tail_skipped_not_fatal(self, store):
        store.append({"kind": KIND_BENCH, "bench": "a"})
        store.append({"kind": KIND_BENCH, "bench": "b"})
        # Simulate a writer killed mid-append: truncate the last line.
        raw = open(store.path, "rb").read()
        open(store.path, "wb").write(raw[:-10])
        before = get_registry().value("obs.history.torn_tail")
        with pytest.warns(RuntimeWarning, match="corrupt/torn"):
            records = store.read()
        assert [r["bench"] for r in records] == ["a"]
        assert get_registry().value("obs.history.torn_tail") == before + 1

    def test_append_continues_past_torn_tail(self, store):
        store.append({"kind": KIND_BENCH, "bench": "a"})
        with open(store.path, "ab") as f:
            f.write(b"RH1 deadbeef {\"torn")     # no newline, bad crc
        store.append({"kind": KIND_BENCH, "bench": "b"})
        # The torn fragment corrupts the line it shares with the next
        # append; everything before and after parses.
        with pytest.warns(RuntimeWarning):
            benches = [r["bench"] for r in store.read()]
        assert "a" in benches

    def test_corrupt_middle_line_skipped(self, store):
        store.append({"kind": KIND_BENCH, "bench": "a"})
        with open(store.path, "ab") as f:
            f.write(b"garbage line no frame\n")
        store.append({"kind": KIND_BENCH, "bench": "b"})
        before = get_registry().value("obs.history.skipped_corrupt")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            records = store.read()
        assert [r["bench"] for r in records] == ["a", "b"]
        assert (get_registry().value("obs.history.skipped_corrupt")
                == before + 1)

    def test_crc_mismatch_detected(self, store):
        store.append({"kind": KIND_BENCH, "bench": "a", "n": 1})
        raw = open(store.path, "rb").read()
        # Flip a payload byte without updating the CRC.
        open(store.path, "wb").write(raw.replace(b'"n":1', b'"n":7'))
        with pytest.warns(RuntimeWarning):
            assert store.read() == []

    def test_foreign_schema_version_skipped(self, store):
        store.append({"kind": KIND_BENCH, "bench": "old"})
        future = json.dumps({"v": SCHEMA_VERSION + 5, "kind": "run",
                             "shiny": True}).encode()
        crc = zlib.crc32(future) & 0xFFFFFFFF
        with open(store.path, "ab") as f:
            f.write(b"%s %08x " % (MAGIC.encode(), crc) + future + b"\n")
        before = get_registry().value("obs.history.skipped_foreign")
        with pytest.warns(RuntimeWarning, match="newer schema"):
            records = store.read()
        assert [r["bench"] for r in records] == ["old"]
        assert (get_registry().value("obs.history.skipped_foreign")
                == before + 1)


def _append_batch(path, tag, count):
    store = HistoryStore(path)
    for i in range(count):
        store.append({"kind": KIND_BENCH, "bench": f"{tag}-{i}",
                      "metrics": {"pad_seconds": float(i)}})


class TestConcurrentAppends:
    def test_two_processes_interleave_whole_lines(self, store):
        procs = [multiprocessing.Process(
            target=_append_batch, args=(store.path, tag, 50))
            for tag in ("p1", "p2")]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
            assert p.exitcode == 0
        records = store.read()     # no warning: nothing torn
        benches = [r["bench"] for r in records]
        assert len(benches) == 100
        assert set(benches) == {f"p{n}-{i}"
                                for n in (1, 2) for i in range(50)}
        # per-writer order is preserved even when interleaved
        for tag in ("p1", "p2"):
            mine = [b for b in benches if b.startswith(tag)]
            assert mine == [f"{tag}-{i}" for i in range(50)]


class TestRecordBuilders:
    def test_run_record_schema(self):
        record = run_record(_fake_run())
        assert record["kind"] == KIND_RUN
        assert record["design"] == "rocket_mini"
        assert record["run_key"] == "abc123def456"
        assert record["config"] == {"workers": 2, "batch_lanes": 8,
                                    "gl_backend": "interp",
                                    "gl_overlap": 1}
        assert record["metrics"]["wall_seconds"] == 1.5
        assert record["metrics"]["sim_seconds"] == 0.5
        assert record["snapshots"] == 3
        assert record["cycles"] == 1000
        assert record["flow_cache_hit"] is True
        assert record["sampling"]["stop_reason"] == "target"

    def test_bench_record_lifts_numeric_scalars(self):
        record = bench_record("bench_x", {
            "speedup": 3.5, "lanes": 8, "label": "text",
            "nested": {"x": 1}, "flag": True})
        assert record["kind"] == KIND_BENCH
        assert record["bench"] == "bench_x"
        assert record["metrics"] == {"speedup": 3.5, "lanes": 8}

    def test_append_helpers_never_raise(self, tmp_path):
        # A store pointed at an unwritable path must not fail the run.
        bad = HistoryStore(str(tmp_path / "missing" / "x" / "\0bad"))
        before = get_registry().value("obs.history.append_errors")
        assert append_run_record(_fake_run(), store=bad) is None
        assert append_bench_record("b", {"x": 1}, store=bad) is None
        assert (get_registry().value("obs.history.append_errors")
                == before + 2)

    def test_append_run_record_round_trip(self, store):
        stamped = append_run_record(_fake_run(), store=store)
        assert stamped["kind"] == KIND_RUN
        assert store.read(kind=KIND_RUN)[0]["run_key"] == "abc123def456"


class TestDirectionAndSeries:
    def test_metric_direction(self):
        assert metric_direction("wall_seconds") == +1
        assert metric_direction("replay_seconds") == +1
        assert metric_direction("noop_overhead_fraction") == +1
        assert metric_direction("speedup") == -1
        assert metric_direction("jobs_per_minute") == -1
        assert metric_direction("hit_rate") == -1
        assert metric_direction("cycles") == 0

    def test_series_key_splits_configs(self):
        a = {"kind": KIND_RUN, "design": "d", "workload": "w",
             "config": {"workers": 1, "batch_lanes": 1}}
        b = {"kind": KIND_RUN, "design": "d", "workload": "w",
             "config": {"workers": 4, "batch_lanes": 64}}
        assert series_key(a) != series_key(b)
        bench = {"kind": KIND_BENCH, "bench": "b1"}
        assert series_key(bench) == "bench:b1"


def _bench_rows(values, bench="replay", metric="replay_seconds"):
    return [{"kind": KIND_BENCH, "bench": bench,
             "metrics": {metric: v}} for v in values]


class TestSentinelVerdicts:
    def test_clean_trajectory_is_ok(self):
        rows = analyze(_bench_rows([1.0, 1.02, 0.99, 1.01, 1.0, 0.98]))
        assert [v["verdict"] for _, _, _, v in rows] == ["ok"]

    def test_2x_slowdown_detected(self):
        values = [1.0, 1.02, 0.99, 1.01, 1.0, 0.98, 2.0]
        rows = analyze(_bench_rows(values))
        (_, metric, direction, verdict), = rows
        assert metric == "replay_seconds"
        assert direction == +1
        assert verdict["verdict"] == "regression"
        assert verdict["ratio"] == pytest.approx(2.0, rel=0.05)

    def test_noisy_but_flat_stays_green(self):
        # 30% swings around a flat median: the ratio gate alone would
        # fire, the combined z+ratio gate must not.
        values = [1.0, 1.3, 0.8, 1.25, 0.75, 1.2, 0.85, 1.3, 0.8, 1.28]
        rows = analyze(_bench_rows(values))
        assert [v["verdict"] for _, _, _, v in rows] == ["ok"]

    def test_throughput_drop_detected(self):
        values = [10.0, 10.2, 9.9, 10.1, 10.0, 4.5]
        rows = analyze(_bench_rows(values, metric="speedup"))
        (_, _, direction, verdict), = rows
        assert direction == -1
        assert verdict["verdict"] == "regression"

    def test_improvement_never_gates(self):
        values = [1.0, 1.02, 0.99, 1.01, 1.0, 0.4]    # 2.5x faster
        rows = analyze(_bench_rows(values))
        assert rows[0][3]["verdict"] == "ok"

    def test_min_sample_floor(self):
        rows = analyze(_bench_rows([1.0, 1.0, 5.0]))
        assert rows[0][3]["verdict"] == "insufficient"

    def test_zero_variance_baseline_needs_real_change(self):
        # Bit-identical history + a 3% blip: MAD is zero, but the
        # sigma floor keeps the blip from scoring an infinite z.
        verdict = judge([1.0] * 10 + [1.03], direction=+1)
        assert verdict["verdict"] == "ok"
        verdict = judge([1.0] * 10 + [2.0], direction=+1)
        assert verdict["verdict"] == "regression"

    def test_informational_metrics_never_gate(self):
        rows = analyze(_bench_rows([100, 100, 100, 100, 100, 900],
                                   metric="cycles"))
        assert rows[0][3]["verdict"] == "ok"
        gated = analyze(_bench_rows([100, 100, 100, 100, 100, 900],
                                    metric="cycles"), gate_all=True)
        assert gated[0][3]["verdict"] == "regression"


class TestSentinelCLI:
    def _seed(self, store, values):
        for record in _bench_rows(values):
            store.append(record)

    def test_exit_zero_on_clean_history(self, store, capsys):
        self._seed(store, [1.0, 1.02, 0.99, 1.01, 1.0])
        assert regress_main(["--history", store.path]) == 0
        out = capsys.readouterr().out
        assert "no regressions detected" in out
        assert "bench:replay" in out

    def test_exit_one_on_regression(self, store, capsys):
        self._seed(store, [1.0, 1.02, 0.99, 1.01, 1.0, 2.2])
        assert regress_main(["--history", store.path]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION: bench:replay :: replay_seconds" in out

    def test_warn_only_downgrades(self, store, capsys):
        self._seed(store, [1.0, 1.02, 0.99, 1.01, 1.0, 2.2])
        assert regress_main(["--history", store.path,
                             "--warn-only"]) == 0
        assert "--warn-only" in capsys.readouterr().out

    def test_json_output(self, store, capsys):
        self._seed(store, [1.0, 1.02, 0.99, 1.01, 1.0, 2.2])
        assert regress_main(["--history", store.path, "--json"]) == 1
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["series"] == "bench:replay"
        assert rows[0]["verdict"] == "regression"

    def test_empty_history_is_fine(self, store, capsys):
        assert regress_main(["--history", store.path]) == 0
        assert "no records yet" in capsys.readouterr().out

    def test_disabled_store_is_fine(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_OBS_HISTORY", "off")
        assert regress_main([]) == 0
        assert "disabled" in capsys.readouterr().out

    def test_metric_filter(self, store, capsys):
        self._seed(store, [1.0, 1.02, 0.99, 1.01, 1.0, 2.2])
        assert regress_main(["--history", store.path,
                             "--metric", "no_such_metric"]) == 0
