"""Tests for the CAD substrate: synthesis, gate sim, formal, power."""

import random

import pytest

from repro.hdl import Module, elaborate, mux
from repro.hdl.ir import Node
from repro.sim import RTLSimulator
from repro.gatelevel import (
    synthesize, GateLevelSimulator, match_netlist, verify_equivalence,
    analyze_power, place, mangle, MatchError,
)


class AluDesign(Module):
    """Wide op coverage for synthesis equivalence checks."""

    def build(self):
        a = self.input("a", 12)
        b = self.input("b", 12)
        sh = self.input("sh", 4)
        op = self.input("op", 3)
        add = (a + b).trunc(12)
        sub = (a - b).trunc(12)
        logic = mux(op[0], a & b, a | b)
        shifted = mux(op[1], (a << sh).trunc(12), a >> sh)
        srl = a.sra(sh)
        cmp = mux(a.slt(b), 1, 0).pad(12)
        out = mux(op.eq(0), add,
                  mux(op.eq(1), sub,
                      mux(op.eq(2), logic,
                          mux(op.eq(3), shifted,
                              mux(op.eq(4), srl, cmp)))))
        self.output("out", 12, out)
        self.output("prod", 24, a * b)
        self.output("quot", 12, Node("divu", 12, (a, b)))
        self.output("rem", 12, Node("modu", 12, (a, b)))
        self.output("eq", 1, a.eq(b))
        self.output("ltu", 1, a.ult(b))
        self.output("parity", 1, a.xorr())
        self.output("all1", 1, a.andr())


class SeqDesign(Module):
    """Registers (incl. constant + duplicate) and a memory."""

    def build(self):
        d = self.input("d", 8)
        we = self.input("we", 1)
        frozen = self.reg("frozen", 8, init=0x5A)   # never assigned
        dup_a = self.reg("dup_a", 8)
        dup_b = self.reg("dup_b", 8)                # same D as dup_a
        dup_a <<= d
        dup_b <<= d
        acc = self.reg("acc", 12)
        acc <<= (acc + d).trunc(12)
        scratch = self.mem("scratch", 16, 8)
        ptr = self.reg("ptr", 4)
        with self.when(we):
            self.mem_write(scratch, ptr, d)
            ptr <<= ptr + 1
        self.output("acc", 12, acc)
        self.output("frozen", 8, frozen)
        self.output("peek", 8, scratch.read(ptr))
        self.output("dup", 8, dup_a ^ dup_b)


@pytest.fixture(scope="module")
def alu_pair():
    circuit = elaborate(AluDesign())
    netlist, hints = synthesize(circuit)
    return circuit, netlist, hints


@pytest.fixture(scope="module")
def seq_pair():
    circuit = elaborate(SeqDesign())
    netlist, hints = synthesize(circuit)
    return circuit, netlist, hints


class TestSynthesis:
    def test_produces_gates(self, alu_pair):
        _, netlist, _ = alu_pair
        stats = netlist.stats()
        assert stats["gates"] > 100
        assert stats["dffs"] == 0

    def test_equivalence_combinational(self, alu_pair):
        circuit, netlist, _ = alu_pair
        result = verify_equivalence(circuit, netlist, n_cycles=150, seed=4)
        assert result.equivalent, result.counterexample

    def test_equivalence_sequential(self, seq_pair):
        circuit, netlist, _ = seq_pair
        result = verify_equivalence(circuit, netlist, n_cycles=100, seed=5)
        assert result.equivalent, result.counterexample

    def test_constant_register_removed(self, seq_pair):
        _, netlist, hints = seq_pair
        assert hints.removed_const_dffs >= 8  # all bits of `frozen`
        kinds = {hints.dff_map[("frozen", b)].kind for b in range(8)}
        assert kinds == {"const"}

    def test_duplicate_registers_merged(self, seq_pair):
        _, netlist, hints = seq_pair
        merged = [hints.dff_map[("dup_b", b)].kind for b in range(8)]
        direct = [hints.dff_map[("dup_a", b)].kind for b in range(8)]
        assert set(merged) == {"merged"}
        assert set(direct) == {"dff"}

    def test_names_are_mangled(self, seq_pair):
        _, netlist, _ = seq_pair
        names = {dff.name for dff in netlist.dffs}
        assert mangle("acc", 0) in names
        assert all("_reg_" in name for name in names)

    def test_memory_becomes_macro(self, seq_pair):
        _, netlist, _ = seq_pair
        assert len(netlist.srams) == 1
        macro = netlist.srams[0]
        assert macro.depth == 16 and macro.width == 8
        assert len(macro.read_ports) == 1
        assert len(macro.write_ports) == 1


class TestGateLevelSimulator:
    def test_sram_write_read(self, seq_pair):
        _, netlist, _ = seq_pair
        gl = GateLevelSimulator(netlist)
        gl.poke("d", 0xAB)
        gl.poke("we", 1)
        gl.step()
        assert gl.read_sram("scratch", 0) == 0xAB

    def test_toggle_counts_accumulate(self, seq_pair):
        _, netlist, _ = seq_pair
        gl = GateLevelSimulator(netlist)
        gl.poke("we", 0)
        rng = random.Random(0)
        for _ in range(20):
            gl.poke("d", rng.getrandbits(8))
            gl.step()
        activity = gl.activity()
        assert activity["cycles"] == 20
        assert activity["toggles"].sum() > 0

    def test_clear_activity(self, seq_pair):
        _, netlist, _ = seq_pair
        gl = GateLevelSimulator(netlist)
        gl.poke("d", 0xFF)
        gl.poke("we", 0)
        gl.step(5)
        gl.clear_activity()
        assert gl.activity()["cycles"] == 0
        assert gl.activity()["toggles"].sum() == 0

    def test_dff_load_by_name(self, seq_pair):
        _, netlist, _ = seq_pair
        gl = GateLevelSimulator(netlist)
        gl.load_dff(mangle("acc", 3), 1)
        gl.eval()
        assert gl.peek("acc") & (1 << 3)


class TestNameMapAndStateLoad:
    def test_snapshot_loads_onto_gate_level(self, seq_pair):
        circuit, netlist, hints = seq_pair
        name_map = match_netlist(circuit, netlist, hints)
        rtl = RTLSimulator(circuit)
        rng = random.Random(7)
        for _ in range(23):
            rtl.poke("d", rng.getrandbits(8))
            rtl.poke("we", rng.getrandbits(1))
            rtl.step()
        snap = rtl.snapshot()

        gl = GateLevelSimulator(netlist)
        commands = name_map.load_commands(snap.regs)
        gl.load_dffs(commands)
        for mem_path, contents in snap.mems.items():
            gl.load_sram(mem_path, contents)

        # From the loaded state, both simulators must agree cycle by cycle.
        for _ in range(20):
            d, we = rng.getrandbits(8), rng.getrandbits(1)
            rtl.poke("d", d)
            rtl.poke("we", we)
            gl.poke("d", d)
            gl.poke("we", we)
            rtl.eval()
            gl.eval()
            assert rtl.peek_all() == gl.peek_all()
            rtl.step()
            gl.step()

    def test_const_mismatch_detected(self, seq_pair):
        circuit, netlist, hints = seq_pair
        name_map = match_netlist(circuit, netlist, hints)
        rtl = RTLSimulator(circuit)
        snap = rtl.snapshot()
        snap.regs["frozen"] = 0x00  # inconsistent with tied constant
        with pytest.raises(MatchError):
            name_map.load_commands(snap.regs)

    def test_all_registers_have_match_points(self, seq_pair):
        circuit, netlist, hints = seq_pair
        name_map = match_netlist(circuit, netlist, hints)
        covered = {(p.reg_path, p.bit) for p in name_map.points}
        expected = {(reg.path, bit)
                    for reg in circuit.regs for bit in range(reg.width)}
        assert covered == expected


class TestPlacementAndPower:
    def test_placement_produces_caps(self, seq_pair):
        _, netlist, _ = seq_pair
        placement = place(netlist)
        assert placement.total_area_um2 > 0
        assert placement.net_wire_cap_ff is not None
        assert (placement.net_wire_cap_ff >= 0).all()
        assert "die" in placement.floorplan_text()

    def test_power_report(self, seq_pair):
        _, netlist, _ = seq_pair
        gl = GateLevelSimulator(netlist)
        rng = random.Random(1)
        for _ in range(50):
            gl.poke("d", rng.getrandbits(8))
            gl.poke("we", rng.getrandbits(1))
            gl.step()
        placement = place(netlist)
        report = analyze_power(netlist, gl.activity(), placement)
        assert report.total_w > 0
        assert report.leakage_w > 0
        assert report.clock_w > 0
        assert report.total_w == pytest.approx(
            report.switching_w + report.clock_w + report.sram_dynamic_w
            + report.leakage_w)
        assert sum(report.by_group.values()) == pytest.approx(
            report.total_w, rel=1e-6)

    def test_idle_design_burns_less_power(self, seq_pair):
        _, netlist, _ = seq_pair
        placement = place(netlist)

        def run(pattern):
            gl = GateLevelSimulator(netlist)
            for value in pattern:
                gl.poke("d", value)
                gl.poke("we", 0)
                gl.step()
            return analyze_power(netlist, gl.activity(), placement)

        busy = run([0x00, 0xFF] * 25)
        idle = run([0x00] * 50)
        assert busy.total_w > idle.total_w
