"""Fault-injection harness: every deliberate fault must be *detected*
(checksum rejection, strict mismatch) or *recovered* (retry, rebuild,
truncate-and-warn) — never silently absorbed
(repro.robust.faultinject)."""

import copy
import pickle

import pytest

from repro.core import run_strober
from repro.core.replay import ReplayError
from repro.parallel import ArtifactCache, cache_stats, reset_cache_stats
from repro.robust import (
    FaultPlan, FaultSpec, corrupt_cache_entry, corrupt_file,
    flip_snapshot_bit, run_campaign,
)
from repro.scan.snapshot import ReplayableSnapshot, SnapshotError


@pytest.fixture(scope="module")
def towers_run():
    return run_strober("rocket_mini", "towers", sample_size=6,
                       replay_length=32, backend="auto", seed=3)


class TestSnapshotBitFlips:
    def test_sealed_state_flip_fails_validation(self, towers_run):
        bad = copy.deepcopy(towers_run.snapshots[0])
        assert bad.checksum is not None
        detail = flip_snapshot_bit(bad, where="state")
        assert "register" in detail
        with pytest.raises(SnapshotError, match="integrity"):
            bad.validate()
        with pytest.raises(SnapshotError):
            towers_run.engine.replay(bad)

    def test_sealed_trace_flip_fails_validation(self, towers_run):
        bad = copy.deepcopy(towers_run.snapshots[0])
        flip_snapshot_bit(bad, where="trace")
        with pytest.raises(SnapshotError, match="integrity"):
            bad.validate()

    def test_unsealed_trace_flip_fails_strict_replay(self, towers_run):
        bad = copy.deepcopy(towers_run.snapshots[0])
        bad.checksum = None
        flip_snapshot_bit(bad, where="trace")
        bad.validate()       # no checksum: validation cannot see it...
        with pytest.raises(ReplayError, match="mismatch"):
            towers_run.engine.replay(bad, strict=True)

    def test_unsealed_trace_flip_counts_mismatches_lenient(self,
                                                           towers_run):
        bad = copy.deepcopy(towers_run.snapshots[0])
        bad.checksum = None
        flip_snapshot_bit(bad, where="trace")
        result = towers_run.engine.replay(bad, strict=False)
        assert result.mismatches >= 1

    def test_clean_snapshot_still_validates(self, towers_run):
        snapshot = towers_run.snapshots[0]
        assert snapshot.validate()


class TestSnapshotWireFormat:
    def test_pickle_preserves_checksum(self, towers_run):
        snapshot = towers_run.snapshots[0]
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.checksum == snapshot.checksum
        clone.validate()

    def test_v1_pickles_still_load(self, towers_run):
        snapshot = towers_run.snapshots[0]
        v1_state = ("v1", snapshot.cycle, snapshot.state,
                    snapshot.replay_length, snapshot.input_trace,
                    snapshot.output_trace, snapshot.perf_counters)
        clone = ReplayableSnapshot.__new__(ReplayableSnapshot)
        clone.__setstate__(v1_state)
        assert clone.checksum is None
        assert clone.cycle == snapshot.cycle
        clone.validate()

    def test_unknown_version_rejected_with_clear_error(self):
        clone = ReplayableSnapshot.__new__(ReplayableSnapshot)
        with pytest.raises(SnapshotError, match="unknown snapshot "
                                                "pickle version"):
            clone.__setstate__(("v99", 1, 2, 3, 4, 5, 6, 7))

    def test_garbage_state_rejected(self):
        clone = ReplayableSnapshot.__new__(ReplayableSnapshot)
        with pytest.raises(SnapshotError):
            clone.__setstate__((1, 2, 3))
        with pytest.raises(SnapshotError):
            clone.__setstate__("nonsense")


class TestCacheCorruption:
    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_corrupt_entry_detected_dropped_rebuilt(self, tmp_path, mode):
        cache = ArtifactCache(str(tmp_path))
        key = "ab" * 20
        cache.put("kind", key, {"payload": list(range(64))})
        corrupt_cache_entry(cache, "kind", key, mode=mode)
        reset_cache_stats()
        with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
            assert cache.get("kind", key) is None
        assert cache_stats()["corrupt_dropped"] == 1
        assert not cache.has("kind", key)
        # rebuild lands cleanly
        cache.put("kind", key, {"payload": list(range(64))})
        assert cache.get("kind", key) == {"payload": list(range(64))}

    def test_warning_fires_once_then_counts_silently(self, tmp_path):
        import warnings as warnings_mod
        cache = ArtifactCache(str(tmp_path))
        reset_cache_stats()
        for key in ("aa" * 20, "bb" * 20):
            cache.put("kind", key, [1])
            corrupt_file(cache._path("kind", key), mode="truncate")
        with pytest.warns(RuntimeWarning):
            cache.get("kind", "aa" * 20)
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            cache.get("kind", "bb" * 20)    # counted, not re-warned
        assert cache_stats()["corrupt_dropped"] == 2

    def test_unwritable_root_counts_put_skips(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("in the way")
        cache = ArtifactCache(str(blocker / "sub"))
        reset_cache_stats()
        with pytest.warns(RuntimeWarning, match="skipped"):
            assert cache.put("kind", "cd" * 20, [1]) is None
        assert cache_stats()["put_skipped"] == 1


class TestWorkerFaultPlan:
    def test_plan_consumes_spec_budget(self, towers_run):
        plan = FaultPlan([FaultSpec("error", index=1, times=2)])
        snapshot = towers_run.snapshots[1]
        assert plan.pick(1, snapshot) is not None
        assert plan.pick(1, snapshot) is not None
        assert plan.pick(1, snapshot) is None       # budget exhausted
        assert plan.pick(0, snapshot) is None       # wrong index

    def test_wildcard_spec_matches_any_index(self, towers_run):
        plan = FaultPlan([FaultSpec("error", index=None, times=1)])
        assert plan.pick(4, towers_run.snapshots[0]) is not None
        assert plan.pick(4, towers_run.snapshots[0]) is None


class TestCampaign:
    def test_standard_campaign_all_detected_or_recovered(self,
                                                         towers_run):
        """Acceptance: the full battery — worker kill, worker stall,
        transient error, snapshot/trace bit-flips, cache corruption,
        journal corruption — every fault detected or recovered."""
        verdicts = run_campaign(towers_run.engine,
                                towers_run.snapshots,
                                workers=2, timeout=4.0,
                                backoff_base=0.05)
        assert set(verdicts) == {
            "worker-kill", "worker-stall", "worker-error",
            "snapshot-bitflip", "trace-bitflip",
            "cache-corruption", "journal-corruption",
        }
        missed = {k: v for k, v in verdicts.items()
                  if v not in ("recovered", "detected")}
        assert not missed, f"faults went unnoticed: {missed}"
        assert verdicts["worker-kill"] == "recovered"
        assert verdicts["worker-stall"] == "recovered"
        assert verdicts["snapshot-bitflip"] == "detected"
        assert verdicts["trace-bitflip"] == "detected"
