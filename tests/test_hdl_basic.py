"""Unit tests for the hardware DSL and RTL simulator foundations."""

import pytest

from repro.hdl import Module, elaborate, mux, cat, const, ElaborationError
from repro.sim import RTLSimulator


class Adder(Module):
    def build(self):
        a = self.input("a", 8)
        b = self.input("b", 8)
        self.output("sum", 9, a + b)


class Counter(Module):
    def __init__(self, width=8, name=None):
        self.width = width
        super().__init__(name)

    def build(self):
        en = self.input("en", 1)
        count = self.reg("count", self.width)
        with self.when(en):
            count <<= count + 1
        self.output("out", self.width, count)


class TestCombinational:
    def test_adder(self):
        sim = RTLSimulator(elaborate(Adder()))
        sim.poke("a", 200)
        sim.poke("b", 100)
        sim.eval()
        assert sim.peek("sum") == 300

    def test_poke_masks_to_width(self):
        sim = RTLSimulator(elaborate(Adder()))
        sim.poke("a", 0x1FF)
        sim.poke("b", 0)
        sim.eval()
        assert sim.peek("sum") == 0xFF

    def test_mux_and_cat(self):
        class M(Module):
            def build(self):
                s = self.input("s", 1)
                self.output("o", 8, mux(s, 0xAB, 0xCD))
                self.output("c", 8, cat(const(0xA, 4), const(0xB, 4)))

        sim = RTLSimulator(elaborate(M()))
        sim.poke("s", 1)
        sim.eval()
        assert sim.peek("o") == 0xAB
        assert sim.peek("c") == 0xAB
        sim.poke("s", 0)
        sim.eval()
        assert sim.peek("o") == 0xCD

    def test_bit_extract(self):
        class M(Module):
            def build(self):
                a = self.input("a", 8)
                self.output("hi", 4, a[7:4])
                self.output("b0", 1, a[0])

        sim = RTLSimulator(elaborate(M()))
        sim.poke("a", 0xA5)
        sim.eval()
        assert sim.peek("hi") == 0xA
        assert sim.peek("b0") == 1

    def test_signed_compare(self):
        class M(Module):
            def build(self):
                a = self.input("a", 8)
                b = self.input("b", 8)
                self.output("slt", 1, a.slt(b))
                self.output("ult", 1, a.ult(b))

        sim = RTLSimulator(elaborate(M()))
        sim.poke("a", 0xFF)  # -1 signed
        sim.poke("b", 1)
        sim.eval()
        assert sim.peek("slt") == 1
        assert sim.peek("ult") == 0

    def test_sra(self):
        class M(Module):
            def build(self):
                a = self.input("a", 8)
                s = self.input("s", 3)
                self.output("o", 8, a.sra(s))

        sim = RTLSimulator(elaborate(M()))
        sim.poke("a", 0x80)
        sim.poke("s", 3)
        sim.eval()
        assert sim.peek("o") == 0xF0

    def test_division_by_zero_riscv_semantics(self):
        class M(Module):
            def build(self):
                a = self.input("a", 8)
                b = self.input("b", 8)
                q = self.wire("q", 8)
                from repro.hdl.ir import Node
                q <<= Node("divu", 8, (a, b))
                r = self.wire("r", 8)
                r <<= Node("modu", 8, (a, b))
                self.output("q", 8, q)
                self.output("r", 8, r)

        sim = RTLSimulator(elaborate(M()))
        sim.poke("a", 42)
        sim.poke("b", 0)
        sim.eval()
        assert sim.peek("q") == 0xFF
        assert sim.peek("r") == 42
        sim.poke("b", 5)
        sim.eval()
        assert sim.peek("q") == 8
        assert sim.peek("r") == 2


class TestSequential:
    def test_counter_counts_when_enabled(self):
        sim = RTLSimulator(elaborate(Counter()))
        sim.poke("en", 1)
        sim.step(5)
        assert sim.peek_reg("count") == 5
        sim.poke("en", 0)
        sim.step(3)
        assert sim.peek_reg("count") == 5

    def test_counter_wraps(self):
        sim = RTLSimulator(elaborate(Counter(width=2)))
        sim.poke("en", 1)
        sim.step(5)
        assert sim.peek_reg("count") == 1

    def test_reset_restores_init(self):
        class M(Module):
            def build(self):
                r = self.reg("r", 8, init=0x42)
                r <<= r + 1
                self.output("o", 8, r)

        sim = RTLSimulator(elaborate(M()))
        assert sim.peek_reg("r") == 0x42
        sim.step(3)
        assert sim.peek_reg("r") == 0x45
        sim.reset()
        assert sim.peek_reg("r") == 0x42

    def test_when_elsewhen_otherwise(self):
        class M(Module):
            def build(self):
                sel = self.input("sel", 2)
                r = self.reg("r", 8)
                with self.when(sel.eq(0)):
                    r <<= 10
                with self.elsewhen(sel.eq(1)):
                    r <<= 20
                with self.otherwise():
                    r <<= 30
                self.output("o", 8, r)

        sim = RTLSimulator(elaborate(M()))
        for sel, expected in [(0, 10), (1, 20), (2, 30), (3, 30)]:
            sim.poke("sel", sel)
            sim.step()
            assert sim.peek_reg("r") == expected

    def test_last_connect_wins(self):
        class M(Module):
            def build(self):
                r = self.reg("r", 4)
                r <<= 1
                r <<= 2
                self.output("o", 4, r)

        sim = RTLSimulator(elaborate(M()))
        sim.step()
        assert sim.peek_reg("r") == 2

    def test_nested_when(self):
        class M(Module):
            def build(self):
                a = self.input("a", 1)
                b = self.input("b", 1)
                r = self.reg("r", 4)
                with self.when(a):
                    with self.when(b):
                        r <<= 3
                    with self.otherwise():
                        r <<= 2
                self.output("o", 4, r)

        sim = RTLSimulator(elaborate(M()))
        sim.poke("a", 1)
        sim.poke("b", 1)
        sim.step()
        assert sim.peek_reg("r") == 3
        sim.poke("b", 0)
        sim.step()
        assert sim.peek_reg("r") == 2
        sim.poke("a", 0)
        sim.poke("b", 1)
        sim.step()
        assert sim.peek_reg("r") == 2  # held


class TestMemory:
    def test_async_read_write(self):
        class M(Module):
            def build(self):
                waddr = self.input("waddr", 4)
                wdata = self.input("wdata", 8)
                wen = self.input("wen", 1)
                raddr = self.input("raddr", 4)
                m = self.mem("m", 16, 8)
                self.mem_write(m, waddr, wdata, wen)
                self.output("rdata", 8, m.read(raddr))

        sim = RTLSimulator(elaborate(M()))
        sim.poke("waddr", 3)
        sim.poke("wdata", 99)
        sim.poke("wen", 1)
        sim.step()
        sim.poke("wen", 0)
        sim.poke("raddr", 3)
        sim.eval()
        assert sim.peek("rdata") == 99

    def test_sync_read_has_one_cycle_latency(self):
        class M(Module):
            def build(self):
                raddr = self.input("raddr", 4)
                m = self.mem("m", 16, 8)
                self.output("rdata", 8, self.mem_read_sync(m, raddr))

        sim = RTLSimulator(elaborate(M()))
        sim.load_mem("m", [i * 2 for i in range(16)])
        sim.poke("raddr", 5)
        sim.eval()
        assert sim.peek("rdata") == 0  # address not yet registered
        sim.step()
        sim.eval()
        assert sim.peek("rdata") == 10

    def test_mem_write_respects_when(self):
        class M(Module):
            def build(self):
                go = self.input("go", 1)
                m = self.mem("m", 4, 8)
                with self.when(go):
                    self.mem_write(m, 1, 0x55)
                self.output("o", 8, m.read(const(1, 2)))

        sim = RTLSimulator(elaborate(M()))
        sim.poke("go", 0)
        sim.step()
        sim.eval()
        assert sim.peek("o") == 0
        sim.poke("go", 1)
        sim.step()
        sim.eval()
        assert sim.peek("o") == 0x55


class TestHierarchy:
    def test_instance_connection(self):
        class Top(Module):
            def build(self):
                x = self.input("x", 8)
                inner = self.instance(Adder(), "add0")
                inner["a"] <<= x
                inner["b"] <<= 7
                self.output("y", 9, inner["sum"])

        sim = RTLSimulator(elaborate(Top()))
        sim.poke("x", 10)
        sim.eval()
        assert sim.peek("y") == 17

    def test_reg_paths_include_instance_name(self):
        class Top(Module):
            def build(self):
                c = self.instance(Counter(), "c0")
                c["en"] <<= 1
                self.output("o", 8, c["out"])

        circuit = elaborate(Top())
        assert any(r.path == "c0.count" for r in circuit.regs)

    def test_same_object_twice_rejected(self):
        class Top(Module):
            def build(self):
                child = Adder()
                self.instance(child, "a0")
                self.instance(child, "a1")
                self.output("o", 9, 0)

        with pytest.raises(ElaborationError):
            elaborate(Top())


class TestErrors:
    def test_combinational_loop_detected(self):
        class M(Module):
            def build(self):
                w = self.wire("w", 4)
                w <<= w + 1
                self.output("o", 4, w)

        with pytest.raises(ElaborationError):
            elaborate(M())

    def test_undriven_child_input_detected(self):
        class Top(Module):
            def build(self):
                inner = self.instance(Adder(), "a0")
                inner["a"] <<= 1
                self.output("o", 9, inner["sum"])

        with pytest.raises(ElaborationError):
            elaborate(Top())

    def test_no_bool_coercion(self):
        class M(Module):
            def build(self):
                a = self.input("a", 1)
                if a:  # must raise, not silently take a branch
                    pass

        with pytest.raises(TypeError):
            elaborate(M())


class TestSnapshots:
    def test_snapshot_roundtrip(self):
        sim = RTLSimulator(elaborate(Counter()))
        sim.poke("en", 1)
        sim.step(7)
        snap = sim.snapshot()
        sim.step(5)
        assert sim.peek_reg("count") == 12
        sim.load_snapshot(snap)
        assert sim.peek_reg("count") == 7
        assert sim.cycle == 7

    def test_snapshot_includes_memories(self):
        class M(Module):
            def build(self):
                a = self.input("a", 2)
                d = self.input("d", 8)
                m = self.mem("m", 4, 8)
                self.mem_write(m, a, d)
                self.output("o", 8, m.read(a))

        sim = RTLSimulator(elaborate(M()))
        sim.poke("a", 2)
        sim.poke("d", 77)
        sim.step()
        snap = sim.snapshot()
        assert snap.mems["m"][2] == 77
