"""Bit-parallel batched snapshot replay: lane-for-lane golden
equivalence with the scalar serial path, mismatch blame, worker-pool
composition, and the persisted levelized schedule
(repro.core.replay.replay_batch / replay_all(batch_lanes=...),
repro.gatelevel.BatchedGateLevelSimulator)."""

import copy
import random
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import run_strober
from repro.core.replay import (
    ReplayEngine, ReplayError, make_replay_batches, run_asic_flow,
)
from repro.gatelevel import (
    BatchedGateLevelSimulator, GateLevelSimulator, MAX_LANES,
    pack_lane_words, synthesize,
)
from repro.hdl import Module, elaborate
from repro.parallel import cache_stats, reset_cache_stats


@pytest.fixture(scope="module")
def towers_run():
    return run_strober("rocket_mini", "towers", sample_size=8,
                       replay_length=32, backend="auto", seed=3)


@pytest.fixture(scope="module")
def serial_keys(towers_run):
    return [_power_key(r)
            for r in towers_run.engine.replay_all(towers_run.snapshots,
                                                  workers=1)]


def _power_key(result):
    return (result.snapshot_cycle, result.cycles, result.mismatches,
            result.load_commands, result.power.total_w,
            result.power.switching_w, result.power.clock_w,
            result.power.sram_dynamic_w, result.power.leakage_w,
            tuple(sorted(result.power.by_group.items())))


def _fake_snaps(trace_lengths):
    return [SimpleNamespace(input_trace=[{}] * n) for n in trace_lengths]


class TestMakeBatches:
    def test_consecutive_with_ragged_tail(self):
        batches = make_replay_batches(_fake_snaps([32] * 10), 4)
        assert batches == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_split_on_trace_length_change(self):
        batches = make_replay_batches(_fake_snaps([32, 32, 16, 16, 32]), 8)
        assert batches == [[0, 1], [2, 3], [4]]

    def test_lane_bounds(self):
        with pytest.raises(ValueError):
            make_replay_batches(_fake_snaps([32]), 0)
        with pytest.raises(ValueError):
            make_replay_batches(_fake_snaps([32]), MAX_LANES + 1)

    def test_pack_lane_words_round_trip(self):
        values = [5, 0, 7, 2, 63]
        words = pack_lane_words(values, 6)
        assert words.dtype == np.uint64
        for lane, value in enumerate(values):
            rebuilt = sum(((int(w) >> lane) & 1) << bit
                          for bit, w in enumerate(words))
            assert rebuilt == value


class TestGoldenEquivalence:
    """Batched replay must be bit-identical to the scalar path: same
    toggles, same SRAM counts, same power to the last float."""

    @pytest.mark.parametrize("lanes", [7, MAX_LANES])
    def test_replay_all_matches_serial(self, towers_run, serial_keys,
                                       lanes):
        # 8 snapshots under a 7-lane limit = one full + one ragged
        # batch; under 64 lanes = one ragged batch using 8 of 64 lanes.
        results = towers_run.engine.replay_all(
            towers_run.snapshots, workers=1, batch_lanes=lanes)
        assert [_power_key(r) for r in results] == serial_keys

    def test_replay_batch_direct(self, towers_run, serial_keys):
        results = towers_run.engine.replay_batch(
            list(towers_run.snapshots)[:5])
        assert [_power_key(r) for r in results] == serial_keys[:5]

    def test_retimed_warmup_is_exercised(self, towers_run):
        # rocket_mini carries a retimed multiplier pipeline, so the
        # equivalence above covers the per-lane history warm-up path.
        assert towers_run.engine.flow.name_map.retimed

    def test_boom_equivalence(self):
        run = run_strober("boom-1w_mini", "towers", sample_size=4,
                          replay_length=32, backend="auto", seed=3)
        serial = [_power_key(r)
                  for r in run.engine.replay_all(run.snapshots, workers=1)]
        batched = run.engine.replay_all(run.snapshots, workers=1,
                                        batch_lanes=4)
        assert [_power_key(r) for r in batched] == serial


class TestMismatchBlame:
    def _poisoned(self, towers_run, lane):
        snaps = list(towers_run.snapshots)[:6]
        bad = copy.deepcopy(snaps[lane])
        bad.output_trace[5] = {k: v ^ 1
                               for k, v in bad.output_trace[5].items()}
        # unseal so the corruption reaches the replay comparison itself
        bad.checksum = None
        snaps[lane] = bad
        return snaps

    def test_strict_blames_the_guilty_lane(self, towers_run):
        snaps = self._poisoned(towers_run, 3)
        with pytest.raises(ReplayError, match=r"batch lane 3"):
            towers_run.engine.replay_batch(snaps, strict=True)
        with pytest.raises(
                ReplayError,
                match=f"snapshot cycle {snaps[3].cycle}"):
            towers_run.engine.replay_batch(snaps, strict=True)

    def test_non_strict_counts_only_that_lane(self, towers_run,
                                              serial_keys):
        snaps = self._poisoned(towers_run, 3)
        results = towers_run.engine.replay_batch(snaps, strict=False)
        assert results[3].mismatches >= 1
        for lane in (0, 1, 2, 4, 5):
            assert results[lane].mismatches == 0
            assert _power_key(results[lane]) == serial_keys[lane]


class TestWorkerComposition:
    def test_batched_pool_is_bit_identical(self, towers_run, serial_keys):
        engine = towers_run.engine
        results = engine.replay_all(towers_run.snapshots, workers=2,
                                    batch_lanes=4)
        assert [_power_key(r) for r in results] == serial_keys
        assert engine.last_health is not None
        assert engine.last_health.healthy
        assert engine.last_health.batch_lanes == 4

    def test_bad_lane_count_rejected(self, towers_run):
        with pytest.raises(ValueError):
            towers_run.engine.replay_all(towers_run.snapshots,
                                         batch_lanes=MAX_LANES + 1)


class TestRunStroberIntegration:
    def test_batch_lanes_preserves_energy(self):
        scalar = run_strober("rocket_mini", "towers", sample_size=4,
                             replay_length=32, backend="auto", seed=3)
        batched = run_strober("rocket_mini", "towers", sample_size=4,
                              replay_length=32, backend="auto", seed=3,
                              batch_lanes=None)
        assert batched.timings["batch_lanes"] == MAX_LANES
        assert scalar.timings["batch_lanes"] == 1
        assert batched.energy.power.mean == scalar.energy.power.mean
        assert batched.energy.epi_nj == scalar.energy.epi_nj
        assert batched.energy.breakdown == scalar.energy.breakdown

    def test_batch_lanes_journal_resume(self, tmp_path):
        journal = str(tmp_path / "run.journal")
        first = run_strober("rocket_mini", "towers", sample_size=4,
                            replay_length=32, backend="auto", seed=3,
                            batch_lanes=4, journal=journal)
        again = run_strober("rocket_mini", "towers", sample_size=4,
                            replay_length=32, backend="auto", seed=3,
                            batch_lanes=4, journal=journal)
        assert again.timings["resumed_sim"]
        assert again.timings["resumed_replays"] == len(first.snapshots)
        assert again.energy.power.mean == first.energy.power.mean


class _SchedDesign(Module):
    def build(self):
        a = self.input("a", 8)
        b = self.input("b", 8)
        s1 = self.reg("s1", 9)
        s1 <<= a + b
        self.output("out", 9, s1)


class TestScheduleCache:
    def test_second_engine_reuses_levelization(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        flow = run_asic_flow(elaborate(_SchedDesign()), use_cache=True)
        assert flow.fingerprint
        ReplayEngine.from_flow(flow)          # builds + stores schedule
        reset_cache_stats()
        ReplayEngine.from_flow(flow)          # must hit the disk cache
        stats = cache_stats()
        assert stats["hits"] >= 1
        assert stats["sched_seconds_saved"] > 0.0


class _LaneDesign(Module):
    """Registers, feedback, and a memory — per-lane divergence fodder."""

    def build(self):
        d = self.input("d", 8)
        we = self.input("we", 1)
        acc = self.reg("acc", 12)
        acc <<= (acc + d).trunc(12)
        scratch = self.mem("scratch", 16, 8)
        ptr = self.reg("ptr", 4)
        with self.when(we):
            self.mem_write(scratch, ptr, d)
            ptr <<= ptr + 1
        self.output("acc", 12, acc)
        self.output("peek", 8, scratch.read(ptr))


class TestBatchedSimulatorFullWidth:
    def test_64_lanes_match_64_scalar_sims(self):
        circuit = elaborate(_LaneDesign())
        netlist, _hints = synthesize(circuit)
        rng = random.Random(11)
        batched = BatchedGateLevelSimulator(netlist, lanes=MAX_LANES)
        scalars = [GateLevelSimulator(netlist) for _ in range(MAX_LANES)]
        for _cycle in range(24):
            d = [rng.randrange(256) for _ in range(MAX_LANES)]
            we = [rng.randrange(2) for _ in range(MAX_LANES)]
            batched.poke_lanes("d", d)
            batched.poke_lanes("we", we)
            for lane, sim in enumerate(scalars):
                sim.poke("d", d[lane])
                sim.poke("we", we[lane])
            batched.step()
            for sim in scalars:
                sim.step()
            for lane, sim in enumerate(scalars):
                assert batched.peek("acc", lane=lane) == sim.peek("acc")
                assert batched.peek("peek", lane=lane) == sim.peek("peek")
        for lane, sim in enumerate(scalars):
            ref = sim.activity()
            got = batched.activity(lane)
            assert got["cycles"] == ref["cycles"]
            assert np.array_equal(got["toggles"], ref["toggles"])
            assert got["sram_reads"] == ref["sram_reads"]
            assert got["sram_writes"] == ref["sram_writes"]
