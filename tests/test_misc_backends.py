"""Tests for the Verilog backend, attribution, and placement extras."""

import re

import pytest

from repro.hdl import Module, elaborate, mux
from repro.hdl.verilog import emit_verilog
from repro.gatelevel import synthesize, place
from repro.core import refine_attribution, soc_grouping, get_circuits


class SmallSoCish(Module):
    def build(self):
        d = self.input("d", 8)
        en = self.input("en", 1)
        acc = self.reg("acc", 16, init=3)
        with self.when(en):
            acc <<= (acc + d).trunc(16)
        buf = self.mem("buf", 8, 16)
        ptr = self.reg("ptr", 3)
        ptr <<= ptr + 1
        self.mem_write(buf, ptr, acc, en)
        self.output("acc", 16, acc)
        self.output("peek", 16, buf.read(ptr))
        self.output("flag", 1, mux(acc.ugt(100), 1, 0))


class TestVerilogBackend:
    def test_emits_module(self):
        text = emit_verilog(elaborate(SmallSoCish(), name="small"))
        assert text.startswith("module small(")
        assert text.rstrip().endswith("endmodule")
        assert "input clock," in text
        assert "always @(posedge clock)" in text

    def test_declares_all_state(self):
        text = emit_verilog(elaborate(SmallSoCish()))
        assert re.search(r"reg \[15:0\] acc;", text)
        assert re.search(r"reg \[15:0\] buf \[0:7\];", text)

    def test_reset_values(self):
        text = emit_verilog(elaborate(SmallSoCish()))
        assert "acc <= 16'h3;" in text

    def test_ports_match_circuit(self):
        circuit = elaborate(SmallSoCish())
        text = emit_verilog(circuit)
        for node in circuit.inputs:
            assert f"{node.name}" in text
        for name, _ in circuit.outputs:
            assert f"assign {name} = " in text

    def test_full_soc_emits(self):
        """The whole Rocket SoC must render without errors."""
        _, target = get_circuits("rocket_mini")
        text = emit_verilog(target, module_name="rocket_soc")
        assert text.count("endmodule") == 1
        assert len(text.splitlines()) > 500


class TestAttribution:
    def test_refinement_pushes_origins_to_comb_logic(self):
        circuit = elaborate(SmallSoCish())
        netlist, _ = synthesize(circuit)
        refine_attribution(netlist)
        origins = {g.origin for g in netlist.gates}
        # comb gates feeding `acc` must now carry the register's path
        assert any(o == "acc" for o in origins)

    def test_soc_netlist_attribution_covers_units(self):
        from repro.core import get_replay_engine
        engine = get_replay_engine("rocket_mini")
        groups = {soc_grouping(g.origin)
                  for g in engine.flow.netlist.gates}
        assert {"Integer Unit", "Fetch Unit",
                "L1 I-cache"}.issubset(groups)


class TestPlacementFloorplan:
    def test_functional_floorplan(self):
        """Figure-6 flavour: the placed SoC has unit-level clusters."""
        from repro.core import get_replay_engine
        engine = get_replay_engine("rocket_mini")
        names = {box.name for box in engine.flow.placement.clusters}
        assert any("Integer Unit" in n for n in names)
        assert any("sram" in n for n in names)
        text = engine.flow.placement.floorplan_text()
        assert "die" in text
        assert engine.flow.placement.total_area_um2 > 1000


class TestScanHardwareOption:
    def test_compiler_with_hardware_chains(self):
        from repro.core import StroberCompiler

        def build():
            return elaborate(SmallSoCish())

        output = StroberCompiler(build, scan_width=8,
                                 hardware_scan_chains=True).compile()
        out_names = {name for name, _ in
                     output.simulator_circuit.outputs}
        assert "scan_out" in out_names
        assert any(name.startswith("scan_ram_") for name in out_names)
