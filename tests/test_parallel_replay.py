"""Tests for the repro.parallel layer: worker-pool replay, the
content-addressed artifact cache, circuit fingerprints, and the pickle
round-trips that make both possible."""

import copy
import os
import pickle
import subprocess
import sys

import pytest

from repro.core import (
    run_strober, get_circuits, get_replay_engine, clear_caches,
)
from repro.core.replay import ReplayEngine, ReplayError
from repro.hdl import Module, elaborate, circuit_fingerprint
from repro.gatelevel import GateLevelSimulator
from repro.parallel import ArtifactCache, replay_parallel, ParallelReplayError
from repro.sim import RTLSimulator


@pytest.fixture(scope="module")
def towers_run():
    return run_strober("rocket_mini", "towers", sample_size=8,
                       replay_length=32, backend="auto", seed=3)


def _power_key(result):
    return (result.snapshot_cycle, result.cycles, result.mismatches,
            result.load_commands, result.power.total_w,
            result.power.switching_w, result.power.clock_w,
            result.power.sram_dynamic_w, result.power.leakage_w,
            tuple(sorted(result.power.by_group.items())))


class TestParallelReplay:
    def test_parallel_matches_serial_bit_identically(self, towers_run):
        engine = towers_run.engine
        snaps = list(towers_run.snapshots)
        assert len(snaps) == 8
        serial = engine.replay_all(snaps, workers=1)
        parallel = engine.replay_all(snaps, workers=4)
        assert [_power_key(r) for r in serial] == \
            [_power_key(r) for r in parallel]

    def test_workers_none_uses_cpu_count(self, towers_run):
        engine = towers_run.engine
        one = engine.replay_all(towers_run.snapshots[:2], workers=None)
        assert len(one) == 2

    def test_strict_mismatch_propagates_from_workers(self, towers_run):
        engine = towers_run.engine
        snaps = list(towers_run.snapshots)
        bad = copy.deepcopy(snaps[1])
        bad.output_trace[0] = {k: v ^ 1
                               for k, v in bad.output_trace[0].items()}
        # unseal so the corruption reaches the strict replay comparison
        # (a sealed snapshot is rejected earlier by its checksum —
        # covered in tests/test_robust_faultinject.py)
        bad.checksum = None
        with pytest.raises(ReplayError):
            engine.replay_all([snaps[0], bad, snaps[2]], workers=2)

    def test_unpicklable_grouping_falls_back_to_serial(self, towers_run):
        engine = towers_run.engine
        snaps = list(towers_run.snapshots)[:2]
        fancy = ReplayEngine.from_flow(
            engine.flow, port_names=engine._port_names,
            grouping=lambda origin: "all", freq_hz=engine.freq_hz)
        with pytest.raises(ParallelReplayError):
            replay_parallel(fancy.flow, snaps, workers=2,
                            port_names=fancy._port_names,
                            grouping=fancy.grouping)
        with pytest.warns(RuntimeWarning):
            results = fancy.replay_all(snaps, workers=2)
        assert len(results) == 2
        # "(io)" is the driverless-net bucket power analysis adds itself
        assert set(results[0].power.by_group) <= {"all", "(io)"}

    def test_empty_snapshot_list(self, towers_run):
        assert towers_run.engine.replay_all([], workers=4) == []

    def test_engine_from_flow_replays_without_circuit(self, towers_run):
        engine = towers_run.engine
        rebuilt = ReplayEngine.from_flow(
            pickle.loads(pickle.dumps(engine.flow)),
            grouping=engine.grouping, freq_hz=engine.freq_hz)
        snap = towers_run.snapshots[0]
        assert _power_key(rebuilt.replay(snap)) == \
            _power_key(engine.replay(snap))


class TestPickleRoundTrips:
    def test_netlist_round_trip(self, towers_run):
        netlist = towers_run.engine.flow.netlist
        clone = pickle.loads(pickle.dumps(netlist))
        assert clone.stats() == netlist.stats()
        assert clone.inputs == netlist.inputs
        assert clone.outputs == netlist.outputs
        assert clone.preserved_nets == netlist.preserved_nets
        # behavioral equivalence: both simulate identically from reset
        a, b = GateLevelSimulator(netlist), GateLevelSimulator(clone)
        for step in range(4):
            for name, nets in netlist.inputs.items():
                a.poke(name, step + 1)
                b.poke(name, step + 1)
            a.step()
            b.step()
        assert a.peek_all() == b.peek_all()

    def test_name_map_round_trip(self, towers_run):
        name_map = towers_run.engine.flow.name_map
        clone = pickle.loads(pickle.dumps(name_map))
        regs = towers_run.snapshots[0].state.regs
        assert clone.load_commands(regs) == name_map.load_commands(regs)
        assert len(clone.points) == len(name_map.points)
        assert clone.retimed == name_map.retimed

    def test_placement_round_trip(self, towers_run):
        import numpy as np
        placement = towers_run.engine.flow.placement
        clone = pickle.loads(pickle.dumps(placement))
        assert clone.floorplan_text() == placement.floorplan_text()
        assert np.array_equal(clone.net_wire_cap_ff,
                              placement.net_wire_cap_ff)
        assert clone.total_area_um2 == placement.total_area_um2

    def test_snapshot_round_trip(self, towers_run):
        snap = towers_run.snapshots[0]
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.cycle == snap.cycle
        assert clone.state.regs == snap.state.regs
        assert clone.state.mems == snap.state.mems
        assert clone.input_trace == snap.input_trace
        assert clone.output_trace == snap.output_trace
        clone.validate()


class TestEngineCache:
    def test_engine_cache_keyed_by_frequency(self):
        """Regression: a second call with a different freq_hz used to
        return the first engine with the stale frequency."""
        slow = get_replay_engine("rocket_mini", freq_hz=1e9)
        fast = get_replay_engine("rocket_mini", freq_hz=2e9)
        assert slow is not fast
        assert slow.freq_hz == 1e9
        assert fast.freq_hz == 2e9
        assert get_replay_engine("rocket_mini", freq_hz=1e9) is slow

    def test_clear_caches_empties_memory_caches(self):
        get_replay_engine("rocket_mini")
        from repro.core import flow as flow_mod
        assert flow_mod._ENGINE_CACHE and flow_mod._CIRCUIT_CACHE
        clear_caches()
        assert not flow_mod._ENGINE_CACHE
        assert not flow_mod._CIRCUIT_CACHE


class _Pipeline(Module):
    def build(self):
        a = self.input("a", 8)
        b = self.input("b", 8)
        s1 = self.reg("s1", 9)
        s1 <<= a + b
        self.output("out", 9, s1)


class TestFingerprint:
    def test_same_design_same_fingerprint(self):
        assert circuit_fingerprint(elaborate(_Pipeline())) == \
            circuit_fingerprint(elaborate(_Pipeline()))

    def test_config_circuits_fingerprint_stable(self):
        sim_circuit, target = get_circuits("rocket_mini")
        from repro.core.configs import get_config
        rebuilt = get_config("rocket_mini").build_circuit()
        assert circuit_fingerprint(target) == circuit_fingerprint(rebuilt)

    def test_fingerprint_stable_across_processes(self):
        _, target = get_circuits("rocket_mini")
        code = (
            "from repro.core.configs import get_config\n"
            "from repro.hdl import circuit_fingerprint\n"
            "c = get_config('rocket_mini').build_circuit()\n"
            "print(circuit_fingerprint(c))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
            env.get("PYTHONPATH", "")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == circuit_fingerprint(target)

    def test_different_designs_differ(self):
        class Other(Module):
            def build(self):
                a = self.input("a", 8)
                b = self.input("b", 8)
                s1 = self.reg("s1", 9)
                s1 <<= (a - b).resize(9)
                self.output("out", 9, s1)

        assert circuit_fingerprint(elaborate(_Pipeline())) != \
            circuit_fingerprint(elaborate(Other(name="_Pipeline")))


class TestArtifactCache:
    def test_put_get_clear(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        assert cache.get("kind", "ab" * 20) is None
        cache.put("kind", "ab" * 20, {"x": 1})
        assert cache.get("kind", "ab" * 20) == {"x": 1}
        assert cache.has("kind", "ab" * 20)
        (count, size), = cache.stats().values()
        assert count == 1 and size > 0
        assert cache.clear() == 1
        assert cache.get("kind", "ab" * 20) is None

    def test_corrupt_entry_dropped(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        path = cache.put("kind", "cd" * 20, [1, 2, 3])
        with open(path, "wb") as f:
            f.write(b"not a pickle")
        assert cache.get("kind", "cd" * 20) is None
        assert not os.path.exists(path)

    def test_disable_env(self, tmp_path, monkeypatch):
        from repro.parallel import cache_enabled
        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        assert not cache_enabled()
        monkeypatch.delenv("REPRO_CACHE_DISABLE")
        assert cache_enabled()

    def test_compile_cache_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        circuit = elaborate(_Pipeline())
        cold = RTLSimulator(circuit, backend="python")
        warm = RTLSimulator(elaborate(_Pipeline()), backend="python")
        for sim in (cold, warm):
            sim.poke("a", 11)
            sim.poke("b", 22)
            sim.step()
            sim.eval()
        assert cold.peek("out") == warm.peek("out") == 33
        cache = ArtifactCache(str(tmp_path))
        assert cache.has("pysim", circuit_fingerprint(circuit))


class TestStartMethodSelection:
    def test_env_override_is_honored(self, monkeypatch):
        from repro.parallel.pool import _pick_context
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert _pick_context().get_start_method() == "spawn"

    def test_explicit_argument_beats_env(self, monkeypatch):
        from repro.parallel.pool import _pick_context
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert _pick_context("fork").get_start_method() == "fork"

    def test_bogus_env_value_is_a_clear_error(self, monkeypatch):
        from repro.parallel.pool import _pick_context
        monkeypatch.setenv("REPRO_START_METHOD", "teleport")
        with pytest.raises(ValueError, match="teleport"):
            _pick_context()

    def test_threaded_parent_avoids_fork(self, monkeypatch):
        """fork in a threaded parent can deadlock the child; the
        default must only pick fork while single-threaded."""
        from repro.parallel import pool as pool_mod
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        monkeypatch.setattr(pool_mod.threading, "active_count", lambda: 3)
        assert pool_mod._pick_context().get_start_method() != "fork"


class TestCacheCorruptionFlow:
    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_corrupt_flow_entry_rebuilds_and_records_drop(
            self, tmp_path, monkeypatch, mode):
        """A damaged asicflow cache entry must be detected (CRC frame),
        dropped, counted, and transparently rebuilt by the flow."""
        from repro.core.replay import run_asic_flow, asic_pipeline
        from repro.parallel import cache_stats, reset_cache_stats
        from repro.passes import compose_cache_key
        from repro.robust import corrupt_cache_entry
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        circuit = elaborate(_Pipeline())
        cold = run_asic_flow(circuit, use_cache=True)
        assert not cold.cache_hit
        fingerprint = compose_cache_key(circuit_fingerprint(circuit),
                                        asic_pipeline().fingerprint())
        cache = ArtifactCache(str(tmp_path))
        assert cache.has("asicflow", fingerprint)

        corrupt_cache_entry(cache, "asicflow", fingerprint, mode=mode)
        reset_cache_stats()
        with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
            rebuilt = run_asic_flow(circuit, use_cache=True)
        assert not rebuilt.cache_hit
        assert cache_stats()["corrupt_dropped"] == 1
        assert rebuilt.netlist.stats() == cold.netlist.stats()

        # the rebuild wrote a fresh, valid entry
        warm = run_asic_flow(circuit, use_cache=True)
        assert warm.cache_hit


class TestWarmFlowCache:
    def test_second_process_skips_asic_flow(self, tmp_path, monkeypatch):
        """Acceptance: with a warm artifact cache, a fresh invocation
        must not run synthesis/placement/matching at all and must report
        a near-zero flow time."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_caches()
        cold = run_strober("rocket_mini", "vvadd",
                           workload_kwargs={"n": 16},
                           sample_size=4, replay_length=32,
                           backend="auto", seed=9)
        assert not cold.timings["flow_cache_hit"]

        # simulate a fresh process: drop every in-memory cache, then
        # prove the flow tools are never invoked on the warm path
        clear_caches()

        def boom(*args, **kwargs):
            raise AssertionError("synthesis ran despite a warm cache")

        monkeypatch.setattr("repro.gatelevel.synthesis.synthesize", boom)
        monkeypatch.setattr("repro.gatelevel.placement.place", boom)
        monkeypatch.setattr("repro.gatelevel.formal.match_netlist", boom)
        warm = run_strober("rocket_mini", "vvadd",
                           workload_kwargs={"n": 16},
                           sample_size=4, replay_length=32,
                           backend="auto", seed=9)
        assert warm.timings["flow_cache_hit"]
        assert warm.timings["flow_seconds"] < 2.0
        assert warm.energy.power.mean == cold.energy.power.mean
        clear_caches()
