"""Cross-backend tests: the C backend must match the Python backend."""

import random

import pytest

from repro.hdl import Module, elaborate, mux, cat
from repro.hdl.ir import Node
from repro.sim import RTLSimulator, make_simulator

try:
    from repro.sim.cbackend import compile_circuit_c, CBackendUnavailable
    _probe = None
    HAVE_C = True
except Exception:  # pragma: no cover
    HAVE_C = False

pytestmark = pytest.mark.skipif(not HAVE_C, reason="no C backend")


class AluLike(Module):
    """Exercises every IR op in one module."""

    def build(self):
        a = self.input("a", 32)
        b = self.input("b", 32)
        sh = self.input("sh", 5)
        self.output("add", 33, a + b)
        self.output("sub", 33, a - b)
        self.output("mul", 64, a * b)
        self.output("divu", 32, Node("divu", 32, (a, b)))
        self.output("modu", 32, Node("modu", 32, (a, b)))
        self.output("and_", 32, a & b)
        self.output("or_", 32, a | b)
        self.output("xor_", 32, a ^ b)
        self.output("not_", 32, ~a)
        self.output("shl", 32, (a << sh).trunc(32))
        self.output("shr", 32, a >> sh)
        self.output("sra", 32, a.sra(sh))
        self.output("eq", 1, a.eq(b))
        self.output("ltu", 1, a.ult(b))
        self.output("lts", 1, a.slt(b))
        self.output("les", 1, a.sle(b))
        self.output("mux_", 32, mux(a[0], b, a))
        self.output("cat_", 40, cat(a[7:0], b))
        self.output("orr", 1, a.orr())
        self.output("andr", 1, a.andr())
        self.output("xorr", 1, a.xorr())


class StatefulDesign(Module):
    """A register + memory design for sequential cross-checks."""

    def build(self):
        d = self.input("d", 16)
        acc = self.reg("acc", 16)
        acc <<= (acc + d).trunc(16)
        mem = self.mem("scratch", 32, 16)
        ptr = self.reg("ptr", 5)
        ptr <<= ptr + 1
        self.mem_write(mem, ptr, acc)
        self.output("acc", 16, acc)
        self.output("old", 16, mem.read(ptr))


def _random_stimulus(n, seed):
    rng = random.Random(seed)
    return [
        {"a": rng.getrandbits(32), "b": rng.getrandbits(32),
         "sh": rng.getrandbits(5)}
        for _ in range(n)
    ]


class TestCBackendMatchesPython:
    def test_combinational_ops_match(self):
        circuit = elaborate(AluLike())
        py = RTLSimulator(circuit, backend="python")
        cc = RTLSimulator(circuit, backend="c")
        for stim in _random_stimulus(200, seed=7):
            for sim in (py, cc):
                sim.poke_all(stim)
                sim.eval()
            assert py.peek_all() == cc.peek_all(), stim

    def test_divide_by_zero_matches(self):
        circuit = elaborate(AluLike())
        py = RTLSimulator(circuit, backend="python")
        cc = RTLSimulator(circuit, backend="c")
        for sim in (py, cc):
            sim.poke_all({"a": 1234, "b": 0, "sh": 0})
            sim.eval()
        assert py.peek_all() == cc.peek_all()

    def test_sequential_state_matches(self):
        circuit = elaborate(StatefulDesign())
        py = RTLSimulator(circuit, backend="python")
        cc = RTLSimulator(circuit, backend="c")
        rng = random.Random(3)
        for _ in range(100):
            d = rng.getrandbits(16)
            py.poke("d", d)
            cc.poke("d", d)
            py.step()
            cc.step()
            assert py.peek_all() == cc.peek_all()
        assert py.snapshot().regs == cc.snapshot().regs
        assert py.snapshot().mems == cc.snapshot().mems

    def test_snapshot_roundtrip_across_backends(self):
        circuit = elaborate(StatefulDesign())
        py = RTLSimulator(circuit, backend="python")
        py.poke("d", 5)
        py.step(17)
        snap = py.snapshot()

        cc = RTLSimulator(circuit, backend="c")
        cc.load_snapshot(snap)
        py.poke("d", 9)
        cc.poke("d", 9)
        py.step(10)
        cc.step(10)
        assert py.snapshot().regs == cc.snapshot().regs


def test_make_simulator_auto_prefers_c():
    circuit = elaborate(StatefulDesign())
    sim = make_simulator(circuit, backend="auto")
    assert sim.backend in ("c", "python")
