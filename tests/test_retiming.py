"""End-to-end tests for the retimed-datapath replay mechanism (IV-C3).

A designer-annotated retimed module's gate-level registers cannot be
name-matched, so replays must recover its internal state by forcing the
block's inputs for `latency` cycles (using the input-history shift
registers elaboration adds) before loading the rest of the snapshot.
"""

import random

import pytest

from repro.hdl import Module, elaborate
from repro.sim import RTLSimulator
from repro.gatelevel import (
    synthesize, GateLevelSimulator, match_netlist, verify_equivalence,
)


class PipelinedMac(Module):
    """3-stage multiply-accumulate pipeline, annotated as retimed."""

    def __init__(self, width=8, name=None):
        self.width = width
        super().__init__(name)

    def build(self):
        self.mark_retimed(3)
        a = self.input("a", self.width)
        b = self.input("b", self.width)
        s1 = self.reg("s1", 2 * self.width)
        s1 <<= a * b
        s2 = self.reg("s2", 2 * self.width)
        s2 <<= s1
        s3 = self.reg("s3", 2 * self.width)
        s3 <<= s2
        self.output("p", 2 * self.width, s3)


class MacSystem(Module):
    """A core-like wrapper: accumulates the retimed pipeline's output."""

    def build(self):
        x = self.input("x", 8)
        y = self.input("y", 8)
        mac = self.instance(PipelinedMac(), "fpu")
        mac["a"] <<= x
        mac["b"] <<= y
        acc = self.reg("acc", 24)
        acc <<= (acc + mac["p"]).trunc(24)
        self.output("acc", 24, acc)
        self.output("p", 16, mac["p"])


@pytest.fixture(scope="module")
def system():
    circuit = elaborate(MacSystem())
    netlist, hints = synthesize(circuit)
    return circuit, netlist, hints


class TestRetimedElaboration:
    def test_history_registers_added(self, system):
        circuit, _, _ = system
        paths = {reg.path for reg in circuit.regs}
        for port in ("a", "b"):
            for k in (1, 2, 3):
                assert f"fpu.__rt_hist_{port}_{k}" in paths

    def test_block_recorded(self, system):
        circuit, _, _ = system
        assert len(circuit.retimed_blocks) == 1
        block = circuit.retimed_blocks[0]
        assert block.prefix == "fpu."
        assert block.latency == 3
        assert {rin.name for rin in block.inputs} == {"a", "b"}

    def test_history_regs_track_inputs(self, system):
        circuit, _, _ = system
        sim = RTLSimulator(circuit)
        values = [(3, 4), (5, 6), (7, 8), (9, 10)]
        for x, y in values:
            sim.poke("x", x)
            sim.poke("y", y)
            sim.step()
        # h_k = input at t-k
        assert sim.peek_reg("fpu.__rt_hist_a_1") == 9
        assert sim.peek_reg("fpu.__rt_hist_a_2") == 7
        assert sim.peek_reg("fpu.__rt_hist_a_3") == 5
        assert sim.peek_reg("fpu.__rt_hist_b_1") == 10

    def test_bad_latency_rejected(self):
        class Bad(Module):
            def build(self):
                self.mark_retimed(0)

        with pytest.raises(ValueError):
            elaborate(Bad())


class TestRetimedSynthesis:
    def test_netlist_still_equivalent(self, system):
        circuit, netlist, _ = system
        result = verify_equivalence(circuit, netlist, n_cycles=60, seed=2)
        assert result.equivalent, result.counterexample

    def test_block_registers_unmatchable(self, system):
        circuit, netlist, hints = system
        name_map = match_netlist(circuit, netlist, hints)
        retimed_paths = {p.reg_path for p in name_map.retimed_points()}
        assert any(path.startswith("fpu.s") for path in retimed_paths)
        assert "acc" not in retimed_paths
        # history registers live inside the block -> also unmatchable
        assert any("__rt_hist" in path for path in retimed_paths)

    def test_block_inputs_preserved(self, system):
        _, netlist, hints = system
        assert "fpu.a" in netlist.preserved_nets
        assert "fpu.b" in netlist.preserved_nets
        assert len(netlist.preserved_nets["fpu.a"]) == 8


class TestRetimedReplay:
    def _snapshot_after(self, circuit, n_cycles, seed):
        rtl = RTLSimulator(circuit)
        rng = random.Random(seed)
        trace = []
        for _ in range(n_cycles):
            x, y = rng.getrandbits(8), rng.getrandbits(8)
            rtl.poke("x", x)
            rtl.poke("y", y)
            rtl.step()
            trace.append((x, y))
        future = [(rng.getrandbits(8), rng.getrandbits(8))
                  for _ in range(10)]
        expected = []
        for x, y in future:
            rtl.poke("x", x)
            rtl.poke("y", y)
            rtl.eval()
            rtl.step()
            expected.append(rtl.peek_all())
        return rtl, trace, future, expected

    def test_replay_with_warmup_matches(self, system):
        circuit, netlist, hints = system
        name_map = match_netlist(circuit, netlist, hints)
        rtl = RTLSimulator(circuit)
        rng = random.Random(11)
        for _ in range(25):
            rtl.poke("x", rng.getrandbits(8))
            rtl.poke("y", rng.getrandbits(8))
            rtl.step()
        snap = rtl.snapshot()

        gl = GateLevelSimulator(netlist)
        # Warm-up: force block inputs from the history registers,
        # oldest first (Section IV-C3).
        block = name_map.retimed[0]
        for k in range(block.latency, 0, -1):
            for port_name, _w, label, hist_paths in block.inputs:
                gl.force_label(label, snap.regs[hist_paths[k - 1]])
            gl.step()
        gl.release_all()
        # Now load the matchable state and replay.
        gl.load_dffs(name_map.load_commands(snap.regs))
        for mem_path, contents in snap.mems.items():
            gl.load_sram(mem_path, contents)

        for _ in range(12):
            x, y = rng.getrandbits(8), rng.getrandbits(8)
            for sim in (rtl, gl):
                sim.poke("x", x)
                sim.poke("y", y)
            rtl.eval()
            gl.eval()
            assert rtl.peek_all() == gl.peek_all()
            rtl.step()
            gl.step()

    def test_replay_without_warmup_diverges(self, system):
        """Sanity: skipping the warm-up leaves the pipeline state wrong,
        which is exactly why the paper needs the mechanism."""
        circuit, netlist, hints = system
        name_map = match_netlist(circuit, netlist, hints)
        rtl = RTLSimulator(circuit)
        rng = random.Random(13)
        for _ in range(25):
            rtl.poke("x", rng.getrandbits(8))
            rtl.poke("y", rng.getrandbits(8))
            rtl.step()
        snap = rtl.snapshot()

        gl = GateLevelSimulator(netlist)
        gl.load_dffs(name_map.load_commands(snap.regs))
        mismatched = False
        for _ in range(4):
            x, y = rng.getrandbits(8), rng.getrandbits(8)
            for sim in (rtl, gl):
                sim.poke("x", x)
                sim.poke("y", y)
            rtl.eval()
            gl.eval()
            if rtl.peek_all() != gl.peek_all():
                mismatched = True
                break
            rtl.step()
            gl.step()
        assert mismatched
