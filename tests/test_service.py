"""Resilient Strober job service: spec validation, typed admission
control, deadlines and retries, backend circuit breakers, crash-safe
queue resume, and the service-level chaos campaign (repro.service)."""

import os
import socket
import threading
import time
from types import SimpleNamespace

import pytest

from repro.core import run_strober
from repro.core.replay import ReplayError
from repro.robust import run_service_campaign
from repro.service import (
    JobSpec, ServiceError, ServiceHarness, ServiceJournal,
    load_service_state, result_digest, BackendBreaker,
    ERR_INVALID_REQUEST, ERR_QUEUE_FULL, ERR_DRAINING, ERR_DEADLINE,
    ERR_REPLAY_MISMATCH, ERR_CANCELLED, ERR_UNKNOWN_JOB,
)
import repro.service.daemon as daemon_mod
from repro.service.protocol import encode_line, decode_line

SPEC = dict(design="rocket_mini", workload="towers", sample_size=3,
            replay_length=32, seed=3)


@pytest.fixture(scope="module")
def clean_digest():
    """Digest of a clean serial in-process run of SPEC."""
    return result_digest(run_strober(workers=1, **SPEC).replays)


def _fake_run():
    """A minimal StroberRun stand-in for daemon-behavior tests that
    must not pay for a real flow."""
    replay = SimpleNamespace(
        snapshot_cycle=7, cycles=32, mismatches=0,
        power=SimpleNamespace(total_w=0.001, by_group={"core": 0.001}))
    return SimpleNamespace(
        result=SimpleNamespace(cycles=100), replays=[replay],
        energy=SimpleNamespace(
            power=SimpleNamespace(mean=1.0, relative_error_bound=0.01),
            total_power_mw=1.5, epi_nj=2.0),
        wall_seconds=0.01, health=None, trace_path=None,
        timings={"gl_backend": "interp", "resumed_sim": False,
                 "resumed_replays": 0})


@pytest.fixture
def stub_runs(monkeypatch):
    """Replace the daemon's run_strober with a controllable stub.

    ``gate`` (initially open) blocks in-flight runs; ``fail`` is a
    FIFO of exceptions to raise; ``health`` a FIFO of health reports
    to attach; ``n`` counts calls.
    """
    calls = {"n": 0, "gate": threading.Event(), "fail": [],
             "health": [], "kwargs": [], "inflight": 0,
             "max_inflight": 0}
    calls["gate"].set()
    guard = threading.Lock()

    def fake(design, workload, **kwargs):
        with guard:
            calls["n"] += 1
            calls["kwargs"].append(kwargs)
            calls["inflight"] += 1
            calls["max_inflight"] = max(calls["max_inflight"],
                                        calls["inflight"])
        try:
            if not calls["gate"].wait(60):
                raise RuntimeError("test gate never opened")
            with guard:
                if calls["fail"]:
                    raise calls["fail"].pop(0)
                run = _fake_run()
                if calls["health"]:
                    run.health = calls["health"].pop(0)
            return run
        finally:
            with guard:
                calls["inflight"] -= 1

    monkeypatch.setattr(daemon_mod, "run_strober", fake)
    return calls


def _harness(tmp_path, **kwargs):
    kwargs.setdefault("retry_backoff_s", 0.01)
    return ServiceHarness(state_dir=str(tmp_path / "state"), **kwargs)


class TestJobSpecValidation:
    def test_minimal_spec_round_trips(self):
        spec = JobSpec.from_dict(dict(SPEC))
        assert spec.design == "rocket_mini"
        assert JobSpec.from_dict(spec.as_dict()).as_dict() == \
            spec.as_dict()

    @pytest.mark.parametrize("bad", [
        None,
        {"workload": "towers"},
        {"design": "rocket_mini"},
        {"design": "no-such-design", "workload": "towers"},
        {"design": "rocket_mini", "workload": "no-such-workload"},
        {**SPEC, "bogus_field": 1},
        {**SPEC, "sample_size": 0},
        {**SPEC, "sample_size": "four"},
        {**SPEC, "workers": 0},
        {**SPEC, "batch_lanes": 65},
        {**SPEC, "confidence": 1.5},
        {**SPEC, "deadline_s": -1},
        {**SPEC, "gl_backend": "fortran"},
        {**SPEC, "faults": [{"kind": "meteor"}]},
        {**SPEC, "faults": [{"kind": "kill", "wat": 1}]},
        {**SPEC, "v": 99},
    ])
    def test_bad_specs_raise_typed_invalid_request(self, bad):
        with pytest.raises(ServiceError) as err:
            JobSpec.from_dict(bad)
        assert err.value.type == ERR_INVALID_REQUEST

    def test_faults_compile_to_a_plan(self):
        spec = JobSpec.from_dict(
            {**SPEC, "faults": [{"kind": "kill", "times": 2}]})
        plan = spec.fault_plan()
        assert plan.specs[0].kind == "kill"
        assert plan.specs[0].times == 2

    def test_line_framing_round_trip(self):
        line = encode_line({"cmd": "ping", "x": [1, 2]})
        assert line.endswith(b"\n")
        assert decode_line(line) == {"cmd": "ping", "x": [1, 2]}
        with pytest.raises(ServiceError):
            decode_line(b"not json\n")
        with pytest.raises(ServiceError):
            decode_line(b"[1, 2]\n")


class TestBreakerLadder:
    def test_walks_c_compiled_interp_and_stops(self):
        breaker = BackendBreaker("d", threshold=2)
        assert breaker.effective("c") == "c"
        assert breaker.record_failure("c") is None          # 1 of 2
        event = breaker.record_failure("c")
        assert event["from"] == "c" and event["to"] == "compiled"
        assert breaker.effective("c") == "compiled"
        assert breaker.effective("auto") == "compiled"
        assert breaker.effective("interp") == "interp"
        breaker.record_failure("compiled")
        event = breaker.record_failure("compiled")
        assert event["to"] == "interp"
        assert breaker.effective("c") == "interp"
        # interp is the floor: crashes there never demote further
        assert breaker.record_failure("interp", count=10) is None
        assert breaker.effective("c") == "interp"

    def test_auto_requests_pass_through_until_demoted(self):
        breaker = BackendBreaker("d", threshold=1)
        assert breaker.effective("auto") == "auto"
        assert breaker.effective(None) is None
        breaker.record_failure("auto")
        assert breaker.effective(None) == "compiled"

    def test_cooldown_probes_one_rung_back_up(self):
        breaker = BackendBreaker("d", threshold=1, cooldown_s=0.0)
        breaker.record_failure("c")
        assert breaker.floor == 1
        # cooldown elapsed: the next decision probes the better rung
        assert breaker.effective("c") == "c"
        assert breaker.floor == 0

    def test_as_dict_reports_floor_and_history(self):
        breaker = BackendBreaker("d", threshold=1)
        breaker.record_failure("c", reason="storm")
        info = breaker.as_dict()
        assert info["floor"] == "compiled"
        assert info["demotions"][0]["reason"] == "storm"


class TestEndToEnd:
    def test_submit_wait_bit_identical_with_live_status(
            self, tmp_path, clean_digest):
        with _harness(tmp_path) as harness:
            with harness.client() as client:
                assert client.ping() == "serving"
                job_id = client.submit(**SPEC)
                job = client.wait(job_id, timeout_s=300)
                status = client.status()
        assert job["state"] == "done"
        assert job["digest"] == clean_digest
        assert job["summary"]["snapshots"] == SPEC["sample_size"]
        assert job["last_phase"] == "phase.energy"   # span-stream fed
        assert job["spans"] > 0
        assert status["jobs"] == {"done": 1}
        assert status["last_span"] is not None
        assert "service.jobs_done" in status["metrics"]

    def test_malformed_request_line_gets_typed_error(self, tmp_path,
                                                     stub_runs):
        with _harness(tmp_path) as harness:
            address = harness.address
            with socket.create_connection(
                    (address["host"], address["port"]), timeout=30) as s:
                f = s.makefile("rwb")
                f.write(b"this is not json\n")
                f.flush()
                response = decode_line(f.readline())
        assert response["ok"] is False
        assert response["error"]["type"] == ERR_INVALID_REQUEST

    def test_unknown_job_and_unknown_command(self, tmp_path, stub_runs):
        with _harness(tmp_path) as harness:
            with harness.client() as client:
                with pytest.raises(ServiceError) as err:
                    client.wait("job-999999")
                assert err.value.type == ERR_UNKNOWN_JOB
                with pytest.raises(ServiceError) as err:
                    client.request("frobnicate")
                assert err.value.type == ERR_INVALID_REQUEST


class TestAdmissionAndLifecycle:
    def test_queue_full_is_a_typed_rejection(self, tmp_path, stub_runs):
        stub_runs["gate"].clear()
        with _harness(tmp_path, max_queue=1, max_running=1) as harness:
            with harness.client() as client:
                running = client.submit(**SPEC)
                queued = client.submit(**SPEC)
                with pytest.raises(ServiceError) as err:
                    client.submit(**SPEC)
                assert err.value.type == ERR_QUEUE_FULL
                stub_runs["gate"].set()
                assert client.wait(running, timeout_s=60)["state"] == \
                    "done"
                assert client.wait(queued, timeout_s=60)["state"] == \
                    "done"

    def test_drain_finishes_queue_then_rejects(self, tmp_path,
                                               stub_runs):
        stub_runs["gate"].clear()
        with _harness(tmp_path) as harness:
            with harness.client() as client:
                first = client.submit(**SPEC)
                second = client.submit(**SPEC)
                assert client.drain() == "draining"
                with pytest.raises(ServiceError) as err:
                    client.submit(**SPEC)
                assert err.value.type == ERR_DRAINING
                stub_runs["gate"].set()
                assert client.wait(first, timeout_s=60)["state"] == "done"
                assert client.wait(second, timeout_s=60)["state"] == \
                    "done"
                assert client.status()["state"] == "drained"

    def test_deadline_is_terminal_and_does_not_wedge_the_queue(
            self, tmp_path, stub_runs):
        stub_runs["gate"].clear()
        try:
            with _harness(tmp_path) as harness:
                with harness.client() as client:
                    slow = client.submit(deadline_s=0.3, retries=0,
                                         **SPEC)
                    job = client.wait(slow, timeout_s=60)
                    assert job["state"] == "failed"
                    assert job["error"]["type"] == ERR_DEADLINE
                    # the abandoned attempt owns its thread; the queue
                    # must keep moving
                    stub_runs["gate"].set()
                    quick = client.submit(**SPEC)
                    assert client.wait(quick, timeout_s=60)["state"] == \
                        "done"
        finally:
            stub_runs["gate"].set()

    def test_recoverable_faults_retry_with_backoff_then_succeed(
            self, tmp_path, stub_runs):
        stub_runs["fail"] = [OSError("transient 1"), OSError("transient 2")]
        with _harness(tmp_path, job_retries=2,
                      breaker_threshold=10) as harness:
            with harness.client() as client:
                job = client.wait(client.submit(**SPEC), timeout_s=60)
        assert job["state"] == "done"
        assert job["attempts"] == 3

    def test_deterministic_failures_never_retry(self, tmp_path,
                                                stub_runs):
        stub_runs["fail"] = [ReplayError("output mismatch at cycle 3")]
        with _harness(tmp_path, job_retries=5) as harness:
            with harness.client() as client:
                job = client.wait(client.submit(**SPEC), timeout_s=60)
        assert job["state"] == "failed"
        assert job["error"]["type"] == ERR_REPLAY_MISMATCH
        assert job["attempts"] == 1
        assert stub_runs["n"] == 1

    def test_cancel_queued_job(self, tmp_path, stub_runs):
        stub_runs["gate"].clear()
        with _harness(tmp_path) as harness:
            with harness.client() as client:
                running = client.submit(**SPEC)
                queued = client.submit(**SPEC)
                assert client.cancel(queued)["cancelled"] is True
                job = client.job(queued)
                assert job["state"] == "cancelled"
                assert job["error"]["type"] == ERR_CANCELLED
                stub_runs["gate"].set()
                assert client.wait(running, timeout_s=60)["state"] == \
                    "done"
        assert stub_runs["n"] == 1     # the cancelled job never ran

    def test_same_design_jobs_serialize_on_the_design_lock(
            self, tmp_path, stub_runs):
        """Two running slots, one design: the cached circuit pair and
        replay engine are stateful per design, so the attempts must
        never overlap even when the scheduler runs both jobs."""
        stub_runs["gate"].clear()
        with _harness(tmp_path, max_running=2) as harness:
            with harness.client() as client:
                first = client.submit(**SPEC)
                second = client.submit(**SPEC)
                time.sleep(0.3)
                status = client.status()
                assert len(status["running"]) == 2   # both hold a slot
                assert stub_runs["inflight"] == 1    # only one executes
                stub_runs["gate"].set()
                assert client.wait(first, timeout_s=60)["state"] == \
                    "done"
                assert client.wait(second, timeout_s=60)["state"] == \
                    "done"
        assert stub_runs["max_inflight"] == 1

    def test_job_tracer_carries_job_id_correlation(self, tmp_path,
                                                   stub_runs):
        """Every attempt's tracer is born with the job id as its
        correlation dict, so all spans (worker processes included, via
        the supervisor payload) are joinable per job."""
        with _harness(tmp_path) as harness:
            with harness.client() as client:
                job_id = client.submit(**SPEC)
                assert client.wait(job_id,
                                   timeout_s=60)["state"] == "done"
        tracer = stub_runs["kwargs"][0]["tracer"]
        assert tracer.correlation == {"job_id": job_id}

    def test_metrics_command_and_http_scrape(self, tmp_path,
                                             stub_runs):
        import urllib.error
        import urllib.request
        from repro.obs import validate_exposition
        with _harness(tmp_path, metrics_port=0) as harness:
            with harness.client() as client:
                client.wait(client.submit(**SPEC), timeout_s=60)
                response = client.request("metrics")
                assert response["content_type"].startswith("text/plain")
                page = client.metrics()
                assert validate_exposition(page) == []
                assert "repro_service_jobs_done_total" in page
                assert "repro_service_uptime_seconds" in page
                assert "repro_service_queue_depth" in page
                assert "repro_process_rss_bytes" in page
                assert "repro_service_job_seconds_bucket" in page
                count = [line for line in page.splitlines()
                         if line.startswith(
                             "repro_service_job_seconds_count ")]
                assert count and float(count[0].split()[-1]) >= 1
                # The HTTP listener serves the same exposition.
                host, port = harness.service.metrics_address
                url = f"http://{host}:{port}/metrics"
                with urllib.request.urlopen(url, timeout=30) as resp:
                    ctype = resp.headers.get("Content-Type", "")
                    http_page = resp.read().decode()
                assert ctype.startswith("text/plain")
                assert "version=0.0.4" in ctype
                assert validate_exposition(http_page) == []
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(
                        f"http://{host}:{port}/else", timeout=30)
                assert err.value.code == 404

    def test_metrics_breaker_floor_labels(self, tmp_path, stub_runs,
                                          monkeypatch):
        monkeypatch.setattr(daemon_mod, "quarantine_compiled_kernel",
                            lambda design: None)
        # Threshold 3: two crashes accumulate as charges without
        # demoting, so both the floor-info and the failure-count
        # families render with their labels.
        stub_runs["health"] = [SimpleNamespace(crashes=2, timeouts=0),
                              SimpleNamespace(crashes=1, timeouts=0)]
        with _harness(tmp_path, breaker_threshold=3) as harness:
            with harness.client() as client:
                job = client.wait(client.submit(gl_backend="c", **SPEC),
                                  timeout_s=60)
                charged = client.metrics()
                job2 = client.wait(client.submit(gl_backend="c",
                                                 **SPEC), timeout_s=60)
                demoted = client.metrics()
        assert job["state"] == job2["state"] == "done"
        assert ('repro_service_breaker_floor_info'
                '{design="rocket_mini",floor="none"} 1') in charged
        assert ('repro_service_breaker_failures'
                '{backend="c",design="rocket_mini"} 2') in charged
        # The third crash tips the threshold: floor moves to compiled
        # and the rung's charges reset.
        assert ('repro_service_breaker_floor_info'
                '{design="rocket_mini",floor="compiled"} 1') in demoted
        from repro.obs import validate_exposition
        assert validate_exposition(charged) == []
        assert validate_exposition(demoted) == []

    def test_breaker_demotion_reported_in_job_status(
            self, tmp_path, stub_runs, monkeypatch):
        monkeypatch.setattr(daemon_mod, "quarantine_compiled_kernel",
                            lambda design: "/quarantine/glso.pkl")
        # two crashes on the first job trip the threshold
        stub_runs["health"] = [SimpleNamespace(crashes=2, timeouts=0)]
        with _harness(tmp_path, breaker_threshold=2) as harness:
            with harness.client() as client:
                stormy = client.wait(client.submit(gl_backend="c",
                                                   **SPEC),
                                     timeout_s=60)
                calm = client.wait(client.submit(gl_backend="c", **SPEC),
                                   timeout_s=60)
                breakers = client.status()["breakers"]
        assert stormy["state"] == calm["state"] == "done"
        assert stormy["backends"] == ["c"]
        assert stormy["crashes"] == 2
        event = stormy["demotions"][0]
        assert event["from"] == "c" and event["to"] == "compiled"
        assert event["quarantined"] == "/quarantine/glso.pkl"
        assert calm["backends"] == ["compiled"]    # capped by the floor
        assert breakers["rocket_mini"]["floor"] == "compiled"


class TestQueueResume:
    def test_restart_resumes_pending_without_recomputing_finished(
            self, tmp_path, stub_runs):
        state_dir = str(tmp_path / "state")
        os.makedirs(state_dir)
        spec = JobSpec.from_dict(dict(SPEC))
        with ServiceJournal(os.path.join(state_dir,
                                         "jobs.journal")) as journal:
            journal.job_accepted("job-000001", spec.as_dict())
            journal.job_finished("job-000001", "done", digest="d1",
                                 summary={"cycles": 1})
            journal.job_accepted("job-000002", spec.as_dict())
        with ServiceHarness(state_dir=state_dir) as harness:
            with harness.client() as client:
                pending = client.wait("job-000002", timeout_s=60)
                finished = client.job("job-000001")
                fresh = client.submit(**SPEC)   # numbering continues
        assert finished["state"] == "done"
        assert finished["digest"] == "d1"
        assert finished["resumed"] is True
        assert pending["state"] == "done" and pending["resumed"] is True
        assert fresh == "job-000003"    # numbering survives restart
        assert stub_runs["n"] == 2      # job-000002 and job-000003 only
        state = load_service_state(os.path.join(state_dir,
                                                "jobs.journal"))
        assert not state.pending        # drain finished everything
        assert set(state.finished) == {"job-000001", "job-000002",
                                       "job-000003"}


class TestChaosCampaign:
    def test_every_service_fault_recovered(self):
        """Acceptance: under client disconnects, a poisoned compiled
        kernel, a worker SIGKILL storm (walking the full demotion
        ladder), ENOSPC on the cache, and a daemon SIGKILL+restart,
        every job completes bit-identically to a clean run or fails
        typed — and the campaign itself is bounded (no hangs)."""
        verdicts = run_service_campaign(timeout=300.0)
        assert set(verdicts) == {
            "client-disconnect", "poisoned-glso", "worker-kill-storm",
            "enospc", "daemon-restart"}
        assert all(v == "recovered" for v in verdicts.values()), verdicts
