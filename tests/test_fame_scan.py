"""Tests for the FAME1 transform, channels, scan chains, and snapshots."""

import pytest

from repro.hdl import Module, elaborate
from repro.sim import RTLSimulator
from repro.fame import (
    fame1_transform, is_fame1, Fame1Error, HOST_ENABLE,
    Channel, TraceBuffer, ChannelError,
    Fame1Simulator, Endpoint, ConstantEndpoint,
)
from repro.scan import (
    build_scan_chain_spec, insert_scan_chains, ReplayableSnapshot,
    SnapshotError,
)


class PipelinedAccumulator(Module):
    """Small sequential design with a memory, used across these tests."""

    def build(self):
        d = self.input("d", 8)
        stage1 = self.reg("stage1", 8)
        stage1 <<= d
        acc = self.reg("acc", 16)
        acc <<= (acc + stage1).trunc(16)
        log = self.mem("log", 16, 16)
        wptr = self.reg("wptr", 4)
        wptr <<= wptr + 1
        self.mem_write(log, wptr, acc)
        self.output("acc", 16, acc)


class TestFame1Transform:
    def test_host_enable_gates_registers(self):
        circuit = elaborate(PipelinedAccumulator())
        fame1_transform(circuit)
        sim = RTLSimulator(circuit)
        sim.poke("d", 3)
        sim.poke(HOST_ENABLE, 1)
        sim.step(4)
        acc_running = sim.peek_reg("acc")
        assert acc_running > 0
        sim.poke(HOST_ENABLE, 0)
        sim.step(10)
        assert sim.peek_reg("acc") == acc_running  # fully stalled

    def test_host_enable_gates_memory_writes(self):
        circuit = elaborate(PipelinedAccumulator())
        fame1_transform(circuit)
        sim = RTLSimulator(circuit)
        sim.poke("d", 1)
        sim.poke(HOST_ENABLE, 0)
        sim.step(8)
        assert all(sim.read_mem("log", i) == 0 for i in range(16))

    def test_double_transform_rejected(self):
        circuit = elaborate(PipelinedAccumulator())
        fame1_transform(circuit)
        assert is_fame1(circuit)
        with pytest.raises(Fame1Error):
            fame1_transform(circuit)

    def test_transform_preserves_behaviour_when_enabled(self):
        plain = elaborate(PipelinedAccumulator())
        famed = elaborate(PipelinedAccumulator())
        fame1_transform(famed)
        s1 = RTLSimulator(plain)
        s2 = RTLSimulator(famed)
        s2.poke(HOST_ENABLE, 1)
        for d in [1, 2, 3, 5, 8, 13]:
            s1.poke("d", d)
            s2.poke("d", d)
            s1.step()
            s2.step()
            assert s1.peek("acc") == s2.peek("acc")


class TestChannels:
    def test_fifo_order(self):
        ch = Channel("c", 8, "input")
        ch.push(1)
        ch.push(2)
        assert ch.pop() == 1
        assert ch.pop() == 2

    def test_overflow_underflow(self):
        ch = Channel("c", 8, "output", depth=1)
        ch.push(5)
        with pytest.raises(ChannelError):
            ch.push(6)
        ch.pop()
        with pytest.raises(ChannelError):
            ch.pop()

    def test_trace_buffer_keeps_last_n(self):
        buf = TraceBuffer(3)
        for i in range(10):
            buf.record(i)
        assert buf.contents() == [7, 8, 9]

    def test_trace_buffer_validation(self):
        with pytest.raises(ValueError):
            TraceBuffer(0)


class TestScanChainSpec:
    def test_pack_unpack_roundtrip(self):
        circuit = elaborate(PipelinedAccumulator())
        spec = build_scan_chain_spec(circuit, scan_width=8)
        values = {"stage1": 0xAB, "acc": 0x1234, "wptr": 0x9}
        assert spec.unpack_registers(spec.pack_registers(values)) == values

    def test_readout_cost_scales_with_state(self):
        circuit = elaborate(PipelinedAccumulator())
        spec8 = build_scan_chain_spec(circuit, scan_width=8)
        spec32 = build_scan_chain_spec(circuit, scan_width=32)
        assert spec8.readout_cycles() > spec32.readout_cycles()
        assert spec8.readout_cycles(include_rams=False) < \
            spec8.readout_cycles(include_rams=True)

    def test_reg_bits(self):
        circuit = elaborate(PipelinedAccumulator())
        spec = build_scan_chain_spec(circuit)
        assert spec.reg_bits == 8 + 16 + 4


class TestHardwareScanChains:
    def _scan_out_registers(self, sim, spec):
        sim.poke("scan_capture", 1)
        sim.poke("scan_shift", 0)
        sim.step()
        sim.poke("scan_capture", 0)
        words = []
        for _ in range(spec.chain_words):
            sim.eval()
            words.append(sim.peek("scan_out"))
            sim.poke("scan_shift", 1)
            sim.step()
        sim.poke("scan_shift", 0)
        return words

    def test_hardware_chain_matches_metadata_packing(self):
        circuit = elaborate(PipelinedAccumulator())
        fame1_transform(circuit)
        spec = insert_scan_chains(circuit, scan_width=8)
        sim = RTLSimulator(circuit)
        sim.poke_all({"d": 7, HOST_ENABLE: 1, "scan_capture": 0,
                      "scan_shift": 0, "scan_ram_0_shift": 0})
        sim.step(5)
        sim.poke(HOST_ENABLE, 0)  # stall target, then scan
        expected = {path: sim.peek_reg(path) for path, _ in spec.reg_chain}
        words = self._scan_out_registers(sim, spec)
        assert spec.unpack_registers(words) == expected

    def test_hardware_ram_chain_reads_all_entries(self):
        circuit = elaborate(PipelinedAccumulator())
        fame1_transform(circuit)
        insert_scan_chains(circuit, scan_width=8)
        sim = RTLSimulator(circuit)
        sim.poke_all({"d": 1, HOST_ENABLE: 1, "scan_capture": 0,
                      "scan_shift": 0, "scan_ram_0_shift": 0})
        sim.step(20)  # fill the log memory
        sim.poke(HOST_ENABLE, 0)
        expected = [sim.read_mem("log", i) for i in range(16)]
        sim.poke("scan_capture", 1)
        sim.step()
        sim.poke("scan_capture", 0)
        sim.poke("scan_ram_0_shift", 1)
        got = []
        for _ in range(16):
            sim.step()
            sim.eval()  # sample the shadow register post-edge
            got.append(sim.peek("scan_ram_0_out"))
        assert got == expected


class _Stim(Endpoint):
    """Drives `d` with an incrementing pattern."""

    def __init__(self):
        self.value = 0

    def reset(self):
        self.value = 0

    def tick(self, outputs):
        self.value += 1
        return {"d": self.value & 0xFF}


class TestFame1Simulator:
    def _build(self, **kwargs):
        circuit = elaborate(PipelinedAccumulator())
        return Fame1Simulator(circuit, [_Stim()], backend="python",
                              **kwargs)

    def test_runs_and_counts_cycles(self):
        fame = self._build()
        fame.run(max_cycles=100)
        assert fame.stats.target_cycles == 100
        assert fame.stats.host_cycles >= 100

    def test_io_stall_overhead_accounted(self):
        fame = self._build(io_stall_period=10, io_stall_cycles=3)
        fame.run(max_cycles=100)
        assert fame.stats.io_stall_host_cycles == 10 * 3

    def test_stop_fn(self):
        fame = self._build()
        fame.run(max_cycles=10000,
                 stop_fn=lambda outs: outs["acc"] > 50)
        assert fame.stats.target_cycles < 10000

    def test_sampling_produces_complete_snapshots(self):
        fame = self._build(replay_length=8, sample_size=5, seed=1)
        fame.run(max_cycles=400)
        snaps = fame.snapshots
        assert 1 <= len(snaps) <= 5
        for snap in snaps:
            snap.validate()
            assert len(snap.input_trace) == 8
            assert snap.cycle % 8 == 0

    def test_record_count_grows_sublinearly(self):
        fame_short = self._build(replay_length=4, sample_size=5, seed=2)
        fame_short.run(max_cycles=200)
        fame_long = self._build(replay_length=4, sample_size=5, seed=2)
        fame_long.run(max_cycles=2000)
        assert fame_long.stats.record_count < \
            10 * fame_short.stats.record_count

    def test_snapshot_replay_on_rtl_matches_original(self):
        """The core Strober property at RTL level: loading a snapshot and
        replaying its input trace reproduces the recorded output trace."""
        fame = self._build(replay_length=16, sample_size=4, seed=3)
        fame.run(max_cycles=600)
        # Replays run on the *plain* design (the gate-level netlist is of
        # the original RTL, not the FAME1-transformed simulator).
        replay_circuit = elaborate(PipelinedAccumulator())
        rtl = RTLSimulator(replay_circuit)
        for snap in fame.snapshots:
            rtl.load_snapshot(snap.state)
            for inputs, expected in zip(snap.input_trace,
                                        snap.output_trace):
                rtl.poke_all(inputs)
                rtl.step()
                for name, value in expected.items():
                    assert rtl.peek(name) == value, snap.cycle

    def test_modeled_time(self):
        fame = self._build(host_freq_hz=1000.0)
        fame.run(max_cycles=500)
        assert fame.modeled_sim_seconds() >= 0.5


class TestSnapshotObject:
    def test_incomplete_snapshot_fails_validation(self):
        snap = ReplayableSnapshot(cycle=0, state=None, replay_length=4)
        snap.record_cycle({"a": 1}, {"b": 2})
        with pytest.raises(SnapshotError):
            snap.validate()

    def test_window_is_bounded(self):
        snap = ReplayableSnapshot(cycle=0, state=None, replay_length=2)
        for i in range(5):
            snap.record_cycle({"a": i}, {"b": i})
        assert len(snap.input_trace) == 2
        assert snap.input_trace[-1] == {"a": 1}


def test_constant_endpoint():
    ep = ConstantEndpoint({"x": 3})
    assert ep.tick({}) == {"x": 3}
