"""Shared test fixtures.

The run-history store (repro.obs.store) appends one row per real
``run_strober`` call at teardown.  Tests run plenty of real flows, and
those rows must not accumulate in the developer's ``~/.cache`` — so
the whole session points ``REPRO_OBS_HISTORY`` at a temp file.  The
hook itself stays active (and exercised); store-specific tests
override the variable with ``monkeypatch`` as needed.
"""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _hermetic_history(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs-history") / "history.jsonl"
    old = os.environ.get("REPRO_OBS_HISTORY")
    os.environ["REPRO_OBS_HISTORY"] = str(path)
    yield
    if old is None:
        os.environ.pop("REPRO_OBS_HISTORY", None)
    else:
        os.environ["REPRO_OBS_HISTORY"] = old
