"""Observability layer (repro.obs): span nesting and ordering, the
no-op tracer's overhead bound, metrics registry semantics, Chrome-trace
export schema, cross-process capture under the replay worker pool,
cache-stats-from-registry visibility, the report CLI, and the
tolerant ``_merge_timings``."""

import json
import threading
import time

import pytest

from repro.core import run_strober
from repro.core.flow import _merge_timings
from repro.obs import (
    MetricsRegistry, NullTracer, Tracer, chrome_trace_events,
    export_chrome_trace, export_metrics_jsonl, get_registry, get_tracer,
    load_trace, set_tracer, tracing_enabled,
)
from repro.obs.report import (
    build_phase_tree, phase_coverage, render_report, root_pid,
    root_span, sampling_series, worker_rows,
)
from repro.parallel import cache_stats, reset_cache_stats


@pytest.fixture
def tracer():
    """A collecting tracer installed for the duration of one test."""
    t = Tracer()
    prev = set_tracer(t)
    yield t
    set_tracer(prev)


class TestSpans:
    def test_nesting_links_parent_child(self, tracer):
        with tracer.span("outer", cat="t") as outer:
            with tracer.span("inner", cat="t") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # completion order: inner closes first
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_span_timing_and_attrs(self, tracer):
        with tracer.span("work", cat="t", fixed=1) as span:
            time.sleep(0.01)
            span.set(late=2)
        rec = tracer.find("work")[0]
        assert rec.dur >= 0.01
        assert rec.ts > 0
        assert rec.args == {"fixed": 1, "late": 2}
        assert rec.pid > 0 and rec.tid > 0

    def test_exception_recorded_and_propagated(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        rec = tracer.find("boom")[0]
        assert rec.args["error"] == "ValueError"

    def test_sibling_ordering(self, tracer):
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        names = [s.name for s in tracer.spans]
        assert names == ["a", "b", "c"]
        ts = [s.ts for s in tracer.spans]
        assert ts == sorted(ts)

    def test_threads_get_independent_stacks(self, tracer):
        seen = {}

        def worker(tag):
            with tracer.span(f"thread.{tag}") as span:
                seen[tag] = span.parent_id

        with tracer.span("main"):
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # the "main" span belongs to the main thread's stack only; the
        # worker threads' spans must not claim it as parent
        assert all(parent is None for parent in seen.values())

    def test_drain_ingest_round_trip(self, tracer):
        with tracer.span("shipped", cat="w", k=1):
            pass
        tracer.instant("incident", cat="w", detail="d")
        tracer.counter("level", 3.5)
        payload = tracer.drain()
        assert tracer.spans == [] and tracer.events == []
        other = Tracer()
        other.ingest(payload)
        assert other.find("shipped")[0].args == {"k": 1}
        assert other.events[0]["name"] == "incident"
        assert other.counters[0]["value"] == 3.5


class TestNullTracer:
    def test_default_tracer_is_null(self):
        assert isinstance(get_tracer(), NullTracer)
        assert not tracing_enabled()

    def test_null_records_nothing(self):
        null = NullTracer()
        with null.span("x", cat="y", a=1) as span:
            span.set(b=2)
        null.instant("e")
        null.counter("c", 1)
        assert null.drain() is None
        assert not null.enabled

    def test_noop_overhead_bound(self):
        """Instrumentation left in hot loops must stay near-free when
        tracing is off: the no-op span adds at most a few hundred ns
        per call over the bare loop."""
        null = NullTracer()
        n = 50_000

        def bare():
            acc = 0
            for i in range(n):
                acc += i
            return acc

        def spanned():
            acc = 0
            for i in range(n):
                with null.span("hot"):
                    acc += i
            return acc

        bare()     # warm up
        spanned()
        t0 = time.perf_counter()
        bare()
        t_bare = time.perf_counter() - t0
        t0 = time.perf_counter()
        spanned()
        t_spanned = time.perf_counter() - t0
        per_call = (t_spanned - t_bare) / n
        assert per_call < 2e-6


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        reg.gauge("g").set(7)
        hist = reg.histogram("h", (1, 4, 16))
        for v in (0.5, 3, 3, 100):
            hist.observe(v)
        assert reg.value("c") == 3.5
        assert reg.value("g") == 7.0
        assert reg.value("h") == pytest.approx((0.5 + 3 + 3 + 100) / 4)
        assert hist.counts == [1, 2, 0, 1]
        assert reg.value("missing", default=-1) == -1

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_merge_semantics(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(1)
        reg.gauge("g").set(1)
        reg.histogram("h", (10,)).observe(5)
        worker = MetricsRegistry()
        worker.counter("c").inc(4)
        worker.gauge("g").set(9)
        worker.histogram("h", (10,)).observe(20)
        reg.merge(worker.drain())
        assert worker.snapshot() == {}          # drain resets
        assert reg.value("c") == 5.0            # counters add
        assert reg.value("g") == 9.0            # gauges take newest
        assert reg.get("h").counts == [1, 1]    # buckets add
        assert reg.get("h").count == 2

    def test_merge_histogram_boundary_mismatch(self):
        reg = MetricsRegistry()
        reg.histogram("h", (10,))
        with pytest.raises(ValueError):
            reg.merge({"h": {"kind": "histogram", "boundaries": [99],
                             "counts": [0, 0], "total": 0, "count": 0}})

    def test_reset_prefix(self):
        reg = MetricsRegistry()
        reg.counter("a.x").inc()
        reg.counter("b.y").inc()
        reg.reset("a.")
        assert reg.value("a.x") == 0.0
        assert reg.value("b.y") == 1.0


class TestChromeExport:
    def test_schema(self, tracer, tmp_path):
        with tracer.span("root", cat="flow"):
            with tracer.span("child", cat="flow", lanes=4):
                pass
        tracer.instant("mark", cat="ev")
        tracer.counter("track", 1.0)
        reg = MetricsRegistry()
        reg.counter("m").inc()
        path = tmp_path / "t.json"
        export_chrome_trace(path, tracer, registry=reg,
                            meta={"design": "d"})
        doc = load_trace(path)
        events = doc["traceEvents"]
        assert isinstance(events, list)
        by_ph = {}
        for ev in events:
            by_ph.setdefault(ev["ph"], []).append(ev)
        for ev in by_ph["X"]:
            assert {"name", "cat", "ts", "dur", "pid", "tid",
                    "args"} <= set(ev)
            assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert len(by_ph["X"]) == 2
        assert by_ph["i"][0]["s"] == "p"
        assert by_ph["C"][0]["args"] == {"value": 1.0}
        assert by_ph["M"][0]["name"] == "process_name"
        # child interval contained in parent's (report relies on this)
        child = next(e for e in by_ph["X"] if e["name"] == "child")
        root = next(e for e in by_ph["X"] if e["name"] == "root")
        assert root["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1
        assert doc["reproMeta"]["design"] == "d"
        assert doc["reproMetrics"]["m"]["value"] == 1.0

    def test_non_json_attrs_stringified(self, tracer):
        with tracer.span("s", obj=object(), ok=3):
            pass
        events, _ = chrome_trace_events(tracer)
        args = events[0]["args"]
        assert args["ok"] == 3
        assert isinstance(args["obj"], str)
        json.dumps(events)      # must not raise

    def test_load_trace_rejects_non_trace(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{\"nope\": 1}")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_metrics_jsonl(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(3)
        path = tmp_path / "m.jsonl"
        export_metrics_jsonl(path, reg)
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines == [
            {"kind": "counter", "name": "a", "value": 2.0},
            {"kind": "gauge", "name": "b", "value": 3.0},
        ]


class TestCacheStatsRegistry:
    def test_stats_are_registry_backed(self):
        reset_cache_stats()
        stats = cache_stats()
        assert stats == {"hits": 0, "misses": 0, "corrupt_dropped": 0,
                         "put_skipped": 0, "sched_seconds_saved": 0.0,
                         "glso.stale": 0, "quarantined": 0}
        assert all(isinstance(v, int) for k, v in stats.items()
                   if k != "sched_seconds_saved")
        get_registry().counter("cache.hits").inc(3)
        assert cache_stats()["hits"] == 3
        reset_cache_stats()
        assert cache_stats()["hits"] == 0


class TestMergeTimings:
    class _FakeReport:
        pipeline = "fake"

        def per_pass_seconds(self):
            return {"p1": 1.0, "p2": 2.0}

        def as_dict(self):
            return {"pipeline": self.pipeline}

    def test_none_mid_list_does_not_drop_later_reports(self):
        """A None report anywhere in the list (resumed sim, cache-hit
        flow) must not stop later pipelines' pass timings from being
        merged."""
        timings = _merge_timings({}, ("sim_pipeline", None),
                                 ("asic_pipeline", self._FakeReport()))
        assert timings["sim_pipeline"] is None
        assert timings["asic_pipeline"] == {"pipeline": "fake"}
        assert timings["passes"] == {"fake/p1": 1.0, "fake/p2": 2.0}

    def test_report_without_per_pass_seconds_tolerated(self):
        timings = _merge_timings({}, ("asic_pipeline", object()))
        assert timings["asic_pipeline"] is None
        assert timings["passes"] == {}

    def test_all_present(self):
        timings = _merge_timings({"x": 1}, ("a", self._FakeReport()),
                                 ("b", self._FakeReport()))
        assert timings["x"] == 1
        assert timings["a"] == timings["b"] == {"pipeline": "fake"}


@pytest.fixture(scope="module")
def traced_worker_run(tmp_path_factory):
    """One small end-to-end run, traced, with a 2-process worker pool."""
    path = tmp_path_factory.mktemp("obs") / "trace.json"
    run = run_strober("rocket_mini", "towers", sample_size=6,
                      replay_length=32, backend="auto", seed=3,
                      workers=2, batch_lanes=2, trace=str(path))
    return run, load_trace(path)


class TestEndToEndTrace:
    def test_trace_path_recorded(self, traced_worker_run):
        run, doc = traced_worker_run
        assert run.trace_path.endswith("trace.json")

    def test_spans_from_distinct_pids(self, traced_worker_run):
        _, doc = traced_worker_run
        pids = {ev["pid"] for ev in doc["traceEvents"]
                if ev["ph"] == "X"}
        assert len(pids) >= 3      # parent + 2 replay workers

    def test_worker_parent_links_intact(self, traced_worker_run):
        """Every non-root span in every process must point at a parent
        span recorded by the same process."""
        _, doc = traced_worker_run
        spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        by_id = {ev["args"]["span_id"]: ev for ev in spans}
        roots = 0
        for ev in spans:
            parent_id = ev["args"]["parent_id"]
            if parent_id is None:
                roots += 1
                continue
            assert parent_id in by_id
            assert by_id[parent_id]["pid"] == ev["pid"]
        assert roots >= 3          # one root per traced process

    def test_phase_coverage(self, traced_worker_run):
        _, doc = traced_worker_run
        assert phase_coverage(doc) >= 0.9

    def test_phase_tree_shape(self, traced_worker_run):
        _, doc = traced_worker_run
        tree = build_phase_tree(doc)
        top = tree.children["strober.run"]
        assert {"phase.sim", "phase.flow", "phase.replay",
                "phase.energy"} <= set(top.children)
        run_span = root_span(doc)
        assert run_span["name"] == "strober.run"
        assert run_span["pid"] == root_pid(doc)

    def test_worker_rows(self, traced_worker_run):
        _, doc = traced_worker_run
        rows = worker_rows(doc)
        assert len(rows) == 2
        assert all(tasks >= 1 and busy > 0 for _, tasks, busy, _ in rows)
        # 6 snapshots at 2 lanes = 3 batches; every task span must be
        # in the trace (workers flush spans before each result, so the
        # last task's trace cannot be lost to supervisor teardown)
        assert sum(tasks for _, tasks, _, _ in rows) == 3

    def test_sampling_telemetry_converges(self, traced_worker_run):
        _, doc = traced_worker_run
        series = sampling_series(doc)
        assert len(series) >= 2
        assert [n for n, _, _ in series] == sorted(
            n for n, _, _ in series)
        assert series[-1][2] < series[0][2]    # error bound shrinks

    def test_timings_derived_from_spans(self, traced_worker_run):
        run, _ = traced_worker_run
        for key in ("sim_seconds", "flow_seconds", "replay_seconds",
                    "energy_seconds"):
            assert run.timings[key] >= 0
        assert run.timings["replay_seconds"] > 0
        assert any(name.startswith("strober-sim/")
                   for name in run.timings["passes"])

    def test_report_renders(self, traced_worker_run):
        _, doc = traced_worker_run
        text = render_report(doc)
        assert "phase-time tree" in text
        assert "worker utilization" in text
        assert "artifact cache" in text
        assert "sampling-error telemetry" in text
        assert "strober.run" in text

    def test_report_cli(self, traced_worker_run, capsys):
        from repro.obs.report import main
        run, _ = traced_worker_run
        assert main([run.trace_path]) == 0
        out = capsys.readouterr().out
        assert "strober run report" in out

    def test_global_tracer_restored(self, traced_worker_run):
        assert isinstance(get_tracer(), NullTracer)


class TestUntracedRun:
    def test_timings_still_populated(self):
        run = run_strober("rocket_mini", "towers", sample_size=2,
                          replay_length=32, backend="auto", seed=3)
        assert run.trace_path is None
        assert run.timings["replay_seconds"] > 0
        assert isinstance(get_tracer(), NullTracer)

    def test_run_key_assigned_and_stable(self):
        from repro.core.flow import compute_run_key
        a = compute_run_key("rocket_mini", "towers", 2, 32, 2_000_000,
                            3, None)
        b = compute_run_key("rocket_mini", "towers", 2, 32, 2_000_000,
                            3, None)
        c = compute_run_key("rocket_mini", "towers", 2, 32, 2_000_000,
                            4, None)
        assert a == b != c
        assert len(a) == 12


class TestCorrelation:
    def test_spans_and_instants_stamped(self):
        t = Tracer(correlation={"job_id": "job-7"})
        with t.span("work", cat="x"):
            pass
        t.instant("mark", cat="x")
        assert t.find("work")[0].args["job_id"] == "job-7"
        assert t.events[0]["args"]["job_id"] == "job-7"

    def test_explicit_attr_wins_over_correlation(self):
        t = Tracer(correlation={"job_id": "outer"})
        with t.span("work", job_id="inner"):
            pass
        t.instant("mark", job_id="inner")
        assert t.find("work")[0].args["job_id"] == "inner"
        assert t.events[0]["args"]["job_id"] == "inner"

    def test_set_correlation_updates_and_ignores_none(self):
        t = Tracer()
        t.set_correlation(run_key="abc", job_id=None)
        assert t.correlation == {"run_key": "abc"}
        with t.span("late"):
            pass
        assert t.find("late")[0].args["run_key"] == "abc"

    def test_null_tracer_accepts_correlation_calls(self):
        null = NullTracer()
        null.set_correlation(run_key="abc")    # no-op, no error
        assert null.correlation == {}

    def test_run_key_stamped_across_worker_pids(self, traced_worker_run):
        """The flow's run_key must land on every span of every traced
        process — the supervisor ships the correlation dict to replay
        workers in the spawn payload."""
        run, doc = traced_worker_run
        assert run.run_key
        spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert len({ev["pid"] for ev in spans}) >= 3
        for ev in spans:
            assert ev["args"]["run_key"] == run.run_key
        assert doc["reproMeta"]["run_key"] == run.run_key

    def test_report_shows_run_key(self, traced_worker_run):
        from repro.obs.report import render_report
        run, doc = traced_worker_run
        assert f"run_key={run.run_key}" in render_report(doc)


class TestMergeSource:
    def test_mismatch_error_names_source(self):
        reg = MetricsRegistry()
        reg.histogram("h", (10,))
        payload = {"h": {"kind": "histogram", "boundaries": [99],
                         "counts": [0, 0], "total": 0, "count": 0}}
        with pytest.raises(ValueError, match=r"worker-pid-1234"):
            reg.merge(payload, source="worker-pid-1234")
        with pytest.raises(ValueError, match=r"boundary mismatch"):
            reg.merge(payload)     # sourceless merges still typed

    def test_unknown_kind_names_source(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match=r"job-3"):
            reg.merge({"x": {"kind": "banana", "value": 1}},
                      source="job-3")


class TestConcurrentDrainMerge:
    def test_totals_conserved_under_contention(self):
        """Worker registries hammered by increments while a merger
        thread drains them into a parent: nothing lost, nothing
        double-counted, no boundary errors."""
        parent = MetricsRegistry()
        workers = [MetricsRegistry() for _ in range(4)]
        per_thread = 2000
        stop = threading.Event()
        errors = []

        def producer(reg):
            try:
                for i in range(per_thread):
                    reg.counter("c").inc()
                    reg.histogram("h", (1, 10)).observe(i % 20)
            except Exception as exc:        # pragma: no cover
                errors.append(exc)

        def merger():
            try:
                while not stop.is_set():
                    for i, reg in enumerate(workers):
                        parent.merge(reg.drain(), source=f"worker-{i}")
            except Exception as exc:        # pragma: no cover
                errors.append(exc)

        producers = [threading.Thread(target=producer, args=(reg,))
                     for reg in workers]
        merge_thread = threading.Thread(target=merger)
        merge_thread.start()
        for t in producers:
            t.start()
        for t in producers:
            t.join()
        stop.set()
        merge_thread.join()
        for i, reg in enumerate(workers):   # final sweep
            parent.merge(reg.drain(), source=f"worker-{i}")
        assert not errors
        assert parent.value("c") == 4 * per_thread
        hist = parent.get("h")
        assert hist.count == 4 * per_thread
        assert sum(hist.counts) == 4 * per_thread


class TestPromExposition:
    def test_registry_families_render_and_validate(self):
        from repro.obs import render_exposition, validate_exposition
        reg = MetricsRegistry()
        reg.counter("service.jobs_done").inc(42)
        reg.gauge("service.queue_depth").set(3)
        hist = reg.histogram("service.job_seconds", (1, 5))
        for v in (0.5, 2, 20):
            hist.observe(v)
        page = render_exposition(registry=reg)
        assert validate_exposition(page) == []
        assert "# TYPE repro_service_jobs_done_total counter" in page
        assert "repro_service_jobs_done_total 42" in page
        assert "repro_service_queue_depth 3" in page
        # cumulative buckets + mandatory +Inf terminal
        assert 'repro_service_job_seconds_bucket{le="1"} 1' in page
        assert 'repro_service_job_seconds_bucket{le="5"} 2' in page
        assert 'repro_service_job_seconds_bucket{le="+Inf"} 3' in page
        assert "repro_service_job_seconds_count 3" in page

    def test_labeled_samples_group_into_families(self):
        from repro.obs import (
            Sample, render_exposition, validate_exposition,
        )
        page = render_exposition(samples=[
            Sample("service.breaker_floor_info", 1,
                   labels={"design": "a", "floor": "interp"}),
            Sample("service.breaker_floor_info", 1,
                   labels={"design": "b", "floor": "none"}),
        ])
        assert validate_exposition(page) == []
        assert page.count("# TYPE repro_service_breaker_floor_info") == 1
        assert ('repro_service_breaker_floor_info'
                '{design="a",floor="interp"} 1') in page

    def test_label_values_escaped(self):
        from repro.obs import (
            Sample, render_exposition, validate_exposition,
        )
        page = render_exposition(samples=[
            Sample("weird", 1, labels={"x": 'a"b\\c\nd'})])
        assert validate_exposition(page) == []
        assert r'x="a\"b\\c\nd"' in page

    def test_process_health_samples(self):
        from repro.obs import (
            process_health_samples, render_exposition,
            validate_exposition,
        )
        samples = process_health_samples()
        names = {s.name for s in samples}
        assert "process.rss_bytes" in names
        assert all(s.value > 0 for s in samples)
        page = render_exposition(samples=samples)
        assert validate_exposition(page) == []

    def test_validator_catches_broken_pages(self):
        from repro.obs import validate_exposition
        assert validate_exposition("repro_x 1")          # no newline
        assert validate_exposition("not a sample !!\n")
        assert validate_exposition("# TYPE bad kind_of\n")
        # TYPE after its samples
        page = "repro_x 1\n# TYPE repro_x counter\n"
        assert any("after its samples" in e
                   for e in validate_exposition(page))
        # histogram without +Inf
        page = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 1\nh_sum 1\nh_count 1\n')
        assert any("+Inf" in e for e in validate_exposition(page))
        # non-cumulative buckets
        page = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\n'
                "h_sum 1\nh_count 3\n")
        assert any("monotone" in e for e in validate_exposition(page))

    def test_conflicting_sample_kinds_rejected(self):
        from repro.obs import Sample, render_exposition
        with pytest.raises(ValueError, match="conflicting kinds"):
            render_exposition(samples=[
                Sample("x", 1, kind="gauge"),
                Sample("x", 2, kind="untyped")])
