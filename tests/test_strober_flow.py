"""Integration tests for the full Strober methodology (Figures 2, 4, 5)."""

import pytest

from repro.core import (
    run_strober, get_circuits, get_replay_engine, StroberCompiler,
    strober_time, uarch_sim_time, gate_sim_time, PAPER_PARAMS,
    soc_grouping,
)
from repro.core.configs import get_config
from repro.targets.soc import run_workload
from repro.sampling import estimate_mean


@pytest.fixture(scope="module")
def towers_run():
    return run_strober("rocket_mini", "towers", sample_size=8,
                       replay_length=64, backend="auto", seed=1)


class TestEndToEnd:
    def test_replays_verify_exactly(self, towers_run):
        """The paper's correctness check: every replayed output token
        matches the trace recorded on the fast simulator."""
        assert towers_run.replays
        assert all(r.mismatches == 0 for r in towers_run.replays)

    def test_energy_estimate_structure(self, towers_run):
        energy = towers_run.energy
        assert energy.power.mean > 0
        assert energy.power.half_width >= 0
        assert energy.dram_power_mw > 0
        assert energy.cpi > 1.0
        assert energy.epi_nj > 0
        assert "Integer Unit" in energy.breakdown
        assert "L1 I-cache" in energy.breakdown
        total_groups = sum(est.mean for est in energy.breakdown.values())
        assert total_groups == pytest.approx(energy.power.mean, rel=1e-6)

    def test_snapshot_coverage_is_small(self, towers_run):
        """Table IV property: replayed cycles are a small fraction."""
        replayed = sum(r.cycles for r in towers_run.replays)
        assert replayed < towers_run.cycles
        assert towers_run.energy.sample_size == len(towers_run.replays)

    def test_replay_cycles_match_window(self, towers_run):
        assert all(r.cycles == 64 for r in towers_run.replays)

    def test_failing_workload_raises(self):
        bad = """
        li a0, 1
        li t0, 0x40000000
        slli a0, a0, 1
        ori a0, a0, 1
        sw a0, 0(t0)
        h: j h
        """
        with pytest.raises(RuntimeError):
            run_strober("rocket_mini", bad, sample_size=4,
                        replay_length=32, backend="auto")


class TestSampledPowerAccuracy:
    def test_estimate_within_bound_of_true_power(self):
        """Figure 8 in miniature: the sampled estimate's 99% bound must
        cover the true (full gate-level) average power."""
        run = run_strober("rocket_mini", "qsort",
                          workload_kwargs={"n": 16},
                          sample_size=10, replay_length=64,
                          backend="auto", seed=7, record_full_io=True)
        engine = run.engine
        truth, mismatches = engine.replay_full_trace(
            run.result.fame.full_io_trace)
        assert mismatches == 0
        estimate = run.energy.power
        actual_error = abs(estimate.mean - truth.total_mw) / truth.total_mw
        # the bound itself is statistical; require the actual error to be
        # small and comparable to the computed bound
        assert actual_error < max(3 * estimate.relative_error_bound, 0.15)


class TestStroberCompiler:
    def test_compile_produces_both_circuits(self):
        config = get_config("rocket_mini")
        compiler = StroberCompiler(config.build_circuit)
        output = compiler.compile()
        from repro.fame import is_fame1
        assert is_fame1(output.simulator_circuit)
        assert not is_fame1(output.target_circuit)
        assert output.scan_spec.reg_bits > 0
        assert output.channels["inputs"]

    def test_scan_cost_model_positive(self):
        config = get_config("rocket_mini")
        output = StroberCompiler(config.build_circuit).compile()
        assert output.scan_spec.readout_cycles() > \
            output.scan_spec.readout_cycles(include_rams=False)


class TestPerfModel:
    def test_paper_worked_example(self):
        """Section IV-E: 100B cycles, n=100, L=1000 -> ~9.4 hours.

        The paper's arithmetic sums Trun + Tsample + Treplay = 33703 s
        (it drops Tload and TFPGAsyn from its own formula); we match
        that quantity within 2%.
        """
        model = strober_time(100e9, 100, 1000, PAPER_PARAMS)
        assert model.t_run_s == pytest.approx(27778, rel=1e-3)
        assert model.t_sample_s == pytest.approx(3592, rel=1e-2)
        assert model.t_replay_s == pytest.approx(2333, rel=2e-2)
        paper_sum = model.t_run_s + model.t_sample_s + model.t_replay_s
        assert paper_sum / 3600 == pytest.approx(9.4, abs=0.2)

    def test_paper_baselines(self):
        """3.86 days of software simulation; 264 years of gate-level."""
        assert uarch_sim_time(100e9) / 86400 == pytest.approx(3.86,
                                                              abs=0.05)
        assert gate_sim_time(100e9) / (86400 * 365) == pytest.approx(
            264, rel=0.01)

    def test_speedup_orders_of_magnitude(self):
        from repro.core import speedup_over_uarch, speedup_over_gate_sim
        assert speedup_over_uarch(100e9, 100, 1000) > 8
        assert speedup_over_gate_sim(100e9, 100, 1000) > 1e5


class TestGrouping:
    def test_soc_grouping_categories(self):
        assert soc_grouping("icache.tags") == "L1 I-cache"
        assert soc_grouping("dcache.data") == "D-cache meta+data"
        assert soc_grouping("dcache.state") == "D-cache control"
        assert soc_grouping("core.iw3_v") == "Issue Logic"
        assert soc_grouping("core.rob_v_7") == "ROB"
        assert soc_grouping("core.fpu_mul.p1") == "FPU"
        assert soc_grouping("core.map_11") == "Rename + Decode"
        assert soc_grouping("core.lsq2_sa") == "LSU"
        assert soc_grouping("core.regfile") == "Register File"
        assert soc_grouping("") == "Uncore"
