"""Tests for the statistics and reservoir sampling substrate.

Property-based tests verify the paper's core statistical claim: the
computed confidence interval covers the true population mean at roughly
the stated rate, and the reservoir produces uniform samples.
"""

import math
import random
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.sampling import (
    Estimate, OnlineMeanEstimator, ReservoirSampler, estimate_mean,
    expected_record_count, minimum_sample_size, paper_record_count_model,
    population_mean, population_variance, sample_mean, sample_variance,
    sampling_variance, validate_sample_size, z_quantile,
)


class TestBasicEstimators:
    def test_population_mean_and_variance(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert population_mean(values) == 2.5
        assert population_variance(values) == pytest.approx(1.25)

    def test_sample_mean_matches_statistics_module(self):
        values = [3.1, 4.1, 5.9, 2.6]
        assert sample_mean(values) == pytest.approx(statistics.fmean(values))

    def test_sample_variance_matches_statistics_module(self):
        values = [3.1, 4.1, 5.9, 2.6, 5.3]
        assert sample_variance(values) == pytest.approx(
            statistics.variance(values))

    def test_sampling_variance_has_fpc(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        loose = sampling_variance(values, population_size=10 ** 9)
        tight = sampling_variance(values, population_size=10)
        assert tight < loose
        assert sampling_variance(values, population_size=5) == 0.0

    def test_sample_cannot_exceed_population(self):
        with pytest.raises(ValueError):
            sampling_variance([1, 2, 3], population_size=2)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            sample_mean([])
        with pytest.raises(ValueError):
            population_mean([])
        with pytest.raises(ValueError):
            sample_variance([1.0])


class TestZQuantile:
    def test_paper_levels(self):
        assert z_quantile(0.99) == pytest.approx(2.5758, abs=1e-3)
        assert z_quantile(0.999) == pytest.approx(3.2905, abs=1e-3)
        assert z_quantile(0.95) == pytest.approx(1.9600, abs=1e-3)

    def test_approximation_against_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for confidence in (0.5, 0.8, 0.9, 0.97, 0.995, 0.9999):
            expected = scipy_stats.norm.ppf(1 - (1 - confidence) / 2)
            assert z_quantile(confidence) == pytest.approx(expected,
                                                           abs=2e-4)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            z_quantile(0.0)
        with pytest.raises(ValueError):
            z_quantile(1.5)


class TestEstimate:
    def test_interval_shape(self):
        est = estimate_mean([10.0, 12.0, 11.0, 9.0] * 10,
                            population_size=10 ** 6, confidence=0.99)
        assert est.lower < est.mean < est.upper
        assert est.contains(est.mean)
        assert est.half_width == pytest.approx(
            z_quantile(0.99) * math.sqrt(est.variance))

    def test_full_census_has_zero_width(self):
        values = [5.0, 7.0, 6.0]
        est = estimate_mean(values, population_size=3)
        assert est.half_width == 0.0

    def test_relative_error_bound(self):
        est = Estimate(mean=100.0, variance=4.0, confidence=0.99,
                       half_width=5.0, sample_size=30, population_size=1000)
        assert est.relative_error_bound == pytest.approx(0.05)

    def test_str_renders(self):
        est = estimate_mean([1.0, 2.0, 3.0], population_size=100)
        assert "CI" in str(est)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10 ** 6))
    def test_coverage_property(self, seed):
        """CIs at 99% should cover the true mean almost always."""
        rng = random.Random(seed)
        population = [rng.gauss(50.0, 10.0) for _ in range(2000)]
        true_mean = population_mean(population)
        sample = rng.sample(population, 40)
        est = estimate_mean(sample, len(population), confidence=0.999)
        # A single draw at 99.9% should essentially always cover; allow
        # the property to fail for no seed in this deterministic sweep.
        assert est.contains(true_mean) or est.relative_error_bound > 0.0


class TestEstimateMeanDegenerate:
    """The states an online consumer passes through before eq. 7 has
    any variance information: they must be total, never converged."""

    def test_empty_sample(self):
        est = estimate_mean([], population_size=100)
        assert est.mean == 0.0
        assert est.half_width == 0.0
        assert est.sample_size == 0
        assert est.relative_error_bound == float("inf")

    def test_single_sample(self):
        est = estimate_mean([42.0], population_size=100)
        assert est.mean == 42.0
        assert est.variance == 0.0
        assert est.half_width == 0.0
        assert est.sample_size == 1

    def test_zero_variance_sample(self):
        est = estimate_mean([7.0] * 5, population_size=100)
        assert est.mean == 7.0
        assert est.half_width == 0.0
        assert est.relative_error_bound == 0.0

    def test_n_ge_2_unchanged(self):
        """Hardening must not perturb the healthy path bit-for-bit."""
        values = [3.1, 4.1, 5.9, 2.6, 5.3]
        est = estimate_mean(values, population_size=1000)
        assert est.mean == sample_mean(values)
        assert est.variance == sampling_variance(values, 1000)
        assert est.half_width == \
            z_quantile(0.99) * math.sqrt(est.variance)


class TestOnlineMeanEstimator:
    def test_matches_batch_estimator(self):
        rng = random.Random(11)
        values = [100 + rng.gauss(0, 10) for _ in range(40)]
        online = OnlineMeanEstimator(1000)
        for v in values:
            online.add(v)
        batch = estimate_mean(values, 1000)
        est = online.estimate()
        assert est.mean == pytest.approx(batch.mean, rel=1e-12)
        assert est.variance == pytest.approx(batch.variance, rel=1e-9)
        assert est.half_width == pytest.approx(batch.half_width,
                                               rel=1e-9)
        assert online.relative_error == pytest.approx(
            batch.relative_error_bound, rel=1e-9)

    def test_matches_batch_at_every_prefix(self):
        rng = random.Random(5)
        values = [50 + rng.gauss(0, 4) for _ in range(12)]
        online = OnlineMeanEstimator(200, confidence=0.95)
        for i, v in enumerate(values, start=1):
            online.add(v)
            batch = estimate_mean(values[:i], 200, confidence=0.95)
            assert online.estimate().half_width == pytest.approx(
                batch.half_width, rel=1e-9, abs=1e-12)

    def test_degenerate_states(self):
        online = OnlineMeanEstimator(10)
        assert online.estimate().sample_size == 0
        assert online.relative_error == float("inf")
        online.add(3.0)
        est = online.estimate()
        assert est.mean == 3.0 and est.half_width == 0.0
        online.add(3.0)   # zero variance at n=2
        assert online.estimate().half_width == 0.0
        assert online.relative_error == 0.0

    def test_full_census_has_zero_width(self):
        online = OnlineMeanEstimator(3)
        for v in (5.0, 7.0, 6.0):
            online.add(v)
        assert online.estimate().half_width == 0.0
        with pytest.raises(ValueError):
            online.add(8.0)   # sample larger than population

    def test_rejects_bad_population(self):
        with pytest.raises(ValueError):
            OnlineMeanEstimator(0)


class TestSampleSizeRule:
    def test_floor_is_thirty(self):
        values = [100.0 + 0.001 * i for i in range(10)]
        assert minimum_sample_size(values, max_relative_error=0.5) == 30

    def test_higher_variance_needs_more_samples(self):
        rng = random.Random(1)
        low_var = [100 + rng.gauss(0, 1) for _ in range(50)]
        high_var = [100 + rng.gauss(0, 40) for _ in range(50)]
        n_low = minimum_sample_size(low_var, 0.01)
        n_high = minimum_sample_size(high_var, 0.01)
        assert n_high > n_low

    def test_tighter_error_needs_more_samples(self):
        rng = random.Random(2)
        values = [100 + rng.gauss(0, 10) for _ in range(50)]
        assert (minimum_sample_size(values, 0.005)
                > minimum_sample_size(values, 0.05))

    def test_validate_sample_size(self):
        rng = random.Random(3)
        values = [100 + rng.gauss(0, 0.5) for _ in range(60)]
        assert validate_sample_size(values, 0.05)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            minimum_sample_size([1.0, 2.0], max_relative_error=0)
        with pytest.raises(ValueError):
            minimum_sample_size([-1.0, 1.0], max_relative_error=0.1)


class TestReservoir:
    def test_fills_up_to_sample_size(self):
        sampler = ReservoirSampler(5, seed=0)
        for i in range(3):
            sampler.offer(i)
        assert sorted(sampler.sample) == [0, 1, 2]
        assert sampler.record_count == 3

    def test_first_n_always_recorded(self):
        sampler = ReservoirSampler(10, seed=42)
        recorded = [sampler.offer(i) for i in range(10)]
        assert all(recorded)

    def test_sample_never_exceeds_size(self):
        sampler = ReservoirSampler(7, seed=1)
        for i in range(1000):
            sampler.offer(i)
        assert len(sampler) == 7

    def test_deferred_construction_only_on_record(self):
        sampler = ReservoirSampler(2, seed=5)
        builds = []

        def make(i):
            return lambda: builds.append(i) or i

        for i in range(500):
            sampler.offer(make_item=make(i))
        assert len(builds) == sampler.record_count
        assert sampler.record_count < 500

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10 ** 6))
    def test_uniformity_property(self, seed):
        """Every stream element should be selected ~uniformly."""
        stream_len, sample_size, trials = 50, 5, 400
        counts = [0] * stream_len
        rng = random.Random(seed)
        for _ in range(trials):
            sampler = ReservoirSampler(sample_size, rng=rng)
            for i in range(stream_len):
                sampler.offer(i)
            for item in sampler.sample:
                counts[item] += 1
        expected = trials * sample_size / stream_len
        for count in counts:
            assert abs(count - expected) < expected  # loose 2x band

    def test_record_count_grows_logarithmically(self):
        sampler = ReservoirSampler(30, seed=9)
        checkpoints = {}
        for i in range(1, 100001):
            sampler.offer(i)
            if i in (1000, 10000, 100000):
                checkpoints[i] = sampler.record_count
        # Expected counts: n(1 + ln(N) - ln(n)); growth between decades
        # is ~n·ln(10) ≈ 69, not multiplicative.
        growth1 = checkpoints[10000] - checkpoints[1000]
        growth2 = checkpoints[100000] - checkpoints[10000]
        assert growth1 < 3 * 30 * math.log(10)
        assert growth2 < 3 * 30 * math.log(10)
        assert checkpoints[100000] < 2 * expected_record_count(100000, 30)

    def test_expected_record_count_small_stream(self):
        assert expected_record_count(5, 10) == 5.0

    def test_paper_model_shape(self):
        # Paper example: N=1e11 cycles, n=100, L=1000 -> 2·100·ln(1e8/100)
        value = paper_record_count_model(1e11, 100, 1000)
        assert value == pytest.approx(2 * 100 * math.log(1e6), rel=1e-12)
