"""Tests for the ISA toolchain: encoding, assembler, golden model,
and every benchmark program (each must run to a passing exit code)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    assemble, AssemblerError, decode, disassemble, GoldenModel, reg_num,
    EncodingError,
)
from repro.isa.programs import (
    ALL_PROGRAMS, MICROBENCHMARKS, boot, coremark_lite, gcc_phases,
    pointer_chase, vvadd, exit_code_of,
)


def run_golden(source, max_insns=5_000_000):
    model = GoldenModel(assemble(source))
    model.run(max_insns=max_insns)
    return model


class TestEncoding:
    def test_reg_names(self):
        assert reg_num("x0") == 0
        assert reg_num("zero") == 0
        assert reg_num("sp") == 2
        assert reg_num("a0") == 10
        assert reg_num("t6") == 31
        with pytest.raises(EncodingError):
            reg_num("x32")

    def test_decode_roundtrip_addi(self):
        program = assemble("addi x5, x6, -42")
        d = decode(program.words[0])
        assert d.rd == 5 and d.rs1 == 6 and d.imm == -42

    def test_decode_branch_offset(self):
        source = "beq x1, x2, target\nnop\nnop\ntarget: nop"
        program = assemble(source)
        d = decode(program.words[0])
        assert d.imm == 12

    def test_decode_jal_negative(self):
        source = "target: nop\nnop\nj target"
        program = assemble(source)
        d = decode(program.words[8])
        assert d.imm == -8

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=-2048, max_value=2047),
           st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=31))
    def test_itype_roundtrip_property(self, imm, rd, rs1):
        program = assemble(f"addi x{rd}, x{rs1}, {imm}")
        d = decode(program.words[0])
        assert (d.imm, d.rd, d.rs1) == (imm, rd, rs1)

    def test_disassemble_smoke(self):
        for text in ("add x1, x2, x3", "lw x4, 8(x5)", "sw x6, -4(x7)",
                     "beq x1, x2, 8", "lui x3, 0x12345", "jal x1, 16",
                     "mul x1, x2, x3", "ecall"):
            program = assemble(text.replace(", 8", ", label") if "beq" in
                               text or False else text) \
                if False else None
        # direct word-level checks
        word = assemble("add x1, x2, x3").words[0]
        assert disassemble(word) == "add x1, x2, x3"
        word = assemble("mul x5, x6, x7").words[0]
        assert disassemble(word) == "mul x5, x6, x7"


class TestAssembler:
    def test_labels_and_data(self):
        source = """
        la t0, data
        lw a0, 0(t0)
        li t1, TOHOST_DUMMY
        .equ TOHOST_DUMMY, 0x40000000
        .align 4
        data: .word 0xDEADBEEF
        """
        program = assemble(source)
        assert program.symbols["data"] % 16 == 0
        assert program.words[program.symbols["data"]] == 0xDEADBEEF

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate x1, x2")

    def test_branch_out_of_range(self):
        source = "beq x0, x0, far\n" + ".space 8192\n" + "far: nop"
        with pytest.raises(AssemblerError):
            assemble(source)

    def test_li_large_constant(self):
        model = GoldenModel(assemble("""
        li a0, 0xDEADBEEF
        li t0, 0x40000000
        sw a0, 0(t0)
        """))
        model.run()
        assert model.exit_code == 0xDEADBEEF

    def test_char_literal(self):
        program = assemble(".word 'A'")
        assert program.words[0] == 65


class TestGoldenModel:
    def test_arith_and_exit(self):
        model = run_golden("""
        li a0, 6
        li a1, 7
        mul a0, a0, a1
        slli a0, a0, 1
        ori a0, a0, 1
        li t0, 0x40000000
        sw a0, 0(t0)
        """)
        assert exit_code_of(model.exit_code) == 42

    def test_div_by_zero_semantics(self):
        model = run_golden("""
        li a1, 10
        li a2, 0
        divu a3, a1, a2
        rem a4, a1, a2
        li t0, 0x40000000
        li a0, 1
        sw a0, 0(t0)
        """)
        assert model.reg("a3") == 0xFFFFFFFF
        assert model.reg("a4") == 10

    def test_signed_div_overflow(self):
        model = run_golden("""
        li a1, 0x80000000
        li a2, -1
        div a3, a1, a2
        rem a4, a1, a2
        li t0, 0x40000000
        li a0, 1
        sw a0, 0(t0)
        """)
        assert model.reg("a3") == 0x80000000
        assert model.reg("a4") == 0

    def test_byte_and_half_memops(self):
        model = run_golden("""
        li t0, 0x100
        li t1, 0xFFEE
        sh t1, 2(t0)
        sb t1, 1(t0)
        lb a1, 1(t0)
        lbu a2, 1(t0)
        lh a3, 2(t0)
        lhu a4, 2(t0)
        li t0, 0x40000000
        li a0, 1
        sw a0, 0(t0)
        """)
        assert model.reg("a1") == 0xFFFFFFEE
        assert model.reg("a2") == 0xEE
        assert model.reg("a3") == 0xFFFFFFEE
        assert model.reg("a4") == 0xFFEE

    def test_putchar_collects_stdout(self):
        model = run_golden("""
        li t0, 0x40000008
        li t1, 'H'
        sw t1, 0(t0)
        li t1, 'i'
        sw t1, 0(t0)
        li t0, 0x40000000
        li a0, 1
        sw a0, 0(t0)
        """)
        assert model.stdout_text() == "Hi"

    def test_x0_stays_zero(self):
        model = run_golden("""
        addi x0, x0, 5
        li t0, 0x40000000
        li a0, 1
        sw a0, 0(t0)
        """)
        assert model.regs[0] == 0

    def test_csr_instret(self):
        model = run_golden("""
        csrr a1, instret
        csrr a2, instret
        li t0, 0x40000000
        li a0, 1
        sw a0, 0(t0)
        """)
        assert model.reg("a2") == model.reg("a1") + 1


class TestBenchmarkPrograms:
    """Every program must self-verify (exit code 0 == pass)."""

    @pytest.mark.parametrize("name", sorted(MICROBENCHMARKS))
    def test_microbenchmark_passes(self, name):
        model = run_golden(MICROBENCHMARKS[name]())
        assert exit_code_of(model.exit_code) == 0, name

    def test_vvadd_detects_corruption(self):
        source = vvadd(n=8)
        bad = source.replace("add a3, a1, a2", "sub a3, a1, a2")
        model = run_golden(bad)
        assert exit_code_of(model.exit_code) != 0

    def test_coremark_lite_passes(self):
        model = run_golden(coremark_lite())
        assert exit_code_of(model.exit_code) == 0

    def test_boot_prints_banner(self):
        model = run_golden(boot())
        assert exit_code_of(model.exit_code) == 0
        assert "Linux" in model.stdout_text()
        assert "bin dev" in model.stdout_text()

    def test_gcc_phases_samples_cpi(self):
        model = run_golden(gcc_phases(rounds=1))
        assert exit_code_of(model.exit_code) == 0
        assert len(model.perf_log) == 4  # one CPI sample per phase
        # golden model has CPI == 1, scaled by 16
        assert all(12 <= s <= 20 for s in model.perf_log)

    def test_pointer_chase_reports_latency(self):
        model = run_golden(pointer_chase(array_bytes=1024, loads=64))
        assert exit_code_of(model.exit_code) == 0
        assert len(model.perf_log) == 1

    @pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
    def test_all_programs_assemble(self, name):
        program = assemble(ALL_PROGRAMS[name]())
        assert program.size_bytes > 0
