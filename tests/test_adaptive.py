"""Adaptive error-driven sampling: the streaming replay scheduler,
the confidence-driven controller, cooperative cancellation, journal
re-sampling, and the service-layer knobs (ISSUE 8)."""

import pytest

from repro.core import (
    run_strober, clear_caches,
    AdaptiveSamplingController, confidence_order,
    STOP_TARGET_MET, STOP_EXHAUSTED, STOP_MAX_SAMPLE,
)
from repro.core.controller import DEFAULT_MIN_SAMPLE
from repro.core.replay import plan_replay_batches
from repro.obs import Tracer, load_trace
from repro.parallel import CancelToken
from repro.robust import (
    RunJournal, read_journal, TYPE_RESULT, TYPE_CONTROL,
)


# Small enough to be quick, large enough that the target is reachable
# before the candidate set runs out (15 snapshots on towers).
ADAPTIVE_KW = dict(design="rocket_mini", workload="towers",
                   sample_size=16, replay_length=48, backend="auto",
                   seed=3)
TARGET = 0.2


@pytest.fixture(scope="module")
def fixed_run():
    return run_strober(**ADAPTIVE_KW)


@pytest.fixture(scope="module")
def adaptive_traced(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("adaptive") / "trace.json")
    run = run_strober(**ADAPTIVE_KW, target_rel_error=TARGET,
                      trace=path)
    return run, load_trace(path)


def _power_key(result):
    return (result.snapshot_cycle, result.cycles,
            result.power.total_w,
            tuple(sorted(result.power.by_group.items())))


class _Result:
    """Stand-in replay result: just enough for the controller."""

    class _Power:
        def __init__(self, total_mw):
            self.total_mw = total_mw

    def __init__(self, total_mw):
        self.power = self._Power(total_mw)


class TestConfidenceOrder:
    def test_is_a_permutation(self):
        for n in (0, 1, 2, 3, 7, 8, 15, 16, 33):
            order = confidence_order(n)
            assert sorted(order) == list(range(n))

    def test_deterministic(self):
        assert confidence_order(13) == confidence_order(13)

    def test_power_of_two_bit_reversal(self):
        assert confidence_order(8) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_prefixes_spread_over_the_range(self):
        """Every prefix must cover the timeline, not its start: the
        first quarter of the order may not live in any one quarter of
        the index range."""
        n = 64
        order = confidence_order(n)
        prefix = order[:n // 4]
        quarters = {i // (n // 4) for i in prefix}
        assert quarters == {0, 1, 2, 3}


class TestControllerUnit:
    def test_fixed_mode_is_pure_telemetry(self):
        c = AdaptiveSamplingController(100, available=10,
                                       tracer=Tracer())
        assert not c.adaptive
        pending = [3, 1, 4, 1 + 1]
        assert c.plan_order(pending) == pending    # natural order
        for v in (10.0, 11.0, 12.0):
            c.observe(0, _Result(v))
            assert c.should_stop() is None
        summary = c.finish()
        assert summary["mode"] == "fixed"
        assert summary["stop_reason"] is None
        assert summary["early_stop"] is False
        assert summary["min_sample"] is None
        assert summary["max_sample"] is None

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            AdaptiveSamplingController(100, available=10,
                                       target_rel_error=0.0)

    def test_min_sample_floor_is_two(self):
        """n=1 has a zero half-width; a min_sample of 1 would let the
        controller mistake it for convergence."""
        c = AdaptiveSamplingController(100, available=10,
                                       target_rel_error=0.1,
                                       min_sample=1, tracer=Tracer())
        assert c.min_sample == DEFAULT_MIN_SAMPLE
        c.observe(0, _Result(10.0))
        assert c.should_stop() is None     # zero width, but n < 2

    def test_max_sample_capped_at_available(self):
        c = AdaptiveSamplingController(100, available=5,
                                       target_rel_error=0.1,
                                       max_sample=50, tracer=Tracer())
        assert c.max_sample == 5

    def test_stop_on_target_met(self):
        tracer = Tracer()
        c = AdaptiveSamplingController(100, available=10,
                                       target_rel_error=0.5,
                                       tracer=tracer)
        order = c.plan_order(list(range(10)))
        assert sorted(order) == list(range(10))
        c.observe(order[0], _Result(10.0))
        c.observe(order[1], _Result(10.0))   # zero variance: rel = 0
        assert c.should_stop() == STOP_TARGET_MET
        assert c.should_stop() == STOP_TARGET_MET   # latched
        summary = c.finish()
        assert summary["stop_reason"] == STOP_TARGET_MET
        assert summary["early_stop"] is True
        assert summary["sample_size"] == 2
        names = {ev["name"] for ev in tracer.events}
        assert {"controller.dispatch", "controller.progress",
                "controller.stop"} <= names

    def test_stop_on_max_sample(self):
        c = AdaptiveSamplingController(1000, available=10,
                                       target_rel_error=0.001,
                                       max_sample=3, tracer=Tracer())
        plan = c.plan_order(list(range(10)))
        assert len(plan) == 3              # budget-truncated
        for i, v in enumerate((5.0, 50.0, 500.0)):
            c.observe(plan[i], _Result(v))
        assert c.should_stop() == STOP_MAX_SAMPLE
        summary = c.finish()
        assert summary["stop_reason"] == STOP_MAX_SAMPLE
        assert summary["early_stop"] is False

    def test_exhausted_when_candidates_run_out(self):
        c = AdaptiveSamplingController(1000, available=3,
                                       target_rel_error=0.001,
                                       tracer=Tracer())
        for i, v in enumerate((5.0, 50.0, 500.0)):
            c.observe(i, _Result(v))
        summary = c.finish()
        assert summary["stop_reason"] == STOP_EXHAUSTED
        assert summary["fraction_replayed"] == 1.0

    def test_seed_is_silent_but_counts_toward_the_sample(self):
        tracer = Tracer()
        c = AdaptiveSamplingController(100, available=10,
                                       target_rel_error=0.5,
                                       tracer=tracer)
        c.seed([10.0, 10.0])
        assert c.seeded == 2 and c.sample_size == 2
        assert c.replayed == 0
        assert tracer.events == []         # no telemetry replanted
        assert c.should_stop() == STOP_TARGET_MET
        plan = c.plan_order(list(range(2, 10)))
        assert len(plan) <= c.max_sample - 2
        summary = c.finish()
        assert summary["seeded"] == 2 and summary["replayed"] == 0

    def test_request_cancel_sets_the_token(self):
        tracer = Tracer()
        c = AdaptiveSamplingController(100, available=10,
                                       target_rel_error=0.5,
                                       tracer=tracer)
        cancel = CancelToken()
        c.request_cancel(cancel, STOP_TARGET_MET)
        assert cancel.cancelled
        assert cancel.reason == STOP_TARGET_MET
        assert any(ev["name"] == "controller.cancel"
                   for ev in tracer.events)


class TestCancelToken:
    def test_first_reason_wins(self):
        token = CancelToken()
        assert not token.cancelled and not token
        token.cancel("first")
        token.cancel("second")
        assert token.cancelled and token
        assert token.reason == "first"


class TestPlanReplayBatchesWithOrder:
    class _Snap:
        def __init__(self, cycles):
            self.input_trace = [None] * cycles

    def test_order_none_is_natural_batching(self):
        snaps = [self._Snap(4)] * 5
        assert plan_replay_batches(snaps, 2) == [[0, 1], [2, 3], [4]]

    def test_follows_order_and_lane_limit(self):
        snaps = [self._Snap(4)] * 6
        batches = plan_replay_batches(snaps, 2, order=[5, 1, 3, 0])
        assert batches == [[5, 1], [3, 0]]

    def test_trace_length_change_splits_batches(self):
        snaps = [self._Snap(4), self._Snap(4), self._Snap(8)]
        batches = plan_replay_batches(snaps, 4, order=[0, 2, 1])
        assert batches == [[0], [2], [1]]


class TestReplayStream:
    @pytest.fixture(scope="class")
    def run(self):
        return run_strober("rocket_mini", "towers", sample_size=8,
                           replay_length=32, backend="auto", seed=3)

    def test_order_subset_streams_only_that_subset(self, run):
        engine = run.engine
        snaps = list(run.snapshots)
        pairs = list(engine.replay_stream(snaps, order=[5, 1, 3]))
        assert [i for i, _ in pairs] == [5, 1, 3]
        full = engine.replay_all(snaps)
        for i, result in pairs:
            assert _power_key(result) == _power_key(full[i])

    def test_order_validation_is_eager(self, run):
        engine = run.engine
        snaps = list(run.snapshots)
        with pytest.raises(ValueError):
            engine.replay_stream(snaps, order=[0, 0])
        with pytest.raises(ValueError):
            engine.replay_stream(snaps, order=[len(snaps)])

    def test_serial_cancellation_stops_dispatch(self, run):
        engine = run.engine
        snaps = list(run.snapshots)
        cancel = CancelToken()
        seen = []
        for idx, result in engine.replay_stream(snaps, cancel=cancel):
            seen.append(idx)
            cancel.cancel("test")
        assert seen == [0]     # already-dispatched batch still yielded

    def test_supervised_cancellation_keeps_pool_healthy(self, run):
        engine = run.engine
        snaps = list(run.snapshots)
        cancel = CancelToken()
        seen = []
        for idx, result in engine.replay_stream(snaps, workers=2,
                                                cancel=cancel):
            seen.append(idx)
            if len(seen) == 2:
                cancel.cancel("enough")
        assert 2 <= len(seen) < len(snaps)
        health = engine.last_health
        assert health is not None
        assert health.cancelled >= 1
        # cancellation is a decision, not a fault
        assert health.healthy

    def test_supervised_stream_labels_original_indices(self, run):
        engine = run.engine
        snaps = list(run.snapshots)
        serial = engine.replay_all(snaps)
        pairs = list(engine.replay_stream(snaps, workers=2,
                                          order=[6, 2, 4]))
        assert sorted(i for i, _ in pairs) == [2, 4, 6]
        for i, result in pairs:
            assert _power_key(result) == _power_key(serial[i])


class TestAdaptiveEndToEnd:
    def test_fixed_mode_summary(self, fixed_run):
        sampling = fixed_run.sampling
        assert sampling["mode"] == "fixed"
        assert sampling["stop_reason"] is None
        assert sampling["early_stop"] is False
        assert sampling["fraction_replayed"] == 1.0
        assert sampling["replayed"] == len(fixed_run.replays)

    def test_early_stop_meets_the_target(self, adaptive_traced,
                                         fixed_run):
        run, _doc = adaptive_traced
        sampling = run.sampling
        assert sampling["mode"] == "adaptive"
        assert sampling["stop_reason"] == STOP_TARGET_MET
        assert sampling["early_stop"] is True
        assert sampling["rel_error"] <= TARGET
        assert sampling["sample_size"] < len(fixed_run.replays)
        assert len(run.replays) == sampling["sample_size"]
        assert 0.0 < sampling["fraction_replayed"] < 1.0
        # the subset estimate must agree with the full-sample truth
        # within the interval it claims
        full = fixed_run.energy.power.mean
        assert abs(run.energy.power.mean - full) / full <= TARGET

    def test_controller_events_land_in_the_trace(self, adaptive_traced):
        run, doc = adaptive_traced
        from repro.obs.report import controller_events, render_report
        events = controller_events(doc)
        names = [ev["name"] for ev in events]
        assert "controller.dispatch" in names
        assert "controller.stop" in names
        assert names.count("controller.progress") >= 1
        stop = next(ev for ev in events
                    if ev["name"] == "controller.stop")
        assert stop["args"]["reason"] == STOP_TARGET_MET
        assert stop["args"]["early_stop"] is True
        text = render_report(doc)
        assert "-- adaptive sampling controller --" in text
        assert "target-met" in text

    def test_fixed_run_emits_no_controller_events(self, tmp_path):
        from repro.obs.report import controller_events
        path = str(tmp_path / "fixed.trace.json")
        run_strober(design="rocket_mini", workload="towers",
                    sample_size=4, replay_length=32, backend="auto",
                    seed=3, trace=path)
        assert controller_events(load_trace(path)) == []

    def test_adaptive_parallel_cancels_in_flight_batches(self):
        run = run_strober(**ADAPTIVE_KW, target_rel_error=TARGET,
                          workers=2, batch_lanes=2)
        sampling = run.sampling
        assert sampling["stop_reason"] == STOP_TARGET_MET
        assert sampling["rel_error"] <= TARGET
        assert run.health is not None and run.health.healthy
        # the early stop abandoned work the pool never finished
        assert run.health.cancelled >= 1


class TestJournalAdaptive:
    JKW = dict(design="rocket_mini", workload="towers", sample_size=6,
               replay_length=32, backend="auto", seed=3)

    def test_fixed_journal_reopens_under_a_target(self, tmp_path):
        """A pre-adaptive (fixed-n) journal resumes when the caller
        adds ``target_rel_error``: the knobs are advisory, not
        identity."""
        jpath = str(tmp_path / "run.journal")
        first = run_strober(**self.JKW, journal=jpath)
        clear_caches()
        again = run_strober(**self.JKW, journal=jpath,
                            target_rel_error=0.5)
        assert again.timings["resumed_sim"]
        assert again.timings["resumed_replays"] == len(first.replays)
        assert again.sampling["mode"] == "adaptive"
        assert again.sampling["seeded"] == len(first.replays)
        assert again.sampling["replayed"] == 0
        assert again.energy.power.mean == first.energy.power.mean
        # and the adaptive pass journaled its verdict without breaking
        # a later fixed-mode resume
        types = [rtype for rtype, _ in read_journal(jpath)]
        assert TYPE_CONTROL in types
        third = run_strober(**self.JKW, journal=jpath)
        assert third.timings["resumed_sim"]
        assert third.energy.power.mean == first.energy.power.mean

    def test_tighter_target_replays_only_additional_snapshots(
            self, tmp_path):
        jpath = str(tmp_path / "run.journal")
        loose = run_strober(**ADAPTIVE_KW, journal=jpath,
                            target_rel_error=0.5)
        assert loose.sampling["stop_reason"] == STOP_TARGET_MET
        n_loose = loose.sampling["sample_size"]
        clear_caches()
        tight = run_strober(**ADAPTIVE_KW, journal=jpath,
                            target_rel_error=TARGET)
        assert tight.timings["resumed_sim"]
        # only the already-journaled replays were resumed …
        assert tight.timings["resumed_replays"] == n_loose
        assert tight.sampling["seeded"] == n_loose
        # … and the tighter pass added to them rather than restarting
        assert tight.sampling["sample_size"] >= n_loose
        assert tight.sampling["rel_error"] <= TARGET
        assert len(tight.replays) == tight.sampling["sample_size"]
        # journal now holds one result per distinct replay, ever
        records = read_journal(jpath)
        indices = [obj["index"] for rtype, obj in records
                   if rtype == TYPE_RESULT]
        assert len(indices) == len(set(indices))
        assert len(indices) == tight.sampling["sample_size"]

    def test_control_records_accumulate_per_adaptive_pass(
            self, tmp_path):
        jpath = str(tmp_path / "run.journal")
        run_strober(**ADAPTIVE_KW, journal=jpath, target_rel_error=0.5)
        clear_caches()
        run_strober(**ADAPTIVE_KW, journal=jpath,
                    target_rel_error=TARGET)
        controls = [obj["controller"] for rtype, obj
                    in read_journal(jpath) if rtype == TYPE_CONTROL]
        assert len(controls) == 2
        assert all(c["mode"] == "adaptive" for c in controls)
        assert controls[0]["target_rel_error"] == 0.5
        assert controls[1]["target_rel_error"] == TARGET
        assert {c["stop_reason"] for c in controls} <= {
            STOP_TARGET_MET, STOP_EXHAUSTED, STOP_MAX_SAMPLE}

    def test_foreign_and_control_records_skipped_on_fixed_resume(
            self, tmp_path):
        """Forward compatibility: a journal decorated by a newer
        writer (control records, types not invented yet) must still
        resume under a reader that ignores them."""
        jpath = str(tmp_path / "run.journal")
        first = run_strober(**self.JKW, journal=jpath)
        with RunJournal(jpath) as journal:
            journal.append(TYPE_CONTROL,
                           {"controller": {"mode": "adaptive",
                                           "stop_reason": "target-met"}})
            journal.append(99, {"v": 7, "mystery": True})
        clear_caches()
        resumed = run_strober(**self.JKW, journal=jpath)
        assert resumed.timings["resumed_sim"]
        assert resumed.timings["resumed_replays"] == len(first.replays)
        assert resumed.energy.power.mean == first.energy.power.mean


class TestJobSpecV2:
    def _raw(self, **extra):
        spec = {"design": "rocket_mini", "workload": "towers"}
        spec.update(extra)
        return spec

    def test_adaptive_knobs_round_trip(self):
        from repro.service import JobSpec
        spec = JobSpec.from_dict(self._raw(
            target_rel_error=0.1, min_sample=2, max_sample=8))
        assert spec.target_rel_error == 0.1
        assert spec.min_sample == 2 and spec.max_sample == 8
        kwargs = spec.run_kwargs()
        assert kwargs["target_rel_error"] == 0.1
        assert kwargs["min_sample"] == 2
        assert kwargs["max_sample"] == 8
        assert spec.as_dict()["v"] == 2
        # canonical form re-validates (the resume path)
        again = JobSpec.from_dict(spec.as_dict())
        assert again.target_rel_error == 0.1

    def test_v1_spec_is_a_valid_v2_spec(self):
        from repro.service import JobSpec
        spec = JobSpec.from_dict(self._raw(v=1))
        assert spec.target_rel_error is None
        assert spec.min_sample is None and spec.max_sample is None
        assert spec.run_kwargs()["target_rel_error"] is None

    @pytest.mark.parametrize("bad", [
        {"target_rel_error": 0.0},
        {"target_rel_error": 1.5},
        {"target_rel_error": "tight"},
        {"min_sample": 1},
        {"max_sample": 0},
        {"v": 99},
    ])
    def test_invalid_knobs_rejected(self, bad):
        from repro.service import JobSpec, ServiceError
        with pytest.raises(ServiceError) as err:
            JobSpec.from_dict(self._raw(**bad))
        assert err.value.type == "invalid-request"


class TestJobProgressFeed:
    def test_controller_events_surface_in_job_info(self):
        from repro.service import JobSpec
        from repro.service.daemon import Job, StroberService
        job = Job("job-000001", JobSpec(design="rocket_mini",
                                        workload="towers"))
        assert job.info()["progress"] is None
        event = {"name": "controller.progress", "cat": "controller",
                 "args": {"n": 4, "rel_error": 0.3,
                          "target_rel_error": 0.2}}
        StroberService._on_event(None, job, event)
        assert job.info()["progress"] == {
            "event": "progress", "n": 4, "rel_error": 0.3,
            "target_rel_error": 0.2}
        # non-controller instants are not progress
        StroberService._on_event(
            None, job, {"name": "supervisor.incident", "args": {}})
        assert job.info()["progress"]["event"] == "progress"
        stop = {"name": "controller.stop", "cat": "controller",
                "args": {"reason": "target-met", "early_stop": True,
                         "n": 8}}
        StroberService._on_event(None, job, stop)
        assert job.info()["progress"]["event"] == "stop"
        assert job.info()["progress"]["reason"] == "target-met"
