"""FAME1 transform and host-decoupled simulation."""

from .transform import (
    fame1_transform, is_fame1, Fame1Error, HOST_ENABLE,
    Fame1TransformPass,
)
from .channel import Channel, TraceBuffer, ChannelError
from .simulator import (
    Endpoint, ConstantEndpoint, Fame1Simulator, SimulationStats,
)

__all__ = [
    "fame1_transform", "is_fame1", "Fame1Error", "HOST_ENABLE",
    "Fame1TransformPass",
    "Channel", "TraceBuffer", "ChannelError",
    "Endpoint", "ConstantEndpoint", "Fame1Simulator", "SimulationStats",
]
