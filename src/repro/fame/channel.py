"""Token channels for FAME1 decoupled simulation (Section IV-B1).

A FAME1 simulator communicates with its host environment through
latency-insensitive channels that carry *timing tokens*: one token per
port per target cycle.  The target may only fire a cycle when every
input channel has a token and every output channel has buffer space.
"""

from __future__ import annotations

from collections import deque


class ChannelError(Exception):
    pass


class Channel:
    """A single-direction token queue attached to one top-level port."""

    def __init__(self, name, width, direction, depth=8):
        if direction not in ("input", "output"):
            raise ValueError("direction must be 'input' or 'output'")
        self.name = name
        self.width = width
        self.direction = direction
        self.depth = depth
        self._queue = deque()

    def __len__(self):
        return len(self._queue)

    @property
    def full(self):
        return len(self._queue) >= self.depth

    @property
    def empty(self):
        return not self._queue

    def push(self, token):
        if self.full:
            raise ChannelError(f"channel {self.name} overflow")
        self._queue.append(token)

    def pop(self):
        if self.empty:
            raise ChannelError(f"channel {self.name} underflow")
        return self._queue.popleft()

    def peek(self):
        if self.empty:
            raise ChannelError(f"channel {self.name} empty")
        return self._queue[0]


class TraceBuffer:
    """Ring buffer recording the last ``capacity`` tokens of a channel.

    This is the I/O trace buffer Strober attaches to every channel so a
    replayable snapshot can carry the design's exact I/O over the replay
    window (Section IV-B2).
    """

    def __init__(self, capacity):
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.capacity = capacity
        self._buf = deque(maxlen=capacity)

    def record(self, token):
        self._buf.append(token)

    def contents(self):
        return list(self._buf)

    def clear(self):
        self._buf.clear()

    def __len__(self):
        return len(self._buf)
