"""FAME1 decoupled simulator with snapshot capture (Sections III-B, IV-B).

Plays the role of the Strober-generated FPGA simulator: runs the
FAME1-transformed target, services its I/O through host endpoints
(memory timing model, HTIF), and captures replayable RTL snapshots via
reservoir sampling at replay-window boundaries.

Host-time accounting follows the paper's Section IV-E model: the target
stalls while a snapshot is scanned out (``Trec``), and every
``io_stall_period`` target cycles the host/FPGA communication costs
``io_stall_cycles`` of host time (the paper's "stalls every 256 cycles").
"""

from __future__ import annotations

import time

from ..sim import make_simulator
from ..sampling import ReservoirSampler
from ..scan.chains import build_scan_chain_spec
from ..scan.snapshot import ReplayableSnapshot
from .transform import fame1_transform, is_fame1, HOST_ENABLE


class Endpoint:
    """Host-side model servicing some of the target's I/O channels.

    Subclasses implement :meth:`tick`, which receives the target's output
    token from the previous target cycle and returns the input token
    (a dict of port values) for the next one.
    """

    def tick(self, outputs):
        raise NotImplementedError

    def reset(self):
        """Called when the simulation (re)starts."""


class ConstantEndpoint(Endpoint):
    """Drives fixed values; useful for tying off unused inputs."""

    def __init__(self, values):
        self._values = dict(values)

    def tick(self, outputs):
        return self._values


class SimulationStats:
    """Cycle and wall-clock accounting for one simulation run."""

    def __init__(self):
        self.target_cycles = 0
        self.host_cycles = 0
        self.snapshot_host_cycles = 0
        self.io_stall_host_cycles = 0
        self.record_count = 0
        self.wall_seconds = 0.0
        self.snapshot_wall_seconds = 0.0

    def as_dict(self):
        return dict(self.__dict__)

    def simulated_rate_hz(self, host_freq_hz):
        """Modeled target rate given an FPGA host frequency."""
        if self.host_cycles == 0:
            return 0.0
        return host_freq_hz * self.target_cycles / self.host_cycles


class Fame1Simulator:
    """Run a FAME1-transformed circuit against host endpoints.

    Args:
        circuit: an elaborated Circuit; transformed in place unless it
            already carries the FAME1 host-enable.
        endpoints: list of :class:`Endpoint` whose ticks collectively
            drive every target input port.
        replay_length: L, the snapshot replay window in target cycles.
        sample_size: reservoir size n (None disables sampling).
        scan_width: scan chain word width (cost model input).
        host_freq_hz: modeled FPGA host clock for time estimates.
        io_stall_period / io_stall_cycles: host/target communication
            overhead model.
    """

    def __init__(self, circuit, endpoints, replay_length=128,
                 sample_size=None, seed=0, backend="auto", scan_width=32,
                 host_freq_hz=50e6, io_stall_period=256, io_stall_cycles=16,
                 sim=None):
        if not is_fame1(circuit):
            fame1_transform(circuit)
        self.circuit = circuit
        self.endpoints = list(endpoints)
        self.replay_length = replay_length
        self.sample_size = sample_size
        self.scan_spec = build_scan_chain_spec(circuit, scan_width)
        self.host_freq_hz = host_freq_hz
        self.io_stall_period = io_stall_period
        self.io_stall_cycles = io_stall_cycles
        if sim is not None:
            # Reusing a compiled simulator across runs: clear all state
            # (including cache tag/data memories) for a clean boot.
            self.sim = sim
            self.sim.reset(clear_mems=True)
        else:
            self.sim = make_simulator(circuit, backend=backend)
        self.sim.poke(HOST_ENABLE, 1)
        self.stats = SimulationStats()
        self.sampler = (ReservoirSampler(sample_size, seed=seed)
                        if sample_size else None)
        self._pending = []          # snapshots still recording their window
        self._last_outputs = {}
        self.record_full_io = False
        self.full_io_trace = []     # (inputs, outputs) per target cycle
        for endpoint in self.endpoints:
            endpoint.reset()

    # -- core loop -----------------------------------------------------------

    def _capture_snapshot(self):
        """Scan out the full RTL state (charges Trec host cycles)."""
        t0 = time.perf_counter()
        state = self.sim.snapshot()
        snapshot = ReplayableSnapshot(
            cycle=self.stats.target_cycles,
            state=state,
            replay_length=self.replay_length,
            perf_counters=dict(self._last_outputs),
        )
        readout = self.scan_spec.readout_cycles()
        self.stats.snapshot_host_cycles += readout
        self.stats.host_cycles += readout
        self.stats.record_count += 1
        elapsed = time.perf_counter() - t0
        self.stats.snapshot_wall_seconds += elapsed
        self._pending.append(snapshot)
        if len(self._pending) > 4:
            self._pending = [s for s in self._pending if not s.complete]
        return snapshot

    def step_target(self):
        """Advance the target by exactly one cycle."""
        inputs = {}
        for endpoint in self.endpoints:
            produced = endpoint.tick(self._last_outputs)
            if produced:
                inputs.update(produced)
        self.sim.poke_all(inputs)
        self.sim.step()
        outputs = self.sim.peek_all()
        self._last_outputs = outputs

        for snapshot in self._pending:
            snapshot.record_cycle(inputs, outputs)
        if self.record_full_io:
            self.full_io_trace.append((inputs, outputs))

        self.stats.target_cycles += 1
        self.stats.host_cycles += 1
        if (self.io_stall_period
                and self.stats.target_cycles % self.io_stall_period == 0):
            self.stats.host_cycles += self.io_stall_cycles
            self.stats.io_stall_host_cycles += self.io_stall_cycles

        if (self.sampler is not None
                and self.stats.target_cycles % self.replay_length == 0):
            self.sampler.offer(make_item=self._capture_snapshot)
        return outputs

    def run(self, max_cycles, stop_fn=None, progress_fn=None,
            progress_interval=None):
        """Run until ``stop_fn(outputs)`` is truthy or ``max_cycles``.

        Returns the final outputs dict.  Wall-clock time is accumulated
        into ``self.stats``.
        """
        t0 = time.perf_counter()
        outputs = self._last_outputs
        start = self.stats.target_cycles
        while self.stats.target_cycles - start < max_cycles:
            outputs = self.step_target()
            if stop_fn is not None and stop_fn(outputs):
                break
            if (progress_fn is not None and progress_interval
                    and self.stats.target_cycles % progress_interval == 0):
                progress_fn(self)
        self.stats.wall_seconds += time.perf_counter() - t0
        return outputs

    # -- results ---------------------------------------------------------------

    @property
    def snapshots(self):
        """The reservoir contents, restricted to complete snapshots.

        Completed snapshots are sealed (integrity-checksummed) on the
        way out so any later corruption — in a worker pickle, the run
        journal, or a fault-injection campaign — is detected at replay.
        """
        if self.sampler is None:
            return []
        out = [s for s in self.sampler.sample if s.complete]
        for snapshot in out:
            if snapshot.checksum is None:
                snapshot.seal()
        return out

    def sampling_overhead_seconds(self):
        return self.stats.snapshot_wall_seconds

    def modeled_sim_seconds(self):
        """Host wall time predicted by the Section IV-E model."""
        return self.stats.host_cycles / self.host_freq_hz
