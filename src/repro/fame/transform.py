"""The FAME1 transform (Figure 3 of the paper).

Rewrites an elaborated circuit so the whole design can stall under host
control: a global ``host_en`` input gates every register update and
memory write (the "globally enabled mux before each register").  The
token-channel wrapping itself lives in :mod:`repro.fame.simulator`; this
pass provides the hardware half.
"""

from __future__ import annotations

from ..hdl.ir import Node, mux
from ..passes.base import Pass, PassResult

HOST_ENABLE = "host_en"


class Fame1Error(Exception):
    pass


def fame1_transform(circuit):
    """Apply the FAME1 transform in place and return channel metadata.

    Returns a dict describing the I/O channels (one per original port)
    that a host-side simulator must service.
    """
    for node in circuit.inputs:
        if node.name == HOST_ENABLE:
            raise Fame1Error("circuit already FAME1-transformed")

    host_en = Node("input", 1, name=HOST_ENABLE)
    host_en.path = HOST_ENABLE

    channels = {"inputs": [], "outputs": []}
    for node in circuit.inputs:
        channels["inputs"].append((node.name, node.width))
    for name, driver in circuit.outputs:
        channels["outputs"].append((name, driver.width))

    # Enable mux in front of every register.
    for reg in circuit.regs:
        nxt = circuit.reg_next[reg]
        circuit.reg_next[reg] = mux(host_en, nxt, reg)

    # Gate every memory write.
    for mem in circuit.mems:
        mem.writes = [(addr, data, en & host_en)
                      for addr, data, en in mem.writes]

    circuit.inputs.append(host_en)
    circuit.retopo()
    circuit.fame1_channels = channels
    return channels


def is_fame1(circuit):
    return any(node.name == HOST_ENABLE for node in circuit.inputs)


class Fame1TransformPass(Pass):
    """:func:`fame1_transform` as a scheduled pipeline pass.

    Skipped automatically if the circuit already carries the host
    enable, so pipelines stay idempotent over cached circuits.
    """

    name = "fame1"
    requires = ("elaborated",)
    produces = ("fame1",)
    # the transform adds state muxes: any prior scan instrumentation
    # metadata would describe the pre-transform design
    preserves = ("elaborated", "fame1")

    def is_satisfied(self, circuit):
        return is_fame1(circuit)

    def run(self, circuit, ctx):
        channels = fame1_transform(circuit)
        return PassResult(
            artifacts={"channels": channels},
            stats={"input_channels": len(channels["inputs"]),
                   "output_channels": len(channels["outputs"])})
