"""Statistical sampling: Table I estimators and reservoir sampling."""

from .stats import (
    Estimate, OnlineMeanEstimator, estimate_mean, minimum_sample_size,
    validate_sample_size, population_mean, population_variance,
    sample_mean, sample_variance, sampling_variance, z_quantile,
    MIN_NORMAL_SAMPLE,
)
from .reservoir import (
    ReservoirSampler, expected_record_count, paper_record_count_model,
)

__all__ = [
    "Estimate", "OnlineMeanEstimator", "estimate_mean",
    "minimum_sample_size",
    "validate_sample_size", "population_mean", "population_variance",
    "sample_mean", "sample_variance", "sampling_variance", "z_quantile",
    "MIN_NORMAL_SAMPLE",
    "ReservoirSampler", "expected_record_count", "paper_record_count_model",
]
