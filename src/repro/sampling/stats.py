"""Statistical estimation machinery from Strober Section III-A / Table I.

Implements the exact estimators the paper lists: sample mean (eq. 3),
sample variance (eq. 4), population variance estimate (eq. 5), sampling
variance of the mean under sampling *without replacement* (eq. 6, with
the finite population correction), normal-theory confidence intervals
(eq. 7), and the minimum sample size rule (eq. 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Standard normal quantiles for the confidence levels used in the paper.
_Z_TABLE = {
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.99: 2.5758293035489004,
    0.999: 3.2905267314918945,
}

MIN_NORMAL_SAMPLE = 30  # CLT floor the paper quotes for eq. 8


def z_quantile(confidence):
    """Two-sided standard normal quantile z_{1-(alpha/2)}.

    Table lookup for the common levels; rational approximation (Acklam)
    otherwise, so no scipy dependency is needed at runtime.
    """
    if confidence in _Z_TABLE:
        return _Z_TABLE[confidence]
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    return _norm_ppf(1.0 - (1.0 - confidence) / 2.0)


def _norm_ppf(p):
    """Inverse standard normal CDF (Acklam's rational approximation)."""
    a = [-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00]
    b = [-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00]
    d = [7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00]
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return ((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                 * q + c[5])
                / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))
    if p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        return ((((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4])
                 * r + a[5]) * q
                / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4])
                   * r + 1))
    q = math.sqrt(-2 * math.log(1 - p))
    return -((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
              * q + c[5])
             / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))


def population_mean(values):
    """Exact population mean, eq. (1)."""
    values = list(values)
    if not values:
        raise ValueError("empty population")
    return sum(values) / len(values)


def population_variance(values):
    """Exact population variance, eq. (2) (divides by N, per the paper)."""
    values = list(values)
    mean = population_mean(values)
    return sum((v - mean) ** 2 for v in values) / len(values)


def sample_mean(values):
    """Sample mean x̄, eq. (3)."""
    values = list(values)
    if not values:
        raise ValueError("empty sample")
    return sum(values) / len(values)


def sample_variance(values):
    """Unbiased sample variance s_x², eq. (4)."""
    values = list(values)
    n = len(values)
    if n < 2:
        raise ValueError("sample variance needs at least 2 elements")
    mean = sum(values) / n
    return sum((v - mean) ** 2 for v in values) / (n - 1)


def sampling_variance(values, population_size):
    """Var(x̄) estimate with finite population correction, eq. (6)."""
    values = list(values)
    n = len(values)
    big_n = population_size
    if n > big_n:
        raise ValueError("sample larger than population")
    if n == big_n:
        return 0.0
    return sample_variance(values) * (big_n - n) / (big_n * n)


@dataclass
class Estimate:
    """A mean estimate with its confidence interval (eq. 7)."""

    mean: float
    variance: float            # Var(x̄)
    confidence: float
    half_width: float          # z * sqrt(Var(x̄))
    sample_size: int
    population_size: int

    @property
    def lower(self):
        return self.mean - self.half_width

    @property
    def upper(self):
        return self.mean + self.half_width

    @property
    def relative_error_bound(self):
        """Half width as a fraction of the mean (the paper's error axis)."""
        if self.mean == 0:
            return float("inf")
        return abs(self.half_width / self.mean)

    def contains(self, value):
        return self.lower <= value <= self.upper

    def __str__(self):
        pct = self.confidence * 100
        return (f"{self.mean:.6g} ± {self.half_width:.3g} "
                f"({pct:g}% CI, n={self.sample_size})")


def estimate_mean(values, population_size, confidence=0.99):
    """Full estimator pipeline: eqs. (3), (4), (6), (7) in one call.

    Hardened for the degenerate states an *online* consumer (the
    adaptive sampling controller, which re-evaluates the interval
    after every completed replay) necessarily passes through:

    * ``n == 0`` — no data yet: mean 0 with a zero half-width; the
      relative error bound is infinite (``mean == 0``), so nothing can
      mistake it for a converged estimate;
    * ``n == 1`` — one sample has no variance information: the sample
      value with a zero half-width (the controller's ``min_sample``
      floor, never below 2, is what makes this state unreachable as a
      stop decision);
    * zero-variance samples — a legitimate zero half-width, with the
      variance clamped at 0 so float cancellation can never feed a
      negative into ``sqrt``.
    """
    values = list(values)
    n = len(values)
    if n == 0:
        return Estimate(mean=0.0, variance=0.0, confidence=confidence,
                        half_width=0.0, sample_size=0,
                        population_size=population_size)
    var = (0.0 if n < 2
           else max(sampling_variance(values, population_size), 0.0))
    z = z_quantile(confidence)
    mean = sample_mean(values)
    return Estimate(
        mean=mean,
        variance=var,
        confidence=confidence,
        half_width=z * math.sqrt(var),
        sample_size=n,
        population_size=population_size,
    )


class OnlineMeanEstimator:
    """Incremental eq.-7 estimator: O(1) per sample, no recompute.

    The adaptive sampling controller re-evaluates the confidence
    interval after *every* completed replay; recomputing
    :func:`estimate_mean` over the full sample each time (what the old
    live telemetry did) is O(n) per result — O(n²) over a run.  This
    keeps Welford running moments instead, so each update is a handful
    of flops and :meth:`estimate` produces the same eq. 3/4/6/7
    pipeline (same z quantile, same finite-population correction) up
    to float associativity.

    The *final* reported energy numbers still come from the batch
    :func:`estimate_mean` over the collected replays — bit-identical
    to the historical pipeline — so this class only ever decides *when
    to stop*, never what is reported.
    """

    __slots__ = ("population_size", "confidence", "_z", "n", "mean",
                 "_m2")

    def __init__(self, population_size, confidence=0.99):
        if population_size < 1:
            raise ValueError("population_size must be >= 1")
        self.population_size = int(population_size)
        self.confidence = confidence
        self._z = z_quantile(confidence)
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0          # sum of squared deviations (Welford)

    def add(self, value):
        """Fold one sample in; returns self for chaining."""
        value = float(value)
        if self.n >= self.population_size:
            raise ValueError("sample larger than population")
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)
        return self

    @property
    def sample_variance(self):
        """Unbiased s_x² (eq. 4); 0.0 below two samples."""
        if self.n < 2:
            return 0.0
        return max(self._m2 / (self.n - 1), 0.0)

    def estimate(self):
        """The current :class:`Estimate`, O(1) and total on any n."""
        n, big_n = self.n, self.population_size
        var = (0.0 if n >= big_n or n < 2
               else self.sample_variance * (big_n - n) / (big_n * n))
        return Estimate(
            mean=self.mean,
            variance=var,
            confidence=self.confidence,
            half_width=self._z * math.sqrt(var),
            sample_size=n,
            population_size=big_n,
        )

    @property
    def relative_error(self):
        """Half width over mean of the current estimate (inf at n=0)."""
        return self.estimate().relative_error_bound


def minimum_sample_size(values, max_relative_error, confidence=0.99):
    """Minimum n for a target relative error, eq. (8).

    ``values`` is a pilot sample used to estimate s_x² and x̄.  The paper
    floors the result at 30 (the CLT normality threshold).
    """
    if max_relative_error <= 0:
        raise ValueError("max_relative_error must be positive")
    z = z_quantile(confidence)
    s2 = sample_variance(values)
    mean = sample_mean(values)
    if mean == 0:
        raise ValueError("cannot target relative error around a zero mean")
    needed = (z * z * s2) / (max_relative_error ** 2 * mean * mean)
    return max(math.ceil(needed), MIN_NORMAL_SAMPLE)


def validate_sample_size(values, max_relative_error, confidence=0.99):
    """True if the sample already satisfies eq. (8) for the target error."""
    return len(values) >= minimum_sample_size(
        values, max_relative_error, confidence)
