"""Reservoir sampling (Vitter's Algorithm R) — Strober Section III-B.

Strober cannot know a program's execution length a priori, so it keeps a
fixed-size reservoir of replayable snapshots: the k-th candidate element
(k > n) replaces a random reservoir slot with probability n/k.  At the
end of the run the reservoir is a uniform random sample *without
replacement* of all candidates.

The paper's performance model (Section IV-E) uses the expected number of
record events, roughly ``2·n·ln((N/L)/n)``; :func:`expected_record_count`
implements that expression so benches can compare measured vs. modeled
sampling overhead (Table III's "Record Counts" row).
"""

from __future__ import annotations

import math
import random


class ReservoirSampler:
    """Uniform random sample of fixed size from a stream of unknown length.

    ``offer(item)`` presents one stream element; the sampler either
    ignores it or records it (replacing a random previous record).  The
    ``record_count`` attribute counts how many times an element was
    actually recorded — each record is expensive in Strober (a full scan
    chain read-out), so the count drives the sampling-overhead model.
    """

    def __init__(self, sample_size, seed=None, rng=None):
        if sample_size < 1:
            raise ValueError("sample size must be >= 1")
        self.sample_size = sample_size
        self._rng = rng if rng is not None else random.Random(seed)
        self._reservoir = []
        self.stream_count = 0
        self.record_count = 0

    def __len__(self):
        return len(self._reservoir)

    @property
    def sample(self):
        """The current reservoir contents (stream order not preserved)."""
        return list(self._reservoir)

    def will_record(self):
        """Decide whether the *next* offered element would be recorded.

        Split from :meth:`offer` so a simulator can test cheaply whether
        to pay for a snapshot before materializing it (Strober only reads
        the scan chains when the element is actually selected).
        """
        k = self.stream_count + 1
        if k <= self.sample_size:
            return True
        return self._rng.random() < self.sample_size / k

    def offer(self, item=None, make_item=None):
        """Present one stream element; returns True if it was recorded.

        Exactly one of ``item`` / ``make_item`` should be given;
        ``make_item`` defers (possibly expensive) construction until the
        sampler has decided to record.
        """
        record = self.will_record()
        self.stream_count += 1
        if not record:
            return False
        if make_item is not None:
            item = make_item()
        if len(self._reservoir) < self.sample_size:
            self._reservoir.append(item)
        else:
            slot = self._rng.randrange(self.sample_size)
            self._reservoir[slot] = item
        self.record_count += 1
        return True


def expected_record_count(total_elements, sample_size):
    """Expected number of record events for a stream of known length.

    Exact expectation: n + sum_{k=n+1..N} n/k = n(1 + H_N - H_n); the
    paper quotes the approximation 2·n·ln(N/n) in Section IV-E (their
    N there is already the element count, total_cycles / L).
    """
    n = sample_size
    big_n = total_elements
    if big_n <= n:
        return float(big_n)
    return n * (1.0 + math.log(big_n) - math.log(n))


def paper_record_count_model(total_cycles, sample_size, replay_length):
    """The paper's Section IV-E expression: 2·n·ln((N/L)/n)."""
    elements = total_cycles / replay_length
    if elements <= sample_size:
        return float(sample_size)
    return 2.0 * sample_size * math.log(elements / sample_size)
