"""Multiprocessing snapshot-replay pool.

The paper notes snapshot replays are embarrassingly parallel (each
replay is independent, Section IV-C); this module fans them out across
worker processes.  Since the robustness layer landed, the fan-out is
handled by the *supervised* pool in :mod:`repro.robust.supervisor`:
each worker builds its gate-level simulator once from the pickled
:class:`AsicFlow` payload, and a supervisor imposes per-snapshot
timeouts, respawns crashed workers, retries with exponential backoff,
and degrades to in-process serial replay when retries are exhausted.

Guarantees:

* results come back in snapshot order;
* a strict-mode replay mismatch (or a snapshot integrity failure)
  propagates to the caller exactly as the serial path would raise it —
  verification failures are deterministic and are never retried;
* snapshots are dispatched one at a time so uneven replay times
  load-balance across workers;
* transient worker failures (crash, hang, spurious exception) are
  retried and recorded in a :class:`repro.robust.ReplayHealthReport`
  instead of hanging or killing the whole run.
"""

from __future__ import annotations

import multiprocessing
import os
import threading


class ParallelReplayError(Exception):
    """The replay payload cannot be shipped to worker processes."""


class CancelToken:
    """Cooperative cancellation signal for a streaming replay.

    The adaptive sampling controller sets the token once its target
    confidence interval is met; the supervisor checks it between
    dispatches and stops handing out new batches.  In-flight batches
    are *abandoned*, not interrupted: their workers finish (or are
    politely shut down at teardown) without the pool being killed, so
    a cancelled stream still ends with a healthy, reusable report.

    Thread-safe: built on :class:`threading.Event` so the consumer
    thread can cancel while the scheduler is blocked in a poll.
    """

    __slots__ = ("_event", "reason")

    def __init__(self):
        self._event = threading.Event()
        self.reason = None

    def cancel(self, reason=None):
        """Request cancellation (idempotent; first reason wins)."""
        if reason is not None and self.reason is None:
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self):
        return self._event.is_set()

    def __bool__(self):
        return self.cancelled


_ENV_START_METHOD = "REPRO_START_METHOD"


def default_workers():
    return os.cpu_count() or 1


def _pick_context(start_method=None):
    """Resolve the multiprocessing start method for replay workers.

    Priority: explicit ``start_method`` argument, then the
    ``$REPRO_START_METHOD`` environment override, then a platform
    default.  The default prefers ``fork`` (cheap: workers inherit the
    parent's loaded modules and compiled evaluators) — but only while
    the parent process is single-threaded.  Forking a threaded parent
    can deadlock the child on locks held by threads that do not exist
    after the fork, so threaded parents fall back to ``spawn``.
    """
    if start_method is None:
        start_method = os.environ.get(_ENV_START_METHOD) or None
    methods = multiprocessing.get_all_start_methods()
    if start_method is None:
        if "fork" in methods and threading.active_count() == 1:
            start_method = "fork"
        else:
            start_method = "spawn"
    if start_method not in methods:
        raise ValueError(
            f"unsupported multiprocessing start method {start_method!r} "
            f"(check ${_ENV_START_METHOD}); available: {', '.join(methods)}")
    from ..obs import get_tracer
    get_tracer().instant("pool.start_method", cat="pool",
                         method=start_method,
                         threads=threading.active_count())
    return multiprocessing.get_context(start_method)


def replay_parallel(flow, snapshots, *, workers, port_names,
                    grouping=None, freq_hz=None, strict=True,
                    start_method=None, timeout=None, max_retries=2,
                    fault_plan=None, on_result=None, health=None,
                    batch_lanes=1):
    """Replay ``snapshots`` on ``workers`` processes; order-preserving.

    Thin compatibility wrapper over
    :func:`repro.robust.supervisor.replay_supervised`.  Raises
    :class:`ParallelReplayError` if the flow/grouping payload is not
    picklable (e.g. a closure grouping function) — callers may fall
    back to the serial path.  Deterministic verification failures
    (strict-mode ``ReplayError``, ``SnapshotError``) propagate
    unchanged; transient worker failures are retried by the supervisor.

    ``batch_lanes`` > 1 makes each worker replay bit-parallel lane
    batches instead of single snapshots (same results, one netlist
    evaluation per batch per cycle); ``health``, if given, is a list
    the resulting :class:`~repro.robust.ReplayHealthReport` is
    appended to.
    """
    from ..robust.supervisor import replay_supervised
    results, report = replay_supervised(
        flow, snapshots, workers=workers, port_names=port_names,
        grouping=grouping, freq_hz=freq_hz, strict=strict,
        start_method=start_method, timeout=timeout,
        max_retries=max_retries, fault_plan=fault_plan,
        on_result=on_result, batch_lanes=batch_lanes)
    if health is not None:
        health.append(report)
    return results
