"""Multiprocessing snapshot-replay pool.

The paper notes snapshot replays are embarrassingly parallel (each
replay is independent, Section IV-C); this module fans them out across
worker processes.  Each worker receives the pickled :class:`AsicFlow`
artifact once at pool start-up, builds its gate-level simulator from it
once, and then replays whichever snapshots the parent streams to it.

Guarantees:

* results come back in snapshot order (``pool.map`` semantics);
* a strict-mode replay mismatch (or any worker exception) propagates to
  the caller exactly as the serial path would raise it;
* snapshots are dispatched one at a time (``chunksize=1``) so uneven
  replay times load-balance across workers.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle


class ParallelReplayError(Exception):
    """The replay payload cannot be shipped to worker processes."""


def default_workers():
    return os.cpu_count() or 1


def _pick_context(start_method=None):
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start_method)


# Per-worker-process replay engine, built once by _init_worker.
_WORKER_ENGINE = None


def _init_worker(payload):
    global _WORKER_ENGINE
    from ..core.replay import ReplayEngine
    flow, port_names, grouping, freq_hz = pickle.loads(payload)
    _WORKER_ENGINE = ReplayEngine.from_flow(
        flow, port_names=port_names, grouping=grouping, freq_hz=freq_hz)


def _replay_one(task):
    snapshot, strict = task
    return _WORKER_ENGINE.replay(snapshot, strict=strict)


def replay_parallel(flow, snapshots, *, workers, port_names,
                    grouping=None, freq_hz=None, strict=True,
                    start_method=None):
    """Replay ``snapshots`` on ``workers`` processes; order-preserving.

    Raises :class:`ParallelReplayError` if the flow/grouping payload is
    not picklable (e.g. a closure grouping function) — callers may fall
    back to the serial path.  Worker exceptions (including strict-mode
    ``ReplayError`` mismatches) propagate unchanged.
    """
    snapshots = list(snapshots)
    if not snapshots:
        return []
    try:
        payload = pickle.dumps((flow, list(port_names), grouping, freq_hz),
                               protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ParallelReplayError(
            f"replay payload is not picklable: {exc}") from exc
    workers = max(1, min(int(workers), len(snapshots)))
    ctx = _pick_context(start_method)
    with ctx.Pool(workers, initializer=_init_worker,
                  initargs=(payload,)) as pool:
        return pool.map(_replay_one,
                        [(snap, strict) for snap in snapshots],
                        chunksize=1)
