"""Content-addressed on-disk artifact cache.

Strober's ASIC half (synthesis, placement, formal matching) and the
RTL-evaluator code generators are pure functions of the elaborated
circuit, so their outputs are cached on disk keyed by
:func:`repro.hdl.ir.circuit_fingerprint`.  A warm cache lets a fresh
process skip the entire flow — the "one-time mapping cost amortized
across many runs" acceleration from the power-emulation literature.

Layout::

    <root>/v<VERSION>/<kind>/<key[:2]>/<key>.pkl

* ``root`` is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
* ``kind`` namespaces artifact types (``asicflow``, ``asicflow-soc``,
  ``pysim``, ``csim``).
* ``key`` is the circuit fingerprint; invalidation is automatic because
  any structural change to the design changes the key, and format
  changes bump ``CACHE_VERSION``.

Writes are atomic (temp file + ``os.replace``) so concurrent processes
never observe partial artifacts; corrupt entries are dropped and
rebuilt.  Set ``REPRO_CACHE_DISABLE=1`` to bypass the cache entirely.
"""

from __future__ import annotations

import os
import pickle
import tempfile

CACHE_VERSION = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_DISABLE = "REPRO_CACHE_DISABLE"


def cache_enabled():
    return os.environ.get(_ENV_DISABLE, "") not in ("1", "true", "yes")


def default_cache_dir():
    return os.environ.get(_ENV_DIR) or os.path.join(
        os.path.expanduser("~"), ".cache", "repro")


class ArtifactCache:
    """Pickle store addressed by (kind, content-hash key)."""

    def __init__(self, root=None):
        self.root = os.path.join(root or default_cache_dir(),
                                 f"v{CACHE_VERSION}")

    def _path(self, kind, key):
        return os.path.join(self.root, kind, key[:2], f"{key}.pkl")

    def has(self, kind, key):
        return os.path.exists(self._path(kind, key))

    def get(self, kind, key):
        """Load an artifact; returns None on miss or corruption."""
        path = self._path(kind, key)
        try:
            with open(path, "rb") as f:
                return pickle.load(f)
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupt/truncated entry (e.g. interrupted writer before
            # atomic rename existed, or a disk error): drop and rebuild.
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def put(self, kind, key, obj):
        """Atomically store an artifact; returns its path.

        Best-effort: an unwritable cache root (read-only filesystem,
        disk full, bogus ``REPRO_CACHE_DIR``) returns None instead of
        failing the computation whose result was being cached.
        """
        path = self._path(kind, key)
        tmp = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       prefix=".tmp-", suffix=".pkl")
            with os.fdopen(fd, "wb") as f:
                pickle.dump(obj, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            if tmp is not None:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
            return None
        except BaseException:
            if tmp is not None:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
            raise
        return path

    def clear(self, kind=None):
        """Delete all entries (or only one kind); returns count removed."""
        base = self.root if kind is None else os.path.join(self.root, kind)
        removed = 0
        for dirpath, _dirnames, filenames in os.walk(base):
            for fname in filenames:
                if fname.endswith(".pkl"):
                    try:
                        os.remove(os.path.join(dirpath, fname))
                        removed += 1
                    except OSError:
                        pass
        return removed

    def stats(self):
        """{kind: (entries, bytes)} for everything under the root."""
        out = {}
        if not os.path.isdir(self.root):
            return out
        for kind in sorted(os.listdir(self.root)):
            kind_dir = os.path.join(self.root, kind)
            count = size = 0
            for dirpath, _dirnames, filenames in os.walk(kind_dir):
                for fname in filenames:
                    if fname.endswith(".pkl"):
                        count += 1
                        try:
                            size += os.path.getsize(
                                os.path.join(dirpath, fname))
                        except OSError:
                            pass
            out[kind] = (count, size)
        return out


def get_cache():
    """A cache bound to the current environment's root directory.

    Constructed per call (it is just a path) so tests and long-running
    processes that change ``REPRO_CACHE_DIR`` always see the right root.
    """
    return ArtifactCache()
