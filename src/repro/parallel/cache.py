"""Content-addressed on-disk artifact cache.

Strober's ASIC half (synthesis, placement, formal matching) and the
RTL-evaluator code generators are pure functions of the elaborated
circuit, so their outputs are cached on disk keyed by
:func:`repro.hdl.ir.circuit_fingerprint`.  A warm cache lets a fresh
process skip the entire flow — the "one-time mapping cost amortized
across many runs" acceleration from the power-emulation literature.

Layout::

    <root>/v<VERSION>/<kind>/<key[:2]>/<key>.pkl

* ``root`` is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
* ``kind`` namespaces artifact types (``asicflow``, ``asicflow-soc``,
  ``pysim``, ``csim``, ``glsched``, and the generated gate-level replay
  kernels ``glpy`` / ``glso``).
* ``key`` is the circuit fingerprint; invalidation is automatic because
  any structural change to the design changes the key, and format
  changes bump ``CACHE_VERSION``.

Entries are framed (magic + CRC32 over the pickle payload) so a
truncated or bit-flipped file is *detected*, quarantined (moved to
``<root>/quarantine/`` for post-mortem inspection), and rebuilt rather
than deserialized into a subtly wrong artifact.  Writes are atomic and
durable (temp file + ``fsync`` + ``os.replace``) so concurrent
processes never observe partial artifacts and a disk that fills
mid-write (``ENOSPC``) can never leave a live entry behind.  Every
degraded event — a corrupt entry quarantined, a best-effort write
skipped — is counted in module-level :func:`cache_stats` and announced
once per event class via ``warnings.warn`` instead of disappearing
silently.  Set ``REPRO_CACHE_DISABLE=1`` to bypass the cache entirely.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import warnings
import zlib

# v2: entries framed with a magic + CRC32 header (v1 was a bare pickle).
CACHE_VERSION = 2

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_DISABLE = "REPRO_CACHE_DISABLE"

_MAGIC = b"RPC1"
_FRAME = struct.Struct("<4sI")   # magic, crc32(payload)

# Degraded-mode event accounting.  The cache is best-effort by design —
# a broken cache must never break the computation it accelerates — but
# "best-effort" must not mean "invisible": every event is counted in
# the shared repro.obs metrics registry (under the ``cache.`` prefix,
# so corruption counts surface in exported traces and the report CLI),
# and each degraded event class warns once.  ``cache_stats()`` stays
# the stable API view over those registry counters.
_STAT_KEYS = (
    "hits",
    "misses",
    "corrupt_dropped",      # entries that failed the CRC/format check
    "quarantined",          # corrupt entries moved to <root>/quarantine/
    "put_skipped",          # best-effort writes that could not land
    # levelization time skipped by loading a cached gate-evaluation
    # schedule (kind "glsched") instead of rebuilding it
    "sched_seconds_saved",
    # cached compiled replay kernels (kind "glso") that no longer load
    # on this host (toolchain/arch drift) and were rebuilt live
    "glso.stale",
)
_PREFIX = "cache."
_WARNED = set()

# Fault-injection seam (see repro.robust.faultinject): when set, called
# after an entry's bytes are written but before they are made durable —
# the exact window where a filling disk (ENOSPC) strikes a real write.
_PUT_FAULT = None


def set_put_fault(fn):
    """Install a write-fault hook (or None); returns the previous one."""
    global _PUT_FAULT
    previous = _PUT_FAULT
    _PUT_FAULT = fn
    return previous


def _registry():
    from ..obs import get_registry
    return get_registry()


def cache_stats():
    """{event: count} view over the ``cache.*`` registry counters."""
    registry = _registry()
    out = {}
    for key in _STAT_KEYS:
        value = registry.value(_PREFIX + key)
        out[key] = value if key == "sched_seconds_saved" else int(value)
    return out


def reset_cache_stats():
    """Zero the counters and re-arm the once-per-class warnings."""
    _registry().reset(_PREFIX)
    _WARNED.clear()


def note_schedule_reuse(seconds):
    """Credit a cached-schedule hit with the levelization time it saved."""
    _registry().counter(_PREFIX + "sched_seconds_saved").inc(
        float(seconds))


def _count(event, message=None):
    _registry().counter(_PREFIX + event).inc()
    if message is not None:
        from ..obs import get_tracer
        get_tracer().instant(_PREFIX + event, cat="cache",
                             detail=message)
        if event not in _WARNED:
            _WARNED.add(event)
            warnings.warn(
                f"{message} (further occurrences counted silently in "
                f"repro.parallel.cache.cache_stats())", RuntimeWarning,
                stacklevel=3)


def _encode(obj):
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _FRAME.pack(_MAGIC, zlib.crc32(payload)) + payload


def _decode(data):
    if len(data) < _FRAME.size:
        raise ValueError("short cache entry")
    magic, crc = _FRAME.unpack_from(data)
    if magic != _MAGIC:
        raise ValueError("bad cache entry magic")
    payload = data[_FRAME.size:]
    if zlib.crc32(payload) != crc:
        raise ValueError("cache entry checksum mismatch")
    return pickle.loads(payload)


def cache_enabled():
    return os.environ.get(_ENV_DISABLE, "") not in ("1", "true", "yes")


def default_cache_dir():
    return os.environ.get(_ENV_DIR) or os.path.join(
        os.path.expanduser("~"), ".cache", "repro")


class ArtifactCache:
    """Checksummed pickle store addressed by (kind, content-hash key)."""

    def __init__(self, root=None):
        self.root = os.path.join(root or default_cache_dir(),
                                 f"v{CACHE_VERSION}")

    def _path(self, kind, key):
        return os.path.join(self.root, kind, key[:2], f"{key}.pkl")

    def has(self, kind, key):
        return os.path.exists(self._path(kind, key))

    def get(self, kind, key):
        """Load an artifact; returns None on miss or corruption."""
        from ..obs import get_tracer
        with get_tracer().span("cache.get", cat="cache",
                               kind=kind) as span:
            obj = self._get(kind, key)
            span.set(hit=obj is not None)
        return obj

    def _get(self, kind, key):
        path = self._path(kind, key)
        try:
            with open(path, "rb") as f:
                data = f.read()
        except FileNotFoundError:
            _count("misses")
            _count(f"{kind}.misses")
            return None
        except OSError as exc:
            _count("misses",
                   f"cache entry {path} unreadable ({exc}); rebuilding")
            _count(f"{kind}.misses")
            return None
        try:
            obj = _decode(data)
        except Exception as exc:
            # Corrupt/truncated entry (interrupted writer on a pre-CRC
            # format, disk error, deliberate fault injection): the CRC
            # frame catches it here — quarantine, record, rebuild.  The
            # damaged bytes are kept under <root>/quarantine/ so the
            # corruption can be inspected post-mortem instead of being
            # destroyed along with the evidence.
            _count("corrupt_dropped",
                   f"dropping corrupt cache entry {path} ({exc}); "
                   f"the artifact will be rebuilt")
            self._quarantine_path(path, kind, key)
            _count(f"{kind}.misses")
            return None
        _count("hits")
        _count(f"{kind}.hits")
        return obj

    def quarantine_dir(self):
        """Directory corrupt (or demotion-quarantined) entries go to."""
        return os.path.join(self.root, "quarantine")

    def _quarantine_path(self, path, kind, key):
        """Move a damaged/suspect entry aside; falls back to deletion.

        Quarantined files are named ``<kind>-<key>.pkl`` so their
        origin stays identifiable without the directory layout.
        """
        dest = os.path.join(self.quarantine_dir(), f"{kind}-{key}.pkl")
        try:
            os.makedirs(self.quarantine_dir(), exist_ok=True)
            os.replace(path, dest)
        except OSError:
            # Quarantine unavailable (read-only root, cross-device
            # surprise): removing the entry still protects the next
            # reader, just without the forensics.
            try:
                os.remove(path)
            except OSError:
                return None
            return None
        _count("quarantined")
        from ..obs import get_tracer
        get_tracer().instant("cache.quarantined", cat="cache",
                             kind=kind, key=key[:12], dest=dest)
        return dest

    def quarantine(self, kind, key):
        """Move a live entry to the quarantine directory.

        Used by the job service's backend circuit breaker to pull a
        suspected-poisoned compiled kernel (``glso``) out of
        circulation — workers that repeatedly segfault under a cached
        shared object must not keep loading it.  Returns the
        quarantined file's path, or None when there was no entry (or
        the move failed).
        """
        path = self._path(kind, key)
        if not os.path.exists(path):
            return None
        return self._quarantine_path(path, kind, key)

    def put(self, kind, key, obj):
        """Atomically store an artifact; returns its path.

        Best-effort: an unwritable cache root (read-only filesystem,
        disk full, bogus ``REPRO_CACHE_DIR``) returns None instead of
        failing the computation whose result was being cached — but the
        skip is counted and warned about, not swallowed invisibly.
        The temp file is fsync'd *before* ``os.replace`` publishes it,
        so a disk that fills mid-write (ENOSPC on flush or fsync) can
        never leave a truncated entry live under the real key.
        """
        from ..obs import get_tracer
        with get_tracer().span("cache.put", cat="cache", kind=kind):
            return self._put(kind, key, obj)

    def _put(self, kind, key, obj):
        path = self._path(kind, key)
        tmp = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       prefix=".tmp-", suffix=".pkl")
            with os.fdopen(fd, "wb") as f:
                f.write(_encode(obj))
                if _PUT_FAULT is not None:
                    _PUT_FAULT()
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            if tmp is not None:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
            _count("put_skipped",
                   f"cache write for {kind}/{key[:12]}… skipped ({exc})")
            return None
        except BaseException:
            if tmp is not None:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
            raise
        _count(f"{kind}.puts")
        return path

    def clear(self, kind=None):
        """Delete all entries (or only one kind); returns count removed."""
        base = self.root if kind is None else os.path.join(self.root, kind)
        removed = 0
        for dirpath, _dirnames, filenames in os.walk(base):
            for fname in filenames:
                if fname.endswith(".pkl"):
                    try:
                        os.remove(os.path.join(dirpath, fname))
                        removed += 1
                    except OSError:
                        pass
        return removed

    def stats(self):
        """{kind: (entries, bytes)} for everything under the root."""
        out = {}
        if not os.path.isdir(self.root):
            return out
        for kind in sorted(os.listdir(self.root)):
            kind_dir = os.path.join(self.root, kind)
            count = size = 0
            for dirpath, _dirnames, filenames in os.walk(kind_dir):
                for fname in filenames:
                    if fname.endswith(".pkl"):
                        count += 1
                        try:
                            size += os.path.getsize(
                                os.path.join(dirpath, fname))
                        except OSError:
                            pass
            out[kind] = (count, size)
        return out


def get_cache():
    """A cache bound to the current environment's root directory.

    Constructed per call (it is just a path) so tests and long-running
    processes that change ``REPRO_CACHE_DIR`` always see the right root.
    """
    return ArtifactCache()
