"""Parallel execution layer: replay pool + on-disk artifact cache.

Two independent accelerators for the dominant costs of the Strober
methodology:

* :func:`replay_parallel` — fan snapshot replays out across worker
  processes (the paper's "each replay is independent" observation),
  supervised by :mod:`repro.robust.supervisor` for fault tolerance;
* :class:`ArtifactCache` — content-addressed, checksummed disk cache of
  ASIC-flow artifacts and generated RTL-evaluator sources, keyed by
  :func:`repro.hdl.ir.circuit_fingerprint`, so repeated invocations
  skip synthesis, placement, and formal matching entirely.
"""

from .cache import (
    ArtifactCache, get_cache, cache_enabled, default_cache_dir,
    cache_stats, reset_cache_stats, CACHE_VERSION,
)
from .pool import (
    replay_parallel, ParallelReplayError, CancelToken, default_workers,
)

__all__ = [
    "ArtifactCache", "get_cache", "cache_enabled", "default_cache_dir",
    "cache_stats", "reset_cache_stats", "CACHE_VERSION",
    "replay_parallel", "ParallelReplayError", "CancelToken",
    "default_workers",
]
