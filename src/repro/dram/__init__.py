"""DRAM substrate: timing model, activity counters, power calculator."""

from .timing import MemoryEndpoint, make_memory_endpoint
from .counters import DramActivityCounters, counter_delta
from .power_calc import Lpddr2Params, Lpddr2PowerCalculator, DramPowerReport

__all__ = [
    "MemoryEndpoint", "make_memory_endpoint",
    "DramActivityCounters", "counter_delta",
    "Lpddr2Params", "Lpddr2PowerCalculator", "DramPowerReport",
]
