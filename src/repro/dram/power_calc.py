"""LPDDR2-S4 power calculator (the Micron spreadsheet analog, IV-D).

Implements the standard Micron power-calculator methodology from
datasheet IDD currents: background power from the standby current,
activate power from the IDD0-vs-standby delta amortized over tRC, and
read/write power from the IDD4 deltas scaled by bus utilization.  The
default parameters are typical of a Micron mobile LPDDR2 SDRAM S4 part
(the device the paper uses), taken from public datasheet orders of
magnitude — the reproduction targets mW-scale DRAM power that moves with
memory traffic, as in Figure 9a's DRAM segment.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Lpddr2Params:
    """Datasheet-style parameters for one LPDDR2-S4 device."""

    vdd1: float = 1.8          # core supply 1 (V)
    vdd2: float = 1.2          # core supply 2 (V)
    idd0_ma: float = 20.0      # one-bank activate-precharge current
    idd3n_ma: float = 8.0      # active standby (row open)
    idd2n_ma: float = 1.6      # precharge standby
    idd4r_ma: float = 120.0    # burst read
    idd4w_ma: float = 130.0    # burst write
    t_rc_ns: float = 60.0      # row cycle time
    t_ck_ns: float = 1.25      # memory clock period (800 MHz)
    burst_cycles_per_word: float = 1.0   # 32-bit bus, 1 word/clock
    io_pj_per_bit: float = 4.0           # I/O + termination energy


@dataclass
class DramPowerReport:
    background_mw: float
    activate_mw: float
    read_mw: float
    write_mw: float
    io_mw: float

    @property
    def total_mw(self):
        return (self.background_mw + self.activate_mw + self.read_mw
                + self.write_mw + self.io_mw)

    def as_dict(self):
        return {
            "background_mw": self.background_mw,
            "activate_mw": self.activate_mw,
            "read_mw": self.read_mw,
            "write_mw": self.write_mw,
            "io_mw": self.io_mw,
            "total_mw": self.total_mw,
        }


class Lpddr2PowerCalculator:
    """Compute average DRAM power for one activity window."""

    def __init__(self, params=None):
        self.params = params or Lpddr2Params()

    def power(self, counters, window_cycles, core_freq_hz=1.0e9):
        """Average power given counter values over ``window_cycles``.

        ``counters`` is a dict (see DramActivityCounters.snapshot()) or
        the counters object itself; ``window_cycles`` are *core* cycles
        at ``core_freq_hz``.
        """
        if hasattr(counters, "snapshot"):
            counters = counters.snapshot()
        if window_cycles <= 0:
            raise ValueError("window must be positive")
        p = self.params
        seconds = window_cycles / core_freq_hz

        # Background: assume open rows (the open-page policy keeps banks
        # active), i.e. active standby current.
        background_w = p.idd3n_ma * 1e-3 * p.vdd2

        # Activate: each ACT-PRE pair costs (IDD0-IDD3N)*VDD over tRC.
        e_act_j = ((p.idd0_ma - p.idd3n_ma) * 1e-3 * p.vdd1
                   * p.t_rc_ns * 1e-9)
        activate_w = counters["activations"] * e_act_j / seconds

        # Read/write: IDD4 deltas scaled by bus utilization.
        read_cycles = counters["read_words"] * p.burst_cycles_per_word
        write_cycles = counters["write_words"] * p.burst_cycles_per_word
        t_window_memclk = seconds / (p.t_ck_ns * 1e-9)
        read_util = min(read_cycles / t_window_memclk, 1.0)
        write_util = min(write_cycles / t_window_memclk, 1.0)
        read_w = (p.idd4r_ma - p.idd3n_ma) * 1e-3 * p.vdd2 * read_util
        write_w = (p.idd4w_ma - p.idd3n_ma) * 1e-3 * p.vdd2 * write_util

        # I/O: energy per transferred bit.
        bits = 32 * (counters["read_words"] + counters["write_words"])
        io_w = bits * p.io_pj_per_bit * 1e-12 / seconds

        return DramPowerReport(
            background_mw=background_w * 1e3,
            activate_mw=activate_w * 1e3,
            read_mw=read_w * 1e3,
            write_mw=write_w * 1e3,
            io_mw=io_w * 1e3,
        )
