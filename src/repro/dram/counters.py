"""DRAM activity counters (Section IV-D).

Strober attaches counters to the memory request ports; knowing the
physical address mapping (bank-interleaved), the controller policy
(open page), and the request stream is enough to reconstruct the DRAM's
internal operations.  These counters track per-bank open rows and count
row activations, reads, and writes — the inputs to the Micron-style
power calculator.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DramActivityCounters:
    """Bank/row state tracking with open-page policy.

    Address mapping is bank-interleaved: consecutive *line* addresses hit
    consecutive banks, matching the paper's experimental setup (Micron
    LPDDR2 S4, 8 banks, 16K rows per bank).
    """

    n_banks: int = 8
    n_rows: int = 16 * 1024
    line_words: int = 8

    activations: int = 0
    reads: int = 0
    writes: int = 0
    read_words: int = 0
    write_words: int = 0
    requests: int = 0
    open_rows: dict = field(default_factory=dict)   # bank -> row
    per_bank_activations: dict = field(default_factory=dict)

    def map_address(self, word_addr):
        """word address -> (bank, row) under bank interleaving."""
        line = word_addr // self.line_words
        bank = line % self.n_banks
        row = (line // self.n_banks) % self.n_rows
        return bank, row

    def record(self, word_addr, is_write, burst_words):
        """Account one accepted memory request."""
        bank, row = self.map_address(word_addr)
        self.requests += 1
        if self.open_rows.get(bank) != row:
            # open-page policy: a different row forces an activate
            self.activations += 1
            self.per_bank_activations[bank] = \
                self.per_bank_activations.get(bank, 0) + 1
            self.open_rows[bank] = row
        if is_write:
            self.writes += 1
            self.write_words += burst_words
        else:
            self.reads += 1
            self.read_words += burst_words

    def row_hit_rate(self):
        if self.requests == 0:
            return 0.0
        return 1.0 - self.activations / self.requests

    def snapshot(self):
        """Copy of the raw counter values (for per-window deltas)."""
        return {
            "activations": self.activations,
            "reads": self.reads,
            "writes": self.writes,
            "read_words": self.read_words,
            "write_words": self.write_words,
            "requests": self.requests,
        }


def counter_delta(before, after):
    return {key: after[key] - before[key] for key in after}
