"""DRAM timing model + host memory endpoint (Sections IV-B1, V-C).

In Strober the target's main memory lives on the host platform; a timing
model enforces the configured DRAM latency in *target* cycles (this is
what Figure 7 validates by sweeping the simulated latency).  This module
implements that endpoint for the FAME1 simulator: a simple
one-outstanding-request burst protocol with a configurable latency.

Protocol (all signals are top-level ports of the target SoC):

  target -> host:  mem_req_valid, mem_req_rw (1=write), mem_req_addr
                   (word address), mem_req_len (burst words),
                   mem_wdata_valid, mem_wdata
  host -> target:  mem_req_ready, mem_resp_valid, mem_resp_data

A read returns ``len`` consecutive beats starting ``latency`` target
cycles after the request is accepted.  A write consumes ``len`` data
beats and acks with a single ``mem_resp_valid`` after ``latency``.
"""

from __future__ import annotations

from ..fame.simulator import Endpoint
from .counters import DramActivityCounters


class MemoryEndpoint(Endpoint):
    """Latency-pipe memory model with a host-side backing store."""

    def __init__(self, latency=100, counters=None, line_words=8):
        self.latency = latency
        self.counters = counters
        self.line_words = line_words
        self.store = {}          # word address -> 32-bit value
        self.reset()

    def reset(self):
        self._busy = False
        self._rw = 0
        self._addr = 0
        self._len = 0
        self._wait = 0
        self._beats_left = 0
        self._write_beats = 0
        self.requests = 0
        self.read_requests = 0
        self.write_requests = 0

    # -- host-side memory access (program loading, result checking) -------

    def load_words(self, base_word_addr, words):
        for i, word in enumerate(words):
            self.store[base_word_addr + i] = word & 0xFFFFFFFF

    def read_word(self, word_addr):
        return self.store.get(word_addr, 0)

    def tick(self, outputs):
        inputs = {"mem_req_ready": 0, "mem_resp_valid": 0,
                  "mem_resp_data": 0}
        if not self._busy:
            inputs["mem_req_ready"] = 1
            if outputs.get("mem_req_valid"):
                self._busy = True
                self._rw = outputs["mem_req_rw"]
                self._addr = outputs["mem_req_addr"]
                self._len = max(outputs.get("mem_req_len", self.line_words),
                                1)
                self._wait = self.latency
                self._beats_left = self._len
                self._write_beats = self._len if self._rw else 0
                self.requests += 1
                if self._rw:
                    self.write_requests += 1
                else:
                    self.read_requests += 1
                if self.counters is not None:
                    self.counters.record(self._addr, bool(self._rw),
                                         self._len)
                inputs["mem_req_ready"] = 0
            return inputs

    # busy: absorb write beats, count down latency, stream response
        if self._rw and self._write_beats > 0:
            if outputs.get("mem_wdata_valid"):
                beat = self._len - self._write_beats
                self.store[self._addr + beat] = outputs["mem_wdata"]
                self._write_beats -= 1
            return inputs
        if self._wait > 0:
            self._wait -= 1
            return inputs
        if self._rw:
            inputs["mem_resp_valid"] = 1
            self._busy = False
            return inputs
        beat = self._len - self._beats_left
        inputs["mem_resp_valid"] = 1
        inputs["mem_resp_data"] = self.store.get(self._addr + beat, 0)
        self._beats_left -= 1
        if self._beats_left == 0:
            self._busy = False
        return inputs


def make_memory_endpoint(latency=100, with_counters=True, line_words=8,
                         **counter_kwargs):
    """Convenience constructor pairing the endpoint with DRAM counters."""
    counters = (DramActivityCounters(**counter_kwargs)
                if with_counters else None)
    return MemoryEndpoint(latency=latency, counters=counters,
                          line_words=line_words)
