"""Replayable RTL snapshots (Section III-B).

A replayable snapshot is everything needed to re-execute a window of the
target's history on a detailed (gate-level) simulator: the full RTL
state at cycle ``c`` plus the traces of all I/O signals over the replay
length ``L`` starting at ``c``.  Output traces double as the correctness
check during replay ("outputs are verified against the output values of
the design").

Snapshots carry an optional integrity checksum: :meth:`seal` fingerprints
the captured state and I/O window once recording completes, and
:meth:`validate` re-verifies it before every replay.  A snapshot whose
bits were corrupted in transit (worker pickling, the on-disk run
journal, a fault-injection campaign) is therefore *detected* up front
instead of silently contributing a wrong power number.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field


class SnapshotError(Exception):
    pass


# Wire-format version tags accepted by __setstate__.  "v1" predates the
# integrity checksum; "v2" appends it.
PICKLE_VERSION = "v2"
_KNOWN_VERSIONS = ("v1", "v2")


@dataclass
class ReplayableSnapshot:
    """State + I/O window captured at one sample point."""

    cycle: int                 # target cycle c at which state was captured
    state: "SimState"          # full register + memory state
    replay_length: int         # L
    input_trace: list = field(default_factory=list)   # per-cycle dicts
    output_trace: list = field(default_factory=list)  # per-cycle dicts
    perf_counters: dict = field(default_factory=dict)
    checksum: int = None       # set by seal(); verified by validate()

    # Snapshots are the unit of work shipped to replay worker processes;
    # keep their pickled form an explicit, versioned tuple so the wire
    # format is stable and cheap (traces are lists of {str: int} dicts).
    def __getstate__(self):
        return (PICKLE_VERSION, self.cycle, self.state, self.replay_length,
                self.input_trace, self.output_trace, self.perf_counters,
                self.checksum)

    def __setstate__(self, state):
        tag = state[0] if isinstance(state, tuple) and state else None
        if tag not in _KNOWN_VERSIONS:
            raise SnapshotError(
                f"unknown snapshot pickle version {tag!r} (supported: "
                f"{', '.join(_KNOWN_VERSIONS)}); the snapshot came from an "
                f"incompatible repro version or was corrupted")
        if tag == "v1":
            (_v, self.cycle, self.state, self.replay_length,
             self.input_trace, self.output_trace, self.perf_counters) = state
            self.checksum = None
        else:
            (_v, self.cycle, self.state, self.replay_length,
             self.input_trace, self.output_trace, self.perf_counters,
             self.checksum) = state

    @property
    def complete(self):
        """True once the I/O window has been fully recorded."""
        return (len(self.input_trace) >= self.replay_length
                and len(self.output_trace) >= self.replay_length)

    def record_cycle(self, inputs, outputs):
        """Append one cycle of I/O; ignores cycles beyond the window."""
        if len(self.input_trace) < self.replay_length:
            self.input_trace.append(dict(inputs))
            self.output_trace.append(dict(outputs))

    def _compute_checksum(self):
        """CRC over a canonical encoding of state + traces.

        ``repr`` of sorted (path, int) pairs is a stable byte encoding
        for the dict-of-int structures snapshots are made of.
        """
        h = zlib.crc32(repr((self.cycle, self.replay_length)).encode())
        h = zlib.crc32(repr(sorted(self.state.regs.items())).encode(), h)
        h = zlib.crc32(repr(sorted(self.state.mems.items())).encode(), h)
        h = zlib.crc32(
            repr([sorted(d.items()) for d in self.input_trace]).encode(), h)
        h = zlib.crc32(
            repr([sorted(d.items()) for d in self.output_trace]).encode(), h)
        return h

    def seal(self):
        """Fingerprint the completed snapshot; validate() verifies it."""
        self.checksum = self._compute_checksum()
        return self.checksum

    def validate(self):
        if not self.complete:
            raise SnapshotError(
                f"snapshot at cycle {self.cycle} has only "
                f"{len(self.input_trace)}/{self.replay_length} traced cycles")
        if (self.checksum is not None
                and self._compute_checksum() != self.checksum):
            raise SnapshotError(
                f"snapshot at cycle {self.cycle} failed its integrity "
                f"check: state or I/O trace was corrupted after capture")
        return True
