"""Replayable RTL snapshots (Section III-B).

A replayable snapshot is everything needed to re-execute a window of the
target's history on a detailed (gate-level) simulator: the full RTL
state at cycle ``c`` plus the traces of all I/O signals over the replay
length ``L`` starting at ``c``.  Output traces double as the correctness
check during replay ("outputs are verified against the output values of
the design").
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SnapshotError(Exception):
    pass


@dataclass
class ReplayableSnapshot:
    """State + I/O window captured at one sample point."""

    cycle: int                 # target cycle c at which state was captured
    state: "SimState"          # full register + memory state
    replay_length: int         # L
    input_trace: list = field(default_factory=list)   # per-cycle dicts
    output_trace: list = field(default_factory=list)  # per-cycle dicts
    perf_counters: dict = field(default_factory=dict)

    # Snapshots are the unit of work shipped to replay worker processes;
    # keep their pickled form an explicit, versioned tuple so the wire
    # format is stable and cheap (traces are lists of {str: int} dicts).
    def __getstate__(self):
        return ("v1", self.cycle, self.state, self.replay_length,
                self.input_trace, self.output_trace, self.perf_counters)

    def __setstate__(self, state):
        (_v, self.cycle, self.state, self.replay_length,
         self.input_trace, self.output_trace, self.perf_counters) = state

    @property
    def complete(self):
        """True once the I/O window has been fully recorded."""
        return (len(self.input_trace) >= self.replay_length
                and len(self.output_trace) >= self.replay_length)

    def record_cycle(self, inputs, outputs):
        """Append one cycle of I/O; ignores cycles beyond the window."""
        if len(self.input_trace) < self.replay_length:
            self.input_trace.append(dict(inputs))
            self.output_trace.append(dict(outputs))

    def validate(self):
        if not self.complete:
            raise SnapshotError(
                f"snapshot at cycle {self.cycle} has only "
                f"{len(self.input_trace)}/{self.replay_length} traced cycles")
        return True
