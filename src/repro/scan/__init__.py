"""Scan-chain instrumentation and replayable snapshots."""

from .chains import (
    ScanChainSpec, RamChain, build_scan_chain_spec, insert_scan_chains,
    ScanChainSpecPass, InsertScanChainsPass,
)
from .snapshot import ReplayableSnapshot, SnapshotError

__all__ = [
    "ScanChainSpec", "RamChain", "build_scan_chain_spec",
    "insert_scan_chains", "ReplayableSnapshot", "SnapshotError",
    "ScanChainSpecPass", "InsertScanChainsPass",
]
