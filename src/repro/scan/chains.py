"""Scan-chain instrumentation (Section IV-B2).

Strober reads replayable RTL snapshots out of the FPGA through scan
chains: a daisy chain of shadow registers for flip-flop state, plus
address-generating chains for RAMs (whose ports cannot be multiplied on
BRAM).  This module provides both:

* :func:`build_scan_chain_spec` — chain *metadata* (order, widths) and
  the read-out cost model used by the FAME1 simulator to charge
  sampling overhead (the ``Trec`` term of the Section IV-E model);
* :func:`insert_scan_chains` — a real IR transform that adds the shadow
  registers, capture/shift control, and RAM address generators to a
  circuit, used to validate that the chain mechanism itself is sound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..hdl.ir import Node, mux, cat, lift
from ..passes.base import Pass, PassResult


@dataclass
class RamChain:
    path: str
    depth: int
    width: int

    def readout_cycles(self, scan_width):
        """Address generation + shifting each word out."""
        words_per_entry = math.ceil(self.width / scan_width)
        return self.depth * (words_per_entry + 1)


@dataclass
class ScanChainSpec:
    """Chain layout + cost model for one circuit."""

    scan_width: int
    reg_chain: list = field(default_factory=list)   # (path, width) in order
    ram_chains: list = field(default_factory=list)  # RamChain

    @property
    def reg_bits(self):
        return sum(width for _, width in self.reg_chain)

    @property
    def chain_words(self):
        return math.ceil(self.reg_bits / self.scan_width) or 1

    def readout_cycles(self, include_rams=True):
        """Host cycles needed to scan out one full snapshot."""
        cycles = self.chain_words + 1  # +1 capture cycle
        if include_rams:
            cycles += sum(chain.readout_cycles(self.scan_width)
                          for chain in self.ram_chains)
        return cycles

    # -- bit packing ------------------------------------------------------
    # The chain serializes registers in chain order, LSB first; these two
    # functions define that format so hardware-inserted chains and the
    # metadata fast path produce identical words.

    def pack_registers(self, reg_values):
        """Pack a {path: value} dict into scan words (word 0 first out)."""
        bits = 0
        offset = 0
        for path, width in self.reg_chain:
            bits |= (reg_values[path] & ((1 << width) - 1)) << offset
            offset += width
        words = []
        w = self.scan_width
        for i in range(self.chain_words):
            words.append((bits >> (i * w)) & ((1 << w) - 1))
        return words

    def unpack_registers(self, words):
        """Inverse of :meth:`pack_registers`."""
        bits = 0
        for i, word in enumerate(words):
            bits |= word << (i * self.scan_width)
        values = {}
        offset = 0
        for path, width in self.reg_chain:
            values[path] = (bits >> offset) & ((1 << width) - 1)
            offset += width
        return values


def build_scan_chain_spec(circuit, scan_width=32):
    """Derive the chain layout for a circuit (no hardware changes)."""
    spec = ScanChainSpec(scan_width=scan_width)
    for reg in circuit.regs:
        spec.reg_chain.append((reg.path, reg.width))
    for mem in circuit.mems:
        spec.ram_chains.append(RamChain(mem.path, mem.depth, mem.width))
    return spec


def insert_scan_chains(circuit, scan_width=8):
    """Add real scan-chain hardware to an elaborated circuit.

    Adds ports:
      * ``scan_capture`` (in): load all shadow registers from the live
        register state in one cycle.
      * ``scan_shift`` (in): shift the register chain one word toward
        ``scan_out``.
      * ``scan_out`` (out): current head word of the register chain.
      * per-RAM ``scan_ram_<i>_shift`` (in) / ``scan_ram_<i>_out`` (out):
        address-generating RAM chains (one word per cycle).

    Returns the :class:`ScanChainSpec` describing the inserted chains.
    """
    spec = build_scan_chain_spec(circuit, scan_width)

    def new_input(name):
        node = Node("input", 1, name=name)
        node.path = name
        circuit.inputs.append(node)
        return node

    capture = new_input("scan_capture")
    shift = new_input("scan_shift")

    # Map global chain bit index -> contributing register slices, then
    # build one capture expression per shadow word.
    layout = []  # (reg node, lo_bit_global, width)
    offset = 0
    reg_by_path = {reg.path: reg for reg in circuit.regs}
    for path, width in spec.reg_chain:
        layout.append((reg_by_path[path], offset, width))
        offset += width

    def word_capture_expr(word_idx):
        lo = word_idx * scan_width
        hi = min(lo + scan_width, spec.reg_bits) - 1
        pieces = []  # MSB-first for cat()
        for reg, reg_lo, width in layout:
            reg_hi = reg_lo + width - 1
            if reg_hi < lo or reg_lo > hi:
                continue
            sel_lo = max(lo, reg_lo) - reg_lo
            sel_hi = min(hi, reg_hi) - reg_lo
            pieces.append(reg.bits(sel_hi, sel_lo))
        pieces.reverse()  # collected LSB-first; cat wants MSB-first
        expr = cat(*pieces)
        if expr.width < scan_width:
            expr = expr.pad(scan_width)
        return expr

    shadows = []
    for i in range(spec.chain_words):
        shadow = Node("reg", scan_width, name=f"scan_shadow_{i}")
        shadow.path = f"scan.shadow_{i}"
        shadows.append(shadow)
        circuit.regs.append(shadow)
    for i, shadow in enumerate(shadows):
        nxt = shadows[i + 1] if i + 1 < len(shadows) else lift(0, scan_width)
        shifted = mux(shift, nxt, shadow)
        circuit.reg_next[shadow] = mux(capture, word_capture_expr(i),
                                       shifted)
    circuit.outputs.append(("scan_out", shadows[0]))

    # RAM chains: address counter + shadow read register per memory.
    for idx, mem in enumerate(circuit.mems):
        ram_shift = new_input(f"scan_ram_{idx}_shift")
        addr = Node("reg", mem.addr_width, name=f"scan_ram_{idx}_addr")
        addr.path = f"scan.ram_{idx}_addr"
        circuit.regs.append(addr)
        circuit.reg_next[addr] = mux(
            capture, lift(0, mem.addr_width),
            mux(ram_shift, (addr + 1).trunc(mem.addr_width), addr))
        data = Node("reg", mem.width, name=f"scan_ram_{idx}_data")
        data.path = f"scan.ram_{idx}_data"
        circuit.regs.append(data)
        circuit.reg_next[data] = mux(ram_shift, mem.read(addr), data)
        circuit.outputs.append((f"scan_ram_{idx}_out", data))

    circuit.retopo()
    circuit.scan_spec = spec
    return spec


class ScanChainSpecPass(Pass):
    """:func:`build_scan_chain_spec` as a pass (metadata only).

    Attaches the chain layout + Trec cost model to the circuit and the
    pass context without touching the graph — the software-snapshot
    fast path.  ``scan_width`` is a declared parameter, so pipelines
    built at different widths fingerprint (and therefore cache)
    differently.
    """

    name = "scan-spec"
    requires = ("elaborated",)
    produces = ("scan-spec",)

    def __init__(self, scan_width=32):
        super().__init__(scan_width=scan_width)
        self.scan_width = scan_width

    def is_satisfied(self, circuit):
        spec = getattr(circuit, "scan_spec", None)
        return spec is not None and spec.scan_width == self.scan_width

    def run(self, circuit, ctx):
        spec = build_scan_chain_spec(circuit, self.scan_width)
        circuit.scan_spec = spec
        return PassResult(
            artifacts={"scan_spec": spec},
            stats={"reg_bits": spec.reg_bits,
                   "chain_words": spec.chain_words,
                   "ram_chains": len(spec.ram_chains)})


class InsertScanChainsPass(Pass):
    """:func:`insert_scan_chains` as a pass (real hardware insertion).

    Adds the shadow registers, capture/shift control, and RAM address
    generators; the resulting spec lands in the context under
    ``scan_spec`` exactly like the metadata-only pass, so downstream
    consumers are agnostic to which variant ran.
    """

    name = "scan-insert"
    requires = ("elaborated",)
    produces = ("scan-spec", "scan-chains")

    def __init__(self, scan_width=8):
        super().__init__(scan_width=scan_width)
        self.scan_width = scan_width

    def is_satisfied(self, circuit):
        return any(node.name == "scan_capture" for node in circuit.inputs)

    def run(self, circuit, ctx):
        before_regs = len(circuit.regs)
        spec = insert_scan_chains(circuit, self.scan_width)
        return PassResult(
            artifacts={"scan_spec": spec},
            stats={"reg_bits": spec.reg_bits,
                   "chain_words": spec.chain_words,
                   "shadow_regs": len(circuit.regs) - before_regs})
