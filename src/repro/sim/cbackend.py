"""Optional C backend for the RTL simulator.

Lowers a Circuit to C, compiles it with the system C compiler, and loads
it through ctypes.  Gives one-to-two orders of magnitude speedup over the
generated-Python backend, standing in for the FPGA acceleration the paper
uses.  Falls back cleanly (raises ``CBackendUnavailable``) when no
compiler is present; callers use :func:`repro.sim.make_simulator`.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile

from ..hdl.ir import mask

_CHUNK = 1500  # statements per generated C function (keeps gcc fast)


class CBackendUnavailable(Exception):
    pass


def _mask_expr(expr, width):
    if width >= 64:
        return expr
    return f"({expr} & {mask(width)}ULL)"


def _lower_c(node, ref, mem_index):
    op = node.op
    w = node.width
    if op == "const":
        return f"{node.params}ULL"
    args = [ref(a) for a in node.args]
    if op == "memread":
        mem = node.mem
        expr = f"MEM{mem_index[mem]}[{args[0]}]"
        if (1 << node.args[0].width) > mem.depth:
            expr = f"(({args[0]} < {mem.depth}ULL) ? {expr} : 0ULL)"
        return expr
    if op == "add":
        return _mask_expr(f"({args[0]} + {args[1]})", w)
    if op == "sub":
        return _mask_expr(f"({args[0]} - {args[1]})", w)
    if op == "mul":
        return _mask_expr(f"({args[0]} * {args[1]})", w)
    if op == "divu":
        return f"({args[1]} ? ({args[0]} / {args[1]}) : {mask(w)}ULL)"
    if op == "modu":
        return f"({args[1]} ? ({args[0]} % {args[1]}) : {args[0]})"
    if op == "and":
        return f"({args[0]} & {args[1]})"
    if op == "or":
        return f"({args[0]} | {args[1]})"
    if op == "xor":
        return f"({args[0]} ^ {args[1]})"
    if op == "not":
        return f"({args[0]} ^ {mask(w)}ULL)"
    if op == "shl":
        amount = node.args[1]
        if amount.op == "const":
            return _mask_expr(f"({args[0]} << {amount.params})", w)
        return (f"(({args[1]} >= 64) ? 0ULL : "
                + _mask_expr(f"({args[0]} << {args[1]})", w) + ")")
    if op == "shr":
        amount = node.args[1]
        if amount.op == "const":
            return f"({args[0]} >> {amount.params})"
        return f"(({args[1]} >= 64) ? 0ULL : ({args[0]} >> {args[1]}))"
    if op == "sra":
        wa = node.args[0].width
        sign = 1 << (wa - 1)
        signed = f"((int64_t)(({args[0]} ^ {sign}ULL) - {sign}ULL))"
        shamt = f"(({args[1]} > 63) ? 63 : {args[1]})"
        return _mask_expr(f"((uint64_t)({signed} >> {shamt}))", w)
    if op == "eq":
        return f"({args[0]} == {args[1]})"
    if op == "neq":
        return f"({args[0]} != {args[1]})"
    if op == "ltu":
        return f"({args[0]} < {args[1]})"
    if op == "leu":
        return f"({args[0]} <= {args[1]})"
    if op in ("lts", "les"):
        wa = node.args[0].width
        sign = 1 << (wa - 1)
        sa = f"((int64_t)(({args[0]} ^ {sign}ULL) - {sign}ULL))"
        sb = f"((int64_t)(({args[1]} ^ {sign}ULL) - {sign}ULL))"
        cmp = "<" if op == "lts" else "<="
        return f"({sa} {cmp} {sb})"
    if op == "cat":
        lo_w = node.args[1].width
        return _mask_expr(f"(({args[0]} << {lo_w}) | {args[1]})", w)
    if op == "bits":
        hi, lo = node.params
        src_w = node.args[0].width
        if lo == 0 and hi == src_w - 1:
            return args[0]
        if hi == src_w - 1:
            return f"({args[0]} >> {lo})"
        return f"(({args[0]} >> {lo}) & {mask(w)}ULL)"
    if op == "mux":
        return f"({args[0]} ? {args[1]} : {args[2]})"
    if op == "orr":
        return f"({args[0]} != 0ULL)"
    if op == "andr":
        return f"({args[0]} == {mask(node.args[0].width)}ULL)"
    if op == "xorr":
        return f"((uint64_t)__builtin_parityll({args[0]}))"
    raise CBackendUnavailable(f"cannot lower op {op!r} to C")


def generate_c_source(circuit):
    """Emit the full C translation unit for a circuit."""
    in_index = {node.name: i for i, node in enumerate(circuit.inputs)}
    out_index = {name: i for i, (name, _) in enumerate(circuit.outputs)}
    reg_index = {reg: i for i, reg in enumerate(circuit.regs)}
    mem_index = {mem: i for i, mem in enumerate(circuit.mems)}

    # Every non-trivial node value lives in a static V[] slot so the body
    # can be split across many small functions (fast to compile).
    slot = {}
    for node in circuit.comb_order:
        slot[node] = len(slot)
    n_slots = max(len(slot), 1)

    def ref(node):
        if node.op == "const":
            return f"{node.params}ULL"
        if node.op == "input":
            return f"GIN[{in_index[node.name]}]"
        if node.op == "reg":
            return f"R[{reg_index[node]}]"
        return f"V[{slot[node]}]"

    parts = [
        "#include <stdint.h>",
        "#include <string.h>",
        f"static uint64_t V[{n_slots}];",
        f"static uint64_t R[{max(len(circuit.regs), 1)}];",
        f"static uint64_t GIN[{max(len(circuit.inputs), 1)}];",
    ]
    for mem, idx in mem_index.items():
        parts.append(f"static uint64_t MEM{idx}[{mem.depth}];")

    stmts = []
    for node in circuit.comb_order:
        stmts.append(f"  V[{slot[node]}] = "
                     f"{_lower_c(node, ref, mem_index)};")

    chunk_fns = []
    for start in range(0, len(stmts), _CHUNK):
        fn_name = f"eval_{len(chunk_fns)}"
        chunk_fns.append(fn_name)
        parts.append(f"static void {fn_name}(void) {{")
        parts.extend(stmts[start:start + _CHUNK])
        parts.append("}")

    parts.append("static void eval_all(void) {")
    parts.extend(f"  {fn}();" for fn in chunk_fns)
    parts.append("}")

    parts.append("static void commit_state(void) {")
    # Register updates must all read pre-edge values: comb results are in
    # V[] already, but reg-to-reg moves read R[] directly, so stage them.
    parts.append(f"  static uint64_t RN[{max(len(circuit.regs), 1)}];")
    for reg, idx in reg_index.items():
        parts.append(f"  RN[{idx}] = {ref(circuit.reg_next[reg])};")
    for mem, midx in mem_index.items():
        for addr, data, en in mem.writes:
            guard = ref(en)
            addr_expr = ref(addr)
            if (1 << addr.width) > mem.depth:
                guard = f"({guard} && {addr_expr} < {mem.depth}ULL)"
            parts.append(
                f"  if ({guard}) MEM{midx}[{addr_expr}] = {ref(data)};")
    parts.append(f"  memcpy(R, RN, sizeof(uint64_t) * "
                 f"{max(len(circuit.regs), 1)});")
    parts.append("}")

    out_assigns = "\n".join(
        f"  OUT[{out_index[name]}] = {ref(driver)};"
        for name, driver in circuit.outputs)

    parts.append(f"""
void cycle(const uint64_t* IN, uint64_t* OUT, int commit) {{
  memcpy(GIN, IN, sizeof(uint64_t) * {max(len(circuit.inputs), 1)});
  eval_all();
{out_assigns}
  if (commit) commit_state();
}}

void get_regs(uint64_t* out) {{
  memcpy(out, R, sizeof(R));
}}

void set_regs(const uint64_t* in) {{
  memcpy(R, in, sizeof(R));
}}
""")

    mem_get_cases = "\n".join(
        f"    case {idx}: return MEM{idx}[addr];"
        for idx in mem_index.values()) or "    default: break;"
    mem_set_cases = "\n".join(
        f"    case {idx}: MEM{idx}[addr] = value; break;"
        for idx in mem_index.values()) or "    default: break;"
    parts.append(f"""
uint64_t mem_get(int mem, uint64_t addr) {{
  switch (mem) {{
{mem_get_cases}
  }}
  return 0;
}}

void mem_set(int mem, uint64_t addr, uint64_t value) {{
  switch (mem) {{
{mem_set_cases}
  }}
}}
""")
    layout = {
        "in_index": in_index,
        "out_index": out_index,
        "reg_index": {reg.path: i for reg, i in reg_index.items()},
        "mem_index": {mem.path: i for mem, i in mem_index.items()},
        "source": None,
    }
    return "\n".join(parts), layout


def _build_so(circuit, workdir, so_path, use_cache):
    """Produce circuit.so in ``workdir``; returns the evaluator layout.

    Warm path: the generated C source and compiled shared object are
    stored in the artifact cache keyed by the circuit fingerprint, so a
    repeat invocation (any process) skips both codegen and the compiler.
    """
    from ..parallel.cache import get_cache, cache_enabled

    fingerprint = None
    if use_cache and cache_enabled():
        from ..hdl.ir import circuit_fingerprint
        fingerprint = circuit_fingerprint(circuit)
        entry = get_cache().get("csim", fingerprint)
        if entry is not None:
            with open(so_path, "wb") as f:
                f.write(entry["so"])
            layout = dict(entry["layout"])
            layout["source"] = entry["source"]
            return layout

    compiler = shutil.which("gcc") or shutil.which("cc")
    if compiler is None:
        raise CBackendUnavailable("no C compiler on PATH")
    source, layout = generate_c_source(circuit)
    c_path = os.path.join(workdir, "circuit.c")
    with open(c_path, "w") as f:
        f.write(source)
    cmd = [compiler, "-O1", "-fPIC", "-shared", "-o", so_path, c_path]
    try:
        subprocess.run(cmd, check=True, capture_output=True, timeout=600)
    except (subprocess.CalledProcessError, subprocess.TimeoutExpired) as exc:
        raise CBackendUnavailable(f"C compilation failed: {exc}") from exc
    layout["source"] = source
    if fingerprint is not None:
        with open(so_path, "rb") as f:
            so_bytes = f.read()
        get_cache().put("csim", fingerprint, {
            "source": source,
            "so": so_bytes,
            "layout": {k: v for k, v in layout.items() if k != "source"},
        })
    return layout


def compile_circuit_c(circuit, keep_dir=None, use_cache=True):
    """Compile a circuit to a shared object and wrap it ctypes-side.

    Returns ``(cycle_fn, layout)`` matching the Python backend interface,
    except state lives inside the shared object (proxied by
    :class:`_CStateProxy` lists).
    """
    workdir = keep_dir or tempfile.mkdtemp(prefix="repro_csim_")
    so_path = os.path.join(workdir, "circuit.so")
    layout = _build_so(circuit, workdir, so_path, use_cache)
    try:
        lib = ctypes.CDLL(so_path)
    except OSError:
        # A cached .so from an incompatible toolchain/arch: rebuild live.
        layout = _build_so(circuit, workdir, so_path, use_cache=False)
        lib = ctypes.CDLL(so_path)
    lib.cycle.argtypes = [ctypes.POINTER(ctypes.c_uint64),
                          ctypes.POINTER(ctypes.c_uint64), ctypes.c_int]
    lib.get_regs.argtypes = [ctypes.POINTER(ctypes.c_uint64)]
    lib.set_regs.argtypes = [ctypes.POINTER(ctypes.c_uint64)]
    lib.mem_get.argtypes = [ctypes.c_int, ctypes.c_uint64]
    lib.mem_get.restype = ctypes.c_uint64
    lib.mem_set.argtypes = [ctypes.c_int, ctypes.c_uint64, ctypes.c_uint64]

    n_in = max(len(circuit.inputs), 1)
    n_out = max(len(circuit.outputs), 1)
    n_reg = max(len(circuit.regs), 1)
    in_buf = (ctypes.c_uint64 * n_in)()
    out_buf = (ctypes.c_uint64 * n_out)()
    reg_buf = (ctypes.c_uint64 * n_reg)()

    def cycle_fn(inputs, outputs, regs, mems, commit):
        # regs/mems lists are proxies (see RTLSimulator wiring below);
        # the authoritative state lives inside the shared object.
        for i, value in enumerate(inputs):
            in_buf[i] = value
        lib.cycle(in_buf, out_buf, 1 if commit else 0)
        for i in range(len(outputs)):
            outputs[i] = out_buf[i]

    cycle_fn.lib = lib
    cycle_fn.reg_buf = reg_buf
    cycle_fn.n_regs = len(circuit.regs)
    cycle_fn.workdir = workdir
    return cycle_fn, layout


class CMemProxy:
    """List-like view of one memory array living inside the C library."""

    def __init__(self, lib, mem_id, depth):
        self._lib = lib
        self._mem_id = mem_id
        self._depth = depth

    def __len__(self):
        return self._depth

    def __getitem__(self, addr):
        return self._lib.mem_get(self._mem_id, addr)

    def __setitem__(self, addr, value):
        self._lib.mem_set(self._mem_id, addr, value)

    def __iter__(self):
        for addr in range(self._depth):
            yield self._lib.mem_get(self._mem_id, addr)


class CRegProxy:
    """List-like view of the register file inside the C library."""

    def __init__(self, lib, n_regs):
        self._lib = lib
        self._n = max(n_regs, 1)
        self._buf = (ctypes.c_uint64 * self._n)()
        self._count = n_regs

    def __len__(self):
        return self._count

    def __getitem__(self, idx):
        self._lib.get_regs(self._buf)
        return self._buf[idx]

    def __setitem__(self, idx, value):
        self._lib.get_regs(self._buf)
        self._buf[idx] = value
        self._lib.set_regs(self._buf)

    def __iter__(self):
        self._lib.get_regs(self._buf)
        for i in range(self._count):
            yield self._buf[i]

    def bulk_get(self):
        self._lib.get_regs(self._buf)
        return list(self._buf[:self._count])

    def bulk_set(self, values):
        for i, value in enumerate(values):
            self._buf[i] = value
        self._lib.set_regs(self._buf)
