"""Cycle-accurate RTL simulation (compiled Python, optional C backend)."""

from .rtl_sim import RTLSimulator, SimState, SimStateError, make_simulator
from .compiler import compile_circuit, compile_circuit_cached, LoweringError

__all__ = [
    "RTLSimulator", "SimState", "SimStateError", "make_simulator",
    "compile_circuit", "compile_circuit_cached", "LoweringError",
]
