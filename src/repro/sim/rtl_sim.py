"""Cycle-accurate RTL simulator over compiled circuits.

This is the "fast simulator" half of the Strober methodology: it plays
the role of the FPGA-hosted design (Section IV-B) and is also reused as
the reference model when validating gate-level replays.
"""

from __future__ import annotations

from ..hdl.ir import mask
from .compiler import compile_circuit_cached


class SimStateError(Exception):
    pass


class SimState:
    """A full architectural state snapshot (registers + memories)."""

    __slots__ = ("regs", "mems", "cycle")

    def __init__(self, regs, mems, cycle=0):
        self.regs = regs    # dict path -> int
        self.mems = mems    # dict path -> list[int]
        self.cycle = cycle

    def copy(self):
        return SimState(dict(self.regs),
                        {k: list(v) for k, v in self.mems.items()},
                        self.cycle)

    # __slots__ classes need explicit state hooks to pickle under every
    # protocol; snapshots embed a SimState and cross process boundaries.
    def __getstate__(self):
        return (self.regs, self.mems, self.cycle)

    def __setstate__(self, state):
        self.regs, self.mems, self.cycle = state

    def state_bits(self, circuit):
        reg_bits = sum(r.width for r in circuit.regs)
        mem_bits = sum(m.depth * m.width for m in circuit.mems)
        return reg_bits + mem_bits


class RTLSimulator:
    """Drive a circuit cycle by cycle with poke/peek/step.

    ``step`` semantics: outputs observed via ``peek`` after a step are the
    values computed from the inputs poked for that cycle, sampled just
    before the clock edge.
    """

    def __init__(self, circuit, backend="python"):
        self.circuit = circuit
        self.backend = backend
        if backend == "c":
            from .cbackend import compile_circuit_c, CRegProxy, CMemProxy
            self._cycle, self._layout = compile_circuit_c(circuit)
            lib = self._cycle.lib
            self._regs = CRegProxy(lib, len(circuit.regs))
            self._mems = [CMemProxy(lib, i, mem.depth)
                          for i, mem in enumerate(circuit.mems)]
        else:
            self._cycle, self._layout = compile_circuit_cached(circuit)
            self._regs = [0] * len(circuit.regs)
            self._mems = [[0] * mem.depth for mem in circuit.mems]
        self._in = [0] * len(circuit.inputs)
        self._out = [0] * len(circuit.outputs)
        self._in_widths = [node.width for node in circuit.inputs]
        self._reg_list = list(circuit.regs)
        self._mem_list = list(circuit.mems)
        self.cycle = 0
        self.reset()

    # -- state -------------------------------------------------------------

    def _set_regs(self, values):
        if hasattr(self._regs, "bulk_set"):
            self._regs.bulk_set(values)
        else:
            self._regs[:] = values

    def _get_regs(self):
        if hasattr(self._regs, "bulk_get"):
            return self._regs.bulk_get()
        return list(self._regs)

    def reset(self, clear_mems=False):
        """Apply register reset values; memories are preserved by default."""
        self._set_regs([reg.init for reg in self._reg_list])
        if clear_mems:
            for arr in self._mems:
                for i in range(len(arr)):
                    arr[i] = 0
        self.cycle = 0

    def snapshot(self):
        """Capture the complete architectural state."""
        values = self._get_regs()
        regs = {reg.path: int(values[i])
                for i, reg in enumerate(self._reg_list)}
        mems = {mem.path: [int(v) for v in self._mems[i]]
                for i, mem in enumerate(self._mem_list)}
        return SimState(regs, mems, self.cycle)

    def load_snapshot(self, state):
        """Restore a state captured by :meth:`snapshot`."""
        values = []
        for reg in self._reg_list:
            if reg.path not in state.regs:
                raise SimStateError(f"snapshot missing register {reg.path}")
            values.append(state.regs[reg.path])
        self._set_regs(values)
        for i, mem in enumerate(self._mem_list):
            if mem.path not in state.mems:
                raise SimStateError(f"snapshot missing memory {mem.path}")
            mem_values = state.mems[mem.path]
            if len(mem_values) != mem.depth:
                raise SimStateError(f"memory {mem.path} size mismatch")
            arr = self._mems[i]
            for j, value in enumerate(mem_values):
                arr[j] = value
        self.cycle = state.cycle

    # -- I/O -----------------------------------------------------------------

    def poke(self, name, value):
        idx = self._layout["in_index"][name]
        self._in[idx] = value & mask(self._in_widths[idx])

    def peek(self, name):
        return int(self._out[self._layout["out_index"][name]])

    def peek_all(self):
        return {name: int(self._out[i])
                for name, i in self._layout["out_index"].items()}

    def poke_all(self, values):
        for name, value in values.items():
            self.poke(name, value)

    def eval(self):
        """Settle combinational logic without a clock edge."""
        self._cycle(self._in, self._out, self._regs, self._mems, False)

    def step(self, n=1):
        """Advance ``n`` clock cycles with the currently poked inputs."""
        cycle_fn = self._cycle
        inp, out, regs, mems = self._in, self._out, self._regs, self._mems
        for _ in range(n):
            cycle_fn(inp, out, regs, mems, True)
        self.cycle += n

    # -- introspection --------------------------------------------------------

    def peek_reg(self, path):
        idx = self._layout["reg_index"][path]
        return int(self._regs[idx])

    def poke_reg(self, path, value):
        idx = self._layout["reg_index"][path]
        self._regs[idx] = value & mask(self._reg_list[idx].width)

    def read_mem(self, path, addr):
        idx = self._layout["mem_index"][path]
        return int(self._mems[idx][addr])

    def write_mem(self, path, addr, value):
        idx = self._layout["mem_index"][path]
        self._mems[idx][addr] = value & mask(self._mem_list[idx].width)

    def load_mem(self, path, values, offset=0):
        """Bulk-initialize a memory (e.g. a program image)."""
        idx = self._layout["mem_index"][path]
        arr = self._mems[idx]
        m = mask(self._mem_list[idx].width)
        for i, value in enumerate(values):
            arr[offset + i] = value & m

    def generated_source(self):
        return self._layout["source"]


def make_simulator(circuit, backend="auto"):
    """Build an RTLSimulator, preferring the C backend when available."""
    if backend == "auto":
        try:
            return RTLSimulator(circuit, backend="c")
        except Exception:
            return RTLSimulator(circuit, backend="python")
    return RTLSimulator(circuit, backend=backend)


__all__ = ["RTLSimulator", "SimState", "SimStateError", "make_simulator"]
