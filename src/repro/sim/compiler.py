"""Circuit -> executable Python compiler.

Generates one straight-line function per circuit (no per-node dispatch),
which is what makes the "fast simulator" side of Strober viable in pure
Python.  An optional C backend (see ``cbackend``) uses the same node
lowering rules.
"""

from __future__ import annotations

from ..hdl.ir import mask


def _var(node):
    return f"n{node.uid}"


class LoweringError(Exception):
    pass


def lower_node(node, ref):
    """Python expression computing ``node`` given ``ref(arg)`` expressions.

    The expression assumes every argument is already masked to its width;
    it must produce a value masked to ``node.width``.
    """
    op = node.op
    w = node.width
    if op == "const":
        return repr(node.params)
    if op == "memread":
        raise LoweringError("memread is lowered by the caller")
    args = [ref(a) for a in node.args]
    if op == "add":
        if max(node.args[0].width, node.args[1].width) + 1 > w:
            return f"(({args[0]} + {args[1]}) & {mask(w)})"
        return f"({args[0]} + {args[1]})"
    if op == "sub":
        return f"(({args[0]} - {args[1]}) & {mask(w)})"
    if op == "mul":
        expr = f"({args[0]} * {args[1]})"
        if node.args[0].width + node.args[1].width > w:
            expr = f"({expr} & {mask(w)})"
        return expr
    if op == "divu":
        return f"(({args[0]} // {args[1]}) if {args[1]} else {mask(w)})"
    if op == "modu":
        return f"(({args[0]} % {args[1]}) if {args[1]} else {args[0]})"
    if op == "and":
        return f"({args[0]} & {args[1]})"
    if op == "or":
        return f"({args[0]} | {args[1]})"
    if op == "xor":
        return f"({args[0]} ^ {args[1]})"
    if op == "not":
        return f"({args[0]} ^ {mask(w)})"
    if op == "shl":
        amount = node.args[1]
        if amount.op == "const":
            expr = f"({args[0]} << {amount.params})"
            if node.args[0].width + amount.params > w:
                expr = f"({expr} & {mask(w)})"
            return expr
        return f"(({args[0]} << {args[1]}) & {mask(w)})"
    if op == "shr":
        return f"({args[0]} >> {args[1]})"
    if op == "sra":
        sign = 1 << (node.args[0].width - 1)
        return (f"(((({args[0]} ^ {sign}) - {sign}) >> {args[1]})"
                f" & {mask(w)})")
    if op == "eq":
        return f"({args[0]} == {args[1]})"
    if op == "neq":
        return f"({args[0]} != {args[1]})"
    if op == "ltu":
        return f"({args[0]} < {args[1]})"
    if op == "leu":
        return f"({args[0]} <= {args[1]})"
    if op in ("lts", "les"):
        wa = node.args[0].width
        sign = 1 << (wa - 1)
        cmp = "<" if op == "lts" else "<="
        return (f"((({args[0]} ^ {sign}) - {sign}) {cmp} "
                f"(({args[1]} ^ {sign}) - {sign}))")
    if op == "cat":
        lo_w = node.args[1].width
        expr = f"(({args[0]} << {lo_w}) | {args[1]})"
        if node.args[0].width + lo_w > w:
            expr = f"({expr} & {mask(w)})"
        return expr
    if op == "bits":
        hi, lo = node.params
        src_w = node.args[0].width
        if lo == 0 and hi == src_w - 1:
            return args[0]
        if hi == src_w - 1:
            return f"({args[0]} >> {lo})"
        return f"(({args[0]} >> {lo}) & {mask(w)})"
    if op == "mux":
        return f"({args[1]} if {args[0]} else {args[2]})"
    if op == "orr":
        return f"(1 if {args[0]} else 0)"
    if op == "andr":
        return f"({args[0]} == {mask(node.args[0].width)})"
    if op == "xorr":
        return f"(int({args[0]}).bit_count() & 1)"
    raise LoweringError(f"cannot lower op {op!r}")


def compile_circuit(circuit):
    """Compile a Circuit into a cycle function.

    Returns ``(cycle_fn, layout)`` where ``cycle_fn(IN, OUT, R, M, commit)``
    evaluates one cycle (and commits register/memory updates when
    ``commit`` is true) and ``layout`` maps names to list indices.
    """
    in_index = {node.name: i for i, node in enumerate(circuit.inputs)}
    out_index = {name: i for i, (name, _) in enumerate(circuit.outputs)}
    reg_index = {reg: i for i, reg in enumerate(circuit.regs)}
    mem_index = {mem: i for i, mem in enumerate(circuit.mems)}

    lines = ["def _cycle(IN, OUT, R, M, commit):"]
    emit = lines.append

    def ref(node):
        if node.op == "const":
            return repr(node.params)
        return _var(node)

    for node in circuit.inputs:
        emit(f"    {_var(node)} = IN[{in_index[node.name]}]")
    for reg, idx in reg_index.items():
        emit(f"    {_var(reg)} = R[{idx}]")

    for node in circuit.comb_order:
        if node.op == "memread":
            mem = node.mem
            mem_ref = f"M[{mem_index[mem]}]"
            addr = ref(node.args[0])
            if (1 << node.args[0].width) > mem.depth:
                emit(f"    {_var(node)} = {mem_ref}[{addr}] "
                     f"if {addr} < {mem.depth} else 0")
            else:
                emit(f"    {_var(node)} = {mem_ref}[{addr}]")
        else:
            emit(f"    {_var(node)} = {lower_node(node, ref)}")

    for name, driver in circuit.outputs:
        emit(f"    OUT[{out_index[name]}] = {ref(driver)}")

    emit("    if commit:")
    commit_lines = []
    for reg, idx in reg_index.items():
        nxt = circuit.reg_next[reg]
        commit_lines.append(f"        R[{idx}] = {ref(nxt)}")
    for mem, midx in mem_index.items():
        for addr, data, en in mem.writes:
            guard = f"{ref(en)}"
            addr_expr = ref(addr)
            if (1 << addr.width) > mem.depth:
                guard = f"{guard} and {addr_expr} < {mem.depth}"
            commit_lines.append(
                f"        if {guard}: M[{midx}][{addr_expr}] = {ref(data)}")
    if not commit_lines:
        commit_lines.append("        pass")
    lines.extend(commit_lines)

    source = "\n".join(lines)
    namespace = {}
    code = compile(source, f"<circuit {circuit.name}>", "exec")
    exec(code, namespace)  # noqa: S102 - generated from our own IR
    layout = {
        "in_index": in_index,
        "out_index": out_index,
        "reg_index": {reg.path: i for reg, i in reg_index.items()},
        "mem_index": {mem.path: i for mem, i in mem_index.items()},
        "source": source,
    }
    return namespace["_cycle"], layout


def compile_circuit_cached(circuit):
    """Like :func:`compile_circuit`, via the on-disk artifact cache.

    The generated source is self-contained (indices are baked into the
    function body) and the layout is keyed by port name / state path,
    so a cache entry fully reconstructs the evaluator without touching
    the IR — codegen is skipped on warm runs.
    """
    from ..parallel.cache import get_cache, cache_enabled
    from ..hdl.ir import circuit_fingerprint

    if not cache_enabled():
        return compile_circuit(circuit)
    fingerprint = circuit_fingerprint(circuit)
    cache = get_cache()
    layout = cache.get("pysim", fingerprint)
    if layout is not None:
        namespace = {}
        code = compile(layout["source"],
                       f"<cached circuit {circuit.name}>", "exec")
        exec(code, namespace)  # noqa: S102 - our own cached codegen
        return namespace["_cycle"], layout
    cycle_fn, layout = compile_circuit(circuit)
    cache.put("pysim", fingerprint, layout)
    return cycle_fn, layout
