"""Target designs: Rocket-like in-order and BOOM-like OoO SoCs."""

from .common import (
    XLEN, PipelinedMultiplier, IterativeDivider, alu, branch_taken,
)
from .cache import Cache
from .rocket import RocketCore
from .soc import (
    SoC, HtifEndpoint, build_soc_circuit, run_workload, WorkloadResult,
)

__all__ = [
    "XLEN", "PipelinedMultiplier", "IterativeDivider", "alu",
    "branch_taken", "Cache", "RocketCore",
    "SoC", "HtifEndpoint", "build_soc_circuit", "run_workload",
    "WorkloadResult",
]
