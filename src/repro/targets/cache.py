"""Blocking, direct-mapped, write-back L1 cache.

Pipelined hit path (one access per cycle back-to-back), write-allocate
with dirty-line writeback over the burst memory protocol that
:class:`repro.dram.MemoryEndpoint` services.  Sub-word stores are merged
read-modify-write inside the cache (single cycle on a hit).

Used for both L1 I$ (read-only requests) and L1 D$ — matching the
16 KiB I$/D$ organization of Table II (sizes are parameters).
"""

from __future__ import annotations

import math

from ..hdl import Module, mux, cat, const
from .common import store_merge

# FSM states
S_COMPARE = 0
S_WB_REQ = 1
S_WB_DATA = 2
S_WB_ACK = 3
S_REFILL_REQ = 4
S_REFILL = 5


class Cache(Module):
    """One L1 cache instance.

    Core-side ports:  req_valid/req_rw/req_addr/req_wdata/req_funct3 in,
    req_ready out, resp_valid/resp_data out (1-cycle hit latency).
    Memory-side ports: the burst protocol (mem_req_*, mem_wdata_*,
    mem_resp_* — wired to the uncore arbiter).
    """

    def __init__(self, size_bytes=16 * 1024, line_words=8, read_words=1,
                 name=None):
        if read_words not in (1, 2):
            raise ValueError("read_words must be 1 or 2")
        self.size_bytes = size_bytes
        self.line_words = line_words
        self.read_words = read_words
        super().__init__(name)

    def build(self):
        line_words = self.line_words
        n_lines = self.size_bytes // (4 * line_words)
        offset_bits = int(math.log2(line_words))
        index_bits = int(math.log2(n_lines))
        tag_bits = 32 - 2 - offset_bits - index_bits

        req_valid = self.input("req_valid", 1)
        req_rw = self.input("req_rw", 1)
        req_addr = self.input("req_addr", 32)
        req_wdata = self.input("req_wdata", 32)
        req_funct3 = self.input("req_funct3", 3)

        mem_req_ready = self.input("mem_req_ready", 1)
        mem_resp_valid = self.input("mem_resp_valid", 1)
        mem_resp_data = self.input("mem_resp_data", 32)

        tags = self.mem("tags", n_lines, tag_bits + 2)  # {valid,dirty,tag}
        data = self.mem("data", n_lines * line_words, 32)

        state = self.reg("state", 3, init=S_COMPARE)
        s_valid = self.reg("s_valid", 1)
        s_rw = self.reg("s_rw", 1)
        s_addr = self.reg("s_addr", 32)
        s_wdata = self.reg("s_wdata", 32)
        s_funct3 = self.reg("s_funct3", 3)
        beat = self.reg("beat", offset_bits + 1)

        word_addr = s_addr[31:2]
        offset = word_addr[offset_bits - 1:0]
        index = word_addr[offset_bits + index_bits - 1:offset_bits]
        tag = word_addr[29:offset_bits + index_bits]

        tag_entry = tags.read(index)
        entry_valid = tag_entry[tag_bits + 1]
        entry_dirty = tag_entry[tag_bits]
        entry_tag = tag_entry[tag_bits - 1:0]
        hit = s_valid & entry_valid & entry_tag.eq(tag)

        data_index = cat(index, offset)
        line_base = cat(index, const(0, offset_bits))
        current_word = data.read(data_index)

        in_compare = state.eq(S_COMPARE)
        # Accept a new request whenever the slot frees this cycle.
        finishing = in_compare & (~s_valid | hit)
        self.output("req_ready", 1, finishing)

        resp_valid = self.wire("resp_valid", 1, default=0)
        self.output("resp_valid", 1, resp_valid)
        if self.read_words == 1:
            self.output("resp_data", 32, current_word)
        else:
            # Wide fetch port (superscalar frontends): a second word from
            # the same line, when the access is not the line's last word.
            next_index = cat(index, (offset + 1).trunc(offset_bits))
            second_word = data.read(next_index)
            last_in_line = offset.eq(line_words - 1)
            self.output("resp_data", 64, cat(second_word, current_word))
            self.output("resp_nwords", 2,
                        mux(last_in_line, const(1, 2), const(2, 2)))

        accept = finishing & req_valid
        with self.when(accept):
            s_valid <<= 1
            s_rw <<= req_rw
            s_addr <<= req_addr
            s_wdata <<= req_wdata
            s_funct3 <<= req_funct3
        with self.elsewhen(finishing):
            s_valid <<= 0

        mem_req_valid = self.wire("mem_req_valid_w", 1, default=0)
        mem_req_rw = self.wire("mem_req_rw_w", 1, default=0)
        mem_req_addr = self.wire("mem_req_addr_w", 30, default=0)
        mem_wdata_valid = self.wire("mem_wdata_valid_w", 1, default=0)

        victim_line_addr = cat(entry_tag, index, const(0, offset_bits))
        miss_line_addr = cat(tag, index, const(0, offset_bits))
        wb_word = data.read(cat(index, beat[offset_bits - 1:0]))

        with self.when(in_compare & s_valid):
            with self.when(hit):
                resp_valid <<= 1
                with self.when(s_rw):
                    merged = store_merge(s_funct3, s_addr, current_word,
                                         s_wdata)
                    self.mem_write(data, data_index, merged)
                    self.mem_write(tags, index,
                                   cat(const(1, 1), const(1, 1), tag))
            with self.otherwise():
                # miss: writeback if the victim is valid+dirty
                with self.when(entry_valid & entry_dirty):
                    state <<= S_WB_REQ
                with self.otherwise():
                    state <<= S_REFILL_REQ

        with self.when(state.eq(S_WB_REQ)):
            mem_req_valid <<= 1
            mem_req_rw <<= 1
            mem_req_addr <<= victim_line_addr
            with self.when(mem_req_ready):
                state <<= S_WB_DATA
                beat <<= 0

        with self.when(state.eq(S_WB_DATA)):
            mem_wdata_valid <<= 1
            beat <<= beat + 1
            with self.when(beat.eq(line_words - 1)):
                state <<= S_WB_ACK

        with self.when(state.eq(S_WB_ACK)):
            with self.when(mem_resp_valid):
                state <<= S_REFILL_REQ

        with self.when(state.eq(S_REFILL_REQ)):
            mem_req_valid <<= 1
            mem_req_rw <<= 0
            mem_req_addr <<= miss_line_addr
            with self.when(mem_req_ready):
                state <<= S_REFILL
                beat <<= 0

        with self.when(state.eq(S_REFILL)):
            with self.when(mem_resp_valid):
                self.mem_write(data,
                               cat(index, beat[offset_bits - 1:0]),
                               mem_resp_data)
                beat <<= beat + 1
                with self.when(beat.eq(line_words - 1)):
                    # install clean line, then retry the access
                    self.mem_write(tags, index,
                                   cat(const(1, 1), const(0, 1), tag))
                    state <<= S_COMPARE

        self.output("mem_req_valid", 1, mem_req_valid)
        self.output("mem_req_rw", 1, mem_req_rw)
        self.output("mem_req_addr", 30, mem_req_addr)
        self.output("mem_req_len", 5, const(line_words, 5))
        self.output("mem_wdata_valid", 1, mem_wdata_valid)
        self.output("mem_wdata", 32, wb_word)
