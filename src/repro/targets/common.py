"""Shared datapath components for the target cores.

Instruction-field extraction and control decode (as expression
builders), the ALU, the 3-stage pipelined multiplier (designer-annotated
as *retimed*, standing in for the paper's FPU retiming case), and the
iterative restoring divider.
"""

from __future__ import annotations

from ..hdl import Module, mux, cat, const
from ..hdl.ir import Node, lift
from ..isa import encoding as enc

XLEN = 32


def sign_imm(node, width=XLEN):
    return node.sext(width)


def decode_fields(inst):
    """Extract the standard RISC-V fields from a 32-bit instruction."""
    return {
        "opcode": inst[6:0],
        "rd": inst[11:7],
        "funct3": inst[14:12],
        "rs1": inst[19:15],
        "rs2": inst[24:20],
        "funct7": inst[31:25],
    }


def imm_i(inst):
    return inst[31:20].sext(XLEN)


def imm_s(inst):
    return cat(inst[31:25], inst[11:7]).sext(XLEN)


def imm_b(inst):
    return cat(inst[31], inst[7], inst[30:25], inst[11:8],
               const(0, 1)).sext(XLEN)


def imm_u(inst):
    return cat(inst[31:12], const(0, 12))


def imm_j(inst):
    return cat(inst[31], inst[19:12], inst[20], inst[30:21],
               const(0, 1)).sext(XLEN)


def is_opcode(fields, opcode):
    return fields["opcode"].eq(opcode)


def select_immediate(inst, fields):
    """Format-correct immediate for every opcode."""
    opcode = fields["opcode"]
    imm = imm_i(inst)
    imm = mux(opcode.eq(enc.OP_STORE), imm_s(inst), imm)
    imm = mux(opcode.eq(enc.OP_BRANCH), imm_b(inst), imm)
    imm = mux(opcode.eq(enc.OP_LUI) | opcode.eq(enc.OP_AUIPC),
              imm_u(inst), imm)
    imm = mux(opcode.eq(enc.OP_JAL), imm_j(inst), imm)
    return imm


def alu(op_funct3, alt, a, b):
    """The base-ISA ALU; ``alt`` selects sub/sra.

    Returns a 32-bit result.  ``op_funct3`` follows the OP/OP-IMM
    funct3 encoding.
    """
    shamt = b[4:0]
    add_sub = mux(alt, (a - b).trunc(XLEN), (a + b).trunc(XLEN))
    shift_r = mux(alt, a.sra(shamt), a >> shamt)
    result = add_sub
    result = mux(op_funct3.eq(0b001), (a << shamt).trunc(XLEN), result)
    result = mux(op_funct3.eq(0b010), a.slt(b).pad(XLEN), result)
    result = mux(op_funct3.eq(0b011), a.ult(b).pad(XLEN), result)
    result = mux(op_funct3.eq(0b100), a ^ b, result)
    result = mux(op_funct3.eq(0b101), shift_r, result)
    result = mux(op_funct3.eq(0b110), a | b, result)
    result = mux(op_funct3.eq(0b111), a & b, result)
    return result


def branch_taken(funct3, rs1, rs2):
    taken = rs1.eq(rs2)                                   # beq
    taken = mux(funct3.eq(0b001), rs1.ne(rs2), taken)     # bne
    taken = mux(funct3.eq(0b100), rs1.slt(rs2), taken)    # blt
    taken = mux(funct3.eq(0b101), rs1.sge(rs2), taken)    # bge
    taken = mux(funct3.eq(0b110), rs1.ult(rs2), taken)    # bltu
    taken = mux(funct3.eq(0b111), rs1.uge(rs2), taken)    # bgeu
    return taken


def load_extend(funct3, addr_low, word):
    """Byte/half extraction + extension for load results."""
    byte_sel = addr_low[1:0]
    byte = (word >> cat(byte_sel, const(0, 3))).trunc(8)
    half = mux(addr_low[1], word[31:16], word[15:0])
    result = word
    result = mux(funct3.eq(0b000), byte.sext(XLEN), result)   # lb
    result = mux(funct3.eq(0b100), byte.pad(XLEN), result)    # lbu
    result = mux(funct3.eq(0b001), half.sext(XLEN), result)   # lh
    result = mux(funct3.eq(0b101), half.pad(XLEN), result)    # lhu
    return result


def store_merge(funct3, addr_low, old_word, data):
    """Read-modify-write merge for sub-word stores."""
    byte_sel = addr_low[1:0]
    shift = cat(byte_sel, const(0, 3))
    byte_mask = (const(0xFF, XLEN) << shift).trunc(XLEN)
    half_mask = mux(addr_low[1], const(0xFFFF0000, XLEN),
                    const(0x0000FFFF, XLEN))
    byte_val = ((data[7:0].pad(XLEN)) << shift).trunc(XLEN)
    half_val = mux(addr_low[1], cat(data[15:0], const(0, 16)),
                   data[15:0].pad(XLEN))
    merged = data
    merged = mux(funct3.eq(0b000),
                 (old_word & ~byte_mask) | byte_val, merged)
    merged = mux(funct3.eq(0b001),
                 (old_word & ~half_mask) | half_val, merged)
    return merged


class PipelinedMultiplier(Module):
    """3-cycle multiplier pipeline, annotated retimed (Section IV-C3).

    Free-running (no enables): feed (valid, a, b, high/signed controls)
    and the result emerges 3 cycles later with ``valid_out``.  Handles
    MUL/MULH/MULHU/MULHSU via 33-bit operand extension.
    """

    LATENCY = 3

    def build(self):
        self.mark_retimed(self.LATENCY)
        valid = self.input("valid", 1)
        a = self.input("a", XLEN)
        b = self.input("b", XLEN)
        # funct3 semantics: 000 mul, 001 mulh, 010 mulhsu, 011 mulhu
        funct3 = self.input("funct3", 2)
        a_signed = funct3.eq(0b01) | funct3.eq(0b10)
        b_signed = funct3.eq(0b01)
        a_ext = mux(a_signed, a.sext(33), a.pad(33))
        b_ext = mux(b_signed, b.sext(33), b.pad(33))
        want_high = funct3.ne(0b00)

        # stage 1: partial product of the low half
        p1 = self.reg("p1", 64)
        p1 <<= (a_ext * b_ext).trunc(64)
        hi1 = self.reg("hi1", 1)
        hi1 <<= want_high
        v1 = self.reg("v1", 1)
        v1 <<= valid
        # stage 2/3: pipeline the (already complete) product — the CAD
        # tool is free to rebalance the multiplier array across these
        # registers, which is exactly why they are unmatchable.
        p2 = self.reg("p2", 64)
        p2 <<= p1
        hi2 = self.reg("hi2", 1)
        hi2 <<= hi1
        v2 = self.reg("v2", 1)
        v2 <<= v1
        p3 = self.reg("p3", 64)
        p3 <<= p2
        hi3 = self.reg("hi3", 1)
        hi3 <<= hi2
        v3 = self.reg("v3", 1)
        v3 <<= v2

        self.output("valid_out", 1, v3)
        self.output("result", XLEN,
                    mux(hi3, p3[63:32], p3[31:0]))


class IterativeDivider(Module):
    """Restoring divider: one subtract/compare per cycle, 32 + 2 cycles.

    Implements DIV/DIVU/REM/REMU with RISC-V corner-case semantics
    (division by zero, signed overflow).
    """

    def build(self):
        start = self.input("start", 1)
        a = self.input("a", XLEN)
        b = self.input("b", XLEN)
        # funct3: 100 div, 101 divu, 110 rem, 111 remu
        funct3 = self.input("funct3", 3)

        busy = self.reg("busy", 1)
        count = self.reg("count", 6)
        dividend = self.reg("dividend", XLEN)     # shifting left
        divisor = self.reg("divisor", XLEN)
        remainder = self.reg("remainder", XLEN + 1)
        quotient = self.reg("quotient", XLEN)
        neg_q = self.reg("neg_q", 1)
        neg_r = self.reg("neg_r", 1)
        want_rem = self.reg("want_rem", 1)
        b_zero = self.reg("b_zero", 1)
        a_orig = self.reg("a_orig", XLEN)
        done_r = self.reg("done_r", 1)
        done_r <<= 0

        signed_op = ~funct3[0]
        a_neg = a[31] & signed_op
        b_neg = b[31] & signed_op
        a_abs = mux(a_neg, (const(0, XLEN) - a).trunc(XLEN), a)
        b_abs = mux(b_neg, (const(0, XLEN) - b).trunc(XLEN), b)

        with self.when(start & ~busy):
            busy <<= 1
            count <<= XLEN
            dividend <<= a_abs
            divisor <<= b_abs
            remainder <<= 0
            quotient <<= 0
            neg_q <<= a_neg ^ b_neg
            neg_r <<= a_neg
            want_rem <<= funct3[1]
            b_zero <<= b.eq(0)
            a_orig <<= a

        shifted = cat(remainder[XLEN - 1:0], dividend[31])
        trial = (shifted - divisor.pad(XLEN + 1)).trunc(XLEN + 2)
        ge = shifted.uge(divisor.pad(XLEN + 1))
        with self.when(busy):
            with self.when(count.ne(0)):
                remainder <<= mux(ge, trial.trunc(XLEN + 1), shifted)
                quotient <<= cat(quotient[30:0], ge)
                dividend <<= (dividend << 1).trunc(XLEN)
                count <<= count - 1
            with self.otherwise():
                busy <<= 0
                done_r <<= 1

        q_mag = quotient
        r_mag = remainder.trunc(XLEN)
        q_signed = mux(neg_q, (const(0, XLEN) - q_mag).trunc(XLEN), q_mag)
        r_signed = mux(neg_r, (const(0, XLEN) - r_mag).trunc(XLEN), r_mag)
        # RISC-V division-by-zero semantics: quotient = all ones (signed
        # -1), remainder = the original dividend.
        quot_out = mux(b_zero, const(0xFFFFFFFF, XLEN), q_signed)
        rem_out = mux(b_zero, a_orig, r_signed)
        result = mux(want_rem, rem_out, quot_out)

        self.output("busy", 1, busy)
        self.output("done", 1, done_r)
        self.output("result", XLEN, result)
