"""SoC wrapper: core + L1 caches + uncore + MMIO, plus host endpoints.

The SoC's top-level I/O is the FAME1 boundary: a burst memory channel
(serviced by :class:`repro.dram.MemoryEndpoint`), an MMIO channel
(serviced by :class:`HtifEndpoint`), and performance-counter outputs.
This mirrors the paper's setup where target main memory and I/O devices
live on the host platform (Section V-B).
"""

from __future__ import annotations

from ..hdl import Module, mux, cat, const, elaborate
from ..fame import Endpoint, Fame1Simulator
from ..dram import make_memory_endpoint
from ..isa import (
    assemble, MMIO_BASE, TOHOST_ADDR, PUTCHAR_ADDR, PERF_ADDR,
    FROMHOST_ADDR,
)
from .cache import Cache

# MMIO addresses are distinguished by bit 30 (0x40000000)
MMIO_BIT = 30


class SoC(Module):
    """Core + caches + uncore; see module docstring for the I/O map."""

    def __init__(self, core_factory, icache_kib=16, dcache_kib=16,
                 line_words=8, fetch_width=1, name=None):
        self.core_factory = core_factory
        self.icache_kib = icache_kib
        self.dcache_kib = dcache_kib
        self.line_words = line_words
        self.fetch_width = fetch_width
        super().__init__(name)

    def build(self):
        mem_req_ready = self.input("mem_req_ready", 1)
        mem_resp_valid = self.input("mem_resp_valid", 1)
        mem_resp_data = self.input("mem_resp_data", 32)
        mmio_resp_valid = self.input("mmio_resp_valid", 1)
        mmio_resp_data = self.input("mmio_resp_data", 32)

        core = self.instance(self.core_factory(), "core")
        icache = self.instance(
            Cache(self.icache_kib * 1024, self.line_words,
                  read_words=self.fetch_width), "icache")
        dcache = self.instance(
            Cache(self.dcache_kib * 1024, self.line_words), "dcache")

        # ---- core <-> I$ ----------------------------------------------------
        icache["req_valid"] <<= core["imem_req_valid"]
        icache["req_rw"] <<= 0
        icache["req_addr"] <<= core["imem_req_addr"]
        icache["req_wdata"] <<= 0
        icache["req_funct3"] <<= 0b010
        core["imem_req_ready"] <<= icache["req_ready"]
        core["imem_resp_valid"] <<= icache["resp_valid"]
        core["imem_resp_data"] <<= icache["resp_data"]
        if self.fetch_width == 2:
            core["imem_resp_nwords"] <<= icache["resp_nwords"]

        # ---- core <-> D$ / MMIO routing -----------------------------------
        dmem_req_valid = core["dmem_req_valid"]
        dmem_addr = core["dmem_req_addr"]
        is_mmio = dmem_addr[MMIO_BIT]

        dcache["req_valid"] <<= dmem_req_valid & ~is_mmio
        dcache["req_rw"] <<= core["dmem_req_rw"]
        dcache["req_addr"] <<= dmem_addr
        dcache["req_wdata"] <<= core["dmem_req_wdata"]
        dcache["req_funct3"] <<= core["dmem_req_funct3"]

        self.output("mmio_req_valid", 1, dmem_req_valid & is_mmio)
        self.output("mmio_req_rw", 1, core["dmem_req_rw"])
        self.output("mmio_req_addr", 32, dmem_addr)
        self.output("mmio_req_wdata", 32, core["dmem_req_wdata"])

        core["dmem_req_ready"] <<= mux(is_mmio, const(1, 1),
                                       dcache["req_ready"])
        core["dmem_resp_valid"] <<= dcache["resp_valid"] | mmio_resp_valid
        core["dmem_resp_data"] <<= mux(mmio_resp_valid, mmio_resp_data,
                                       dcache["resp_data"])

        # ---- uncore: arbitrate I$/D$ line channels onto one port ------------
        # owner: 0 = none, 1 = icache, 2 = dcache (D$ has priority)
        owner = self.reg("uncore_owner", 2)
        rd_beats = self.reg("uncore_rd_beats", 6)

        i_req = icache["mem_req_valid"]
        d_req = dcache["mem_req_valid"]
        grant_d = owner.eq(0) & d_req
        grant_i = owner.eq(0) & ~d_req & i_req

        sel_d = grant_d | owner.eq(2)
        active_req_valid = mux(owner.eq(0), i_req | d_req, const(0, 1))
        req_rw = mux(sel_d, dcache["mem_req_rw"], icache["mem_req_rw"])
        req_addr = mux(sel_d, dcache["mem_req_addr"],
                       icache["mem_req_addr"])
        req_len = mux(sel_d, dcache["mem_req_len"], icache["mem_req_len"])

        accept = active_req_valid & mem_req_ready
        with self.when(accept):
            owner <<= mux(sel_d, const(2, 2), const(1, 2))
            rd_beats <<= mux(req_rw, const(1, 6),
                             req_len.pad(6))

        with self.when(owner.ne(0) & mem_resp_valid):
            rd_beats <<= rd_beats - 1
            with self.when(rd_beats.eq(1)):
                owner <<= 0

        self.output("mem_req_valid", 1, active_req_valid)
        self.output("mem_req_rw", 1, req_rw)
        self.output("mem_req_addr", 30, req_addr)
        self.output("mem_req_len", 5, req_len)
        self.output("mem_wdata_valid", 1,
                    mux(owner.eq(2), dcache["mem_wdata_valid"],
                        icache["mem_wdata_valid"]))
        self.output("mem_wdata", 32,
                    mux(owner.eq(2), dcache["mem_wdata"],
                        icache["mem_wdata"]))

        owner_is_i = owner.eq(1)
        icache["mem_req_ready"] <<= grant_i & mem_req_ready
        dcache["mem_req_ready"] <<= grant_d & mem_req_ready
        icache["mem_resp_valid"] <<= mem_resp_valid & owner_is_i
        icache["mem_resp_data"] <<= mem_resp_data
        dcache["mem_resp_valid"] <<= mem_resp_valid & owner.eq(2)
        dcache["mem_resp_data"] <<= mem_resp_data

        # ---- status ---------------------------------------------------------
        self.output("perf_instret", 32, core["perf_instret"])
        self.output("perf_cycles", 32, core["perf_cycles"])
        # forward any core debug ports
        for out_name, node in core.module._outputs.items():
            if out_name.startswith("dbg_"):
                self.output(out_name, node.width, core[out_name])


class HtifEndpoint(Endpoint):
    """Host side of the MMIO channel: tohost/putchar/perf ports."""

    def __init__(self):
        self.reset()

    def reset(self):
        self.tohost = 0
        self.halted = False
        self.stdout = []
        self.perf_log = []          # (value, None) cycle filled by caller
        self._resp = None

    @property
    def exit_code(self):
        if self.tohost == 0:
            return None
        return self.tohost >> 1

    def stdout_text(self):
        return "".join(self.stdout)

    def tick(self, outputs):
        inputs = {"mmio_resp_valid": 0, "mmio_resp_data": 0}
        if self._resp is not None:
            inputs["mmio_resp_valid"] = 1
            inputs["mmio_resp_data"] = self._resp
            self._resp = None
        if outputs.get("mmio_req_valid"):
            addr = outputs["mmio_req_addr"]
            if outputs["mmio_req_rw"]:
                value = outputs["mmio_req_wdata"]
                if addr == TOHOST_ADDR:
                    self.tohost = value
                    if value != 0:
                        self.halted = True
                elif addr == PUTCHAR_ADDR:
                    self.stdout.append(chr(value & 0xFF))
                elif addr == PERF_ADDR:
                    self.perf_log.append(value)
                self._resp = 0      # write ack
            else:
                if addr == TOHOST_ADDR:
                    self._resp = self.tohost
                elif addr == FROMHOST_ADDR:
                    self._resp = 0
                else:
                    self._resp = 0
        return inputs


def build_soc_circuit(core_factory, icache_kib=16, dcache_kib=16,
                      line_words=8, fetch_width=1, name=None):
    """Elaborate a SoC around the given core constructor."""
    soc = SoC(core_factory, icache_kib=icache_kib, dcache_kib=dcache_kib,
              line_words=line_words, fetch_width=fetch_width)
    return elaborate(soc, name=name)


class WorkloadResult:
    """Outcome of running one program on a FAME1-simulated SoC."""

    def __init__(self, fame, htif, memory):
        self.fame = fame
        self.htif = htif
        self.memory = memory
        self.stats = fame.stats

    @property
    def exit_code(self):
        return self.htif.exit_code

    @property
    def passed(self):
        return self.htif.exit_code == 0

    @property
    def cycles(self):
        return self.stats.target_cycles

    @property
    def instret(self):
        return self.fame.sim.peek("perf_instret")

    @property
    def cpi(self):
        retired = self.instret
        return self.cycles / retired if retired else float("inf")

    @property
    def snapshots(self):
        return self.fame.snapshots


_SIM_CACHE = {}


def _cached_sim(circuit, backend):
    """Compiled simulators are expensive (especially the C backend);
    reuse them across workload runs on the same circuit."""
    key = (id(circuit), backend)
    sim = _SIM_CACHE.get(key)
    if sim is None:
        from ..sim import make_simulator
        sim = make_simulator(circuit, backend=backend)
        _SIM_CACHE[key] = sim
    return sim


def run_workload(circuit, source, max_cycles=2_000_000, mem_latency=20,
                 backend="auto", sample_size=None, replay_length=128,
                 seed=0, line_words=8, progress_fn=None,
                 progress_interval=None, fame_kwargs=None,
                 record_full_io=False):
    """Assemble ``source``, run it on the SoC circuit, return results.

    The circuit is FAME1-transformed in place on first use; the memory
    endpoint is preloaded with the program image.
    """
    from ..obs import get_tracer
    tracer = get_tracer()
    with tracer.span("fame.assemble", cat="fame"):
        program = assemble(source) if isinstance(source, str) else source
    memory = make_memory_endpoint(latency=mem_latency,
                                  line_words=line_words)
    memory.load_words(0, program.as_word_list())
    htif = HtifEndpoint()
    from ..fame.transform import fame1_transform, is_fame1
    if not is_fame1(circuit):
        fame1_transform(circuit)
    fame = Fame1Simulator(circuit, [memory, htif], backend=backend,
                          sample_size=sample_size,
                          replay_length=replay_length, seed=seed,
                          sim=_cached_sim(circuit, backend),
                          **(fame_kwargs or {}))
    fame.record_full_io = record_full_io
    with tracer.span("fame.simulate", cat="fame",
                     backend=str(backend),
                     max_cycles=max_cycles) as span:
        fame.run(max_cycles=max_cycles,
                 stop_fn=lambda outs: htif.halted,
                 progress_fn=progress_fn,
                 progress_interval=progress_interval)
        span.set(cycles=fame.stats.target_cycles,
                 snapshots=len(fame.snapshots))
    return WorkloadResult(fame, htif, memory)
