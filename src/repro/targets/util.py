"""Structural helpers for register-vector state machines (BOOM plumbing).

The DSL has no first-class Vec; these helpers build the mux trees,
decoders, and priority encoders an out-of-order core needs over plain
Python lists of registers.
"""

from __future__ import annotations

from ..hdl import mux, const
from ..hdl.ir import lift


def vec_read(values, index):
    """Dynamic read of a Python list of equal-width nodes."""
    index = lift(index)
    result = values[0]
    for i, value in enumerate(values[1:], start=1):
        result = mux(index.eq(i), value, result)
    return result


def vec_write(module, regs, index, value, en=1):
    """Dynamic write: ``regs[index] <<= value`` when ``en``."""
    index = lift(index)
    en = lift(en)
    for i, reg in enumerate(regs):
        with module.when(en & index.eq(i)):
            reg <<= value


def priority_index(valids, width):
    """Index of the first set bit (undefined when none); plus any-bit."""
    any_set = valids[0]
    index = const(0, width)
    found = valids[0]
    for i, v in enumerate(valids[1:], start=1):
        index = mux(~found & v, const(i, width), index)
        found = found | v
        any_set = any_set | v
    return index, any_set


def priority_two(valids, width):
    """First and second set-bit indices: ((idx0, any0), (idx1, any1))."""
    idx0, any0 = priority_index(valids, width)
    masked = [v & ~(any0 & idx0.eq(i)) for i, v in enumerate(valids)]
    idx1, any1 = priority_index(masked, width)
    return (idx0, any0), (idx1, any1)


def mod_inc(index, amount, modulus):
    """``(index + amount) % modulus`` for circular queue pointers.

    ``amount`` may be a small node or int; correct for non-power-of-two
    moduli (plain bit truncation is not).
    """
    width = max((modulus - 1).bit_length(), 1)
    raw = (lift(index).pad(width + 2) + amount).trunc(width + 2)
    wrapped = (raw - modulus).trunc(width + 2)
    return mux(raw.uge(modulus), wrapped, raw).trunc(width)


def mod_sub(a, b, modulus):
    """``(a - b) % modulus`` — circular distance (ages)."""
    width = max((modulus - 1).bit_length(), 1)
    a, b = lift(a), lift(b)
    diff = (a.pad(width + 2) - b.pad(width + 2)).trunc(width + 2)
    fixed = (diff + modulus).trunc(width + 2)
    return mux(a.uge(b), diff.trunc(width), fixed.trunc(width))


def count_set(valids, width):
    """Population count of a list of 1-bit nodes."""
    total = const(0, width)
    for v in valids:
        total = (total + v).trunc(width)
    return total
