"""BOOM-like parameterized superscalar out-of-order RV32IM core.

Microarchitecture (scaled from the paper's Table II):

* fetch width W (1 or 2) with fetch-time prediction: JAL targets are
  followed immediately and backward conditional branches predict taken;
* explicit register renaming: speculative + committed map tables, a
  free-list bitmap, and a busy table over ``n_phys`` physical registers;
* a unified issue window (``issue_slots``) with issue-time speculative
  wakeup for single-cycle ops and writeback wakeup for loads/mul/div;
* W ALU/branch issue ports, one 3-cycle retimed multiplier pipeline
  (the paper's FPU-retiming case), one iterative divider;
* an in-order load/store queue (loads execute speculatively at the LSQ
  head; stores and MMIO accesses wait until they reach the ROB head);
* a re-order buffer with W-wide in-order commit; branch mispredictions
  are repaired at commit by restoring the committed rename state
  (simpler than BOOM's checkpoint recovery, preserving the CPI ordering
  the paper's Figure 9b relies on).
"""

from __future__ import annotations

from ..hdl import Module, mux, cat, const
from ..isa import encoding as enc
from .common import (
    XLEN, alu, branch_taken, decode_fields, load_extend,
    select_immediate, imm_j, imm_b, PipelinedMultiplier,
    IterativeDivider,
)
from .util import (
    vec_read, vec_write, priority_index, priority_two, mod_inc, mod_sub,
)

# issue-window op classes
CLS_ALU = 0
CLS_BRANCH = 1
CLS_JALR = 2
CLS_MUL = 3
CLS_DIV = 4
CLS_CSR = 5


class BoomCore(Module):
    """Parameterized OoO core (see module docstring)."""

    def __init__(self, fetch_width=1, issue_slots=12, rob_entries=24,
                 n_phys=48, lsq_entries=8, reset_pc=0, debug=False,
                 name=None):
        if fetch_width not in (1, 2):
            raise ValueError("fetch_width must be 1 or 2")
        self.fetch_width = fetch_width
        self.issue_slots = issue_slots
        self.rob_entries = rob_entries
        self.n_phys = n_phys
        self.lsq_entries = lsq_entries
        self.reset_pc = reset_pc
        self.debug = debug
        super().__init__(name)

    # pylint: disable=too-many-locals,too-many-statements
    def build(self):
        W = self.fetch_width
        NP = self.n_phys
        PW = max((NP - 1).bit_length(), 1)
        NR = self.rob_entries
        RW = max((NR - 1).bit_length(), 1)
        NIW = self.issue_slots
        NLSQ = self.lsq_entries
        LQW = max((NLSQ - 1).bit_length(), 1)

        # ---- ports ------------------------------------------------------
        imem_req_ready = self.input("imem_req_ready", 1)
        imem_resp_valid = self.input("imem_resp_valid", 1)
        imem_resp_data = self.input("imem_resp_data", 32 * W)
        if W == 2:
            imem_resp_nwords = self.input("imem_resp_nwords", 2)
        dmem_req_ready = self.input("dmem_req_ready", 1)
        dmem_resp_valid = self.input("dmem_resp_valid", 1)
        dmem_resp_data = self.input("dmem_resp_data", 32)

        # ---- rename / architectural state -------------------------------
        regfile = self.mem("regfile", NP, XLEN)
        map_spec = [self.reg(f"map_{i}", PW, init=i) for i in range(32)]
        map_cmt = [self.reg(f"cmap_{i}", PW, init=i) for i in range(32)]
        free_bits = [self.reg(f"free_{p}", 1, init=1 if p >= 32 else 0)
                     for p in range(NP)]
        cfree_bits = [self.reg(f"cfree_{p}", 1, init=1 if p >= 32 else 0)
                      for p in range(NP)]
        busy_bits = [self.reg(f"busy_{p}", 1) for p in range(NP)]

        cycle_ctr = self.reg("cycle_ctr", 64)
        cycle_ctr <<= cycle_ctr + 1
        instret = self.reg("instret", 64)

        # ---- functional units --------------------------------------------
        mul = self.instance(PipelinedMultiplier(), "fpu_mul")
        div = self.instance(IterativeDivider(), "div_unit")

        # ---- ROB ------------------------------------------------------------
        # payload: {is_store(1), wen(1), preg(PW), rd(5)}
        rob_payload = self.mem("rob_payload", NR, 5 + PW + 2)
        rob_valid = [self.reg(f"rob_v_{i}", 1) for i in range(NR)]
        rob_done = [self.reg(f"rob_d_{i}", 1) for i in range(NR)]
        rob_head = self.reg("rob_head", RW)
        rob_tail = self.reg("rob_tail", RW)
        rob_count = self.reg("rob_count", RW + 1)

        # oldest-wins mispredict record
        misp_valid = self.reg("misp_valid", 1)
        misp_rob = self.reg("misp_rob", RW)
        misp_target = self.reg("misp_target", XLEN)

        def rob_age(idx):
            return mod_sub(idx, rob_head, NR)

        # ---- issue window ------------------------------------------------------
        class Slot:
            pass

        slots = []
        for i in range(NIW):
            s = Slot()
            s.v = self.reg(f"iw{i}_v", 1)
            s.cls = self.reg(f"iw{i}_cls", 3)
            s.dst = self.reg(f"iw{i}_dst", PW)
            s.s1 = self.reg(f"iw{i}_s1", PW)
            s.r1 = self.reg(f"iw{i}_r1", 1)
            s.s2 = self.reg(f"iw{i}_s2", PW)
            s.r2 = self.reg(f"iw{i}_r2", 1)
            s.f3 = self.reg(f"iw{i}_f3", 3)
            s.alt = self.reg(f"iw{i}_alt", 1)
            s.imm = self.reg(f"iw{i}_imm", XLEN)
            s.pc = self.reg(f"iw{i}_pc", XLEN)
            s.rob = self.reg(f"iw{i}_rob", RW)
            s.pred = self.reg(f"iw{i}_pred", 1)
            s.op1_pc = self.reg(f"iw{i}_op1pc", 1)
            s.op1_zero = self.reg(f"iw{i}_op1z", 1)
            s.op2_imm = self.reg(f"iw{i}_op2imm", 1)
            s.link = self.reg(f"iw{i}_link", 1)
            s.wen = self.reg(f"iw{i}_wen", 1)
            slots.append(s)

        # ---- LSQ -------------------------------------------------------------------
        class LsqEntry:
            pass

        lsq = []
        for i in range(NLSQ):
            e = LsqEntry()
            e.v = self.reg(f"lsq{i}_v", 1)
            e.st = self.reg(f"lsq{i}_st", 1)
            e.f3 = self.reg(f"lsq{i}_f3", 3)
            e.sa = self.reg(f"lsq{i}_sa", PW)    # address operand preg
            e.sd = self.reg(f"lsq{i}_sd", PW)    # store data preg
            e.imm = self.reg(f"lsq{i}_imm", XLEN)
            e.rob = self.reg(f"lsq{i}_rob", RW)
            e.dst = self.reg(f"lsq{i}_dst", PW)
            e.wen = self.reg(f"lsq{i}_wen", 1)
            lsq.append(e)
        lsq_head = self.reg("lsq_head", LQW)
        lsq_tail = self.reg("lsq_tail", LQW)
        lsq_count = self.reg("lsq_count", LQW + 1)

        # dmem in-flight bookkeeping
        dmem_busy = self.reg("dmem_busy", 1)
        dmem_drop = self.reg("dmem_drop", 1)
        dmem_is_store = self.reg("dmem_is_store", 1)
        dmem_dst = self.reg("dmem_dst", PW)
        dmem_wen = self.reg("dmem_wen", 1)
        dmem_rob = self.reg("dmem_rob", RW)
        dmem_f3 = self.reg("dmem_f3", 3)
        dmem_alow = self.reg("dmem_alow", 2)

        # mul result carry pipeline (aligned with the retimed multiplier)
        mw_v = [self.reg(f"mw_v{i}", 1) for i in range(3)]
        mw_dst = [self.reg(f"mw_dst{i}", PW) for i in range(3)]
        mw_rob = [self.reg(f"mw_rob{i}", RW) for i in range(3)]
        # div in-flight
        div_lock = self.reg("div_lock", 1)
        div_dst = self.reg("div_dst", PW)
        div_rob = self.reg("div_rob", RW)

        # ---- execute stage registers (per issue port) --------------------------------
        ports = []
        for k in range(W):
            p = Slot()
            p.v = self.reg(f"ex{k}_v", 1)
            p.cls = self.reg(f"ex{k}_cls", 3)
            p.a = self.reg(f"ex{k}_a", XLEN)
            p.b = self.reg(f"ex{k}_b", XLEN)
            p.f3 = self.reg(f"ex{k}_f3", 3)
            p.alt = self.reg(f"ex{k}_alt", 1)
            p.imm = self.reg(f"ex{k}_imm", XLEN)
            p.pc = self.reg(f"ex{k}_pc", XLEN)
            p.dst = self.reg(f"ex{k}_dst", PW)
            p.rob = self.reg(f"ex{k}_rob", RW)
            p.pred = self.reg(f"ex{k}_pred", 1)
            p.op1_pc = self.reg(f"ex{k}_op1pc", 1)
            p.op1_zero = self.reg(f"ex{k}_op1z", 1)
            p.op2_imm = self.reg(f"ex{k}_op2imm", 1)
            p.link = self.reg(f"ex{k}_link", 1)
            p.wen = self.reg(f"ex{k}_wen", 1)
            ports.append(p)

        flush = self.wire("flush", 1, default=0)

        # =====================================================================
        # EXECUTE + WRITEBACK (computed first: buses feed everything else)
        # =====================================================================
        wb_buses = []   # (valid, preg, value) -> regfile/busy/window/rob
        spec_buses = []  # (valid, preg) issue-time wakeup, filled at issue

        csr_lo = cycle_ctr[31:0]

        def csr_value(addr):
            value = csr_lo
            value = mux(addr.eq(enc.CSR_CYCLEH), cycle_ctr[63:32], value)
            value = mux(addr.eq(enc.CSR_INSTRET), instret[31:0], value)
            value = mux(addr.eq(enc.CSR_INSTRETH), instret[63:32], value)
            return value

        exec_misp = []   # (valid, rob_idx, target)
        for k, p in enumerate(ports):
            op1 = mux(p.op1_pc, p.pc, mux(p.op1_zero, const(0, XLEN),
                                          p.a))
            op2 = mux(p.op2_imm, p.imm, p.b)
            alu_out = alu(p.f3, p.alt, op1, op2)
            link = (p.pc + 4).trunc(XLEN)
            result = mux(p.link, link,
                         mux(p.cls.eq(CLS_CSR),
                             csr_value(p.imm[11:0]), alu_out))
            is_branch = p.cls.eq(CLS_BRANCH)
            is_jalr = p.cls.eq(CLS_JALR)
            taken = branch_taken(p.f3, p.a, p.b)
            br_target = mux(taken, (p.pc + p.imm).trunc(XLEN), link)
            jalr_target = (p.a + p.imm).trunc(XLEN) \
                & const(0xFFFFFFFE, XLEN)
            mispredicted = (is_branch & taken.ne(p.pred)) \
                | (is_jalr & jalr_target.ne(link))
            target = mux(is_jalr, jalr_target, br_target)
            exec_misp.append((p.v & mispredicted, p.rob, target))

            wb_valid = p.v & p.wen & ~p.cls.eq(CLS_MUL) \
                & ~p.cls.eq(CLS_DIV)
            wb_buses.append((wb_valid, p.dst, result))

            # every non-mul/div op completes at execute
            done_now = p.v & ~p.cls.eq(CLS_MUL) & ~p.cls.eq(CLS_DIV)
            for i in range(NR):
                with self.when(done_now & p.rob.eq(i)):
                    rob_done[i] <<= 1

            # feed mul/div units from this port
            if k == 0:
                is_mul_e = p.v & p.cls.eq(CLS_MUL)
                is_div_e = p.v & p.cls.eq(CLS_DIV)
                mul.valid <<= is_mul_e
                mul.a <<= p.a
                mul.b <<= p.b
                mul.funct3 <<= p.f3[1:0]
                div.start <<= is_div_e
                div.a <<= p.a
                div.b <<= p.b
                div.funct3 <<= p.f3
                mw_v[0] <<= is_mul_e
                mw_dst[0] <<= p.dst
                mw_rob[0] <<= p.rob
                with self.when(is_div_e):
                    div_dst <<= p.dst
                    div_rob <<= p.rob
            else:
                pass  # mul/div are only selected onto port 0

        # mul pipeline advance + writeback
        mw_v[1] <<= mw_v[0]
        mw_dst[1] <<= mw_dst[0]
        mw_rob[1] <<= mw_rob[0]
        mw_v[2] <<= mw_v[1]
        mw_dst[2] <<= mw_dst[1]
        mw_rob[2] <<= mw_rob[1]
        mul_wb_v = mul["valid_out"] & mw_v[2]
        wb_buses.append((mul_wb_v, mw_dst[2], mul["result"]))
        for i in range(NR):
            with self.when(mul_wb_v & mw_rob[2].eq(i)):
                rob_done[i] <<= 1

        div_wb_v = div["done"] & div_lock
        wb_buses.append((div_wb_v, div_dst, div["result"]))
        with self.when(div_wb_v):
            div_lock <<= 0
        for i in range(NR):
            with self.when(div_wb_v & div_rob.eq(i)):
                rob_done[i] <<= 1

        # load writeback (dmem response)
        load_data = load_extend(dmem_f3, dmem_alow.pad(XLEN),
                                dmem_resp_data)
        load_wb_v = (dmem_resp_valid & dmem_busy & ~dmem_drop
                     & ~dmem_is_store & dmem_wen)
        wb_buses.append((load_wb_v, dmem_dst, load_data))
        resp_done = dmem_resp_valid & dmem_busy & ~dmem_drop
        for i in range(NR):
            with self.when(resp_done & dmem_rob.eq(i)):
                rob_done[i] <<= 1
        with self.when(dmem_resp_valid & dmem_busy):
            dmem_busy <<= 0
            dmem_drop <<= 0

        # apply writeback buses: regfile + busy table
        for valid, preg, value in wb_buses:
            with self.when(valid & preg.ne(0)):
                self.mem_write(regfile, preg, value)
            for pnum in range(NP):
                with self.when(valid & preg.eq(pnum)):
                    busy_bits[pnum] <<= 0

        # record the oldest mispredict; the comparison chains through all
        # of this cycle's resolutions (two ports may mispredict at once)
        cur_valid = misp_valid
        cur_rob = misp_rob
        cur_target = misp_target
        for valid, rob_idx, target in exec_misp:
            take = valid & (~cur_valid
                            | rob_age(rob_idx).ult(rob_age(cur_rob)))
            cur_rob = mux(take, rob_idx, cur_rob)
            cur_target = mux(take, target, cur_target)
            cur_valid = cur_valid | valid
        misp_valid <<= cur_valid
        misp_rob <<= cur_rob
        misp_target <<= cur_target

        # =====================================================================
        # ISSUE (select up to W ready ops; port 0 may take mul/div)
        # =====================================================================
        def slot_ready(s):
            fu_ok = const(1, 1)
            fu_ok = mux(s.cls.eq(CLS_DIV), ~div_lock, fu_ok)
            return s.v & s.r1 & s.r2 & fu_ok

        ready_flags = [slot_ready(s) for s in slots]
        iww = max(NIW.bit_length(), 1)
        if W == 1:
            (sel0, any0), = (priority_index(ready_flags, iww),)
            selections = [(sel0, any0)]
        else:
            alu_only = [r & ~s.cls.eq(CLS_MUL) & ~s.cls.eq(CLS_DIV)
                        for r, s in zip(ready_flags, slots)]
            (sel0, any0), _ = priority_two(ready_flags, iww)
            # port 1: first ALU-class ready slot that port 0 didn't take
            alu_minus0 = [r & ~(any0 & sel0.eq(i))
                          for i, r in enumerate(alu_only)]
            sel1, any1 = priority_index(alu_minus0, iww)
            selections = [(sel0, any0), (sel1, any1)]

        def field(sel, name):
            return vec_read([getattr(s, name) for s in slots], sel)

        for k, (sel, any_sel) in enumerate(selections):
            p = ports[k]
            issued = any_sel & ~flush
            p.v <<= issued
            for name in ("cls", "f3", "alt", "imm", "pc", "dst", "rob",
                         "pred", "op1_pc", "op1_zero", "op2_imm", "link",
                         "wen"):
                self.assign(getattr(p, name), field(sel, name))
            src1 = field(sel, "s1")
            src2 = field(sel, "s2")
            raw_a = regfile.read(src1)
            raw_b = regfile.read(src2)
            a_val, b_val = raw_a, raw_b
            for wv, wp, wval in wb_buses:
                a_val = mux(wv & wp.eq(src1), wval, a_val)
                b_val = mux(wv & wp.eq(src2), wval, b_val)
            a_val = mux(src1.eq(0), const(0, XLEN), a_val)
            b_val = mux(src2.eq(0), const(0, XLEN), b_val)
            p.a <<= a_val
            p.b <<= b_val
            # free the slot
            for i, s in enumerate(slots):
                with self.when(any_sel & sel.eq(i)):
                    s.v <<= 0
            # issue-time speculative wakeup for single-cycle producers
            cls_sel = field(sel, "cls")
            fast = ~cls_sel.eq(CLS_MUL) & ~cls_sel.eq(CLS_DIV)
            spec_buses.append((issued & fast & field(sel, "wen"),
                               field(sel, "dst")))
            if k == 0:
                with self.when(issued & cls_sel.eq(CLS_DIV)):
                    div_lock <<= 1

        # window wakeup: spec buses + slow writeback buses
        wakeup_buses = list(spec_buses) + [(v, t) for v, t, _ in wb_buses]
        for s in slots:
            for wv, wt in wakeup_buses:
                with self.when(s.v & wv & wt.eq(s.s1)):
                    s.r1 <<= 1
                with self.when(s.v & wv & wt.eq(s.s2)):
                    s.r2 <<= 1

        # =====================================================================
        # LSQ head execution
        # =====================================================================
        def lsq_field(name):
            return vec_read([getattr(e, name) for e in lsq], lsq_head)

        head_v = vec_read([e.v for e in lsq], lsq_head) \
            & lsq_count.ne(0)
        head_st = lsq_field("st")
        head_sa = lsq_field("sa")
        head_sd = lsq_field("sd")
        head_imm = lsq_field("imm")
        head_rob = lsq_field("rob")
        head_f3 = lsq_field("f3")
        head_dst = lsq_field("dst")
        head_wen = lsq_field("wen")

        busy_of_sa = vec_read(busy_bits, head_sa)
        busy_of_sd = vec_read(busy_bits, head_sd)
        addr_val = mux(head_sa.eq(0), const(0, XLEN),
                       regfile.read(head_sa))
        data_val = mux(head_sd.eq(0), const(0, XLEN),
                       regfile.read(head_sd))
        mem_addr = (addr_val + head_imm).trunc(XLEN)
        is_mmio = mem_addr[30]
        at_rob_head = head_rob.eq(rob_head)

        ops_ready = ~busy_of_sa & (~head_st | ~busy_of_sd)
        order_ok = mux(head_st | is_mmio, at_rob_head, const(1, 1))
        lsq_fire = (head_v & ops_ready & order_ok & ~dmem_busy
                    & dmem_req_ready & ~flush)

        self.output("dmem_req_valid", 1, lsq_fire)
        self.output("dmem_req_rw", 1, head_st)
        self.output("dmem_req_addr", XLEN, mem_addr)
        self.output("dmem_req_wdata", XLEN, data_val)
        self.output("dmem_req_funct3", 3, head_f3)

        with self.when(lsq_fire):
            dmem_busy <<= 1
            dmem_drop <<= 0
            dmem_is_store <<= head_st
            dmem_dst <<= head_dst
            dmem_wen <<= head_wen
            dmem_rob <<= head_rob
            dmem_f3 <<= head_f3
            dmem_alow <<= mem_addr[1:0]
            lsq_head <<= mod_inc(lsq_head, 1, NLSQ)
            vec_write(self, [e.v for e in lsq], lsq_head, 0)

        # =====================================================================
        # FETCH (group fetch with fetch-time prediction)
        # =====================================================================
        pc_f = self.reg("pc_f", XLEN, init=self.reset_pc)
        fetch_inflight = self.reg("fetch_inflight", 1)
        fetch_pc = self.reg("fetch_pc", XLEN)
        kill_fetch = self.reg("kill_fetch", 1)

        resp_ok = imem_resp_valid & fetch_inflight & ~kill_fetch
        with self.when(imem_resp_valid & fetch_inflight):
            fetch_inflight <<= 0
            with self.when(kill_fetch):
                kill_fetch <<= 0

        # predecode each fetched word
        slot_valid = []
        slot_pc = []
        slot_inst = []
        slot_pred = []
        next_seq = (fetch_pc + 4).trunc(XLEN)
        redirect_pred = const(0, 1)
        pred_target = const(0, XLEN)
        for k in range(W):
            inst_k = imem_resp_data[32 * k + 31:32 * k]
            pc_k = (fetch_pc + 4 * k).trunc(XLEN)
            opcode_k = inst_k[6:0]
            is_jal_k = opcode_k.eq(enc.OP_JAL)
            is_br_k = opcode_k.eq(enc.OP_BRANCH)
            pred_taken_k = is_br_k & inst_k[31]    # backward => taken
            has_word = const(1, 1) if W == 1 else \
                imem_resp_nwords.ugt(k)
            valid_k = resp_ok & has_word & ~redirect_pred
            slot_valid.append(valid_k)
            slot_pc.append(pc_k)
            slot_inst.append(inst_k)
            slot_pred.append(pred_taken_k)
            target_k = mux(is_jal_k, (pc_k + imm_j(inst_k)).trunc(XLEN),
                           (pc_k + imm_b(inst_k)).trunc(XLEN))
            take_k = valid_k & (is_jal_k | pred_taken_k)
            pred_target = mux(take_k & ~redirect_pred, target_k,
                              pred_target)
            redirect_pred = redirect_pred | take_k
            if k > 0:
                # sequential next PC advances only past fetched words
                next_seq = mux(has_word, (pc_k + 4).trunc(XLEN), next_seq)

        predecode_next = mux(redirect_pred, pred_target, next_seq)

        # group buffer (skid)
        gb_v = self.reg("gb_v", 1)
        gb_slot_v = [self.reg(f"gb{k}_v", 1) for k in range(W)]
        gb_pc = [self.reg(f"gb{k}_pc", XLEN) for k in range(W)]
        gb_inst = [self.reg(f"gb{k}_inst", 32) for k in range(W)]
        gb_pred = [self.reg(f"gb{k}_pred", 1) for k in range(W)]

        d_in_valid = gb_v | resp_ok
        dv = [mux(gb_v, gb_slot_v[k], slot_valid[k]) for k in range(W)]
        dpc = [mux(gb_v, gb_pc[k], slot_pc[k]) for k in range(W)]
        dinst = [mux(gb_v, gb_inst[k], slot_inst[k]) for k in range(W)]
        dpred = [mux(gb_v, gb_pred[k], slot_pred[k]) for k in range(W)]

        dispatch_fire = self.wire("dispatch_fire", 1, default=0)
        d_consume = d_in_valid & dispatch_fire

        with self.when(d_consume):
            gb_v <<= 0
        with self.elsewhen(resp_ok & ~gb_v):
            gb_v <<= 1
            for k in range(W):
                gb_slot_v[k] <<= slot_valid[k]
                gb_pc[k] <<= slot_pc[k]
                gb_inst[k] <<= slot_inst[k]
                gb_pred[k] <<= slot_pred[k]

        with self.when(resp_ok):
            pc_f <<= predecode_next

        buffer_free = d_consume | ~d_in_valid
        issue_fetch = (imem_req_ready & buffer_free
                       & (~fetch_inflight | imem_resp_valid) & ~flush)
        fetch_addr = mux(resp_ok, predecode_next, pc_f)
        self.output("imem_req_valid", 1, issue_fetch)
        self.output("imem_req_addr", XLEN, fetch_addr)
        with self.when(issue_fetch):
            fetch_inflight <<= 1
            fetch_pc <<= fetch_addr

        # =====================================================================
        # DECODE / RENAME / DISPATCH (atomic per group)
        # =====================================================================
        free_idx_pairs = priority_two(free_bits, PW)
        (np0, np0_ok), (np1, np1_ok) = free_idx_pairs

        iw_free = [~s.v for s in slots]
        (ws0, ws0_ok), (ws1, ws1_ok) = priority_two(iw_free, iww)

        group = []
        for k in range(W):
            inst = dinst[k]
            fields = decode_fields(inst)
            opcode = fields["opcode"]
            g = Slot()
            g.v = dv[k]
            g.pc = dpc[k]
            g.inst = inst
            g.pred = dpred[k]
            g.rd = fields["rd"]
            g.rs1 = fields["rs1"]
            g.rs2 = fields["rs2"]
            g.f3 = fields["funct3"]
            g.f7 = fields["funct7"]
            g.imm = select_immediate(inst, fields)
            g.is_load = opcode.eq(enc.OP_LOAD)
            g.is_store = opcode.eq(enc.OP_STORE)
            g.is_branch = opcode.eq(enc.OP_BRANCH)
            g.is_jal = opcode.eq(enc.OP_JAL)
            g.is_jalr = opcode.eq(enc.OP_JALR)
            g.is_lui = opcode.eq(enc.OP_LUI)
            g.is_auipc = opcode.eq(enc.OP_AUIPC)
            g.is_alui = opcode.eq(enc.OP_IMM)
            g.is_alur = opcode.eq(enc.OP_OP)
            is_muldiv = g.is_alur & g.f7.eq(1)
            g.is_mul = is_muldiv & ~g.f3[2]
            g.is_div = is_muldiv & g.f3[2]
            g.is_csr = opcode.eq(enc.OP_SYSTEM) & g.f3.eq(0b010)
            g.is_mem = g.is_load | g.is_store
            g.to_window = (g.is_branch | g.is_jal | g.is_jalr | g.is_lui
                           | g.is_auipc | g.is_alui | g.is_alur
                           | g.is_csr)
            g.is_nop = g.v & ~g.to_window & ~g.is_mem
            g.writes = ((g.is_load | g.is_jal | g.is_jalr | g.is_lui
                         | g.is_auipc | g.is_alui | g.is_alur | g.is_csr)
                        & g.rd.ne(0))
            g.uses_rs1 = (g.is_load | g.is_store | g.is_branch
                          | g.is_jalr | g.is_alui | g.is_alur)
            g.uses_rs2 = g.is_store | g.is_branch | g.is_alur
            group.append(g)

        # rename source lookups (slot 1 sees slot 0's destination)
        for k, g in enumerate(group):
            p_rs1 = mux(g.rs1.eq(0), const(0, PW),
                        vec_read(map_spec, g.rs1))
            p_rs2 = mux(g.rs2.eq(0), const(0, PW),
                        vec_read(map_spec, g.rs2))
            if k == 1:
                g0 = group[0]
                fwd = g0.v & g0.writes
                p_rs1 = mux(fwd & g0.rd.eq(g.rs1) & g.rs1.ne(0), np0,
                            p_rs1)
                p_rs2 = mux(fwd & g0.rd.eq(g.rs2) & g.rs2.ne(0), np0,
                            p_rs2)
            g.p_rs1 = mux(g.uses_rs1, p_rs1, const(0, PW))
            g.p_rs2 = mux(g.uses_rs2 & ~g.is_store, p_rs2, const(0, PW))
            g.p_store_data = mux(g.is_store, p_rs2, const(0, PW))
            g.new_preg = np0 if k == 0 else \
                mux(group[0].v & group[0].writes, np1, np0)

        # source readiness at dispatch (busy table + same-cycle buses)
        def ready_at_dispatch(preg, same_group_producer=None):
            ready = ~vec_read(busy_bits, preg)
            for wv, wt in wakeup_buses:
                ready = ready | (wv & wt.eq(preg))
            ready = ready & preg.ne(0) | preg.eq(0)
            if same_group_producer is not None:
                fwd, fwd_preg = same_group_producer
                ready = mux(fwd & fwd_preg.eq(preg), const(0, 1), ready)
            return ready

        # resource requirements
        n_preg = [g.v & g.writes for g in group]
        need_two_pregs = (n_preg[0] & n_preg[1]) if W == 2 \
            else const(0, 1)
        need_one_preg = n_preg[0] if W == 1 else (n_preg[0] | n_preg[1])
        preg_ok = (~need_one_preg | np0_ok) & (~need_two_pregs | np1_ok)

        n_window = [g.v & g.to_window for g in group]
        need_two_ws = (n_window[0] & n_window[1]) if W == 2 \
            else const(0, 1)
        need_one_ws = n_window[0] if W == 1 \
            else (n_window[0] | n_window[1])
        ws_ok = (~need_one_ws | ws0_ok) & (~need_two_ws | ws1_ok)

        group_size = dv[0].pad(2) if W == 1 else \
            (dv[0].pad(2) + dv[1].pad(2)).trunc(2)
        n_mem = (group[0].v & group[0].is_mem).pad(2) if W == 1 else \
            ((group[0].v & group[0].is_mem).pad(2)
             + (group[1].v & group[1].is_mem).pad(2)).trunc(2)

        rob_ok = (rob_count.pad(RW + 2) + group_size.pad(RW + 2)) \
            .ule(NR)
        lsq_ok = (lsq_count.pad(LQW + 2) + n_mem.pad(LQW + 2)).ule(NLSQ)

        dispatch_fire <<= (d_in_valid & preg_ok & ws_ok & rob_ok
                           & lsq_ok & ~flush)

        # per-slot dispatch
        lsq_alloc_count = const(0, 2)
        for k, g in enumerate(group):
            fire = dispatch_fire & g.v
            rob_idx = mod_inc(rob_tail, k, NR)
            payload = cat(g.is_store, g.writes, g.new_preg, g.rd)
            self.mem_write(rob_payload, rob_idx, payload, en=fire)
            for i in range(NR):
                with self.when(fire & rob_idx.eq(i)):
                    rob_valid[i] <<= 1
                    rob_done[i] <<= g.is_nop
            # rename state update
            with self.when(fire & g.writes):
                vec_write(self, map_spec, g.rd, g.new_preg)
                vec_write(self, busy_bits, g.new_preg, 1)
                vec_write(self, free_bits, g.new_preg, 0)
            # window allocation: slot 1 uses the second free window slot
            # if slot 0 also dispatched a window op, else the first
            if k == 0:
                ws = ws0
            else:
                ws = mux(group[0].v & group[0].to_window, ws1, ws0)
            wfire = fire & g.to_window
            same0 = None
            if k == 1:
                g0 = group[0]
                same0 = (dispatch_fire & g0.v & g0.writes, g0.new_preg)
            r1_init = ready_at_dispatch(g.p_rs1,
                                        same0 if k == 1 else None)
            r2_init = ready_at_dispatch(g.p_rs2,
                                        same0 if k == 1 else None)
            cls = const(CLS_ALU, 3)
            cls = mux(g.is_branch, const(CLS_BRANCH, 3), cls)
            cls = mux(g.is_jalr, const(CLS_JALR, 3), cls)
            cls = mux(g.is_mul, const(CLS_MUL, 3), cls)
            cls = mux(g.is_div, const(CLS_DIV, 3), cls)
            cls = mux(g.is_csr, const(CLS_CSR, 3), cls)
            for i, s in enumerate(slots):
                with self.when(wfire & ws.eq(i)):
                    s.v <<= 1
                    s.cls <<= cls
                    s.dst <<= mux(g.writes, g.new_preg, const(0, PW))
                    s.s1 <<= g.p_rs1
                    s.r1 <<= r1_init
                    s.s2 <<= g.p_rs2
                    s.r2 <<= r2_init
                    s.f3 <<= mux(g.is_alui | g.is_alur, g.f3,
                                 mux(g.is_branch, g.f3, const(0, 3)))
                    s.alt <<= ((g.is_alur & g.f7[5] & ~g.f7[0])
                               | (g.is_alui & g.f3.eq(0b101) & g.f7[5]))
                    s.imm <<= g.imm
                    s.pc <<= g.pc
                    s.rob <<= rob_idx
                    s.pred <<= g.pred
                    s.op1_pc <<= g.is_auipc
                    s.op1_zero <<= g.is_lui
                    s.op2_imm <<= ~(g.is_alur | g.is_branch)
                    s.link <<= g.is_jal | g.is_jalr
                    s.wen <<= g.writes
            # LSQ allocation
            lfire = fire & g.is_mem
            lidx = mod_inc(lsq_tail, lsq_alloc_count.resize(LQW), NLSQ)
            for i, e in enumerate(lsq):
                with self.when(lfire & lidx.eq(i)):
                    e.v <<= 1
                    e.st <<= g.is_store
                    e.f3 <<= g.f3
                    e.sa <<= g.p_rs1
                    e.sd <<= g.p_store_data
                    e.imm <<= g.imm
                    e.rob <<= rob_idx
                    e.dst <<= mux(g.writes, g.new_preg, const(0, PW))
                    e.wen <<= g.writes
            lsq_alloc_count = (lsq_alloc_count
                               + lfire.pad(2)).trunc(2)

        with self.when(dispatch_fire):
            rob_tail <<= mod_inc(rob_tail, group_size.resize(RW), NR)
            lsq_tail <<= mod_inc(lsq_tail, lsq_alloc_count.resize(LQW), NLSQ)

        # =====================================================================
        # COMMIT (up to W per cycle) + FLUSH
        # =====================================================================
        commit_fires = []
        commit_is_flush = []
        cmap_next = list(map_cmt)   # folded committed-map view
        freed = []                  # (fire, old_preg)
        taken_pregs = []            # (fire, new_preg)
        for k in range(W):
            idx = mod_inc(rob_head, k, NR)
            payload = rob_payload.read(idx)
            rd = payload[4:0]
            preg = payload[4 + PW:5]
            wen = payload[5 + PW]
            valid_k = vec_read(rob_valid, idx)
            done_k = vec_read(rob_done, idx)
            is_flush_k = misp_valid & misp_rob.eq(idx)
            prev_ok = const(1, 1) if k == 0 else commit_fires[k - 1]
            prev_not_flush = const(1, 1) if k == 0 else \
                ~commit_is_flush[k - 1]
            fire = valid_k & done_k & prev_ok & prev_not_flush
            commit_fires.append(fire)
            commit_is_flush.append(fire & is_flush_k)
            old_preg = vec_read(cmap_next, rd)
            do_rename = fire & wen
            freed.append((do_rename, old_preg))
            taken_pregs.append((do_rename, preg))
            cmap_next = [mux(do_rename & rd.eq(i), preg, cmap_next[i])
                         for i in range(32)]
            with self.when(do_rename):
                vec_write(self, map_cmt, rd, preg)
                vec_write(self, free_bits, old_preg, 1)
                vec_write(self, cfree_bits, old_preg, 1)
                vec_write(self, cfree_bits, preg, 0)
            for i in range(NR):
                with self.when(fire & idx.eq(i)):
                    rob_valid[i] <<= 0

        n_commit = commit_fires[0].pad(2) if W == 1 else \
            (commit_fires[0].pad(2) + commit_fires[1].pad(2)).trunc(2)
        with self.when(n_commit.ne(0)):
            rob_head <<= mod_inc(rob_head, n_commit.resize(RW), NR)
            instret <<= instret + n_commit.pad(64)
        rob_count <<= (rob_count + mux(dispatch_fire,
                                       group_size.pad(RW + 1),
                                       const(0, RW + 1))
                       - n_commit.pad(RW + 1)).trunc(RW + 1)
        lsq_count <<= (lsq_count
                       + mux(dispatch_fire, lsq_alloc_count.pad(LQW + 1),
                             const(0, LQW + 1))
                       - lsq_fire.pad(LQW + 1)).trunc(LQW + 1)

        any_flush = commit_is_flush[0] if W == 1 else \
            (commit_is_flush[0] | commit_is_flush[1])
        flush <<= any_flush

        # ---- flush recovery (assignments below win over everything above)
        with self.when(flush):
            for i in range(32):
                map_spec[i] <<= cmap_next[i]
            for p in range(NP):
                free_bits[p] <<= cfree_bits[p]
                busy_bits[p] <<= 0
            # re-apply this cycle's commit corrections to the free list
            for do_rename, old_preg in freed:
                vec_write(self, free_bits, old_preg, 1, en=do_rename)
            for do_rename, new_preg in taken_pregs:
                vec_write(self, free_bits, new_preg, 0, en=do_rename)
            for s in slots:
                s.v <<= 0
            for e in lsq:
                e.v <<= 0
            lsq_head <<= 0
            lsq_tail <<= 0
            lsq_count <<= 0
            for i in range(NR):
                rob_valid[i] <<= 0
                rob_done[i] <<= 0
            rob_head <<= 0
            rob_tail <<= 0
            rob_count <<= 0
            misp_valid <<= 0
            for k in range(3):
                mw_v[k] <<= 0
            div_lock <<= 0
            for p in ports:
                p.v <<= 0
            gb_v <<= 0
            pc_f <<= misp_target
            with self.when(fetch_inflight & ~imem_resp_valid):
                kill_fetch <<= 1
            with self.when(dmem_busy & ~dmem_resp_valid):
                dmem_drop <<= 1

        # ---- status -----------------------------------------------------------
        self.output("perf_instret", 32, instret[31:0])
        self.output("perf_cycles", 32, cycle_ctr[31:0])
        if self.debug:
            self.output("dbg_dispatch", 1, dispatch_fire)
            for k, g in enumerate(group):
                self.output(f"dbg_v{k}", 1, g.v)
                self.output(f"dbg_pc{k}", 32, g.pc)
                self.output(f"dbg_inst{k}", 32, g.inst)
                self.output(f"dbg_rd{k}", 5, g.rd)
                self.output(f"dbg_np{k}", PW, g.new_preg)
                self.output(f"dbg_writes{k}", 1, g.writes)
            self.output("dbg_flush", 1, flush)
            self.output("dbg_dmem_valid", 1, lsq_fire)
            self.output("dbg_dmem_rw", 1, head_st)
            self.output("dbg_dmem_addr", 32, mem_addr)
            self.output("dbg_dmem_wdata", 32, data_val)
