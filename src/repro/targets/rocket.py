"""Rocket-like 5-stage in-order RV32IM core.

Classic F/D/X/M/W pipeline: full bypassing into X, one-cycle load-use
interlock, branches resolved in X (predict not-taken, two-cycle taken
penalty), a 3-cycle retimed multiplier pipeline, and an iterative
divider.  Talks to the L1 caches through valid/ready request ports with
one-cycle hit responses (see :mod:`repro.targets.cache`).
"""

from __future__ import annotations

from ..hdl import Module, mux, cat, const
from ..isa import encoding as enc
from .common import (
    XLEN, alu, branch_taken, decode_fields, load_extend,
    select_immediate, PipelinedMultiplier, IterativeDivider,
)


class RocketCore(Module):
    """5-stage in-order core (see module docstring)."""

    def __init__(self, reset_pc=0, name=None):
        self.reset_pc = reset_pc
        super().__init__(name)

    def build(self):
        # ---- external ports -------------------------------------------------
        imem_req_ready = self.input("imem_req_ready", 1)
        imem_resp_valid = self.input("imem_resp_valid", 1)
        imem_resp_data = self.input("imem_resp_data", 32)
        dmem_req_ready = self.input("dmem_req_ready", 1)
        dmem_resp_valid = self.input("dmem_resp_valid", 1)
        dmem_resp_data = self.input("dmem_resp_data", 32)

        # ---- architectural state -------------------------------------------
        regfile = self.mem("regfile", 32, XLEN)
        cycle_ctr = self.reg("cycle_ctr", 64)
        cycle_ctr <<= cycle_ctr + 1
        instret = self.reg("instret", 64)

        # ---- functional units ------------------------------------------------
        mul = self.instance(PipelinedMultiplier(), "fpu_mul")
        div = self.instance(IterativeDivider(), "div_unit")

        # ---- pipeline registers ---------------------------------------------
        # D stage
        v_d = self.reg("v_d", 1)
        pc_d = self.reg("pc_d", XLEN)
        inst_d = self.reg("inst_d", 32)
        # X stage
        v_x = self.reg("v_x", 1)
        pc_x = self.reg("pc_x", XLEN)
        rd_x = self.reg("rd_x", 5)
        f3_x = self.reg("f3_x", 3)
        op1_x = self.reg("op1_x", XLEN)
        op2_x = self.reg("op2_x", XLEN)
        rs2val_x = self.reg("rs2val_x", XLEN)
        imm_x = self.reg("imm_x", XLEN)
        c_load_x = self.reg("c_load_x", 1)
        c_store_x = self.reg("c_store_x", 1)
        c_branch_x = self.reg("c_branch_x", 1)
        c_jal_x = self.reg("c_jal_x", 1)
        c_jalr_x = self.reg("c_jalr_x", 1)
        c_alu_alt_x = self.reg("c_alu_alt_x", 1)
        c_alu_f3_x = self.reg("c_alu_f3_x", 3)
        c_lui_x = self.reg("c_lui_x", 1)
        c_auipc_x = self.reg("c_auipc_x", 1)
        c_mul_x = self.reg("c_mul_x", 1)
        c_div_x = self.reg("c_div_x", 1)
        c_csr_x = self.reg("c_csr_x", 1)
        c_csr_addr_x = self.reg("c_csr_addr_x", 12)
        c_wen_x = self.reg("c_wen_x", 1)
        # M stage
        v_m = self.reg("v_m", 1)
        rd_m = self.reg("rd_m", 5)
        f3_m = self.reg("f3_m", 3)
        res_m = self.reg("res_m", XLEN)
        addr_m = self.reg("addr_m", 2)          # low address bits (loads)
        c_load_m = self.reg("c_load_m", 1)
        c_mem_m = self.reg("c_mem_m", 1)        # waiting on dmem resp
        c_wen_m = self.reg("c_wen_m", 1)
        # W stage
        v_w = self.reg("v_w", 1)
        rd_w = self.reg("rd_w", 5)
        res_w = self.reg("res_w", XLEN)
        c_wen_w = self.reg("c_wen_w", 1)

        # mul/div sequencing
        mul_wait = self.reg("mul_wait", 1)
        div_wait = self.reg("div_wait", 1)
        muldiv_res = self.reg("muldiv_res", XLEN)
        muldiv_done = self.reg("muldiv_done", 1)

        # ---- D-stage decode ----------------------------------------------------
        fields = decode_fields(inst_d)
        opcode = fields["opcode"]
        rs1_d = fields["rs1"]
        rs2_d = fields["rs2"]
        rd_d = fields["rd"]
        f3_d = fields["funct3"]
        f7_d = fields["funct7"]
        imm_d = select_immediate(inst_d, fields)

        is_load_d = opcode.eq(enc.OP_LOAD)
        is_store_d = opcode.eq(enc.OP_STORE)
        is_branch_d = opcode.eq(enc.OP_BRANCH)
        is_jal_d = opcode.eq(enc.OP_JAL)
        is_jalr_d = opcode.eq(enc.OP_JALR)
        is_lui_d = opcode.eq(enc.OP_LUI)
        is_auipc_d = opcode.eq(enc.OP_AUIPC)
        is_alui_d = opcode.eq(enc.OP_IMM)
        is_alur_d = opcode.eq(enc.OP_OP)
        is_muldiv_d = is_alur_d & f7_d.eq(1)
        is_mul_d = is_muldiv_d & ~f3_d[2]
        is_div_d = is_muldiv_d & f3_d[2]
        is_system_d = opcode.eq(enc.OP_SYSTEM)
        is_csr_d = is_system_d & f3_d.eq(0b010)

        uses_rs1_d = (is_load_d | is_store_d | is_branch_d | is_jalr_d
                      | is_alui_d | is_alur_d)
        uses_rs2_d = is_store_d | is_branch_d | is_alur_d
        writes_rd_d = ((is_load_d | is_jal_d | is_jalr_d | is_lui_d
                        | is_auipc_d | is_alui_d | is_alur_d | is_csr_d)
                       & rd_d.ne(0))

        # register read with full bypass (X > M > W priority)
        rf_rs1 = mux(rs1_d.eq(0), 0, regfile.read(rs1_d))
        rf_rs2 = mux(rs2_d.eq(0), 0, regfile.read(rs2_d))

        # X-stage combinational result (declared later; use wire)
        x_result = self.wire("x_result", XLEN)
        m_result = self.wire("m_result", XLEN)

        x_bypassable = v_x & c_wen_x & ~c_load_x & ~c_mul_x & ~c_div_x
        m_bypass_ok = v_m & c_wen_m

        def bypass(reg_num, raw):
            from_w = mux(v_w & c_wen_w & rd_w.eq(reg_num), res_w, raw)
            from_m = mux(m_bypass_ok & rd_m.eq(reg_num), m_result, from_w)
            return mux(x_bypassable & rd_x.eq(reg_num), x_result, from_m)

        rs1_val_d = bypass(rs1_d, rf_rs1)
        rs2_val_d = bypass(rs2_d, rf_rs2)

        # hazards that bypassing cannot cover: consumer in D of a value
        # not yet available in X (load still in X, mul/div in X)
        x_unbypassable = v_x & c_wen_x & (c_load_x | c_mul_x | c_div_x)
        raw_hazard = (x_unbypassable
                      & ((uses_rs1_d & rd_x.eq(rs1_d))
                         | (uses_rs2_d & rd_x.eq(rs2_d))))
        # loads in M mid-miss are covered by stall_m (m_result muxes the
        # response data, which is only consumed when M advances)

        # ---- X-stage execute -----------------------------------------------------
        alu_f3 = c_alu_f3_x
        alu_out = alu(alu_f3, c_alu_alt_x, op1_x, op2_x)
        taken = branch_taken(f3_x, op1_x, rs2val_x)
        branch_target = (pc_x + imm_x).trunc(XLEN)
        jalr_target = (op1_x + imm_x).trunc(XLEN) & const(0xFFFFFFFE,
                                                          XLEN)
        link = (pc_x + 4).trunc(XLEN)

        csr_addr = c_csr_addr_x
        csr_val = cycle_ctr[31:0]
        csr_val = mux(csr_addr.eq(enc.CSR_CYCLEH), cycle_ctr[63:32],
                      csr_val)
        csr_val = mux(csr_addr.eq(enc.CSR_INSTRET), instret[31:0],
                      csr_val)
        csr_val = mux(csr_addr.eq(enc.CSR_INSTRETH), instret[63:32],
                      csr_val)

        result = alu_out
        result = mux(c_lui_x, imm_x, result)
        result = mux(c_auipc_x, (pc_x + imm_x).trunc(XLEN), result)
        result = mux(c_jal_x | c_jalr_x, link, result)
        result = mux(c_csr_x, csr_val, result)
        result = mux((c_mul_x | c_div_x) & muldiv_done, muldiv_res,
                     result)
        x_result <<= result

        mem_addr = (op1_x + imm_x).trunc(XLEN)
        is_mem_x = (c_load_x | c_store_x) & v_x

        # mul/div unit driving
        mul_issue = v_x & c_mul_x & ~mul_wait & ~muldiv_done
        div_issue = v_x & c_div_x & ~div_wait & ~muldiv_done
        mul.valid <<= mul_issue
        mul.a <<= op1_x
        mul.b <<= op2_x
        mul.funct3 <<= f3_x[1:0]
        div.start <<= div_issue
        div.a <<= op1_x
        div.b <<= op2_x
        div.funct3 <<= f3_x

        with self.when(mul_issue):
            mul_wait <<= 1
        with self.when(mul["valid_out"]):
            mul_wait <<= 0
            muldiv_res <<= mul["result"]
            muldiv_done <<= 1
        with self.when(div_issue):
            div_wait <<= 1
        with self.when(div["done"]):
            div_wait <<= 0
            muldiv_res <<= div["result"]
            muldiv_done <<= 1

        # ---- stall / advance logic -------------------------------------------------
        stall_m = v_m & c_mem_m & ~dmem_resp_valid
        dmem_fire = is_mem_x & dmem_req_ready & ~stall_m
        muldiv_busy = v_x & ((c_mul_x & ~muldiv_done)
                             | (c_div_x & ~muldiv_done))
        stall_x = stall_m | (is_mem_x & ~dmem_fire) | muldiv_busy
        stall_d = stall_x | (raw_hazard & v_d)

        x_advance = v_x & ~stall_x
        with self.when(~stall_x):
            muldiv_done <<= 0

        # ---- dmem request -------------------------------------------------------------
        self.output("dmem_req_valid", 1, is_mem_x & ~stall_m
                    & dmem_req_ready)
        self.output("dmem_req_rw", 1, c_store_x)
        self.output("dmem_req_addr", XLEN, mem_addr)
        self.output("dmem_req_wdata", XLEN, rs2val_x)
        self.output("dmem_req_funct3", 3, f3_x)

        # ---- M stage --------------------------------------------------------------------
        load_data = load_extend(f3_m, addr_m.pad(XLEN), dmem_resp_data)
        m_result <<= mux(c_load_m, load_data, res_m)

        with self.when(~stall_m):
            v_m <<= x_advance
            rd_m <<= rd_x
            f3_m <<= f3_x
            res_m <<= x_result
            addr_m <<= mem_addr[1:0]
            c_load_m <<= c_load_x
            c_mem_m <<= is_mem_x
            c_wen_m <<= c_wen_x

        # ---- W stage ---------------------------------------------------------------------
        m_advance = v_m & ~stall_m
        v_w <<= m_advance
        rd_w <<= rd_m
        res_w <<= m_result
        c_wen_w <<= c_wen_m
        with self.when(v_w & c_wen_w & rd_w.ne(0)):
            self.mem_write(regfile, rd_w, res_w)
        with self.when(m_advance):
            instret <<= instret + 1

        # ---- control flow ------------------------------------------------------------------
        redirect = v_x & ~stall_x & ((c_branch_x & taken) | c_jal_x
                                     | c_jalr_x)
        redirect_pc = mux(c_jalr_x, jalr_target, branch_target)

        # ---- fetch ----------------------------------------------------------------------------
        pc_f = self.reg("pc_f", XLEN, init=self.reset_pc)
        fetch_inflight = self.reg("fetch_inflight", 1)
        fetch_pc = self.reg("fetch_pc", XLEN)
        kill_fetch = self.reg("kill_fetch", 1)
        dbuf_v = self.reg("dbuf_v", 1)
        dbuf_pc = self.reg("dbuf_pc", XLEN)
        dbuf_inst = self.reg("dbuf_inst", 32)

        resp_ok = imem_resp_valid & fetch_inflight & ~kill_fetch
        with self.when(imem_resp_valid & fetch_inflight):
            fetch_inflight <<= 0
            with self.when(kill_fetch):
                kill_fetch <<= 0

        # D input: buffered instruction first, else fresh response
        d_in_valid = dbuf_v | resp_ok
        d_in_pc = mux(dbuf_v, dbuf_pc, fetch_pc)
        d_in_inst = mux(dbuf_v, dbuf_inst, imem_resp_data)

        d_consume = d_in_valid & ~stall_d & ~redirect
        # Invariant: at most one instruction across {dbuf, in-flight}, so
        # a response never arrives while the buffer is full.
        with self.when(d_consume):
            dbuf_v <<= 0
        with self.elsewhen(resp_ok & ~dbuf_v):
            dbuf_v <<= 1
            dbuf_pc <<= fetch_pc
            dbuf_inst <<= imem_resp_data

        # issue a new fetch only when the buffer will be empty and no
        # other fetch is outstanding
        buffer_free = d_consume | ~d_in_valid
        can_issue = (imem_req_ready & buffer_free
                     & (~fetch_inflight | imem_resp_valid))
        issue = can_issue & ~redirect
        self.output("imem_req_valid", 1, issue)
        self.output("imem_req_addr", XLEN, mux(redirect, redirect_pc,
                                               pc_f))
        with self.when(issue):
            fetch_inflight <<= 1
            fetch_pc <<= pc_f
            pc_f <<= (pc_f + 4).trunc(XLEN)

        with self.when(redirect):
            pc_f <<= redirect_pc
            dbuf_v <<= 0
            with self.when(fetch_inflight & ~imem_resp_valid):
                kill_fetch <<= 1

        # ---- D -> X latch -------------------------------------------------------------------------
        with self.when(~stall_x):
            v_x <<= v_d & ~(raw_hazard & v_d) & ~redirect
            pc_x <<= pc_d
            rd_x <<= rd_d
            f3_x <<= f3_d
            op1_x <<= mux(is_auipc_d | is_jal_d, pc_d, rs1_val_d)
            op2_x <<= mux(is_alur_d | is_branch_d, rs2_val_d, imm_d)
            rs2val_x <<= rs2_val_d
            imm_x <<= imm_d
            c_load_x <<= is_load_d
            c_store_x <<= is_store_d
            c_branch_x <<= is_branch_d
            c_jal_x <<= is_jal_d
            c_jalr_x <<= is_jalr_d
            c_alu_alt_x <<= ((is_alur_d & f7_d[5])
                             | (is_alui_d & f3_d.eq(0b101) & f7_d[5]))
            c_alu_f3_x <<= mux(is_alui_d | is_alur_d, f3_d,
                               const(0, 3))
            c_lui_x <<= is_lui_d
            c_auipc_x <<= is_auipc_d
            c_mul_x <<= is_mul_d
            c_div_x <<= is_div_d
            c_csr_x <<= is_csr_d
            c_csr_addr_x <<= inst_d[31:20]
            c_wen_x <<= writes_rd_d

        # ---- F -> D latch ----------------------------------------------------------------------------
        with self.when(~stall_d):
            v_d <<= d_consume
            pc_d <<= d_in_pc
            inst_d <<= d_in_inst
        with self.when(redirect):
            v_d <<= 0
            with self.when(stall_x):
                v_x <<= 0  # unreachable (redirect implies ~stall_x)

        # ---- status outputs ----------------------------------------------------------------------------
        self.output("perf_instret", 32, instret[31:0])
        self.output("perf_cycles", 32, cycle_ctr[31:0])
