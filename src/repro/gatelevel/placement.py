"""Placement and wire-capacitance extraction (the IC Compiler analog).

Clusters cells by their RTL hierarchy (producing a floorplan in the
spirit of the paper's Figure 6), shelf-packs the clusters onto a die,
places cells row-major inside each cluster, and estimates per-net wire
capacitance from half-perimeter wirelength.  The resulting net caps feed
the power analysis, giving layout-aware switching energy as the paper's
"detailed timing from floorplanning, placement and routing" step does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..passes.base import Pass, PassResult
from .library import CELLS, SramSpec, TECH_45NM


@dataclass
class ClusterBox:
    name: str
    x: float
    y: float
    width: float
    height: float
    area: float


@dataclass
class Placement:
    die_width: float
    die_height: float
    clusters: list = field(default_factory=list)     # ClusterBox
    net_wire_cap_ff: np.ndarray = None               # per net id
    total_area_um2: float = 0.0

    # Placements travel with AsicFlow artifacts through the replay worker
    # pool and the on-disk cache; pack cluster boxes as tuples and keep
    # the (large) per-net cap vector as a single contiguous ndarray.
    def __getstate__(self):
        return {
            "v": 1,
            "die_width": self.die_width,
            "die_height": self.die_height,
            "clusters": [(b.name, b.x, b.y, b.width, b.height, b.area)
                         for b in self.clusters],
            "net_wire_cap_ff": self.net_wire_cap_ff,
            "total_area_um2": self.total_area_um2,
        }

    def __setstate__(self, state):
        self.die_width = state["die_width"]
        self.die_height = state["die_height"]
        self.clusters = [ClusterBox(*fields)
                         for fields in state["clusters"]]
        self.net_wire_cap_ff = state["net_wire_cap_ff"]
        self.total_area_um2 = state["total_area_um2"]

    def floorplan_text(self):
        """Render the floorplan as indented text (Figure 6 flavour)."""
        lines = [f"die {self.die_width:.0f} x {self.die_height:.0f} um"]
        for box in sorted(self.clusters, key=lambda b: -b.area):
            lines.append(
                f"  {box.name:<28s} @({box.x:7.1f},{box.y:7.1f}) "
                f"{box.width:6.1f} x {box.height:6.1f} um "
                f"({box.area:9.1f} um2)")
        return "\n".join(lines)


def _cluster_key(origin, depth=2):
    if not origin:
        return "(top)"
    parts = origin.split(".")
    return ".".join(parts[:depth])


def place(netlist, tech=TECH_45NM, cluster_depth=2, cluster_fn=None):
    """Place a netlist; returns a :class:`Placement` with per-net caps.

    ``cluster_fn`` maps a cell's origin path to a floorplan cluster name
    (defaults to the first two hierarchy levels); passing a functional
    grouping reproduces unit-level floorplans like the paper's Figure 6.
    """
    if cluster_fn is None:
        def cluster_fn(origin):
            return _cluster_key(origin, cluster_depth)
    # Gather cells (gates + dffs + srams) into clusters.
    cells = []  # (area, cluster, [pin nets])
    for gate in netlist.gates:
        spec = CELLS[gate.cell]
        cells.append((spec.area_um2, cluster_fn(gate.origin),
                      (gate.output,) + gate.inputs))
    for dff in netlist.dffs:
        spec = CELLS["DFF"]
        cells.append((spec.area_um2, cluster_fn(dff.origin),
                      (dff.q, dff.d)))
    for macro in netlist.srams:
        spec = SramSpec(macro.depth, macro.width)
        pins = []
        for addr, data in macro.read_ports:
            pins.extend(addr)
            pins.extend(data)
        for en, addr, data in macro.write_ports:
            pins.append(en)
            pins.extend(addr)
            pins.extend(data)
        cells.append((spec.area_um2,
                      cluster_fn(macro.origin) + "/sram",
                      tuple(pins)))

    clusters = {}
    for area, key, pins in cells:
        clusters.setdefault(key, []).append((area, pins))

    # Shelf-pack cluster bounding boxes onto the die.
    cluster_areas = {key: sum(a for a, _ in group) * 1.45  # row utilization
                     for key, group in clusters.items()}
    total_area = sum(cluster_areas.values())
    die_side = math.sqrt(total_area) * 1.1 if total_area else 1.0

    boxes = []
    x = y = 0.0
    shelf_height = 0.0
    for key in sorted(clusters, key=lambda k: -cluster_areas[k]):
        area = cluster_areas[key]
        side = math.sqrt(area)
        if x + side > die_side and x > 0:
            x = 0.0
            y += shelf_height
            shelf_height = 0.0
        boxes.append(ClusterBox(key, x, y, side, side, area))
        x += side
        shelf_height = max(shelf_height, side)
    die_height = max((b.y + b.height for b in boxes), default=1.0)

    # Place cells row-major within each cluster; accumulate pin positions.
    n_nets = netlist.n_nets
    min_x = np.full(n_nets, np.inf)
    max_x = np.full(n_nets, -np.inf)
    min_y = np.full(n_nets, np.inf)
    max_y = np.full(n_nets, -np.inf)
    pin_count = np.zeros(n_nets, dtype=np.int32)

    box_of = {b.name: b for b in boxes}
    for key, group in clusters.items():
        box = box_of[key]
        n = len(group)
        cols = max(int(math.sqrt(n)), 1)
        pitch_x = box.width / cols
        rows = (n + cols - 1) // cols
        pitch_y = box.height / max(rows, 1)
        for i, (_area, pins) in enumerate(group):
            px = box.x + (i % cols + 0.5) * pitch_x
            py = box.y + (i // cols + 0.5) * pitch_y
            for net in pins:
                if px < min_x[net]:
                    min_x[net] = px
                if px > max_x[net]:
                    max_x[net] = px
                if py < min_y[net]:
                    min_y[net] = py
                if py > max_y[net]:
                    max_y[net] = py
                pin_count[net] += 1

    # Primary I/O pads sit on the die's left edge.
    for nets in list(netlist.inputs.values()) + list(netlist.outputs.values()):
        for i, net in enumerate(nets):
            px, py = 0.0, min(i * 2.0, die_height)
            min_x[net] = min(min_x[net], px)
            max_x[net] = max(max_x[net], px)
            min_y[net] = min(min_y[net], py)
            max_y[net] = max(max_y[net], py)
            pin_count[net] += 1

    hpwl = np.where(pin_count >= 2,
                    (max_x - min_x) + (max_y - min_y), 0.0)
    hpwl = np.nan_to_num(hpwl, posinf=0.0, neginf=0.0)
    net_caps = hpwl * tech.wire_cap_ff_per_um

    return Placement(
        die_width=die_side,
        die_height=die_height,
        clusters=boxes,
        net_wire_cap_ff=net_caps,
        total_area_um2=total_area,
    )


class PlacementPass(Pass):
    """:func:`place` as a pipeline pass (thin wrapper).

    Consumes the ``netlist`` artifact a synthesis pass left in the
    context and deposits the ``placement``.  ``cluster_fn`` /
    ``cluster_depth`` are declared parameters (different floorplans
    must not share cached artifacts).
    """

    name = "placement"
    requires = ("netlist",)
    produces = ("placement",)

    def __init__(self, cluster_depth=2, cluster_fn=None):
        super().__init__(cluster_depth=cluster_depth,
                         cluster_fn=cluster_fn)
        self.cluster_depth = cluster_depth
        self.cluster_fn = cluster_fn

    def run(self, circuit, ctx):
        netlist = ctx["netlist"]
        placement = place(netlist, cluster_depth=self.cluster_depth,
                          cluster_fn=self.cluster_fn)
        return PassResult(
            artifacts={"placement": placement},
            stats={"clusters": len(placement.clusters),
                   "area_um2": placement.total_area_um2})
