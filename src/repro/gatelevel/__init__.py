"""Gate-level CAD substrate: synthesis, placement, simulation, power.

The stand-in for the commercial tool chain of Figure 5:
Design Compiler -> :mod:`synthesis`, IC Compiler -> :mod:`placement`,
VCS -> :mod:`gl_sim`, Formality -> :mod:`formal`,
PrimeTime PX -> :mod:`power`.
"""

from .library import CELLS, TECH_45NM, TechParams, SramSpec, CellSpec
from .netlist import GateNetlist, Gate, Dff, SramMacro, CONST0, CONST1
from .synthesis import (
    synthesize, SynthesisError, SynthesisHints, DffHint, RetimedHint,
    mangle, SynthesisPass,
)
from .placement import place, Placement, ClusterBox, PlacementPass
from .gl_sim import (
    GateLevelSimulator, BatchedGateLevelSimulator, GateSimError,
    StimulusMismatch, PackedStimulus, LevelizedSchedule, build_schedule,
    pack_lane_words, MAX_LANES, SCHEDULE_VERSION, STEP_PHASES,
)
from .glcodegen import (
    build_kernel, resolve_backend, resolve_overlap, kernel_cache_key,
    netlist_fingerprint, GLCodegenError, GLCodegenUnavailable,
    GLCODEGEN_VERSION,
)
from .formal import (
    match_netlist, verify_equivalence, NameMap, MatchPoint, MatchError,
    EquivalenceResult, FormalMatchPass,
)
from .power import analyze_power, PowerReport, default_grouping

__all__ = [
    "CELLS", "TECH_45NM", "TechParams", "SramSpec", "CellSpec",
    "GateNetlist", "Gate", "Dff", "SramMacro", "CONST0", "CONST1",
    "synthesize", "SynthesisError", "SynthesisHints", "DffHint",
    "RetimedHint", "mangle", "SynthesisPass",
    "place", "Placement", "ClusterBox", "PlacementPass",
    "GateLevelSimulator", "BatchedGateLevelSimulator", "GateSimError",
    "StimulusMismatch", "PackedStimulus",
    "LevelizedSchedule", "build_schedule", "pack_lane_words",
    "MAX_LANES", "SCHEDULE_VERSION", "STEP_PHASES",
    "build_kernel", "resolve_backend", "resolve_overlap",
    "kernel_cache_key",
    "netlist_fingerprint", "GLCodegenError", "GLCodegenUnavailable",
    "GLCODEGEN_VERSION",
    "match_netlist", "verify_equivalence", "NameMap", "MatchPoint",
    "MatchError", "EquivalenceResult", "FormalMatchPass",
    "analyze_power", "PowerReport", "default_grouping",
]
