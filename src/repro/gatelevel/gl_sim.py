"""Gate-level simulation with switching-activity collection (VCS analog).

Levelized zero-delay simulation over the synthesized netlist.  Gates are
grouped by (level, cell) and evaluated with vectorized numpy ops; per-net
toggle counts (the SAIF input to power analysis) and SRAM access counts
are collected as the simulation runs.

Supports net *forcing* (the Verilog ``force`` used to warm up retimed
datapaths during replay, Section IV-C3) and direct DFF state loading via
the VPI-style bulk loader interface (Section IV-C2).
"""

from __future__ import annotations

import numpy as np

from .netlist import CONST0, CONST1


class GateSimError(Exception):
    pass


class GateLevelSimulator:
    """Simulate a GateNetlist cycle by cycle, counting activity."""

    def __init__(self, netlist):
        self.netlist = netlist
        self._values = np.zeros(netlist.n_nets, dtype=np.uint8)
        self._values[CONST1] = 1
        self._prev = self._values.copy()
        self._levels = []          # list of level descriptors
        self._dff_d = np.zeros(max(len(netlist.dffs), 1), dtype=np.int64)
        self._dff_q = np.zeros(max(len(netlist.dffs), 1), dtype=np.int64)
        self._dff_init = np.zeros(max(len(netlist.dffs), 1), dtype=np.uint8)
        self._dff_index = {}
        self._forces = {}          # net -> value
        self._force_nets = None
        self._force_vals = None
        self.cycles = 0
        self.toggles = np.zeros(netlist.n_nets, dtype=np.int64)
        self.sram_reads = [0] * len(netlist.srams)
        self.sram_writes = [0] * len(netlist.srams)
        self._sram_data = [[0] * macro.depth for macro in netlist.srams]
        self._sram_last_addr = {}
        self._build_schedule()
        self.reset()

    # -- construction -----------------------------------------------------

    def _build_schedule(self):
        netlist = self.netlist
        level_of = np.zeros(netlist.n_nets, dtype=np.int32)

        producers = []
        for gate in netlist.gates:
            producers.append((gate.output, "gate", gate))
        for macro_idx, macro in enumerate(netlist.srams):
            for port_idx, (addr, data) in enumerate(macro.read_ports):
                key = min(data) if data else 0
                producers.append((key, "ram", (macro_idx, port_idx)))
        producers.sort(key=lambda item: item[0])

        schedule = {}  # level -> {"gates": {cell: [...]}, "rams": [...]}

        def at_level(level):
            return schedule.setdefault(level, {"gates": {}, "rams": []})

        for _, kind, payload in producers:
            if kind == "gate":
                gate = payload
                level = 1 + max((level_of[n] for n in gate.inputs),
                                default=0)
                level_of[gate.output] = level
                at_level(level)["gates"].setdefault(gate.cell, []).append(
                    gate)
            else:
                macro_idx, port_idx = payload
                macro = self.netlist.srams[macro_idx]
                addr, data = macro.read_ports[port_idx]
                level = 1 + max((level_of[n] for n in addr), default=0)
                for n in data:
                    level_of[n] = level
                at_level(level)["rams"].append((macro_idx, port_idx))

        self.depth = max(schedule) if schedule else 0
        self._levels = []
        for level in sorted(schedule):
            entry = schedule[level]
            groups = []
            for cell, gates in entry["gates"].items():
                outs = np.array([g.output for g in gates], dtype=np.int64)
                in0 = np.array([g.inputs[0] for g in gates], dtype=np.int64)
                in1 = (np.array([g.inputs[1] for g in gates],
                                dtype=np.int64)
                       if cell not in ("INV", "BUF") else None)
                in2 = (np.array([g.inputs[2] for g in gates],
                                dtype=np.int64)
                       if cell == "MUX2" else None)
                groups.append((cell, outs, in0, in1, in2))
            self._levels.append((groups, entry["rams"]))

        for i, dff in enumerate(self.netlist.dffs):
            self._dff_d[i] = dff.d
            self._dff_q[i] = dff.q
            self._dff_init[i] = dff.init
            self._dff_index[dff.name] = i

        # precompute read-port bit weights for address assembly
        self._ram_ports = []
        for macro_idx, macro in enumerate(self.netlist.srams):
            ports = []
            for addr, data in macro.read_ports:
                addr_arr = np.array(addr, dtype=np.int64)
                addr_w = np.array([1 << i for i in range(len(addr))],
                                  dtype=np.int64)
                data_arr = np.array(data, dtype=np.int64)
                ports.append((addr_arr, addr_w, data_arr))
            self._ram_ports.append(ports)

    # -- state ---------------------------------------------------------------

    def reset(self):
        """Registers to init values, memories preserved, counters kept."""
        if len(self.netlist.dffs):
            self._values[self._dff_q[:len(self.netlist.dffs)]] = \
                self._dff_init[:len(self.netlist.dffs)]

    def full_reset(self):
        """Return every net, force, memory, and read-port memo to the
        just-constructed state (activity counters aside).

        Replays call this so each snapshot starts from one canonical
        state regardless of what ran on this simulator before — the
        property that makes serial and worker-pool replays bit-identical
        (a fresh worker's simulator has no history to inherit).  Note
        retimed-datapath warm-up runs *before* snapshot SRAM loading, so
        memory contents at warm-up time are part of that canonical state.
        """
        self._values[:] = 0
        self._values[CONST1] = 1
        self._forces.clear()
        self._rebuild_force_arrays()
        self._sram_last_addr.clear()
        for data in self._sram_data:
            data[:] = [0] * len(data)
        self.reset()
        np.copyto(self._prev, self._values)

    def clear_activity(self):
        self.toggles[:] = 0
        self.cycles = 0
        self.sram_reads = [0] * len(self.netlist.srams)
        self.sram_writes = [0] * len(self.netlist.srams)
        self._prev = self._values.copy()

    def load_dff(self, name, value):
        """Direct state load (the VPI bulk-loader path)."""
        idx = self._dff_index.get(name)
        if idx is None:
            raise GateSimError(f"no DFF named {name!r}")
        self._values[self.netlist.dffs[idx].q] = value & 1

    def load_dffs(self, values):
        """Bulk load {name: bit}; returns number of commands executed."""
        for name, value in values.items():
            self.load_dff(name, value)
        return len(values)

    def load_sram(self, name, contents):
        for idx, macro in enumerate(self.netlist.srams):
            if macro.name == name:
                if len(contents) != macro.depth:
                    raise GateSimError(f"SRAM {name} depth mismatch")
                self._sram_data[idx][:] = contents
                return
        raise GateSimError(f"no SRAM named {name!r}")

    def read_sram(self, name, addr):
        for idx, macro in enumerate(self.netlist.srams):
            if macro.name == name:
                return self._sram_data[idx][addr]
        raise GateSimError(f"no SRAM named {name!r}")

    # -- forcing ----------------------------------------------------------------

    def force_label(self, label, value):
        """Force a preserved multi-bit net group to an integer value."""
        nets = self.netlist.preserved_nets.get(label)
        if nets is None:
            raise GateSimError(f"no preserved nets labelled {label!r}")
        for i, net in enumerate(nets):
            self._forces[net] = (value >> i) & 1
        self._rebuild_force_arrays()

    def release_all(self):
        self._forces.clear()
        self._rebuild_force_arrays()

    def _rebuild_force_arrays(self):
        if self._forces:
            self._force_nets = np.array(list(self._forces), dtype=np.int64)
            self._force_vals = np.array(
                [self._forces[n] for n in self._forces], dtype=np.uint8)
        else:
            self._force_nets = None
            self._force_vals = None

    # -- evaluation ----------------------------------------------------------------

    def poke(self, port, value):
        nets = self.netlist.inputs.get(port)
        if nets is None:
            raise GateSimError(f"no input port {port!r}")
        for i, net in enumerate(nets):
            self._values[net] = (value >> i) & 1

    def peek(self, port):
        nets = self.netlist.outputs.get(port)
        if nets is None:
            raise GateSimError(f"no output port {port!r}")
        value = 0
        for i, net in enumerate(nets):
            value |= int(self._values[net]) << i
        return value

    def peek_all(self):
        return {name: self.peek(name) for name in self.netlist.outputs}

    def peek_net(self, net):
        return int(self._values[net])

    def eval(self):
        """Settle combinational logic for the current inputs/state."""
        v = self._values
        if self._force_nets is not None:
            v[self._force_nets] = self._force_vals
        for groups, rams in self._levels:
            for cell, outs, in0, in1, in2 in groups:
                if cell == "INV":
                    v[outs] = v[in0] ^ 1
                elif cell == "BUF":
                    v[outs] = v[in0]
                elif cell == "AND2":
                    v[outs] = v[in0] & v[in1]
                elif cell == "OR2":
                    v[outs] = v[in0] | v[in1]
                elif cell == "XOR2":
                    v[outs] = v[in0] ^ v[in1]
                elif cell == "XNOR2":
                    v[outs] = (v[in0] ^ v[in1]) ^ 1
                elif cell == "NAND2":
                    v[outs] = (v[in0] & v[in1]) ^ 1
                elif cell == "NOR2":
                    v[outs] = (v[in0] | v[in1]) ^ 1
                elif cell == "MUX2":
                    sel = v[in0]
                    v[outs] = np.where(sel, v[in1], v[in2])
                else:
                    raise GateSimError(f"unknown cell {cell}")
            for macro_idx, port_idx in rams:
                addr_arr, addr_w, data_arr = \
                    self._ram_ports[macro_idx][port_idx]
                addr = int(v[addr_arr] @ addr_w)
                macro = self.netlist.srams[macro_idx]
                word = (self._sram_data[macro_idx][addr]
                        if addr < macro.depth else 0)
                v[data_arr] = (word >> np.arange(len(data_arr))) & 1
                key = (macro_idx, port_idx)
                if self._sram_last_addr.get(key) != addr:
                    self._sram_last_addr[key] = addr
                    self.sram_reads[macro_idx] += 1
            if self._force_nets is not None:
                v[self._force_nets] = self._force_vals

    def step(self, n=1):
        """Advance n clock cycles (eval, count activity, commit state)."""
        for _ in range(n):
            self.eval()
            self.toggles += self._values != self._prev
            np.copyto(self._prev, self._values)
            self._commit()
            self.cycles += 1

    def _commit(self):
        # SRAM writes sample their nets before DFF outputs change: a write
        # port's address/data may be a register output net directly.
        v = self._values
        for macro_idx, macro in enumerate(self.netlist.srams):
            data_store = self._sram_data[macro_idx]
            for en, addr_nets, data_nets in macro.write_ports:
                if not v[en]:
                    continue
                addr = 0
                for i, net in enumerate(addr_nets):
                    addr |= int(v[net]) << i
                if addr >= macro.depth:
                    continue
                word = 0
                for i, net in enumerate(data_nets):
                    word |= int(v[net]) << i
                data_store[addr] = word
                self.sram_writes[macro_idx] += 1
        n_dff = len(self.netlist.dffs)
        if n_dff:
            v[self._dff_q[:n_dff]] = v[self._dff_d[:n_dff]]

    # -- activity export -------------------------------------------------------------

    def activity(self):
        """Return a SAIF-style activity summary for power analysis."""
        return {
            "cycles": self.cycles,
            "toggles": self.toggles.copy(),
            "sram_reads": list(self.sram_reads),
            "sram_writes": list(self.sram_writes),
        }
