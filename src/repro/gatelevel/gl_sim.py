"""Gate-level simulation with switching-activity collection (VCS analog).

Levelized zero-delay simulation over the synthesized netlist.  Gates are
grouped by (level, cell) and evaluated with vectorized numpy ops; per-net
toggle counts (the SAIF input to power analysis) and SRAM access counts
are collected as the simulation runs.

Supports net *forcing* (the Verilog ``force`` used to warm up retimed
datapaths during replay, Section IV-C3) and direct DFF state loading via
the VPI-style bulk loader interface (Section IV-C2).

Two simulators share one levelized schedule (:class:`LevelizedSchedule`,
picklable so the artifact cache can persist it next to the ASIC flow):

* :class:`GateLevelSimulator` — the scalar simulator: one ``uint8`` value
  per net, one stimulus at a time.
* :class:`BatchedGateLevelSimulator` — the bit-parallel simulator: one
  ``uint64`` word per net with up to :data:`MAX_LANES` independent
  simulations packed into the bit *lanes*.  Logic cells are lane-oblivious
  bitwise ops, so one netlist evaluation advances every lane at once —
  the classic bit-parallel logic-simulation trick, applied here to
  snapshot replay.  State loads, forces, and SRAM ports are lane-masked;
  per-net x per-lane toggle counts are kept as bit-sliced vertical
  counters (one ``uint64`` plane per count bit, ripple-carry updated from
  the per-cycle XOR diff) so every lane still yields its own exact SAIF.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .netlist import CONST0, CONST1
from ..obs import get_tracer, get_registry


class GateSimError(Exception):
    pass


class StimulusMismatch(GateSimError):
    """A strict :meth:`BatchedGateLevelSimulator.run_cycles` check failed.

    Raised at the first failing (cycle, check, lane) in ascending lane
    order, with the simulator's combinational state settled for the
    failing cycle but activity not yet counted and state not yet
    committed — exactly where the interpreted per-cycle loop would have
    stopped, so callers can peek live values for diagnostics.
    """

    def __init__(self, cycle, name, lane):
        super().__init__(
            f"stimulus check {name!r} failed at cycle {cycle}, "
            f"lane {lane}")
        self.cycle = cycle
        self.name = name
        self.lane = lane


#: Snapshots per uint64 word in the batched simulator.
MAX_LANES = 64

#: Bump when LevelizedSchedule's layout changes (cache invalidation).
SCHEDULE_VERSION = 1

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_ONE = np.uint64(1)


@dataclass
class LevelizedSchedule:
    """Topologically levelized evaluation schedule for one netlist.

    Everything :meth:`build_schedule` derives from a
    :class:`~repro.gatelevel.netlist.GateNetlist` that is pure structure:
    level groups with per-cell index arrays, DFF index arrays, read-port
    address/data arrays, and the name->index tables.  It is picklable as
    a unit so the on-disk artifact cache can store it next to the
    ``AsicFlow`` — replay worker processes then skip re-levelizing the
    netlist at start-up (``build_seconds`` records what a hit saves).
    Simulators treat every array as read-only, so one schedule is safely
    shared by any number of simulators in one process.
    """

    version: int
    depth: int
    levels: list          # [(groups, rams)]; groups: (cell,outs,in0,in1,in2)
    dff_d: np.ndarray     # data-input net per DFF
    dff_q: np.ndarray     # output net per DFF
    dff_init: np.ndarray  # reset value bit per DFF
    dff_index: dict       # DFF name -> index
    ram_ports: list       # per macro: [(addr_arr, addr_weights, data_arr)]
    sram_index: dict      # macro name -> index
    build_seconds: float = 0.0


def build_schedule(netlist):
    """Levelize ``netlist`` into a reusable :class:`LevelizedSchedule`."""
    with get_tracer().span("glsim.levelize", cat="flow",
                           nets=netlist.n_nets,
                           gates=len(netlist.gates)) as span:
        schedule = _build_schedule(netlist)
        span.set(depth=schedule.depth)
    return schedule


def _build_schedule(netlist):
    t0 = time.perf_counter()
    level_of = np.zeros(netlist.n_nets, dtype=np.int32)

    producers = []
    for gate in netlist.gates:
        producers.append((gate.output, "gate", gate))
    for macro_idx, macro in enumerate(netlist.srams):
        for port_idx, (addr, data) in enumerate(macro.read_ports):
            key = min(data) if data else 0
            producers.append((key, "ram", (macro_idx, port_idx)))
    producers.sort(key=lambda item: item[0])

    schedule = {}  # level -> {"gates": {cell: [...]}, "rams": [...]}

    def at_level(level):
        return schedule.setdefault(level, {"gates": {}, "rams": []})

    for _, kind, payload in producers:
        if kind == "gate":
            gate = payload
            level = 1 + max((level_of[n] for n in gate.inputs),
                            default=0)
            level_of[gate.output] = level
            at_level(level)["gates"].setdefault(gate.cell, []).append(
                gate)
        else:
            macro_idx, port_idx = payload
            macro = netlist.srams[macro_idx]
            addr, data = macro.read_ports[port_idx]
            level = 1 + max((level_of[n] for n in addr), default=0)
            for n in data:
                level_of[n] = level
            at_level(level)["rams"].append((macro_idx, port_idx))

    depth = max(schedule) if schedule else 0
    levels = []
    for level in sorted(schedule):
        entry = schedule[level]
        groups = []
        for cell, gates in entry["gates"].items():
            outs = np.array([g.output for g in gates], dtype=np.int64)
            in0 = np.array([g.inputs[0] for g in gates], dtype=np.int64)
            in1 = (np.array([g.inputs[1] for g in gates],
                            dtype=np.int64)
                   if cell not in ("INV", "BUF") else None)
            in2 = (np.array([g.inputs[2] for g in gates],
                            dtype=np.int64)
                   if cell == "MUX2" else None)
            groups.append((cell, outs, in0, in1, in2))
        levels.append((groups, entry["rams"]))

    n_dff = max(len(netlist.dffs), 1)
    dff_d = np.zeros(n_dff, dtype=np.int64)
    dff_q = np.zeros(n_dff, dtype=np.int64)
    dff_init = np.zeros(n_dff, dtype=np.uint8)
    for i, dff in enumerate(netlist.dffs):
        dff_d[i] = dff.d
        dff_q[i] = dff.q
        dff_init[i] = dff.init
    # both simulators and the netlist itself share these name memos
    dff_index = netlist.dff_index()

    # precompute read-port bit weights for address assembly
    ram_ports = []
    for macro in netlist.srams:
        ports = []
        for addr, data in macro.read_ports:
            addr_arr = np.array(addr, dtype=np.int64)
            addr_w = np.array([1 << i for i in range(len(addr))],
                              dtype=np.int64)
            data_arr = np.array(data, dtype=np.int64)
            ports.append((addr_arr, addr_w, data_arr))
        ram_ports.append(ports)

    sram_index = netlist.sram_index()

    return LevelizedSchedule(
        version=SCHEDULE_VERSION, depth=depth, levels=levels,
        dff_d=dff_d, dff_q=dff_q, dff_init=dff_init, dff_index=dff_index,
        ram_ports=ram_ports, sram_index=sram_index,
        build_seconds=time.perf_counter() - t0)


def _check_schedule(schedule, netlist):
    if schedule is None:
        return build_schedule(netlist)
    if schedule.version != SCHEDULE_VERSION:
        raise GateSimError(
            f"levelized schedule version {schedule.version} does not match "
            f"this simulator (wants {SCHEDULE_VERSION})")
    return schedule


def pack_lane_words(values, nbits):
    """Pack per-lane integers into per-bit ``uint64`` lane words.

    ``values[lane]`` is an integer whose low ``nbits`` bits matter; the
    result is an array of ``nbits`` words where bit ``lane`` of word
    ``i`` equals bit ``i`` of ``values[lane]`` — the transpose between
    the scalar representation (one value per lane) and the bit-parallel
    one (one word per net).
    """
    lanes = len(values)
    if nbits <= 64:
        keep = (1 << nbits) - 1
        vals = np.array([v & keep for v in values], dtype=np.uint64)
        bit_ids = np.arange(nbits, dtype=np.uint64)
        lane_ids = np.arange(lanes, dtype=np.uint64)
        bits = (vals[:, None] >> bit_ids[None, :]) & _ONE
        return np.bitwise_or.reduce(bits << lane_ids[:, None], axis=0)
    words = []
    for i in range(nbits):
        word = 0
        for lane, value in enumerate(values):
            word |= ((value >> i) & 1) << lane
        words.append(word)
    return np.array(words, dtype=np.uint64)


#: Hot-loop phase names, in execution order, for ``glstep.*`` counters.
STEP_PHASES = ("stimulus", "eval", "check", "toggle", "sram", "commit")


def _note_step_phases(seconds, cycles):
    """Flush one run_cycles call's per-phase timings to the registry."""
    registry = get_registry()
    for name, spent in zip(STEP_PHASES, seconds):
        if spent > 0.0:
            registry.counter(f"glstep.{name}_seconds").inc(float(spent))
    registry.counter("glstep.cycles").inc(int(cycles))
    registry.counter("glstep.calls").inc()


class PackedStimulus:
    """A whole replay trace precompiled into per-cycle schedules.

    One instance describes everything :meth:`~BatchedGateLevelSimulator
    .run_cycles` must do for ``n_cycles`` consecutive cycles:

    * **pokes** — masked input scatters applied before eval, as
      ``(nets, lane_mask, words)`` triples (see
      :meth:`~BatchedGateLevelSimulator.poke_packed`);
    * **checks** — expected-output comparisons evaluated right after
      eval, as ``(name, nets, lane_mask, words)``; mismatching lanes are
      counted (or raise :class:`StimulusMismatch` in strict mode);
    * **forces** — optional per-cycle force segments ``(nets, masks,
      vals)`` replacing the simulator's ambient forces for that cycle
      (``None`` for a cycle means *no* forces that cycle).  When no
      segment was ever set the stimulus leaves ambient forces alone.

    :meth:`flat` lazily flattens everything into contiguous numpy arrays
    shaped for the generated C kernel's ``gl_run`` ABI, so a batch pays
    the packing cost once no matter how many times it replays (journal
    resume, adaptive tightening, retries).
    """

    def __init__(self, n_cycles):
        self.n_cycles = n_cycles
        self.pokes = [[] for _ in range(n_cycles)]
        self.checks = [[] for _ in range(n_cycles)]
        self.forces = None
        self.check_meta = []   # (cycle, name) per flat check op
        self._flat = None

    def add_poke(self, t, nets, lane_mask, words):
        self.pokes[t].append((nets, np.uint64(lane_mask), words))
        self._flat = None

    def add_check(self, t, name, nets, lane_mask, words):
        self.checks[t].append((name, nets, np.uint64(lane_mask), words))
        self._flat = None

    def set_forces(self, t, nets, masks, vals):
        """Install a force segment for cycle ``t`` (arrays, pre-masked)."""
        if self.forces is None:
            self.forces = [None] * self.n_cycles
        self.forces[t] = (nets, masks, vals)
        self._flat = None

    def flat(self):
        """Contiguous arrays for the native kernel (built once, cached).

        Returns a dict with per-cycle op counts, per-op masks/offsets/
        lengths, and flat net/word arrays for pokes and checks, plus
        per-cycle force segments (``force_counts`` is ``None`` when the
        stimulus never forces, meaning ambient forces stay in effect).
        Also populates :attr:`check_meta` in flat-op order.
        """
        if self._flat is not None:
            return self._flat
        flat = {}
        self.check_meta = []
        for kind, sched in (("poke", self.pokes), ("check", self.checks)):
            counts = np.zeros(self.n_cycles, dtype=np.int64)
            masks, offs, cnts = [], [], []
            net_parts, word_parts = [], []
            cursor = 0
            for t, ops in enumerate(sched):
                counts[t] = len(ops)
                for op in ops:
                    if kind == "check":
                        name, nets, mask, words = op
                        self.check_meta.append((t, name))
                    else:
                        nets, mask, words = op
                    masks.append(int(mask))
                    offs.append(cursor)
                    cnts.append(len(nets))
                    net_parts.append(np.asarray(nets, dtype=np.int64))
                    word_parts.append(np.asarray(words, dtype=np.uint64))
                    cursor += len(nets)
            flat[f"{kind}_counts"] = counts
            flat[f"{kind}_masks"] = np.array(masks, dtype=np.uint64)
            flat[f"{kind}_off"] = np.array(offs, dtype=np.int64)
            flat[f"{kind}_cnt"] = np.array(cnts, dtype=np.int64)
            flat[f"{kind}_nets"] = (
                np.concatenate(net_parts) if net_parts
                else np.zeros(0, dtype=np.int64))
            flat[f"{kind}_words"] = (
                np.concatenate(word_parts) if word_parts
                else np.zeros(0, dtype=np.uint64))
        if self.forces is None:
            flat["force_counts"] = None
        else:
            counts = np.zeros(self.n_cycles, dtype=np.int64)
            offs = np.zeros(self.n_cycles, dtype=np.int64)
            net_parts, mask_parts, val_parts = [], [], []
            cursor = 0
            for t, seg in enumerate(self.forces):
                offs[t] = cursor
                if seg is None:
                    continue
                nets, masks_a, vals = seg
                counts[t] = len(nets)
                net_parts.append(np.asarray(nets, dtype=np.int64))
                mask_parts.append(np.asarray(masks_a, dtype=np.uint64))
                val_parts.append(np.asarray(vals, dtype=np.uint64))
                cursor += len(nets)
            flat["force_counts"] = counts
            flat["force_off"] = offs
            flat["force_nets"] = (
                np.concatenate(net_parts) if net_parts
                else np.zeros(0, dtype=np.int64))
            flat["force_masks"] = (
                np.concatenate(mask_parts) if mask_parts
                else np.zeros(0, dtype=np.uint64))
            flat["force_vals"] = (
                np.concatenate(val_parts) if val_parts
                else np.zeros(0, dtype=np.uint64))
        self._flat = flat
        return flat


class GateLevelSimulator:
    """Simulate a GateNetlist cycle by cycle, counting activity."""

    def __init__(self, netlist, schedule=None):
        self.netlist = netlist
        self.schedule = _check_schedule(schedule, netlist)
        self._values = np.zeros(netlist.n_nets, dtype=np.uint8)
        self._values[CONST1] = 1
        self._prev = self._values.copy()
        self.depth = self.schedule.depth
        self._levels = self.schedule.levels
        self._dff_d = self.schedule.dff_d
        self._dff_q = self.schedule.dff_q
        self._dff_init = self.schedule.dff_init
        self._dff_index = self.schedule.dff_index
        self._ram_ports = self.schedule.ram_ports
        self._sram_index = self.schedule.sram_index
        self._forces = {}          # net -> value
        self._force_nets = None
        self._force_vals = None
        self.cycles = 0
        self.toggles = np.zeros(netlist.n_nets, dtype=np.int64)
        self.sram_reads = [0] * len(netlist.srams)
        self.sram_writes = [0] * len(netlist.srams)
        self._sram_data = [[0] * macro.depth for macro in netlist.srams]
        self._sram_last_addr = {}
        self.reset()
        get_registry().counter("glsim.scalar_sims").inc()

    # -- state ---------------------------------------------------------------

    def reset(self):
        """Registers to init values, memories preserved, counters kept."""
        if len(self.netlist.dffs):
            self._values[self._dff_q[:len(self.netlist.dffs)]] = \
                self._dff_init[:len(self.netlist.dffs)]

    def full_reset(self):
        """Return every net, force, memory, and read-port memo to the
        just-constructed state (activity counters aside).

        Replays call this so each snapshot starts from one canonical
        state regardless of what ran on this simulator before — the
        property that makes serial and worker-pool replays bit-identical
        (a fresh worker's simulator has no history to inherit).  Note
        retimed-datapath warm-up runs *before* snapshot SRAM loading, so
        memory contents at warm-up time are part of that canonical state.
        """
        self._values[:] = 0
        self._values[CONST1] = 1
        self._forces.clear()
        self._rebuild_force_arrays()
        self._sram_last_addr.clear()
        for data in self._sram_data:
            data[:] = [0] * len(data)
        self.reset()
        np.copyto(self._prev, self._values)

    def clear_activity(self):
        self.toggles[:] = 0
        self.cycles = 0
        self.sram_reads = [0] * len(self.netlist.srams)
        self.sram_writes = [0] * len(self.netlist.srams)
        self._prev = self._values.copy()

    def load_dff(self, name, value):
        """Direct state load (the VPI bulk-loader path)."""
        idx = self._dff_index.get(name)
        if idx is None:
            raise GateSimError(f"no DFF named {name!r}")
        self._values[self.netlist.dffs[idx].q] = value & 1

    def load_dffs(self, values):
        """Bulk load {name: bit}; returns number of commands executed."""
        for name, value in values.items():
            self.load_dff(name, value)
        return len(values)

    def load_sram(self, name, contents):
        idx = self._sram_index.get(name)
        if idx is None:
            raise GateSimError(f"no SRAM named {name!r}")
        if len(contents) != self.netlist.srams[idx].depth:
            raise GateSimError(f"SRAM {name} depth mismatch")
        self._sram_data[idx][:] = contents

    def read_sram(self, name, addr):
        idx = self._sram_index.get(name)
        if idx is None:
            raise GateSimError(f"no SRAM named {name!r}")
        return self._sram_data[idx][addr]

    # -- forcing ----------------------------------------------------------------

    def force_label(self, label, value):
        """Force a preserved multi-bit net group to an integer value."""
        nets = self.netlist.preserved_nets.get(label)
        if nets is None:
            raise GateSimError(f"no preserved nets labelled {label!r}")
        for i, net in enumerate(nets):
            self._forces[net] = (value >> i) & 1
        self._rebuild_force_arrays()

    def release_all(self):
        self._forces.clear()
        self._rebuild_force_arrays()

    def _rebuild_force_arrays(self):
        if self._forces:
            self._force_nets = np.array(list(self._forces), dtype=np.int64)
            self._force_vals = np.array(
                [self._forces[n] for n in self._forces], dtype=np.uint8)
        else:
            self._force_nets = None
            self._force_vals = None

    # -- evaluation ----------------------------------------------------------------

    def poke(self, port, value):
        nets = self.netlist.inputs.get(port)
        if nets is None:
            raise GateSimError(f"no input port {port!r}")
        for i, net in enumerate(nets):
            self._values[net] = (value >> i) & 1

    def peek(self, port):
        nets = self.netlist.outputs.get(port)
        if nets is None:
            raise GateSimError(f"no output port {port!r}")
        value = 0
        for i, net in enumerate(nets):
            value |= int(self._values[net]) << i
        return value

    def peek_all(self):
        return {name: self.peek(name) for name in self.netlist.outputs}

    def peek_net(self, net):
        return int(self._values[net])

    def eval(self):
        """Settle combinational logic for the current inputs/state."""
        v = self._values
        if self._force_nets is not None:
            v[self._force_nets] = self._force_vals
        for groups, rams in self._levels:
            for cell, outs, in0, in1, in2 in groups:
                if cell == "INV":
                    v[outs] = v[in0] ^ 1
                elif cell == "BUF":
                    v[outs] = v[in0]
                elif cell == "AND2":
                    v[outs] = v[in0] & v[in1]
                elif cell == "OR2":
                    v[outs] = v[in0] | v[in1]
                elif cell == "XOR2":
                    v[outs] = v[in0] ^ v[in1]
                elif cell == "XNOR2":
                    v[outs] = (v[in0] ^ v[in1]) ^ 1
                elif cell == "NAND2":
                    v[outs] = (v[in0] & v[in1]) ^ 1
                elif cell == "NOR2":
                    v[outs] = (v[in0] | v[in1]) ^ 1
                elif cell == "MUX2":
                    sel = v[in0]
                    v[outs] = np.where(sel, v[in1], v[in2])
                else:
                    raise GateSimError(f"unknown cell {cell}")
            for macro_idx, port_idx in rams:
                addr_arr, addr_w, data_arr = \
                    self._ram_ports[macro_idx][port_idx]
                addr = int(v[addr_arr] @ addr_w)
                macro = self.netlist.srams[macro_idx]
                word = (self._sram_data[macro_idx][addr]
                        if addr < macro.depth else 0)
                v[data_arr] = (word >> np.arange(len(data_arr))) & 1
                key = (macro_idx, port_idx)
                if self._sram_last_addr.get(key) != addr:
                    self._sram_last_addr[key] = addr
                    self.sram_reads[macro_idx] += 1
            if self._force_nets is not None:
                v[self._force_nets] = self._force_vals

    def step(self, n=1):
        """Advance n clock cycles (eval, count activity, commit state)."""
        for _ in range(n):
            self.eval()
            self.toggles += self._values != self._prev
            np.copyto(self._prev, self._values)
            self._commit()
            self.cycles += 1

    def _commit(self):
        # SRAM writes sample their nets before DFF outputs change: a write
        # port's address/data may be a register output net directly.
        v = self._values
        for macro_idx, macro in enumerate(self.netlist.srams):
            data_store = self._sram_data[macro_idx]
            for en, addr_nets, data_nets in macro.write_ports:
                if not v[en]:
                    continue
                addr = 0
                for i, net in enumerate(addr_nets):
                    addr |= int(v[net]) << i
                if addr >= macro.depth:
                    continue
                word = 0
                for i, net in enumerate(data_nets):
                    word |= int(v[net]) << i
                data_store[addr] = word
                self.sram_writes[macro_idx] += 1
        n_dff = len(self.netlist.dffs)
        if n_dff:
            v[self._dff_q[:n_dff]] = v[self._dff_d[:n_dff]]

    # -- activity export -------------------------------------------------------------

    def activity(self):
        """Return a SAIF-style activity summary for power analysis."""
        return {
            "cycles": self.cycles,
            "toggles": self.toggles.copy(),
            "sram_reads": list(self.sram_reads),
            "sram_writes": list(self.sram_writes),
        }


class BatchedGateLevelSimulator:
    """Bit-parallel gate-level simulation: one snapshot per bit lane.

    Net values are ``uint64`` words whose bit *lanes* are up to 64
    independent simulations of the same netlist.  A logic cell is a
    lane-oblivious bitwise op (``AND2`` is one ``&`` across all lanes),
    so a single levelized evaluation advances every lane at once —
    per-gate evaluation overhead is amortized across the whole batch.

    Lane semantics match :class:`GateLevelSimulator` exactly, per lane:

    * DFF loads, input pokes, and net forces are lane-masked read-modify-
      write operations (``lane=None`` broadcasts to every lane);
    * SRAM macros hold per-lane contents; read/write ports loop per lane
      (addresses diverge between lanes) with per-lane access counters and
      per-(port, lane) read-address memos;
    * per-net toggle counts are kept per lane as bit-sliced *vertical
      counters*: plane ``i`` holds bit ``i`` of every lane's count, and
      each cycle's ``prev ^ cur`` diff word is ripple-carry added into
      the planes.  :meth:`activity` extracts any lane's exact SAIF.

    ``backend`` selects the evaluation strategy: ``"interp"`` (this
    class's numpy loop), ``"compiled"`` / ``"c"`` / ``"auto"`` (a
    generated straight-line kernel from
    :mod:`~repro.gatelevel.glcodegen`, bit-identical by construction).
    A pre-built ``kernel`` can be passed instead so one kernel serves
    many simulators (kernels are lane-oblivious).  Forced nets are
    applied between levels, which straight-line code cannot do, so
    evaluations with active forces transparently use the interpreted
    path; :attr:`backend` reports the effective backend after fallback.
    """

    def __init__(self, netlist, lanes=MAX_LANES, schedule=None,
                 backend="interp", kernel=None):
        if not 1 <= lanes <= MAX_LANES:
            raise GateSimError(
                f"lanes must be in 1..{MAX_LANES}, got {lanes}")
        self.netlist = netlist
        self.lanes = lanes
        self.active_mask = (_ALL_ONES if lanes == MAX_LANES
                            else np.uint64((1 << lanes) - 1))
        self._lane_ids = np.arange(lanes, dtype=np.uint64)
        self.schedule = _check_schedule(schedule, netlist)
        self.depth = self.schedule.depth
        self._levels = self.schedule.levels
        self._dff_d = self.schedule.dff_d
        self._dff_q = self.schedule.dff_q
        self._dff_index = self.schedule.dff_index
        self._ram_ports = self.schedule.ram_ports
        self._sram_index = self.schedule.sram_index
        n_dff = len(netlist.dffs)
        self._dff_init_words = np.where(
            self.schedule.dff_init[:max(n_dff, 1)].astype(bool),
            _ALL_ONES, np.uint64(0))
        self._values = np.zeros(netlist.n_nets, dtype=np.uint64)
        self._values[CONST1] = _ALL_ONES
        self._prev = self._values.copy()
        self._forces = {}          # net -> [lane_mask, packed_bits]
        self._force_nets = None
        self._force_masks = None
        self._force_vals = None
        self.cycles = 0
        # Vertical toggle counters live in one preallocated C-visible
        # arena: row p is counter-bit plane p across every net (LSB
        # first).  ``_plane_count`` tracks how many rows are in use;
        # ``_plane_count_buf`` is its int64 mirror the native kernel
        # updates in place.
        self._toggle_arena = np.zeros((4, netlist.n_nets),
                                      dtype=np.uint64)
        self._plane_count = 0
        self._plane_count_buf = np.zeros(1, dtype=np.int64)
        n_srams = len(netlist.srams)
        self.sram_reads = np.zeros((n_srams, lanes), dtype=np.int64)
        self.sram_writes = np.zeros((n_srams, lanes), dtype=np.int64)
        # Word-sized macros use a (lanes, depth) uint64 store so read
        # ports gather all lanes in one fancy index; wider macros fall
        # back to per-lane Python lists (arbitrary-precision ints).
        self._sram_data = [
            np.zeros((lanes, macro.depth), dtype=np.uint64)
            if macro.width <= 64
            else [[0] * macro.depth for _ in range(lanes)]
            for macro in netlist.srams]
        self._lane_rows = np.arange(lanes)
        # per-(macro, port) last-read-address memo, -1 = never read;
        # preallocated int64 arrays so generated C kernels can update
        # the memo (and sram_reads) in place through raw pointers
        self._last_addrs = [
            [np.full(lanes, -1, dtype=np.int64) for _ in macro.read_ports]
            for macro in netlist.srams]
        # per write port: (en, addr_arr, addr_w, data_arr, data_w) with
        # None weights when the port is too wide for packed assembly
        self._write_ports = []
        for macro in netlist.srams:
            ports = []
            for en, addr_nets, data_nets in macro.write_ports:
                addr_arr = np.array(addr_nets, dtype=np.int64)
                data_arr = np.array(data_nets, dtype=np.int64)
                addr_w = (np.array([1 << i for i in range(len(addr_nets))],
                                   dtype=np.int64)
                          if len(addr_nets) < 63 else None)
                data_w = (np.array([1 << i for i in range(len(data_nets))],
                                   dtype=np.uint64)
                          if len(data_nets) <= 64 else None)
                ports.append((en, addr_arr, addr_w, data_arr, data_w))
            self._write_ports.append(ports)
        if kernel is None and backend != "interp":
            from .glcodegen import build_kernel
            kernel = build_kernel(netlist, self.schedule, backend)
        self._kernel = kernel
        self.backend = kernel.backend if kernel is not None else "interp"
        if kernel is not None:
            kernel.install(self)
        self.reset()
        get_registry().counter("glsim.batched_sims").inc()
        get_tracer().instant("glsim.batched_build", cat="flow",
                             lanes=lanes, nets=netlist.n_nets,
                             backend=self.backend)

    def _check_lane(self, lane):
        if not 0 <= lane < self.lanes:
            raise GateSimError(
                f"lane {lane} out of range (simulator has {self.lanes})")

    # -- state ---------------------------------------------------------------

    def reset(self):
        """Registers to init values in every lane; memories preserved."""
        n_dff = len(self.netlist.dffs)
        if n_dff:
            self._values[self._dff_q[:n_dff]] = self._dff_init_words[:n_dff]

    def full_reset(self):
        """Every lane back to the canonical just-constructed state
        (activity counters aside) — see
        :meth:`GateLevelSimulator.full_reset`."""
        self._values[:] = 0
        self._values[CONST1] = _ALL_ONES
        self._forces.clear()
        self._rebuild_force_arrays()
        for per_port in self._last_addrs:
            for last in per_port:
                last[:] = -1
        for per_lane in self._sram_data:
            if isinstance(per_lane, np.ndarray):
                per_lane[:] = 0
            else:
                for data in per_lane:
                    data[:] = [0] * len(data)
        self.reset()
        np.copyto(self._prev, self._values)

    def clear_activity(self):
        if self._plane_count:
            self._toggle_arena[:self._plane_count] = 0
        self._plane_count = 0
        self.cycles = 0
        self.sram_reads[:] = 0
        self.sram_writes[:] = 0
        self._prev = self._values.copy()

    @property
    def _toggle_planes(self):
        """The in-use vertical counter planes as a list of arena views
        (LSB plane first) — the pre-arena representation, kept for
        activity export and white-box tests."""
        return [self._toggle_arena[p] for p in range(self._plane_count)]

    def _grow_toggle_arena(self, min_planes):
        cap = self._toggle_arena.shape[0]
        if min_planes <= cap:
            return
        new_cap = max(min_planes, cap * 2)
        arena = np.zeros((new_cap, self.netlist.n_nets), dtype=np.uint64)
        if self._plane_count:
            arena[:self._plane_count] = \
                self._toggle_arena[:self._plane_count]
        self._toggle_arena = arena

    def _ensure_toggle_capacity(self, extra_cycles):
        """Grow the arena so ``extra_cycles`` more cycles cannot carry
        out of the top plane (per-net counts never exceed the cycle
        count, so ``bit_length`` of the worst-case total bounds the
        planes needed)."""
        self._grow_toggle_arena(
            int(self.cycles + extra_cycles).bit_length())

    def _set_net_bit(self, net, bit, lane):
        if lane is None:
            self._values[net] = _ALL_ONES if bit else np.uint64(0)
        else:
            self._check_lane(lane)
            mask = _ONE << np.uint64(lane)
            if bit:
                self._values[net] |= mask
            else:
                self._values[net] &= ~mask

    def load_dff(self, name, value, lane=None):
        """Lane-masked direct state load (``lane=None`` = every lane)."""
        idx = self._dff_index.get(name)
        if idx is None:
            raise GateSimError(f"no DFF named {name!r}")
        self._set_net_bit(self.netlist.dffs[idx].q, value & 1, lane)

    def load_dffs(self, values, lane=None):
        """Bulk load {name: bit} into one lane (or broadcast)."""
        for name, value in values.items():
            self.load_dff(name, value, lane=lane)
        return len(values)

    def load_dffs_lanes(self, commands_per_lane):
        """Load one command dict per lane in a single packed scatter.

        Equivalent to ``load_dffs(commands, lane=lane)`` per lane, but
        the per-net lane masks and value words are accumulated first so
        the netlist value array is touched once per distinct DFF instead
        of once per (DFF, lane).  Returns the per-lane command counts.
        """
        if len(commands_per_lane) > self.lanes:
            raise GateSimError(
                f"{len(commands_per_lane)} command sets for "
                f"{self.lanes} lanes")
        masks = {}
        vals = {}
        counts = []
        for lane, commands in enumerate(commands_per_lane):
            lane_bit = 1 << lane
            for name, value in commands.items():
                idx = self._dff_index.get(name)
                if idx is None:
                    raise GateSimError(f"no DFF named {name!r}")
                q = self.netlist.dffs[idx].q
                masks[q] = masks.get(q, 0) | lane_bit
                if value & 1:
                    vals[q] = vals.get(q, 0) | lane_bit
                else:
                    vals.setdefault(q, 0)
            counts.append(len(commands))
        if masks:
            nets = np.fromiter(masks.keys(), dtype=np.int64,
                               count=len(masks))
            lane_masks = np.fromiter((masks[n] for n in masks),
                                     dtype=np.uint64, count=len(masks))
            words = np.fromiter((vals[n] for n in masks),
                                dtype=np.uint64, count=len(masks))
            v = self._values
            v[nets] = (v[nets] & ~lane_masks) | (words & lane_masks)
        return counts

    def load_sram(self, name, contents, lane=None):
        idx = self._sram_index.get(name)
        if idx is None:
            raise GateSimError(f"no SRAM named {name!r}")
        if len(contents) != self.netlist.srams[idx].depth:
            raise GateSimError(f"SRAM {name} depth mismatch")
        store = self._sram_data[idx]
        if isinstance(store, np.ndarray):
            row = np.asarray(contents, dtype=np.uint64)
            if lane is None:
                store[:] = row
            else:
                self._check_lane(lane)
                store[lane] = row
        elif lane is None:
            for data in store:
                data[:] = contents
        else:
            self._check_lane(lane)
            store[lane][:] = contents

    def read_sram(self, name, addr, lane=0):
        idx = self._sram_index.get(name)
        if idx is None:
            raise GateSimError(f"no SRAM named {name!r}")
        self._check_lane(lane)
        value = self._sram_data[idx][lane][addr]
        return int(value)

    # -- forcing ----------------------------------------------------------------

    def force_label(self, label, value, lane=None):
        """Force a preserved net group to ``value`` in one or all lanes."""
        if lane is None:
            lane_mask = int(self.active_mask)
            packed = [value] * self.lanes
        else:
            self._check_lane(lane)
            lane_mask = 1 << lane
            packed = [0] * self.lanes
            packed[lane] = value
        self._force_packed(label, lane_mask, packed)

    def force_label_lanes(self, label, values):
        """Force a preserved net group to a per-lane list of values."""
        if len(values) != self.lanes:
            raise GateSimError(
                f"{len(values)} force values for {self.lanes} lanes")
        self._force_packed(label, int(self.active_mask), values)

    def _force_packed(self, label, lane_mask, values):
        nets = self.netlist.preserved_nets.get(label)
        if nets is None:
            raise GateSimError(f"no preserved nets labelled {label!r}")
        words = pack_lane_words(values, len(nets))
        for i, net in enumerate(nets):
            prior = self._forces.get(net, [0, 0])
            keep = prior[0] & ~lane_mask
            self._forces[net] = [
                prior[0] | lane_mask,
                (prior[1] & keep) | (int(words[i]) & lane_mask)]
        self._rebuild_force_arrays()

    def release_all(self):
        self._forces.clear()
        self._rebuild_force_arrays()

    def _rebuild_force_arrays(self):
        if self._forces:
            self._force_nets = np.array(list(self._forces), dtype=np.int64)
            self._force_masks = np.array(
                [self._forces[n][0] for n in self._forces], dtype=np.uint64)
            self._force_vals = np.array(
                [self._forces[n][1] for n in self._forces], dtype=np.uint64)
        else:
            self._force_nets = None
            self._force_masks = None
            self._force_vals = None

    def _apply_forces(self, v):
        v[self._force_nets] = ((v[self._force_nets] & ~self._force_masks)
                               | self._force_vals)

    # -- evaluation ----------------------------------------------------------------

    def poke(self, port, value, lane=None):
        nets = self.netlist.inputs.get(port)
        if nets is None:
            raise GateSimError(f"no input port {port!r}")
        if lane is None:
            for i, net in enumerate(nets):
                self._values[net] = (_ALL_ONES if (value >> i) & 1
                                     else np.uint64(0))
        else:
            for i, net in enumerate(nets):
                self._set_net_bit(net, (value >> i) & 1, lane)

    def poke_lanes(self, port, values):
        """Poke a per-lane list of values into ``port`` at once."""
        nets = self.netlist.inputs.get(port)
        if nets is None:
            raise GateSimError(f"no input port {port!r}")
        if len(values) != self.lanes:
            raise GateSimError(
                f"{len(values)} poke values for {self.lanes} lanes")
        self._values[np.array(nets, dtype=np.int64)] = \
            pack_lane_words(values, len(nets))

    def poke_packed(self, nets, lane_mask, words):
        """Masked bulk stimulus: lanes in ``lane_mask`` take ``words``.

        ``nets`` is an int64 index array, ``words`` the matching packed
        lane words (see :func:`pack_lane_words`); lanes outside the mask
        keep their current values.  This is the replay fast path — one
        masked scatter per port per cycle.
        """
        mask = np.uint64(lane_mask)
        v = self._values
        v[nets] = (v[nets] & ~mask) | (words & mask)

    def net_words(self, nets):
        """Raw packed lane words for an index array of nets."""
        return self._values[nets]

    def peek(self, port, lane=0):
        nets = self.netlist.outputs.get(port)
        if nets is None:
            raise GateSimError(f"no output port {port!r}")
        self._check_lane(lane)
        value = 0
        for i, net in enumerate(nets):
            value |= ((int(self._values[net]) >> lane) & 1) << i
        return value

    def peek_all(self, lane=0):
        return {name: self.peek(name, lane=lane)
                for name in self.netlist.outputs}

    def peek_net(self, net, lane=0):
        self._check_lane(lane)
        return (int(self._values[net]) >> lane) & 1

    def eval(self):
        """Settle combinational logic in every lane at once."""
        if self._kernel is not None and self._force_nets is None:
            self._kernel.eval(self)
            return
        v = self._values
        if self._force_nets is not None:
            self._apply_forces(v)
        for groups, rams in self._levels:
            for cell, outs, in0, in1, in2 in groups:
                if cell == "INV":
                    v[outs] = v[in0] ^ _ALL_ONES
                elif cell == "BUF":
                    v[outs] = v[in0]
                elif cell == "AND2":
                    v[outs] = v[in0] & v[in1]
                elif cell == "OR2":
                    v[outs] = v[in0] | v[in1]
                elif cell == "XOR2":
                    v[outs] = v[in0] ^ v[in1]
                elif cell == "XNOR2":
                    v[outs] = (v[in0] ^ v[in1]) ^ _ALL_ONES
                elif cell == "NAND2":
                    v[outs] = (v[in0] & v[in1]) ^ _ALL_ONES
                elif cell == "NOR2":
                    v[outs] = (v[in0] | v[in1]) ^ _ALL_ONES
                elif cell == "MUX2":
                    sel = v[in0]
                    v[outs] = (sel & v[in1]) | (~sel & v[in2])
                else:
                    raise GateSimError(f"unknown cell {cell}")
            for macro_idx, port_idx in rams:
                self._eval_read_port(macro_idx, port_idx)
            if self._force_nets is not None:
                self._apply_forces(v)

    def _eval_read_port(self, macro_idx, port_idx):
        """Async read port: addresses diverge, so resolve per lane."""
        addr_arr, _addr_w, data_arr = self._ram_ports[macro_idx][port_idx]
        v = self._values
        v[data_arr] = self._read_port_lanes(macro_idx, port_idx,
                                            v[addr_arr])

    def _read_port_lanes(self, macro_idx, port_idx, addr_words):
        """Resolve one read port from packed address words.

        Returns the packed data words and maintains the per-port
        read-address memo / access counters — the shared core of both
        the interpreted path and the generated kernels (which compute
        address words themselves and splice the result back in).
        """
        _addr_arr, addr_w, data_arr = self._ram_ports[macro_idx][port_idx]
        macro = self.netlist.srams[macro_idx]
        bits = ((addr_words[:, None] >> self._lane_ids[None, :])
                & _ONE).astype(np.int64)
        addrs = addr_w @ bits          # per-lane integer addresses
        store = self._sram_data[macro_idx]
        if isinstance(store, np.ndarray):
            ok = addrs < macro.depth
            words = store[self._lane_rows, np.where(ok, addrs, 0)]
            words = np.where(ok, words, np.uint64(0))
            packed = self._pack_word_array(words, len(data_arr))
        else:
            lane_words = [store[lane][addr] if addr < macro.depth else 0
                          for lane, addr in enumerate(addrs.tolist())]
            packed = pack_lane_words(lane_words, len(data_arr))
        last = self._last_addrs[macro_idx][port_idx]
        changed = addrs != last
        if changed.any():
            self.sram_reads[macro_idx] += changed
            last[:] = addrs
        return packed

    def _pack_word_array(self, words, nbits):
        """Transpose per-lane uint64 values into per-bit lane words
        (the all-numpy form of :func:`pack_lane_words`)."""
        bit_ids = np.arange(nbits, dtype=np.uint64)
        bits = (words[:, None] >> bit_ids[None, :]) & _ONE
        return np.bitwise_or.reduce(bits << self._lane_ids[:, None],
                                    axis=0)

    def step(self, n=1):
        """Advance n clock cycles in every lane (eval, count, commit)."""
        self.run_cycles(n)

    def run_cycles(self, n=None, stim=None, strict=False):
        """Advance ``n`` cycles, optionally driven by a
        :class:`PackedStimulus` (pokes before eval, checks after eval,
        per-cycle force segments).

        This is the whole-replay hot loop: with a generated C kernel the
        entire call — eval, toggle counting, SRAM write ports, DFF
        commit, stimulus, checks — is **one** foreign call that releases
        the GIL; the interpreted path runs the same per-cycle sequence
        in Python so all backends stay bit-identical by construction.

        Returns the per-lane mismatch counts (int64, one per lane).  In
        strict mode the first failing check raises
        :class:`StimulusMismatch` instead, leaving the failing cycle
        settled but uncommitted.
        """
        if stim is not None:
            if n is None:
                n = stim.n_cycles
            elif n > stim.n_cycles:
                raise GateSimError(
                    f"run_cycles({n}) exceeds stimulus length "
                    f"{stim.n_cycles}")
        elif n is None:
            raise GateSimError("run_cycles needs a cycle count or "
                               "a stimulus")
        n = int(n)
        mismatches = np.zeros(self.lanes, dtype=np.int64)
        if n <= 0:
            return mismatches
        self._ensure_toggle_capacity(n)
        kernel = self._kernel
        if kernel is not None and hasattr(kernel, "run_cycles"):
            kernel.run_cycles(self, n, stim, strict, mismatches)
        else:
            self._run_cycles_py(n, stim, strict, mismatches)
        return mismatches

    def _run_cycles_py(self, n, stim, strict, mismatches):
        """The interpreted/compiled-eval per-cycle loop behind
        :meth:`run_cycles` — semantics identical to the native kernel."""
        phases = [0.0] * 6
        pokes = stim.pokes if stim is not None else None
        checks = stim.checks if stim is not None else None
        seg_forces = stim is not None and stim.forces is not None
        saved = (self._force_nets, self._force_masks, self._force_vals)
        perf = time.perf_counter
        cycles_done = 0
        try:
            for t in range(n):
                t0 = perf()
                if pokes is not None:
                    # compiled-backend evals rebind _values, so read the
                    # attribute afresh every cycle
                    values = self._values
                    for nets, mask, words in pokes[t]:
                        values[nets] = ((values[nets] & ~mask)
                                        | (words & mask))
                if seg_forces:
                    seg = stim.forces[t]
                    if seg is None:
                        self._force_nets = None
                        self._force_masks = None
                        self._force_vals = None
                    else:
                        (self._force_nets, self._force_masks,
                         self._force_vals) = seg
                t1 = perf()
                phases[0] += t1 - t0
                self.eval()
                values = self._values
                t2 = perf()
                phases[1] += t2 - t1
                if checks is not None:
                    for name, nets, mask, exp in checks[t]:
                        diff = int(np.bitwise_or.reduce(
                            values[nets] ^ exp) & mask)
                        while diff:
                            lane = (diff & -diff).bit_length() - 1
                            diff &= diff - 1
                            mismatches[lane] += 1
                            if strict:
                                raise StimulusMismatch(t, name, lane)
                t3 = perf()
                phases[2] += t3 - t2
                self._count_toggles(
                    (values ^ self._prev) & self.active_mask)
                np.copyto(self._prev, values)
                t4 = perf()
                phases[3] += t4 - t3
                self._commit_sram_writes()
                t5 = perf()
                phases[4] += t5 - t4
                self._commit_dffs()
                self.cycles += 1
                cycles_done += 1
                phases[5] += perf() - t5
        finally:
            if seg_forces:
                (self._force_nets, self._force_masks,
                 self._force_vals) = saved
            _note_step_phases(phases, cycles_done)

    def _count_toggles(self, diff):
        # Ripple-carry add of the 1-bit diff word into the vertical
        # counter arena; a surviving carry widens the counters.
        carry = diff
        arena = self._toggle_arena
        p = 0
        while carry.any():
            if p == arena.shape[0]:
                self._grow_toggle_arena(p + 1)
                arena = self._toggle_arena
            plane = arena[p]
            new_carry = plane & carry
            np.bitwise_xor(plane, carry, out=plane)
            carry = new_carry
            p += 1
        if p > self._plane_count:
            self._plane_count = p

    def _commit(self):
        self._commit_sram_writes()
        self._commit_dffs()

    def _commit_sram_writes(self):
        # SRAM writes sample their nets before DFF outputs change (the
        # same pre-commit ordering as the scalar simulator).  Per-lane
        # addresses/values are assembled with packed dot products; only
        # the store scatter loops, and only over enabled lanes.
        v = self._values
        active = int(self.active_mask)
        lane_ids = self._lane_ids
        for macro_idx, macro in enumerate(self.netlist.srams):
            store = self._sram_data[macro_idx]
            for en, addr_arr, addr_w, data_arr, data_w in \
                    self._write_ports[macro_idx]:
                en_word = int(v[en]) & active
                if not en_word:
                    continue
                if addr_w is not None:
                    abits = ((v[addr_arr][:, None] >> lane_ids)
                             & _ONE).astype(np.int64)
                    addrs = (addr_w @ abits).tolist()
                if data_w is not None:
                    dbits = (v[data_arr][:, None] >> lane_ids) & _ONE
                    words = (dbits * data_w[:, None]).sum(axis=0).tolist()
                remaining = en_word
                while remaining:
                    lane = (remaining & -remaining).bit_length() - 1
                    remaining &= remaining - 1
                    if addr_w is not None:
                        addr = addrs[lane]
                    else:
                        addr = 0
                        for i, net in enumerate(addr_arr.tolist()):
                            addr |= ((int(v[net]) >> lane) & 1) << i
                    if addr >= macro.depth:
                        continue
                    if data_w is not None:
                        value = words[lane]
                    else:
                        value = 0
                        for i, net in enumerate(data_arr.tolist()):
                            value |= ((int(v[net]) >> lane) & 1) << i
                    store[lane][addr] = value
                    self.sram_writes[macro_idx, lane] += 1

    def _commit_dffs(self):
        v = self._values
        n_dff = len(self.netlist.dffs)
        if n_dff:
            v[self._dff_q[:n_dff]] = v[self._dff_d[:n_dff]]

    # -- activity export -------------------------------------------------------------

    def lane_toggles(self, lane):
        """Exact per-net toggle counts for one lane."""
        self._check_lane(lane)
        out = np.zeros(self.netlist.n_nets, dtype=np.int64)
        shift = np.uint64(lane)
        for i, plane in enumerate(self._toggle_planes):
            out += ((plane >> shift) & _ONE).astype(np.int64) << i
        return out

    def activity(self, lane):
        """SAIF-style activity summary for one lane (same schema as
        :meth:`GateLevelSimulator.activity`)."""
        self._check_lane(lane)
        return {
            "cycles": self.cycles,
            "toggles": self.lane_toggles(lane),
            "sram_reads": [int(x) for x in self.sram_reads[:, lane]],
            "sram_writes": [int(x) for x in self.sram_writes[:, lane]],
        }
