"""Formal matching: RTL registers <-> gate-level DFFs (Formality analog).

Commercial synthesis mangles register names, so Strober runs a formal
verification tool to find *matching points* between the RTL and the
gate-level netlist and to verify equivalence (Section IV-C1).  Like
Formality consuming Design Compiler's SVF file, this tool consumes the
:class:`~repro.gatelevel.synthesis.SynthesisHints` optimization record,
reconstructs the name-mapping table, cross-checks it against the
netlist, and verifies the two designs are equivalent by co-simulation
with randomized stimulus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..sim import RTLSimulator
from ..passes.base import Pass, PassResult
from .gl_sim import GateLevelSimulator


class MatchError(Exception):
    pass


@dataclass
class MatchPoint:
    """One RTL register bit and where its value lives in the netlist."""

    reg_path: str
    bit: int
    kind: str            # 'dff' | 'const' | 'merged' | 'retimed'
    dff_name: str = None
    const_value: int = 0


@dataclass
class NameMap:
    """The name-mapping table used to load snapshots onto gate level."""

    points: list = field(default_factory=list)
    retimed: list = field(default_factory=list)   # RetimedHint passthrough

    # Name maps ship to replay workers and into the artifact cache; a
    # big design has one MatchPoint per register *bit*, so pickle them
    # as plain tuples rather than dataclass instances.
    def __getstate__(self):
        return {
            "v": 1,
            "points": [(p.reg_path, p.bit, p.kind, p.dff_name,
                        p.const_value) for p in self.points],
            "retimed": self.retimed,
        }

    def __setstate__(self, state):
        self.points = [MatchPoint(reg_path, bit, kind, dff_name, const)
                       for reg_path, bit, kind, dff_name, const
                       in state["points"]]
        self.retimed = state["retimed"]

    def loadable_points(self):
        return [p for p in self.points if p.kind in ("dff", "merged")]

    def retimed_points(self):
        return [p for p in self.points if p.kind == "retimed"]

    def load_commands(self, reg_values):
        """Translate an RTL register state into (dff_name, bit) commands.

        ``reg_values`` maps reg path -> integer value.  Returns a dict
        {dff_name: bit_value}; constant points are checked, retimed
        points are skipped (they are recovered by input forcing).
        """
        commands = {}
        for point in self.points:
            value = (reg_values[point.reg_path] >> point.bit) & 1
            if point.kind in ("dff", "merged"):
                previous = commands.get(point.dff_name)
                if previous is not None and previous != value:
                    raise MatchError(
                        f"merged DFF {point.dff_name} receives conflicting "
                        f"values (snapshot inconsistent with merge)")
                commands[point.dff_name] = value
            elif point.kind == "const":
                if value != point.const_value:
                    raise MatchError(
                        f"snapshot value of constant register "
                        f"{point.reg_path}[{point.bit}] differs from the "
                        f"synthesized constant")
        return commands


class FormalMatchPass(Pass):
    """:func:`match_netlist` as a pipeline pass (thin wrapper).

    Consumes the ``netlist`` + ``hints`` artifacts and deposits the
    ``name_map`` the replay engine loads snapshots through.
    """

    name = "formal-match"
    requires = ("netlist",)
    produces = ("name-map",)

    def run(self, circuit, ctx):
        name_map = match_netlist(circuit, ctx["netlist"], ctx["hints"])
        return PassResult(
            artifacts={"name_map": name_map},
            stats={"match_points": len(name_map.points),
                   "retimed_blocks": len(name_map.retimed)})


def match_netlist(circuit, netlist, hints):
    """Build the name map from synthesis hints and sanity-check it."""
    dff_names = {dff.name for dff in netlist.dffs}
    points = []
    for reg in circuit.regs:
        for bit in range(reg.width):
            hint = hints.dff_map.get((reg.path, bit))
            if hint is None:
                raise MatchError(
                    f"no synthesis record for {reg.path}[{bit}]")
            if hint.kind in ("dff", "merged"):
                if hint.name not in dff_names:
                    raise MatchError(
                        f"hint names missing DFF {hint.name!r}")
                points.append(MatchPoint(reg.path, bit, hint.kind,
                                         dff_name=hint.name))
            elif hint.kind == "const":
                points.append(MatchPoint(reg.path, bit, "const",
                                         const_value=hint.value))
            elif hint.kind == "retimed":
                points.append(MatchPoint(reg.path, bit, "retimed"))
            else:
                raise MatchError(f"unknown hint kind {hint.kind!r}")
    return NameMap(points=points, retimed=list(hints.retimed))


@dataclass
class EquivalenceResult:
    equivalent: bool
    cycles_checked: int
    counterexample: dict = None


def verify_equivalence(circuit, netlist, n_cycles=64, seed=0,
                       rtl_backend="python"):
    """Co-simulate RTL vs gate level from reset with random stimulus.

    This is the 'verifies the equality of the two designs' half of the
    formal step; bounded random equivalence rather than SAT-based, which
    is sufficient to catch synthesis lowering bugs in practice and keeps
    the substrate self-contained.
    """
    rng = random.Random(seed)
    rtl = RTLSimulator(circuit, backend=rtl_backend)
    gl = GateLevelSimulator(netlist)
    input_specs = [(node.name, node.width) for node in circuit.inputs]
    for cycle in range(n_cycles):
        stimulus = {name: rng.getrandbits(width)
                    for name, width in input_specs}
        for name, value in stimulus.items():
            rtl.poke(name, value)
            gl.poke(name, value)
        rtl.eval()
        gl.eval()
        rtl_out = rtl.peek_all()
        gl_out = gl.peek_all()
        if rtl_out != gl_out:
            return EquivalenceResult(False, cycle, {
                "stimulus": stimulus,
                "rtl": rtl_out,
                "gate": gl_out,
            })
        rtl.step()
        gl.step()
    return EquivalenceResult(True, n_cycles)
