"""Logic synthesis: IR circuit -> gate-level netlist (the DC analog).

Bit-blasts every IR operation into single-bit gates from the generic
library, with inline optimization (constant folding, structural hashing)
that — exactly as in a commercial flow — *mangles register names* and
removes or merges flip-flops.  The optimization record is emitted as
:class:`SynthesisHints` (the analog of Design Compiler's SVF guidance
file), which the formal matching tool consumes to rebuild the RTL-to-gate
name mapping (Section IV-C1).

Registers inside designer-annotated retimed datapaths are reported as
unmatchable (Section IV-C3): replays must recover their state by forcing
the block's inputs, never by direct load.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl.ir import Node
from ..passes.base import Pass, PassResult
from .netlist import GateNetlist, SramMacro, CONST0, CONST1


class SynthesisError(Exception):
    pass


@dataclass
class DffHint:
    """How one RTL register bit ended up in the gate-level netlist."""

    kind: str                 # 'dff' | 'const' | 'merged' | 'retimed'
    name: str = None          # gate-level DFF instance name (dff/merged)
    value: int = 0            # tied value (const)


@dataclass
class RetimedHint:
    prefix: str
    latency: int
    # (port name, width, preserved-net label) per block input
    inputs: list = field(default_factory=list)


@dataclass
class SynthesisHints:
    """The SVF-analog guidance synthesis hands to formal verification."""

    dff_map: dict = field(default_factory=dict)  # (reg_path,bit) -> DffHint
    retimed: list = field(default_factory=list)  # list[RetimedHint]
    removed_const_dffs: int = 0
    merged_dffs: int = 0


def mangle(path, bit):
    """Gate-level register naming, in the style CAD tools emit."""
    return path.replace(".", "_") + f"_reg_{bit}_"


class _Mapper:
    """Stateful lowering of one circuit."""

    def __init__(self, circuit, netlist):
        self.circuit = circuit
        self.netlist = netlist
        self.bits = {}      # Node -> [net ids] lsb-first
        self._hash = {}     # (cell, inputs) -> net (structural hashing)

    def bits_of(self, node):
        """Net bits of a node; constants materialize lazily."""
        bits = self.bits.get(node)
        if bits is None:
            if node.op != "const":
                raise SynthesisError(f"node {node!r} not yet lowered")
            value = node.params
            bits = [CONST1 if (value >> i) & 1 else CONST0
                    for i in range(node.width)]
            self.bits[node] = bits
        return bits

    # -- gate emission with inline optimization ---------------------------

    def gate(self, cell, ins, origin=""):
        ins = tuple(ins)
        folded = self._fold(cell, ins)
        if folded is not None:
            return folded
        key = (cell, ins)
        existing = self._hash.get(key)
        if existing is not None:
            return existing
        out = self.netlist.add_gate(cell, ins, origin)
        self._hash[key] = out
        return out

    @staticmethod
    def _fold(cell, ins):
        """Constant folding and trivial-identity elimination."""
        if cell == "INV":
            a, = ins
            if a == CONST0:
                return CONST1
            if a == CONST1:
                return CONST0
            return None
        if cell == "BUF":
            return ins[0]
        if cell == "AND2":
            a, b = ins
            if CONST0 in ins:
                return CONST0
            if a == CONST1:
                return b
            if b == CONST1:
                return a
            if a == b:
                return a
            return None
        if cell == "OR2":
            a, b = ins
            if CONST1 in ins:
                return CONST1
            if a == CONST0:
                return b
            if b == CONST0:
                return a
            if a == b:
                return a
            return None
        if cell == "XOR2":
            a, b = ins
            if a == b:
                return CONST0
            if a == CONST0:
                return b
            if b == CONST0:
                return a
            return None
        if cell == "XNOR2":
            a, b = ins
            if a == b:
                return CONST1
            return None
        if cell == "MUX2":
            s, a, b = ins
            if s == CONST1:
                return a
            if s == CONST0:
                return b
            if a == b:
                return a
            return None
        return None

    def inv(self, a, origin=""):
        return self.gate("INV", (a,), origin)

    def and2(self, a, b, origin=""):
        return self.gate("AND2", (a, b), origin)

    def or2(self, a, b, origin=""):
        return self.gate("OR2", (a, b), origin)

    def xor2(self, a, b, origin=""):
        return self.gate("XOR2", (a, b), origin)

    def mux2(self, s, a, b, origin=""):
        return self.gate("MUX2", (s, a, b), origin)

    # -- multi-bit building blocks -----------------------------------------

    def _tree(self, cell, nets, origin):
        """Balanced reduction tree (keeps logic depth logarithmic)."""
        nets = list(nets)
        if not nets:
            raise SynthesisError("empty reduction")
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(self.gate(cell, (nets[i], nets[i + 1]), origin))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    def full_adder(self, a, b, cin, origin):
        p = self.xor2(a, b, origin)
        s = self.xor2(p, cin, origin)
        g1 = self.and2(a, b, origin)
        g2 = self.and2(p, cin, origin)
        cout = self.or2(g1, g2, origin)
        return s, cout

    def ripple_add(self, a_bits, b_bits, width, origin, cin=CONST0):
        """a + b + cin, producing ``width`` sum bits and the carry out."""
        out = []
        carry = cin
        for i in range(width):
            a = a_bits[i] if i < len(a_bits) else CONST0
            b = b_bits[i] if i < len(b_bits) else CONST0
            s, carry = self.full_adder(a, b, carry, origin)
            out.append(s)
        return out, carry

    def negate_bits(self, bits, width, origin):
        inv = [self.inv(bits[i] if i < len(bits) else CONST0, origin)
               for i in range(width)]
        out, _ = self.ripple_add(inv, [CONST0] * width, width, origin,
                                 cin=CONST1)
        return out

    def unsigned_lt(self, a_bits, b_bits, origin):
        """a < b via the borrow of a - b."""
        width = max(len(a_bits), len(b_bits))
        inv_b = [self.inv(b_bits[i] if i < len(b_bits) else CONST0, origin)
                 for i in range(width)]
        a_pad = [a_bits[i] if i < len(a_bits) else CONST0
                 for i in range(width)]
        _, carry = self.ripple_add(a_pad, inv_b, width, origin, cin=CONST1)
        return self.inv(carry, origin)

    def mux_bits(self, sel, a_bits, b_bits, width, origin):
        out = []
        for i in range(width):
            a = a_bits[i] if i < len(a_bits) else CONST0
            b = b_bits[i] if i < len(b_bits) else CONST0
            out.append(self.mux2(sel, a, b, origin))
        return out

    # -- node lowering ---------------------------------------------------------

    def lower(self, node):
        origin = self.circuit.origin(node)
        op = node.op
        w = node.width

        def arg_bits(i, width=None):
            bits = self.bits_of(node.args[i])
            if width is None:
                return bits
            return [bits[j] if j < len(bits) else CONST0
                    for j in range(width)]

        if op == "const":
            value = node.params
            return [CONST1 if (value >> i) & 1 else CONST0
                    for i in range(w)]
        if op == "not":
            return [self.inv(b, origin) for b in arg_bits(0, w)]
        if op in ("and", "or", "xor"):
            cell = {"and": "AND2", "or": "OR2", "xor": "XOR2"}[op]
            a, b = arg_bits(0, w), arg_bits(1, w)
            return [self.gate(cell, (a[i], b[i]), origin) for i in range(w)]
        if op == "add":
            if max(node.args[0].width, node.args[1].width) + 1 > w:
                # width-capped add: wrap modulo 2^w, no carry-out bit
                out, _ = self.ripple_add(arg_bits(0), arg_bits(1), w,
                                         origin)
                return out
            out, carry = self.ripple_add(arg_bits(0), arg_bits(1), w - 1,
                                         origin)
            return out + [carry]
        if op == "sub":
            inv_b = [self.inv(b, origin) for b in arg_bits(1, w)]
            out, _ = self.ripple_add(arg_bits(0, w), inv_b, w, origin,
                                     cin=CONST1)
            return out
        if op == "mul":
            return self._lower_mul(node, origin)
        if op in ("divu", "modu"):
            return self._lower_div(node, origin)
        if op in ("shl", "shr", "sra"):
            return self._lower_shift(node, origin)
        if op == "eq" or op == "neq":
            width = max(node.args[0].width, node.args[1].width)
            a, b = arg_bits(0, width), arg_bits(1, width)
            diffs = [self.xor2(a[i], b[i], origin) for i in range(width)]
            any_diff = self._tree("OR2", diffs, origin)
            return [any_diff if op == "neq" else self.inv(any_diff, origin)]
        if op in ("ltu", "leu", "lts", "les"):
            return self._lower_compare(node, origin)
        if op == "cat":
            lo = self.bits_of(node.args[1])
            hi = self.bits_of(node.args[0])
            return (lo + hi)[:w]
        if op == "bits":
            hi, lo = node.params
            return self.bits_of(node.args[0])[lo:hi + 1]
        if op == "mux":
            sel = self.bits_of(node.args[0])[0]
            return self.mux_bits(sel, arg_bits(1, w), arg_bits(2, w), w,
                                 origin)
        if op == "orr":
            return [self._tree("OR2", arg_bits(0), origin)]
        if op == "andr":
            return [self._tree("AND2", arg_bits(0), origin)]
        if op == "xorr":
            return [self._tree("XOR2", arg_bits(0), origin)]
        if op == "memread":
            return self._lower_memread(node, origin)
        raise SynthesisError(f"cannot synthesize op {op!r}")

    def _lower_mul(self, node, origin):
        w = node.width
        a_bits = self.bits_of(node.args[0])
        b_bits = self.bits_of(node.args[1])
        acc = [CONST0] * w
        for i, b in enumerate(b_bits):
            if i >= w:
                break
            row_width = min(len(a_bits), w - i)
            partial = [self.and2(a_bits[j], b, origin)
                       for j in range(row_width)]
            upper, _ = self.ripple_add(acc[i:], partial, w - i, origin)
            acc = acc[:i] + upper
        return acc

    def _lower_div(self, node, origin):
        """Restoring division array; RISC-V x/0 semantics fall out."""
        a_bits = self.bits_of(node.args[0])
        b_bits = self.bits_of(node.args[1])
        wa, wb = len(a_bits), len(b_bits)
        rw = wb + 1
        remainder = [CONST0] * rw
        quotient = [CONST0] * wa
        b_pad = [b_bits[i] if i < wb else CONST0 for i in range(rw)]
        inv_b = [self.inv(b, origin) for b in b_pad]
        for i in range(wa - 1, -1, -1):
            shifted = [a_bits[i]] + remainder[:rw - 1]
            trial, carry = self.ripple_add(shifted, inv_b, rw, origin,
                                           cin=CONST1)
            quotient[i] = carry  # carry==1 means shifted >= b
            remainder = self.mux_bits(carry, trial, shifted, rw, origin)
        if node.op == "divu":
            out = quotient
        else:
            out = remainder
        return [out[i] if i < len(out) else CONST0
                for i in range(node.width)]

    def _lower_shift(self, node, origin):
        w = node.width
        src = self.bits_of(node.args[0])
        value = [src[i] if i < len(src) else CONST0 for i in range(w)]
        shamt_node = node.args[1]
        fill = CONST0
        if node.op == "sra":
            fill = src[-1]
        if shamt_node.op == "const":
            amount = shamt_node.params
            return self._static_shift(node.op, value, amount, w, fill)
        shamt = self.bits_of(shamt_node)
        for k, sel in enumerate(shamt):
            distance = 1 << k
            if distance >= w:
                # shifting by >= w clears (or sign-fills) everything
                value = self.mux_bits(sel, [fill] * w, value, w, origin)
                continue
            shifted = self._static_shift(node.op, value, distance, w, fill)
            value = self.mux_bits(sel, shifted, value, w, origin)
        return value

    @staticmethod
    def _static_shift(op, value, amount, w, fill):
        if amount == 0:
            return list(value)
        if amount >= w:
            return [fill if op == "sra" else CONST0] * w
        if op == "shl":
            return [CONST0] * amount + value[:w - amount]
        filler = fill if op == "sra" else CONST0
        return value[amount:] + [filler] * amount

    def _lower_compare(self, node, origin):
        a_bits = list(self.bits_of(node.args[0]))
        b_bits = list(self.bits_of(node.args[1]))
        width = max(len(a_bits), len(b_bits))
        a = [a_bits[i] if i < len(a_bits) else CONST0 for i in range(width)]
        b = [b_bits[i] if i < len(b_bits) else CONST0 for i in range(width)]
        if node.op in ("lts", "les"):
            # flip sign bits to reduce signed compare to unsigned
            a[-1] = self.inv(a[-1], origin)
            b[-1] = self.inv(b[-1], origin)
        if node.op in ("ltu", "lts"):
            return [self.unsigned_lt(a, b, origin)]
        # leu/les: a <= b  ==  not (b < a)
        return [self.inv(self.unsigned_lt(b, a, origin), origin)]

    def _lower_memread(self, node, origin):
        macro = self._macro_for(node.mem)
        addr_bits = self.bits_of(node.args[0])
        addr = [addr_bits[i] if i < len(addr_bits) else CONST0
                for i in range(node.mem.addr_width)]
        data = self.netlist.new_nets(node.mem.width)
        macro.read_ports.append((addr, data))
        return data

    def _macro_for(self, mem):
        for macro in self.netlist.srams:
            if macro.name == mem.path:
                return macro
        macro = SramMacro(mem.path, mem.depth, mem.width,
                          origin=mem.path)
        self.netlist.srams.append(macro)
        return macro


def synthesize(circuit, name=None):
    """Run synthesis; returns ``(GateNetlist, SynthesisHints)``."""
    netlist = GateNetlist(name or f"{circuit.name}_gl")
    mapper = _Mapper(circuit, netlist)
    hints = SynthesisHints()

    retimed_prefixes = [block.prefix for block in circuit.retimed_blocks]

    def in_retimed(path):
        return any(path.startswith(p) for p in retimed_prefixes)

    # Primary inputs and registers define the initial net frontier.
    for node in circuit.inputs:
        nets = netlist.new_nets(node.width)
        netlist.inputs[node.name] = nets
        mapper.bits[node] = nets
    for reg in circuit.regs:
        mapper.bits[reg] = netlist.new_nets(reg.width)

    for node in circuit.comb_order:
        bits = mapper.lower(node)
        if len(bits) != node.width:
            raise SynthesisError(
                f"lowering width mismatch for {node!r}: "
                f"{len(bits)} != {node.width}")
        mapper.bits[node] = bits

    # Flip-flops: optimization may tie constants or merge duplicates, and
    # every surviving FF gets a mangled gate-level name.
    dff_cache = {}  # (d_net, init, q_net_of_reg?) -> name; merge duplicates
    for reg in circuit.regs:
        q_nets = mapper.bits[reg]
        d_nets = mapper.bits_of(circuit.reg_next[reg])
        origin = reg.path   # full path: enables fine power attribution
        retimed = in_retimed(reg.path)
        for bit in range(reg.width):
            init_bit = (reg.init >> bit) & 1
            d = d_nets[bit]
            q = q_nets[bit]
            key = (reg.path, bit)
            if retimed:
                # CAD-rebalanced: instantiate, but report unmatchable.
                dff_name = f"U_rt_{len(netlist.dffs)}"
                netlist.dffs.append(_make_dff(d, q, init_bit, dff_name,
                                              origin))
                hints.dff_map[key] = DffHint("retimed")
                continue
            if d == q:
                # feedback-only register: its value is frozen at init
                _tie(netlist, q, CONST1 if init_bit else CONST0)
                hints.dff_map[key] = DffHint("const", value=init_bit)
                hints.removed_const_dffs += 1
                continue
            if d in (CONST0, CONST1) and (d == CONST1) == bool(init_bit):
                # constant register: FF removed, net tied
                _tie(netlist, q, d)
                hints.dff_map[key] = DffHint("const",
                                             value=int(d == CONST1))
                hints.removed_const_dffs += 1
                continue
            merge_key = (d, init_bit)
            if merge_key in dff_cache:
                merged_name, merged_q = dff_cache[merge_key]
                _tie(netlist, q, merged_q)
                hints.dff_map[key] = DffHint("merged", name=merged_name)
                hints.merged_dffs += 1
                continue
            dff_name = mangle(reg.path, bit)
            netlist.dffs.append(_make_dff(d, q, init_bit, dff_name, origin))
            dff_cache[merge_key] = (dff_name, q)
            hints.dff_map[key] = DffHint("dff", name=dff_name)

    # Memory write ports.
    for mem in circuit.mems:
        macro = mapper._macro_for(mem)
        for addr, data, en in mem.writes:
            addr_bits = mapper.bits_of(addr)[:mem.addr_width]
            addr_bits += [CONST0] * (mem.addr_width - len(addr_bits))
            data_bits = mapper.bits_of(data)[:mem.width]
            en_bit = mapper.bits_of(en)[0]
            macro.write_ports.append((en_bit, addr_bits, data_bits))

    # Primary outputs.
    for out_name, driver in circuit.outputs:
        netlist.outputs[out_name] = list(mapper.bits_of(driver))

    # Preserve retimed-block input nets so replays can force them.
    for block in circuit.retimed_blocks:
        hint = RetimedHint(block.prefix, block.latency)
        for rin in block.inputs:
            label = f"{block.prefix}{rin.name}"
            nets = mapper.bits_of(rin.driver)
            netlist.preserved_nets[label] = list(nets)
            hint.inputs.append((rin.name, rin.width, label,
                                list(rin.hist_reg_paths)))
        hints.retimed.append(hint)

    _resolve_ties(netlist)
    return netlist, hints


class SynthesisPass(Pass):
    """:func:`synthesize` as a pipeline pass (thin wrapper).

    Reads the elaborated circuit, leaves it untouched, and deposits the
    ``netlist`` + ``hints`` artifacts in the pass context.  An optional
    ``refine_fn(netlist)`` post-processes attribution (the SoC flow
    passes :func:`repro.core.attribution.refine_attribution`); it is a
    declared parameter, so flows with different refiners never share
    cached artifacts.
    """

    name = "synthesis"
    requires = ("elaborated",)
    produces = ("netlist",)

    def __init__(self, refine_fn=None):
        super().__init__(refine_fn=refine_fn)
        self.refine_fn = refine_fn

    def run(self, circuit, ctx):
        netlist, hints = synthesize(circuit)
        if self.refine_fn is not None:
            self.refine_fn(netlist)
        return PassResult(
            artifacts={"netlist": netlist, "hints": hints},
            stats={"gates": len(netlist.gates),
                   "dffs": len(netlist.dffs),
                   "srams": len(netlist.srams),
                   "removed_const_dffs": hints.removed_const_dffs,
                   "merged_dffs": hints.merged_dffs})


def _make_dff(d, q, init, name, origin):
    from .netlist import Dff
    dff = Dff(d, q, init, name, origin)
    return dff


def _tie(netlist, net, to_net):
    """Record that ``net`` must be driven by ``to_net`` (alias)."""
    if not hasattr(netlist, "_ties"):
        netlist._ties = {}
    netlist._ties[net] = to_net


def _resolve_ties(netlist):
    """Rewrite all references to tied nets (register Q aliases)."""
    ties = getattr(netlist, "_ties", None)
    if not ties:
        return

    def resolve(net):
        seen = set()
        while net in ties:
            if net in seen:
                raise SynthesisError("tie cycle")
            seen.add(net)
            net = ties[net]
        return net

    for gate in netlist.gates:
        gate.inputs = tuple(resolve(n) for n in gate.inputs)
    for dff in netlist.dffs:
        dff.d = resolve(dff.d)
    for macro in netlist.srams:
        macro.read_ports = [([resolve(n) for n in addr],
                             data)
                            for addr, data in macro.read_ports]
        macro.write_ports = [(resolve(en), [resolve(n) for n in addr],
                              [resolve(n) for n in data])
                             for en, addr, data in macro.write_ports]
    for name, nets in netlist.outputs.items():
        netlist.outputs[name] = [resolve(n) for n in nets]
    for label, nets in netlist.preserved_nets.items():
        netlist.preserved_nets[label] = [resolve(n) for n in nets]
    netlist._ties = {}
