"""Gate-level netlist data structures.

A :class:`GateNetlist` is the synthesis output: single-bit nets, simple
gates, DFFs, SRAM macros, and primary I/O.  Net 0 is constant 0 and net
1 is constant 1.  Every gate and DFF carries an ``origin`` attribution
path (the RTL hierarchy it came from) so power can be broken down by
module as in the paper's Figure 9a.
"""

from __future__ import annotations

from dataclasses import dataclass, field

CONST0 = 0
CONST1 = 1


@dataclass
class Gate:
    cell: str            # key into library.CELLS (not DFF)
    inputs: tuple        # net ids; MUX2 order (sel, a, b)
    output: int          # net id
    origin: str = ""     # RTL hierarchical path for power attribution


@dataclass
class Dff:
    d: int               # data input net
    q: int               # output net
    init: int            # reset value bit
    name: str            # mangled gate-level instance name
    origin: str = ""


@dataclass
class SramMacro:
    """One memory macro with async read ports and sync write ports."""

    name: str
    depth: int
    width: int
    origin: str = ""
    # read ports: (addr_nets lsb-first, data_nets lsb-first)
    read_ports: list = field(default_factory=list)
    # write ports: (en_net, addr_nets, data_nets)
    write_ports: list = field(default_factory=list)


class GateNetlist:
    """Flat single-bit netlist with attribution and name tables."""

    def __init__(self, name):
        self.name = name
        self.n_nets = 2                      # const0, const1 pre-allocated
        self.gates = []                      # list[Gate]
        self.dffs = []                       # list[Dff]
        self.srams = []                      # list[SramMacro]
        self.inputs = {}                     # port name -> [net ids] lsb0
        self.outputs = {}                    # port name -> [net ids] lsb0
        self.net_names = {}                  # net id -> mangled name
        self.preserved_nets = {}             # label -> [net ids]
        self._dff_index = None               # lazy name -> position memos
        self._sram_index = None

    def new_net(self, name=None):
        net = self.n_nets
        self.n_nets += 1
        if name is not None:
            self.net_names[net] = name
        return net

    def new_nets(self, count):
        start = self.n_nets
        self.n_nets += count
        return list(range(start, start + count))

    def add_gate(self, cell, inputs, origin=""):
        out = self.new_net()
        self.gates.append(Gate(cell, tuple(inputs), out, origin))
        return out

    def add_dff(self, d, init, name, origin=""):
        q = self.new_net(name)
        self.dffs.append(Dff(d, q, init, name, origin))
        return q

    def cell_histogram(self):
        counts = {}
        for gate in self.gates:
            counts[gate.cell] = counts.get(gate.cell, 0) + 1
        counts["DFF"] = len(self.dffs)
        return counts

    def stats(self):
        return {
            "nets": self.n_nets,
            "gates": len(self.gates),
            "dffs": len(self.dffs),
            "srams": len(self.srams),
            "cells": self.cell_histogram(),
        }

    def dff_index(self):
        """Name -> position for :attr:`dffs`, built once and shared.

        Both simulators and the levelized schedule consume this same
        memo, so name resolution is one dict per netlist instead of a
        linear scan (or a private copy) per consumer.  Rebuilt lazily
        if DFFs were added since the last call.
        """
        memo = self._dff_index
        if memo is None or len(memo) != len(self.dffs):
            memo = self._dff_index = {
                dff.name: i for i, dff in enumerate(self.dffs)}
        return memo

    def sram_index(self):
        """Name -> position for :attr:`srams` (same contract as
        :meth:`dff_index`)."""
        memo = self._sram_index
        if memo is None or len(memo) != len(self.srams):
            memo = self._sram_index = {
                macro.name: i for i, macro in enumerate(self.srams)}
        return memo

    def dff_by_name(self, name):
        return self.dffs[self.dff_index()[name]]

    # -- pickling ----------------------------------------------------------
    # Netlists cross process boundaries (replay worker pools) and live in
    # the on-disk artifact cache, so serialize them as columns of plain
    # tuples instead of per-cell dataclass instances: ~2x smaller and much
    # faster to load than default pickling of tens of thousands of objects.

    def __getstate__(self):
        return {
            "v": 1,
            "name": self.name,
            "n_nets": self.n_nets,
            "gates": [(g.cell, g.inputs, g.output, g.origin)
                      for g in self.gates],
            "dffs": [(d.d, d.q, d.init, d.name, d.origin)
                     for d in self.dffs],
            "srams": [(m.name, m.depth, m.width, m.origin,
                       m.read_ports, m.write_ports) for m in self.srams],
            "inputs": self.inputs,
            "outputs": self.outputs,
            "net_names": self.net_names,
            "preserved_nets": self.preserved_nets,
        }

    def __setstate__(self, state):
        self.name = state["name"]
        self.n_nets = state["n_nets"]
        self.gates = [Gate(cell, inputs, output, origin)
                      for cell, inputs, output, origin in state["gates"]]
        self.dffs = [Dff(d, q, init, name, origin)
                     for d, q, init, name, origin in state["dffs"]]
        self.srams = [SramMacro(name, depth, width, origin,
                                read_ports, write_ports)
                      for name, depth, width, origin,
                      read_ports, write_ports in state["srams"]]
        self.inputs = state["inputs"]
        self.outputs = state["outputs"]
        self.net_names = state["net_names"]
        self.preserved_nets = state["preserved_nets"]
        self._dff_index = None
        self._sram_index = None
