"""Power analysis from switching activity (the PrimeTime PX analog).

Consumes a SAIF-style activity summary (per-net toggle counts + SRAM
access counts) plus the placed netlist, and produces total and
per-module-group power:

* switching power: per net, ``toggles/cycle × ½·C_net·V² × f`` where
  ``C_net`` = driver output cap + fanout input pin caps + wire cap;
* clock tree power: every DFF clock pin toggles twice per cycle;
* SRAM power: per-access read/write energy from the macro model;
* leakage: per-cell and per-macro static power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .library import CELLS, SramSpec, TECH_45NM


@dataclass
class PowerReport:
    """Average power over one activity window, in watts."""

    total_w: float
    switching_w: float
    clock_w: float
    sram_dynamic_w: float
    leakage_w: float
    cycles: int
    freq_hz: float
    by_group: dict = field(default_factory=dict)   # group -> watts

    @property
    def total_mw(self):
        return self.total_w * 1e3

    def group_mw(self, group):
        return self.by_group.get(group, 0.0) * 1e3

    def scaled_breakdown_mw(self):
        return {g: w * 1e3 for g, w in sorted(self.by_group.items())}


def default_grouping(origin):
    """Map an RTL hierarchy path to a report group (first segment)."""
    if not origin:
        return "(top)"
    return origin.split(".")[0]


def analyze_power(netlist, activity, placement=None, tech=TECH_45NM,
                  freq_hz=None, grouping=default_grouping):
    """Compute a :class:`PowerReport` for one activity window."""
    freq_hz = freq_hz or tech.default_freq_hz
    cycles = activity["cycles"]
    if cycles <= 0:
        raise ValueError("activity window has zero cycles")
    toggles = activity["toggles"]
    seconds = cycles / freq_hz
    vdd2 = tech.vdd * tech.vdd

    # Per-net capacitance: driver output + sink input pins + wire.
    net_cap = np.zeros(netlist.n_nets)
    if placement is not None and placement.net_wire_cap_ff is not None:
        net_cap += placement.net_wire_cap_ff
    driver_group = [None] * netlist.n_nets

    for gate in netlist.gates:
        spec = CELLS[gate.cell]
        net_cap[gate.output] += spec.output_cap_ff
        for net in gate.inputs:
            net_cap[net] += spec.input_cap_ff
        driver_group[gate.output] = grouping(gate.origin)
    dff_spec = CELLS["DFF"]
    for dff in netlist.dffs:
        net_cap[dff.q] += dff_spec.output_cap_ff
        net_cap[dff.d] += dff_spec.input_cap_ff
        driver_group[dff.q] = grouping(dff.origin)

    # Switching energy, attributed to each net's driver.
    energy_fj = toggles * net_cap * 0.5 * vdd2
    by_group = {}

    def add(group, femtojoules):
        watts = femtojoules * 1e-15 / seconds
        by_group[group] = by_group.get(group, 0.0) + watts
        return watts

    switching_w = 0.0
    nonzero = np.nonzero(energy_fj)[0]
    for net in nonzero:
        group = driver_group[net] or "(io)"
        switching_w += add(group, float(energy_fj[net]))

    # Clock tree: two transitions per cycle into every DFF clock pin.
    clock_w = 0.0
    clk_cap = tech.clock_pin_cap_ff * tech.clock_wire_factor
    clk_energy_per_ff_fj = 2 * 0.5 * clk_cap * vdd2 * cycles
    for dff in netlist.dffs:
        clock_w += add(grouping(dff.origin), clk_energy_per_ff_fj)

    # SRAM access energy.
    sram_dynamic_w = 0.0
    for idx, macro in enumerate(netlist.srams):
        spec = SramSpec(macro.depth, macro.width)
        fj = (activity["sram_reads"][idx] * spec.read_energy_fj
              + activity["sram_writes"][idx] * spec.write_energy_fj)
        sram_dynamic_w += add(grouping(macro.origin), fj)

    # Leakage (time-invariant).
    leakage_w = 0.0
    for gate in netlist.gates:
        nw = CELLS[gate.cell].leakage_nw
        group = grouping(gate.origin)
        by_group[group] = by_group.get(group, 0.0) + nw * 1e-9
        leakage_w += nw * 1e-9
    for dff in netlist.dffs:
        nw = dff_spec.leakage_nw
        group = grouping(dff.origin)
        by_group[group] = by_group.get(group, 0.0) + nw * 1e-9
        leakage_w += nw * 1e-9
    for macro in netlist.srams:
        nw = SramSpec(macro.depth, macro.width).leakage_nw
        group = grouping(macro.origin)
        by_group[group] = by_group.get(group, 0.0) + nw * 1e-9
        leakage_w += nw * 1e-9

    total = switching_w + clock_w + sram_dynamic_w + leakage_w
    return PowerReport(
        total_w=total,
        switching_w=switching_w,
        clock_w=clock_w,
        sram_dynamic_w=sram_dynamic_w,
        leakage_w=leakage_w,
        cycles=cycles,
        freq_hz=freq_hz,
        by_group=by_group,
    )
