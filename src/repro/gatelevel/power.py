"""Power analysis from switching activity (the PrimeTime PX analog).

Consumes a SAIF-style activity summary (per-net toggle counts + SRAM
access counts) plus the placed netlist, and produces total and
per-module-group power:

* switching power: per net, ``toggles/cycle × ½·C_net·V² × f`` where
  ``C_net`` = driver output cap + fanout input pin caps + wire cap;
* clock tree power: every DFF clock pin toggles twice per cycle;
* SRAM power: per-access read/write energy from the macro model;
* leakage: per-cell and per-macro static power.

The activity-independent part of the model (per-net capacitance, each
net's attribution group, per-cell leakage) is built once per (netlist,
placement, tech, grouping) and cached on the netlist, so analyzing an
activity window costs a few vectorized array ops instead of a python
loop over every net — batched replay calls this once per lane.  The
vectorized path accumulates with ``np.add.at`` (unbuffered, in element
order), so results are bit-identical to the original sequential loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .library import CELLS, SramSpec, TECH_45NM


@dataclass
class PowerReport:
    """Average power over one activity window, in watts."""

    total_w: float
    switching_w: float
    clock_w: float
    sram_dynamic_w: float
    leakage_w: float
    cycles: int
    freq_hz: float
    by_group: dict = field(default_factory=dict)   # group -> watts

    @property
    def total_mw(self):
        return self.total_w * 1e3

    def group_mw(self, group):
        return self.by_group.get(group, 0.0) * 1e3

    def scaled_breakdown_mw(self):
        return {g: w * 1e3 for g, w in sorted(self.by_group.items())}


def default_grouping(origin):
    """Map an RTL hierarchy path to a report group (first segment)."""
    if not origin:
        return "(top)"
    return origin.split(".")[0]


class _PowerModel:
    """Activity-independent arrays for one (netlist, placement, tech,
    grouping) combination.

    Group accumulation uses integer *slots*; ``io_slot`` (driverless
    nets, primary inputs) is last and only surfaces in ``by_group``
    when a driverless net actually switched — matching the lazy
    first-touch behaviour of the original dict accumulation.
    """

    def __init__(self, netlist, placement, tech, grouping):
        # pin the keyed objects so their id()s stay valid while cached
        self.placement = placement
        self.tech = tech
        self.grouping = grouping

        n_nets = netlist.n_nets
        net_cap = np.zeros(n_nets)
        if placement is not None and placement.net_wire_cap_ff is not None:
            net_cap += placement.net_wire_cap_ff

        group_slot = {}

        def slot(group):
            if group not in group_slot:
                group_slot[group] = len(group_slot)
            return group_slot[group]

        driver_slot = np.full(n_nets, -1, dtype=np.int64)
        gate_slots = np.zeros(max(len(netlist.gates), 1), dtype=np.int64)
        for i, gate in enumerate(netlist.gates):
            spec = CELLS[gate.cell]
            net_cap[gate.output] += spec.output_cap_ff
            for net in gate.inputs:
                net_cap[net] += spec.input_cap_ff
            gate_slots[i] = driver_slot[gate.output] = slot(
                grouping(gate.origin))
        dff_spec = CELLS["DFF"]
        dff_slots = np.zeros(max(len(netlist.dffs), 1), dtype=np.int64)
        for i, dff in enumerate(netlist.dffs):
            net_cap[dff.q] += dff_spec.output_cap_ff
            net_cap[dff.d] += dff_spec.input_cap_ff
            dff_slots[i] = driver_slot[dff.q] = slot(grouping(dff.origin))
        self.sram_slots = [slot(grouping(macro.origin))
                           for macro in netlist.srams]
        self.sram_specs = [SramSpec(macro.depth, macro.width)
                           for macro in netlist.srams]

        self.io_slot = len(group_slot)          # always the last slot
        self.group_names = list(group_slot)
        self.net_cap = net_cap
        self.switch_slot = np.where(driver_slot >= 0, driver_slot,
                                    self.io_slot)
        self.dff_slots = dff_slots[:len(netlist.dffs)]
        self.n_dffs = len(netlist.dffs)

        # Leakage is time-invariant: per-element values in the original
        # accumulation order (gates, DFFs, macros).  The scalar total is
        # a fixed sequential sum, so fold it once here.
        leak_slots = []
        leak_w = []
        for i, gate in enumerate(netlist.gates):
            leak_slots.append(gate_slots[i])
            leak_w.append(CELLS[gate.cell].leakage_nw * 1e-9)
        for i in range(len(netlist.dffs)):
            leak_slots.append(dff_slots[i])
            leak_w.append(dff_spec.leakage_nw * 1e-9)
        for i, macro in enumerate(netlist.srams):
            leak_slots.append(self.sram_slots[i])
            leak_w.append(self.sram_specs[i].leakage_nw * 1e-9)
        self.leak_slots = np.array(leak_slots, dtype=np.int64)
        self.leak_w = np.array(leak_w)
        total = 0.0
        for w in leak_w:
            total += w
        self.leakage_w = total


def _power_model(netlist, placement, tech, grouping):
    cache = getattr(netlist, "_power_model_cache", None)
    if cache is None:
        # plain instance attribute: GateNetlist's explicit __getstate__
        # keeps it out of pickles, so cached flows stay lean
        cache = netlist._power_model_cache = {}
    key = (id(placement), id(tech), grouping)
    model = cache.get(key)
    if (model is None or model.placement is not placement
            or model.tech is not tech):
        model = cache[key] = _PowerModel(netlist, placement, tech,
                                         grouping)
    return model


def _ordered_sum(values):
    """Sequential left-to-right float sum (what a python loop does).

    ``np.add.at`` is documented unbuffered — each element is applied in
    order — unlike ``np.sum``'s pairwise reduction, which rounds
    differently.  Bit-identity with the pre-vectorization power
    analysis depends on this.
    """
    buf = np.zeros(1)
    np.add.at(buf, np.zeros(len(values), dtype=np.intp), values)
    return float(buf[0])


def analyze_power(netlist, activity, placement=None, tech=TECH_45NM,
                  freq_hz=None, grouping=default_grouping):
    """Compute a :class:`PowerReport` for one activity window."""
    freq_hz = freq_hz or tech.default_freq_hz
    cycles = activity["cycles"]
    if cycles <= 0:
        raise ValueError("activity window has zero cycles")
    toggles = activity["toggles"]
    seconds = cycles / freq_hz
    vdd2 = tech.vdd * tech.vdd

    model = _power_model(netlist, placement, tech, grouping)
    acc = np.zeros(model.io_slot + 1)

    # Switching energy, attributed to each net's driver.
    energy_fj = toggles * model.net_cap * 0.5 * vdd2
    nonzero = np.nonzero(energy_fj)[0]
    watts = energy_fj[nonzero] * 1e-15 / seconds
    slots = model.switch_slot[nonzero]
    np.add.at(acc, slots, watts)
    switching_w = _ordered_sum(watts)
    io_touched = bool((slots == model.io_slot).any())

    # Clock tree: two transitions per cycle into every DFF clock pin.
    clk_cap = tech.clock_pin_cap_ff * tech.clock_wire_factor
    clk_energy_per_ff_fj = 2 * 0.5 * clk_cap * vdd2 * cycles
    clk_watts = np.full(model.n_dffs, clk_energy_per_ff_fj * 1e-15
                        / seconds)
    np.add.at(acc, model.dff_slots, clk_watts)
    clock_w = _ordered_sum(clk_watts)

    # SRAM access energy (a handful of macros: plain loop).
    sram_dynamic_w = 0.0
    for idx, spec in enumerate(model.sram_specs):
        fj = (activity["sram_reads"][idx] * spec.read_energy_fj
              + activity["sram_writes"][idx] * spec.write_energy_fj)
        w = fj * 1e-15 / seconds
        acc[model.sram_slots[idx]] += w
        sram_dynamic_w += w

    # Leakage (time-invariant; scalar total prefolded in the model).
    np.add.at(acc, model.leak_slots, model.leak_w)
    leakage_w = model.leakage_w

    by_group = {name: float(acc[i])
                for i, name in enumerate(model.group_names)}
    if io_touched:
        by_group["(io)"] = float(acc[model.io_slot])

    total = switching_w + clock_w + sram_dynamic_w + leakage_w
    return PowerReport(
        total_w=total,
        switching_w=switching_w,
        clock_w=clock_w,
        sram_dynamic_w=sram_dynamic_w,
        leakage_w=leakage_w,
        cycles=cycles,
        freq_hz=freq_hz,
        by_group=by_group,
    )
