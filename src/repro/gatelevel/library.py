"""Generic 45 nm-like standard-cell library.

The numbers are representative of a commercial 45 nm process at nominal
voltage (input caps of a few fF, sub-µm² cells, nW-scale leakage); they
are deliberately *generic* — the reproduction targets power shapes and
ratios, not a specific foundry kit (see DESIGN.md).

SRAM macros use an analytical CACTI-like model: energy per access and
leakage scale with the array's geometry, standing in for the vendor
memory-compiler datasheets a real PrimeTime flow reads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CellSpec:
    """One standard cell: name, pins, and physical/electrical numbers."""

    name: str
    n_inputs: int
    input_cap_ff: float     # per input pin, femtofarads
    output_cap_ff: float    # self-load (drain/parasitic) at the output
    leakage_nw: float       # static power, nanowatts
    area_um2: float
    delay_ps: float         # unit delay used for levelization reporting


# Gate types the technology mapper may emit.  MUX2 input order: (sel, a, b)
# with output = sel ? a : b.  DFF input order: (d,).
CELLS = {
    "INV": CellSpec("INV", 1, 1.4, 0.9, 12.0, 0.8, 18.0),
    "BUF": CellSpec("BUF", 1, 1.4, 1.0, 15.0, 1.1, 30.0),
    "AND2": CellSpec("AND2", 2, 1.6, 1.1, 22.0, 1.4, 35.0),
    "OR2": CellSpec("OR2", 2, 1.6, 1.1, 24.0, 1.4, 36.0),
    "NAND2": CellSpec("NAND2", 2, 1.5, 1.0, 16.0, 1.1, 22.0),
    "NOR2": CellSpec("NOR2", 2, 1.5, 1.0, 17.0, 1.1, 25.0),
    "XOR2": CellSpec("XOR2", 2, 2.4, 1.5, 38.0, 2.2, 48.0),
    "XNOR2": CellSpec("XNOR2", 2, 2.4, 1.5, 38.0, 2.2, 48.0),
    "MUX2": CellSpec("MUX2", 3, 2.0, 1.4, 34.0, 2.4, 44.0),
    "DFF": CellSpec("DFF", 1, 2.6, 1.8, 95.0, 6.5, 90.0),
}


@dataclass(frozen=True)
class TechParams:
    """Process/operating-point parameters shared by power analysis."""

    vdd: float = 1.0                 # volts
    wire_cap_ff_per_um: float = 0.20
    clock_pin_cap_ff: float = 1.1    # DFF clock pin load
    clock_wire_factor: float = 1.6   # clock tree wiring overhead multiplier
    default_freq_hz: float = 1.0e9   # paper evaluates the cores at 1 GHz

    def toggle_energy_fj(self, cap_ff):
        """Energy of one output toggle: ½·C·V² (fF × V² -> fJ)."""
        return 0.5 * cap_ff * self.vdd * self.vdd


TECH_45NM = TechParams()


@dataclass(frozen=True)
class SramSpec:
    """Analytical SRAM macro model (CACTI-flavoured scaling laws)."""

    depth: int
    width: int

    @property
    def bits(self):
        return self.depth * self.width

    @property
    def read_energy_fj(self):
        """Per-read energy: wordline/bitline scaling ~ width · sqrt(depth)."""
        return 18.0 + 0.9 * self.width * math.sqrt(self.depth) / 4.0

    @property
    def write_energy_fj(self):
        return 22.0 + 1.1 * self.width * math.sqrt(self.depth) / 4.0

    @property
    def leakage_nw(self):
        return 0.9 * self.bits / 8.0

    @property
    def area_um2(self):
        return 0.55 * self.bits + 140.0


def cell(name):
    return CELLS[name]


def total_cell_leakage_nw(counts):
    """Leakage for a {cell_name: count} histogram."""
    return sum(CELLS[name].leakage_nw * count
               for name, count in counts.items())
