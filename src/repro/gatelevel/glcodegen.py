"""Compiled batched gate-level evaluators (GSIM-style codegen).

The interpreted :class:`~repro.gatelevel.gl_sim.BatchedGateLevelSimulator`
spends its cycle budget on per-group numpy dispatch: every level of the
levelized schedule costs a Python loop iteration, an if-chain on the
cell kind, and several small fancy-indexing temporaries.  This module
removes that dispatch entirely by *compiling* the schedule, once per
netlist, into a flat branch-free evaluator — the classic GSIM /
compiled-code logic-simulation move, applied to the bit-parallel lane
representation (one ``uint64`` word per net, one snapshot per bit lane):

* **compiled** — an ``exec``-generated Python function of straight-line
  uint64 bitwise statements, one local per net.  Constant nets are
  folded into the expressions (``CONST0`` -> ``0``, ``CONST1`` -> the
  all-ones word) and ``MUX2`` lowers to the 3-op XOR form
  ``c ^ ((b ^ c) & a)`` instead of 4 ops with a mask temporary.
* **c** — the same lowering emitted as a C translation unit, compiled
  with the system C compiler and loaded through ctypes, modeled on the
  FAME-side :mod:`repro.sim.cbackend` (same graceful-fallback contract:
  :class:`GLCodegenUnavailable` when no compiler is present).  The C
  kernel evaluates directly on the simulator's numpy value buffer, so
  there is no per-cycle conversion at all.

SRAM async read ports need per-lane address divergence and the
read-address memo.  The generated Python kernel calls back into the
simulator's vectorized port path at the port's exact level position;
the C kernel goes further and compiles the ports natively — per-lane
address assembly, store gather, data-bit repacking, and the
last-address/read-counter update all run inside the shared object,
against the same numpy buffers the interpreter uses (value array,
``(lanes, depth)`` stores, per-port last-address memos, the
``sram_reads`` matrix), so a cycle under the C backend needs zero
Python per evaluation.  Net forcing mutates values *between* levels,
so a simulator with active forces falls back
to the interpreted ``eval`` for those evaluations (forces only occur
during the brief retimed warm-up); everything else — toggle counting,
commit, SAIF extraction — is representation-identical, which is what
makes the compiled backends bit-exact drop-ins.

Generated artifacts are persisted in the content-addressed cache
(:mod:`repro.parallel.cache`): kind ``glpy`` holds the Python source
plus a marshalled code object (tagged with the interpreter's
``cache_tag``), kind ``glso`` the C source plus the compiled shared
object.  Keys compose the netlist's structural fingerprint with the
backend, lane word width, and codegen/schedule versions, so replay
worker processes compile-or-load at init and any structural change
invalidates automatically.  A cached shared object that no longer
loads (toolchain/arch change) is counted as ``cache.glso.stale``,
warned about once, and rebuilt live instead of raised.
"""

from __future__ import annotations

import ctypes
import hashlib
import marshal
import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import time
import warnings
from array import array

import numpy as np

from .netlist import CONST0, CONST1
from .gl_sim import StimulusMismatch, _note_step_phases
from ..obs import get_tracer, get_registry

#: Bump when the lowering rules or kernel ABI change (cache invalidation).
#: 3: whole-cycle ``gl_run_cycles`` entry point (native toggle counting,
#: DFF commit, SRAM write ports, packed stimulus, forces).
GLCODEGEN_VERSION = 3

#: Word width of the lane representation the kernels are generated for.
#: Kernels are lane-oblivious (full-word bitwise ops), so one artifact
#: serves every simulator lane count up to this width.
WORD_LANES = 64

_ENV_BACKEND = "REPRO_GL_BACKEND"
_ENV_CC = "REPRO_GL_CC"
_ENV_CFLAGS = "REPRO_GL_CFLAGS"
_ENV_OVERLAP = "REPRO_GL_OVERLAP"

BACKENDS = ("interp", "compiled", "c", "auto")

_M_INT = 0xFFFFFFFFFFFFFFFF
_CHUNK = 1500       # statements per generated C function (keeps cc fast)

_WARNED = set()


class GLCodegenError(Exception):
    pass


class GLCodegenUnavailable(GLCodegenError):
    """Requested backend cannot be built here (e.g. no C compiler)."""


def _warn_once(event, message):
    get_tracer().instant(f"glcodegen.{event}", cat="flow", detail=message)
    if event not in _WARNED:
        _WARNED.add(event)
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def reset_warnings():
    """Re-arm the once-per-event warnings (test hook)."""
    _WARNED.clear()


def resolve_backend(backend=None):
    """Normalize a backend request: explicit arg > env var > interp."""
    value = backend or os.environ.get(_ENV_BACKEND) or "interp"
    if value not in BACKENDS:
        raise GLCodegenError(
            f"unknown gate-level backend {value!r} "
            f"(choose from {', '.join(BACKENDS)})")
    return value


def resolve_overlap(overlap=None):
    """Normalize the per-process batch thread-overlap request:
    explicit arg > ``$REPRO_GL_OVERLAP`` > 1 (no overlap).

    Overlap > 1 lets a replay engine run that many independent snapshot
    batches on concurrent threads — real parallelism once the hot loop
    is one GIL-releasing native call per batch.
    """
    if overlap is None:
        overlap = os.environ.get(_ENV_OVERLAP) or 1
    try:
        overlap = int(overlap)
    except (TypeError, ValueError):
        raise GLCodegenError(
            f"gl overlap must be a positive integer, got {overlap!r}")
    if overlap < 1:
        raise GLCodegenError(
            f"gl overlap must be >= 1, got {overlap}")
    return overlap


def netlist_fingerprint(netlist):
    """Structural content hash of a netlist (memoized on the instance).

    Hashes the same column serialization the netlist pickles as, so two
    netlists that replay identically share one fingerprint regardless
    of which pipeline produced them — the kernel cache dedups across
    pipelines for free.
    """
    cached = getattr(netlist, "_glcodegen_fp", None)
    if cached is not None:
        return cached
    payload = pickle.dumps(netlist.__getstate__(),
                           protocol=pickle.HIGHEST_PROTOCOL)
    fp = hashlib.blake2b(payload, digest_size=20).hexdigest()
    try:
        netlist._glcodegen_fp = fp
    except Exception:
        pass
    return fp


def kernel_cache_key(netlist, backend, schedule):
    """Content-addressed cache key for one generated kernel.

    For the ``c`` backend the effective compiler flag string is folded
    in, so changing ``$REPRO_GL_CFLAGS`` rebuilds the shared object
    instead of silently loading one compiled under different flags.
    """
    from ..passes import compose_cache_key
    extra = {}
    if backend == "c":
        extra["cflags"] = " ".join(_cc_flags())
    return compose_cache_key(
        netlist_fingerprint(netlist), "",
        lanes=WORD_LANES, backend=backend,
        codegen=GLCODEGEN_VERSION, schedule=schedule.version, **extra)


# -- lowering ---------------------------------------------------------------

def _py_expr(cell, a, b, c):
    """Python uint64 expression for one gate; operands are expressions.

    ``M`` is the all-ones word in the generated function's scope.  Every
    operator keeps values below 2**64 (no shifts), so the Python ints
    never grow beyond one machine word.
    """
    if cell == "INV":
        return f"{a} ^ M"
    if cell == "BUF":
        return a
    if cell == "AND2":
        return f"{a} & {b}"
    if cell == "OR2":
        return f"{a} | {b}"
    if cell == "XOR2":
        return f"{a} ^ {b}"
    if cell == "XNOR2":
        return f"({a} ^ {b}) ^ M"
    if cell == "NAND2":
        return f"({a} & {b}) ^ M"
    if cell == "NOR2":
        return f"({a} | {b}) ^ M"
    if cell == "MUX2":
        # sel ? b : c as c ^ ((b ^ c) & sel): 3 ops, no mask temporary
        return f"{c} ^ (({b} ^ {c}) & {a})"
    raise GLCodegenError(f"cannot lower cell {cell!r}")


def _c_expr(cell, a, b, c):
    """C uint64_t expression for one gate (native ~ for inversions)."""
    if cell == "INV":
        return f"~{a}"
    if cell == "BUF":
        return a
    if cell == "AND2":
        return f"{a} & {b}"
    if cell == "OR2":
        return f"{a} | {b}"
    if cell == "XOR2":
        return f"{a} ^ {b}"
    if cell == "XNOR2":
        return f"~({a} ^ {b})"
    if cell == "NAND2":
        return f"~({a} & {b})"
    if cell == "NOR2":
        return f"~({a} | {b})"
    if cell == "MUX2":
        return f"{c} ^ (({b} ^ {c}) & {a})"
    raise GLCodegenError(f"cannot lower cell {cell!r}")


def _iter_gates(groups):
    """Yield (cell, out, in0, in1, in2) per gate from a level's groups."""
    for cell, outs, in0, in1, in2 in groups:
        outs_l = outs.tolist()
        in0_l = in0.tolist()
        in1_l = in1.tolist() if in1 is not None else None
        in2_l = in2.tolist() if in2 is not None else None
        for j, out in enumerate(outs_l):
            yield (cell, out, in0_l[j],
                   in1_l[j] if in1_l is not None else None,
                   in2_l[j] if in2_l is not None else None)


def generate_python_source(netlist, schedule):
    """Emit the straight-line Python evaluator for one netlist.

    The generated function has signature ``_gl_eval(L, M, RAMS)`` where
    ``L`` is the current value list (one Python int per net), ``M`` the
    all-ones word, and ``RAMS`` the read-port callbacks in schedule
    order; it returns the fully settled value list.  Net values live in
    locals (``v<net>``), the cheapest storage CPython has; nets that
    are only read (inputs, DFF outputs, untouched state) are preloaded
    from ``L`` once.
    """
    defined = set()
    preloads = []
    preloaded = set()

    def ref(net):
        if net == CONST0:
            return "0"
        if net == CONST1:
            return "M"
        if net not in defined and net not in preloaded:
            preloaded.add(net)
            preloads.append(f"    v{net} = L[{net}]")
        return f"v{net}"

    body = []
    ram_ordinal = 0
    for groups, rams in schedule.levels:
        for cell, out, i0, i1, i2 in _iter_gates(groups):
            expr = _py_expr(cell, ref(i0),
                            ref(i1) if i1 is not None else None,
                            ref(i2) if i2 is not None else None)
            body.append(f"    v{out} = {expr}")
            defined.add(out)
        for macro_idx, port_idx in rams:
            addr_arr, _w, data_arr = schedule.ram_ports[macro_idx][port_idx]
            addrs = [ref(n) for n in addr_arr.tolist()]
            addr_tuple = (f"({addrs[0]},)" if len(addrs) == 1
                          else f"({', '.join(addrs)})")
            data_nets = data_arr.tolist()
            targets = ", ".join(f"v{n}" for n in data_nets)
            if len(data_nets) == 1:
                targets += ","
            body.append(f"    {targets} = "
                        f"RAMS[{ram_ordinal}]({addr_tuple})")
            defined.update(data_nets)
            ram_ordinal += 1

    known = defined | preloaded
    entries = []
    for net in range(netlist.n_nets):
        if net == CONST0:
            entries.append("0")
        elif net == CONST1:
            entries.append("M")
        elif net in known:
            entries.append(f"v{net}")
        else:
            entries.append(f"L[{net}]")
    lines = ["def _gl_eval(L, M, RAMS):"]
    lines.extend(preloads)
    lines.extend(body)
    lines.append(f"    return [{', '.join(entries)}]")
    return "\n".join(lines)


def _c_const_array(name, values, ctype="int64_t"):
    """Emit a static const C array (at least one element)."""
    vals = list(values) or [0]
    lines = [f"static const {ctype} {name}[] = {{"]
    for i in range(0, len(vals), 16):
        lines.append("  " + ", ".join(str(v) for v in vals[i:i + 16])
                     + ",")
    lines.append("};")
    return lines


def generate_c_source(netlist, schedule):
    """Emit the whole-cycle C translation unit for one netlist.

    Two exported entry points share one generated eval core
    (``eval_once``: chunked straight-line gate statements, native SRAM
    read ports, force application at the interpreter's exact points —
    before the first level and after every level):

    * ``gl_eval(V, stores, lasts, reads, lanes)`` — settle combinational
      logic once, forces off (the PR-6 ABI, kept for single evals);
    * ``gl_run_cycles(gl_state *S, gl_run *R)`` — the whole-replay hot
      loop.  For each of ``R->n_cycles`` cycles it applies packed pokes,
      installs that cycle's force segment (or the ambient forces),
      settles logic, evaluates expected-output checks (counting
      mismatching lanes, or stopping at the first one in strict mode),
      ripple-carry adds the XOR diff into the vertical toggle-counter
      arena, runs every SRAM write port, and gather/scatter-commits the
      DFFs — all natively, so a replay batch is **one** GIL-releasing
      foreign call.  Returns the number of fully committed cycles
      (``< n_cycles`` only on a strict stop, recorded in ``R->stop`` as
      ``{cycle, flat check index, lane}``).

    ``gl_state`` points at the simulator's live numpy buffers (values,
    prev-values, toggle arena + in-use plane count, SRAM stores,
    read-port memos, access counters, DFF scratch); ``gl_run`` at the
    :class:`~repro.gatelevel.gl_sim.PackedStimulus` flat arrays.  Gate
    chunks compile at the translation unit's base optimization level
    (codegen keeps ``-O0`` compile times tolerable on big netlists)
    while the fixed-size runtime helpers — toggle tick, write ports,
    DFF commit, the run driver — are annotated ``HOT`` (``-O2`` under
    gcc) since they dominate the per-cycle work and never grow with
    netlist size.  Raises :class:`GLCodegenUnavailable` for netlists
    the C lowering cannot express (SRAM words or addresses wider than
    64/62 bits — those stay on the arbitrary-precision Python paths).
    """
    for macro in netlist.srams:
        if macro.width > 64:
            raise GLCodegenUnavailable(
                f"SRAM macro {macro.name!r} is {macro.width} bits wide; "
                f"the C lowering packs one uint64 word per entry")
        for _en, addr_nets, _data_nets in macro.write_ports:
            if len(addr_nets) > 62:
                raise GLCodegenUnavailable(
                    f"SRAM macro {macro.name!r} has a "
                    f"{len(addr_nets)}-bit write address; the C "
                    f"lowering assembles addresses in an int64")
    n_dff = len(netlist.dffs)
    parts = [
        "#include <stdint.h>",
        "#include <time.h>",
        "#define M 0xFFFFFFFFFFFFFFFFULL",
        f"#define N_NETS {netlist.n_nets}",
        f"#define N_DFF {n_dff}",
        "#if defined(__GNUC__) && !defined(__clang__)",
        '#define HOT __attribute__((optimize("O2")))',
        "#else",
        "#define HOT",
        "#endif",
        "typedef struct {",
        "  int64_t n;",
        "  const int64_t *nets;",
        "  const uint64_t *masks;",
        "  const uint64_t *vals;",
        "} gl_forces;",
        "static HOT void apply_forces(uint64_t *V, "
        "const gl_forces *F) {",
        "  for (int64_t i = 0; i < F->n; i++) {",
        "    int64_t net = F->nets[i];",
        "    V[net] = (V[net] & ~F->masks[i]) | F->vals[i];",
        "  }",
        "}",
        "static HOT int64_t lowbit(uint64_t x) {",
        "#if defined(__GNUC__)",
        "  return (int64_t)__builtin_ctzll(x);",
        "#else",
        "  int64_t i = 0;",
        "  while (!((x >> i) & 1)) i++;",
        "  return i;",
        "#endif",
        "}",
    ]

    def ref(net):
        if net == CONST0:
            return "0ULL"
        if net == CONST1:
            return "M"
        return f"V[{net}]"

    driver = []
    stmts = []
    chunk_id = 0
    ram_id = 0

    def flush_chunks():
        nonlocal stmts, chunk_id
        for start in range(0, len(stmts), _CHUNK):
            fn = f"chunk_{chunk_id}"
            chunk_id += 1
            parts.append(f"static void {fn}(uint64_t *V, "
                         f"const gl_forces *F) {{")
            parts.append("  (void)F;")
            parts.extend(stmts[start:start + _CHUNK])
            parts.append("}")
            driver.append(f"  {fn}(V, F);")
        stmts = []

    for groups, rams in schedule.levels:
        for cell, out, i0, i1, i2 in _iter_gates(groups):
            expr = _c_expr(cell, ref(i0),
                           ref(i1) if i1 is not None else None,
                           ref(i2) if i2 is not None else None)
            stmts.append(f"  V[{out}] = {expr};")
        for macro_idx, port_idx in rams:
            flush_chunks()
            macro = netlist.srams[macro_idx]
            addr_arr, _w, data_arr = (
                schedule.ram_ports[macro_idx][port_idx])
            addr_nets = addr_arr.tolist()
            data_nets = data_arr.tolist()
            if len(addr_nets) > 62:
                raise GLCodegenUnavailable(
                    f"SRAM macro {macro.name!r} has a "
                    f"{len(addr_nets)}-bit read address; the C "
                    f"lowering assembles addresses in an int64")
            width = len(data_nets)
            terms = []
            for i, net in enumerate(addr_nets):
                bit = f"(int64_t)(({ref(net)} >> lane) & 1)"
                terms.append(f"({bit} << {i})" if i else bit)
            fn = f"ram_{ram_id}"
            parts.append(
                f"static HOT void {fn}(uint64_t *V, const uint64_t *S, "
                f"int64_t *LA, int64_t *RD, int64_t lanes) {{")
            parts.append(f"  uint64_t acc[{width}] = {{0}};")
            parts.append("  for (int64_t lane = 0; lane < lanes; "
                         "lane++) {")
            parts.append(f"    int64_t addr = {' | '.join(terms)};")
            parts.append(
                f"    uint64_t w = addr < {macro.depth} ? "
                f"S[(uint64_t)lane * {macro.depth}u + (uint64_t)addr] "
                f": 0;")
            parts.append(
                f"    for (int j = 0; j < {width}; j++) "
                f"acc[j] |= ((w >> j) & 1) << lane;")
            parts.append("    if (addr != LA[lane]) "
                         "{ LA[lane] = addr; RD[lane] += 1; }")
            parts.append("  }")
            parts.extend(f"  V[{net}] = acc[{j}];"
                         for j, net in enumerate(data_nets))
            parts.append("}")
            driver.append(
                f"  ram_{ram_id}(V, stores[{macro_idx}], "
                f"lasts[{ram_id}], reads + {macro_idx} * lanes, "
                f"lanes);")
            ram_id += 1
        # forces re-assert after every level, matching the interpreter
        stmts.append("  if (F->n) apply_forces(V, F);")
    flush_chunks()

    parts.append("static void eval_once(uint64_t *V, "
                 "const gl_forces *F, uint64_t **stores, "
                 "int64_t **lasts, int64_t *reads, int64_t lanes) {")
    parts.append("  (void)stores; (void)lasts; (void)reads; "
                 "(void)lanes;")
    parts.append("  if (F->n) apply_forces(V, F);")
    parts.extend(driver)
    parts.append("}")

    parts.append("void gl_eval(uint64_t *V, uint64_t **stores, "
                 "int64_t **lasts, int64_t *reads, int64_t lanes) {")
    parts.append("  gl_forces F = {0, 0, 0, 0};")
    parts.append("  eval_once(V, &F, stores, lasts, reads, lanes);")
    parts.append("}")

    # -- whole-cycle runtime --------------------------------------------
    parts.extend(_c_const_array(
        "DFF_D", schedule.dff_d[:n_dff].tolist() if n_dff else []))
    parts.extend(_c_const_array(
        "DFF_Q", schedule.dff_q[:n_dff].tolist() if n_dff else []))
    parts.extend([
        "static HOT void commit_dffs(uint64_t *V, uint64_t *T) {",
        "  for (int64_t i = 0; i < N_DFF; i++) T[i] = V[DFF_D[i]];",
        "  for (int64_t i = 0; i < N_DFF; i++) V[DFF_Q[i]] = T[i];",
        "}",
        # Fused XOR-diff + prev update + vertical ripple-carry add.
        # Walking planes at stride N_NETS is fine: the carry usually
        # dies after one or two planes.
        "static HOT int64_t toggle_tick(uint64_t *V, uint64_t *P, "
        "uint64_t *PL, int64_t cap, int64_t used, uint64_t active) {",
        "  for (int64_t i = 0; i < N_NETS; i++) {",
        "    uint64_t cur = V[i];",
        "    uint64_t carry = (cur ^ P[i]) & active;",
        "    P[i] = cur;",
        "    int64_t p = 0;",
        "    while (carry && p < cap) {",
        "      uint64_t *pl = PL + (uint64_t)p * N_NETS + i;",
        "      uint64_t nc = *pl & carry;",
        "      *pl ^= carry;",
        "      carry = nc;",
        "      p++;",
        "    }",
        "    if (p > used) used = p;",
        "  }",
        "  return used;",
        "}",
        "static double now_ns(void) {",
        "  struct timespec ts;",
        "  clock_gettime(CLOCK_MONOTONIC, &ts);",
        "  return (double)ts.tv_sec * 1e9 + (double)ts.tv_nsec;",
        "}",
    ])

    wport_driver = []
    wport_id = 0
    for macro_idx, macro in enumerate(netlist.srams):
        for en, addr_nets, data_nets in macro.write_ports:
            terms = []
            for i, net in enumerate(addr_nets):
                bit = f"(int64_t)(({ref(net)} >> lane) & 1)"
                terms.append(f"({bit} << {i})" if i else bit)
            dterms = []
            for i, net in enumerate(data_nets):
                bit = f"(({ref(net)} >> lane) & 1)"
                dterms.append(f"({bit} << {i})" if i else bit)
            fn = f"wport_{wport_id}"
            parts.append(
                f"static HOT void {fn}(uint64_t *V, uint64_t *S, "
                f"int64_t *WR, uint64_t active) {{")
            parts.append(f"  uint64_t en = {ref(en)} & active;")
            parts.append("  while (en) {")
            parts.append("    int64_t lane = lowbit(en);")
            parts.append("    en &= en - 1;")
            parts.append(
                f"    int64_t addr = "
                f"{' | '.join(terms) if terms else '0'};")
            parts.append(f"    if (addr >= {macro.depth}) continue;")
            parts.append(
                f"    uint64_t w = "
                f"{' | '.join(dterms) if dterms else '0ULL'};")
            parts.append(
                f"    S[(uint64_t)lane * {macro.depth}u + "
                f"(uint64_t)addr] = w;")
            parts.append("    WR[lane] += 1;")
            parts.append("  }")
            parts.append("}")
            wport_driver.append(
                f"    wport_{wport_id}(V, S->stores[{macro_idx}], "
                f"S->writes + {macro_idx} * lanes, S->active_mask);")
            wport_id += 1

    parts.extend([
        "typedef struct {",
        "  uint64_t *V;",
        "  uint64_t *PREV;",
        "  uint64_t *PLANES;",
        "  int64_t planes_cap;",
        "  int64_t *planes_used;",
        "  uint64_t **stores;",
        "  int64_t **lasts;",
        "  int64_t *reads;",
        "  int64_t *writes;",
        "  uint64_t *dff_tmp;",
        "  int64_t lanes;",
        "  uint64_t active_mask;",
        "} gl_state;",
        "typedef struct {",
        "  int64_t n_cycles;",
        "  const int64_t *poke_counts;",
        "  const uint64_t *poke_masks;",
        "  const int64_t *poke_off;",
        "  const int64_t *poke_cnt;",
        "  const int64_t *poke_nets;",
        "  const uint64_t *poke_words;",
        "  const int64_t *check_counts;",
        "  const uint64_t *check_masks;",
        "  const int64_t *check_off;",
        "  const int64_t *check_cnt;",
        "  const int64_t *check_nets;",
        "  const uint64_t *check_words;",
        "  const int64_t *force_counts;",
        "  const int64_t *force_off;",
        "  const int64_t *force_nets;",
        "  const uint64_t *force_masks;",
        "  const uint64_t *force_vals;",
        "  int64_t ambient_n;",
        "  const int64_t *ambient_nets;",
        "  const uint64_t *ambient_masks;",
        "  const uint64_t *ambient_vals;",
        "  int64_t strict;",
        "  int64_t *mismatches;",
        "  int64_t *stop;",
        "  int64_t profile;",
        "  double *phase_ns;",
        "} gl_run;",
        "HOT int64_t gl_run_cycles(gl_state *S, gl_run *R) {",
        "  uint64_t *V = S->V;",
        "  int64_t lanes = S->lanes;",
        "  int64_t used = *S->planes_used;",
        "  int64_t poke_op = 0, check_op = 0;",
        "  gl_forces F;",
        "  double t0 = 0.0, t1 = 0.0;",
        "  R->stop[0] = -1; R->stop[1] = -1; R->stop[2] = -1;",
        "  for (int64_t t = 0; t < R->n_cycles; t++) {",
        "    if (R->profile) t0 = now_ns();",
        "    if (R->poke_counts) {",
        "      int64_t ops = R->poke_counts[t];",
        "      for (int64_t k = 0; k < ops; k++, poke_op++) {",
        "        uint64_t mask = R->poke_masks[poke_op];",
        "        int64_t off = R->poke_off[poke_op];",
        "        int64_t cnt = R->poke_cnt[poke_op];",
        "        const int64_t *nets = R->poke_nets + off;",
        "        const uint64_t *words = R->poke_words + off;",
        "        for (int64_t j = 0; j < cnt; j++)",
        "          V[nets[j]] = (V[nets[j]] & ~mask) | "
        "(words[j] & mask);",
        "      }",
        "    }",
        "    if (R->force_counts) {",
        "      F.n = R->force_counts[t];",
        "      F.nets = R->force_nets + R->force_off[t];",
        "      F.masks = R->force_masks + R->force_off[t];",
        "      F.vals = R->force_vals + R->force_off[t];",
        "    } else {",
        "      F.n = R->ambient_n;",
        "      F.nets = R->ambient_nets;",
        "      F.masks = R->ambient_masks;",
        "      F.vals = R->ambient_vals;",
        "    }",
        "    if (R->profile) { t1 = now_ns(); "
        "R->phase_ns[0] += t1 - t0; t0 = t1; }",
        "    eval_once(V, &F, S->stores, S->lasts, S->reads, lanes);",
        "    if (R->profile) { t1 = now_ns(); "
        "R->phase_ns[1] += t1 - t0; t0 = t1; }",
        "    if (R->check_counts) {",
        "      int64_t ops = R->check_counts[t];",
        "      for (int64_t k = 0; k < ops; k++, check_op++) {",
        "        int64_t off = R->check_off[check_op];",
        "        int64_t cnt = R->check_cnt[check_op];",
        "        const int64_t *nets = R->check_nets + off;",
        "        const uint64_t *words = R->check_words + off;",
        "        uint64_t diff = 0;",
        "        for (int64_t j = 0; j < cnt; j++)",
        "          diff |= V[nets[j]] ^ words[j];",
        "        diff &= R->check_masks[check_op];",
        "        while (diff) {",
        "          int64_t lane = lowbit(diff);",
        "          diff &= diff - 1;",
        "          R->mismatches[lane] += 1;",
        "          if (R->strict) {",
        "            R->stop[0] = t; R->stop[1] = check_op; "
        "R->stop[2] = lane;",
        "            *S->planes_used = used;",
        "            return t;",
        "          }",
        "        }",
        "      }",
        "    }",
        "    if (R->profile) { t1 = now_ns(); "
        "R->phase_ns[2] += t1 - t0; t0 = t1; }",
        "    used = toggle_tick(V, S->PREV, S->PLANES, "
        "S->planes_cap, used, S->active_mask);",
        "    if (R->profile) { t1 = now_ns(); "
        "R->phase_ns[3] += t1 - t0; t0 = t1; }",
        *wport_driver,
        "    if (R->profile) { t1 = now_ns(); "
        "R->phase_ns[4] += t1 - t0; t0 = t1; }",
        "    commit_dffs(V, S->dff_tmp);",
        "    if (R->profile) { t1 = now_ns(); "
        "R->phase_ns[5] += t1 - t0; t0 = t1; }",
        "  }",
        "  *S->planes_used = used;",
        "  return R->n_cycles;",
        "}",
    ])
    return "\n".join(parts)


# -- kernels ----------------------------------------------------------------

# np.frombuffer over an array.array gives a zero-copy *writable* view
# (array.array exports a writable buffer); probe once in case an exotic
# numpy build disagrees, and fall back to copying into the old array.
_FROMBUFFER_WRITABLE = np.frombuffer(
    array("Q", [0]), dtype=np.uint64).flags.writeable


def _make_ram_callbacks(sim):
    """Per-simulator read-port callbacks, in schedule traversal order."""
    cbs = []
    for _groups, rams in sim.schedule.levels:
        for macro_idx, port_idx in rams:
            def cb(addr_words, _m=macro_idx, _p=port_idx, _sim=sim):
                words = _sim._read_port_lanes(
                    _m, _p, np.array(addr_words, dtype=np.uint64))
                return words.tolist()
            cbs.append(cb)
    return cbs


class PythonKernel:
    """exec-generated straight-line evaluator (backend ``compiled``).

    ``eval`` round-trips the value array through a Python list: the
    kernel consumes ``values.tolist()``, computes every net in locals,
    and returns the settled list, which becomes the new value array via
    ``array('Q')`` + zero-copy ``np.frombuffer`` — the cheapest
    list->uint64-array path CPython offers.  Rebinding ``sim._values``
    is safe because every consumer reads the attribute afresh.
    """

    backend = "compiled"

    def __init__(self, fn, source, compile_seconds=0.0, from_cache=False):
        self._fn = fn
        self.source = source
        self.compile_seconds = compile_seconds
        self.from_cache = from_cache

    def install(self, sim):
        sim._gl_ram_cbs = _make_ram_callbacks(sim)

    def eval(self, sim):
        out = self._fn(sim._values.tolist(), _M_INT, sim._gl_ram_cbs)
        if _FROMBUFFER_WRITABLE:
            sim._values = np.frombuffer(array("Q", out), dtype=np.uint64)
        else:
            sim._values[:] = out


class _GlState(ctypes.Structure):
    """Mirror of the generated ``gl_state`` struct (live sim buffers)."""

    _fields_ = [
        ("V", ctypes.c_void_p),
        ("PREV", ctypes.c_void_p),
        ("PLANES", ctypes.c_void_p),
        ("planes_cap", ctypes.c_int64),
        ("planes_used", ctypes.c_void_p),
        ("stores", ctypes.c_void_p),
        ("lasts", ctypes.c_void_p),
        ("reads", ctypes.c_void_p),
        ("writes", ctypes.c_void_p),
        ("dff_tmp", ctypes.c_void_p),
        ("lanes", ctypes.c_int64),
        ("active_mask", ctypes.c_uint64),
    ]


class _GlRun(ctypes.Structure):
    """Mirror of the generated ``gl_run`` struct (packed stimulus)."""

    _fields_ = [
        ("n_cycles", ctypes.c_int64),
        ("poke_counts", ctypes.c_void_p),
        ("poke_masks", ctypes.c_void_p),
        ("poke_off", ctypes.c_void_p),
        ("poke_cnt", ctypes.c_void_p),
        ("poke_nets", ctypes.c_void_p),
        ("poke_words", ctypes.c_void_p),
        ("check_counts", ctypes.c_void_p),
        ("check_masks", ctypes.c_void_p),
        ("check_off", ctypes.c_void_p),
        ("check_cnt", ctypes.c_void_p),
        ("check_nets", ctypes.c_void_p),
        ("check_words", ctypes.c_void_p),
        ("force_counts", ctypes.c_void_p),
        ("force_off", ctypes.c_void_p),
        ("force_nets", ctypes.c_void_p),
        ("force_masks", ctypes.c_void_p),
        ("force_vals", ctypes.c_void_p),
        ("ambient_n", ctypes.c_int64),
        ("ambient_nets", ctypes.c_void_p),
        ("ambient_masks", ctypes.c_void_p),
        ("ambient_vals", ctypes.c_void_p),
        ("strict", ctypes.c_int64),
        ("mismatches", ctypes.c_void_p),
        ("stop", ctypes.c_void_p),
        ("profile", ctypes.c_int64),
        ("phase_ns", ctypes.c_void_p),
    ]


def _data_ptr(arr):
    """Raw data pointer of a numpy array, or 0 for ``None``."""
    return arr.ctypes.data if arr is not None else 0


class CKernel:
    """gcc+ctypes whole-cycle evaluator (backend ``c``).

    Operates in place on the simulator's numpy buffers — value array,
    SRAM word stores, last-address memos, access counters, the toggle
    arena — through raw pointers.  The long-lived pointer tables are
    bound once per simulator in :meth:`install`; buffers the simulator
    is allowed to *rebind* (``_prev`` on ``clear_activity``, the toggle
    arena on growth) are re-read per call in :meth:`run_cycles`, which
    executes an entire replay batch — stimulus, eval, checks, toggle
    counting, SRAM write ports, DFF commit — as one foreign call that
    releases the GIL (ctypes drops it around every ``CDLL`` call), so
    threads running independent batches overlap natively.
    """

    backend = "c"

    def __init__(self, lib, source, workdir,
                 compile_seconds=0.0, from_cache=False):
        self._lib = lib                    # keep the CDLL alive
        self._ptr_t = ctypes.POINTER(ctypes.c_uint64)
        fn = lib.gl_eval
        fn.argtypes = [self._ptr_t,
                       ctypes.POINTER(ctypes.c_void_p),
                       ctypes.POINTER(ctypes.c_void_p),
                       ctypes.POINTER(ctypes.c_int64),
                       ctypes.c_int64]
        fn.restype = None
        self._fn = fn
        run = lib.gl_run_cycles
        run.argtypes = [ctypes.POINTER(_GlState), ctypes.POINTER(_GlRun)]
        run.restype = ctypes.c_int64
        self._run = run
        self.source = source
        self.workdir = workdir
        self.compile_seconds = compile_seconds
        self.from_cache = from_cache

    def install(self, sim):
        n_srams = len(sim.netlist.srams)
        stores = (ctypes.c_void_p * max(n_srams, 1))()
        for i, store in enumerate(sim._sram_data):
            stores[i] = store.ctypes.data
        port_memos = []
        for _groups, rams in sim.schedule.levels:
            port_memos.extend(sim._last_addrs[m][p] for m, p in rams)
        lasts = (ctypes.c_void_p * max(len(port_memos), 1))()
        for i, memo in enumerate(port_memos):
            lasts[i] = memo.ctypes.data
        reads = sim.sram_reads.ctypes.data_as(
            ctypes.POINTER(ctypes.c_int64))
        sim._gl_c_args = (stores, lasts, reads,
                          ctypes.c_int64(sim.lanes))
        # keep the memo arrays reachable while the pointer table lives
        sim._gl_c_memos = port_memos
        # per-simulator DFF gather scratch: commit must read every D
        # before scattering to Q (aliasing), and it cannot live in the
        # .so because one library serves many sims on many threads
        sim._gl_dff_tmp = np.zeros(
            max(len(sim.netlist.dffs), 1), dtype=np.uint64)

    def eval(self, sim):
        stores, lasts, reads, lanes = sim._gl_c_args
        self._fn(sim._values.ctypes.data_as(self._ptr_t),
                 stores, lasts, reads, lanes)

    def run_cycles(self, sim, n, stim, strict, mismatches):
        """Run ``n`` cycles natively; returns committed-cycle count.

        Builds the ``gl_state`` view fresh per call (``_prev`` and the
        toggle arena may have been rebound since the last one), hands
        the packed stimulus' flat arrays to ``gl_run_cycles``, then
        syncs the plane count and cycle counter back and raises
        :class:`~repro.gatelevel.gl_sim.StimulusMismatch` on a strict
        stop.
        """
        stores, lasts, reads, _lanes = sim._gl_c_args
        arena = sim._toggle_arena
        buf = sim._plane_count_buf
        buf[0] = sim._plane_count
        state = _GlState(
            V=sim._values.ctypes.data,
            PREV=sim._prev.ctypes.data,
            PLANES=arena.ctypes.data,
            planes_cap=arena.shape[0],
            planes_used=buf.ctypes.data,
            stores=ctypes.addressof(stores),
            lasts=ctypes.addressof(lasts),
            reads=sim.sram_reads.ctypes.data,
            writes=sim.sram_writes.ctypes.data,
            dff_tmp=sim._gl_dff_tmp.ctypes.data,
            lanes=sim.lanes,
            active_mask=int(sim.active_mask))
        flat = stim.flat() if stim is not None else None
        stop = np.full(3, -1, dtype=np.int64)
        phase_ns = np.zeros(6, dtype=np.float64)
        run = _GlRun(
            n_cycles=n,
            strict=1 if strict else 0,
            mismatches=mismatches.ctypes.data,
            stop=stop.ctypes.data,
            profile=1,
            phase_ns=phase_ns.ctypes.data)
        if flat is not None:
            run.poke_counts = _data_ptr(flat["poke_counts"])
            run.poke_masks = _data_ptr(flat["poke_masks"])
            run.poke_off = _data_ptr(flat["poke_off"])
            run.poke_cnt = _data_ptr(flat["poke_cnt"])
            run.poke_nets = _data_ptr(flat["poke_nets"])
            run.poke_words = _data_ptr(flat["poke_words"])
            run.check_counts = _data_ptr(flat["check_counts"])
            run.check_masks = _data_ptr(flat["check_masks"])
            run.check_off = _data_ptr(flat["check_off"])
            run.check_cnt = _data_ptr(flat["check_cnt"])
            run.check_nets = _data_ptr(flat["check_nets"])
            run.check_words = _data_ptr(flat["check_words"])
        if flat is not None and flat["force_counts"] is not None:
            run.force_counts = _data_ptr(flat["force_counts"])
            run.force_off = _data_ptr(flat["force_off"])
            run.force_nets = _data_ptr(flat["force_nets"])
            run.force_masks = _data_ptr(flat["force_masks"])
            run.force_vals = _data_ptr(flat["force_vals"])
        elif sim._force_nets is not None:
            run.ambient_n = len(sim._force_nets)
            run.ambient_nets = _data_ptr(sim._force_nets)
            run.ambient_masks = _data_ptr(sim._force_masks)
            run.ambient_vals = _data_ptr(sim._force_vals)
        # the flat dict and ambient arrays stay referenced by locals /
        # the sim for the duration of the call, keeping pointers valid
        done = int(self._run(ctypes.byref(state), ctypes.byref(run)))
        sim._plane_count = int(buf[0])
        sim.cycles += done
        _note_step_phases(phase_ns / 1e9, done)
        if done < n:
            t, op, lane = (int(x) for x in stop)
            raise StimulusMismatch(t, stim.check_meta[op][1], lane)
        return done


# -- compilation + artifact cache -------------------------------------------

def _note_build(backend, seconds, from_cache):
    registry = get_registry()
    registry.counter("glcodegen.compile_seconds").inc(float(seconds))
    registry.counter("glcodegen.builds").inc()
    if from_cache:
        registry.counter("glcodegen.cache_loads").inc()
    get_tracer().instant("glcodegen.kernel", cat="flow", backend=backend,
                         seconds=seconds, from_cache=from_cache)


def compile_python_kernel(netlist, schedule, use_cache=True):
    """Build (or load from cache) the generated-Python kernel.

    Cache kind ``glpy`` stores the source plus a marshalled code object
    tagged with ``sys.implementation.cache_tag``: a hit on the same
    interpreter skips both codegen *and* the ~0.5 s ``compile()``; a
    hit from a different interpreter recompiles from the cached source.
    """
    from ..parallel.cache import get_cache, cache_enabled

    t0 = time.perf_counter()
    tag = sys.implementation.cache_tag
    key = None
    entry = None
    if use_cache and cache_enabled():
        key = kernel_cache_key(netlist, "compiled", schedule)
        entry = get_cache().get("glpy", key)
    if entry is not None:
        source = entry["source"]
        code = None
        if entry.get("tag") == tag and entry.get("marshal"):
            try:
                code = marshal.loads(entry["marshal"])
            except Exception:
                code = None     # foreign/corrupt marshal: use the source
        if code is None:
            code = compile(source, "<glcodegen kernel>", "exec")
    else:
        source = generate_python_source(netlist, schedule)
        code = compile(source, "<glcodegen kernel>", "exec")
        if key is not None:
            get_cache().put("glpy", key, {
                "version": GLCODEGEN_VERSION,
                "source": source,
                "tag": tag,
                "marshal": marshal.dumps(code),
            })
    namespace = {}
    exec(code, namespace)  # noqa: S102 - our own generated code
    seconds = time.perf_counter() - t0
    _note_build("compiled", seconds, entry is not None)
    return PythonKernel(namespace["_gl_eval"], source,
                        compile_seconds=seconds,
                        from_cache=entry is not None)


def _find_compiler():
    override = os.environ.get(_ENV_CC)
    if override:
        if shutil.which(override) or (os.path.isfile(override)
                                      and os.access(override, os.X_OK)):
            return override
        raise GLCodegenUnavailable(
            f"$REPRO_GL_CC={override!r} is not an executable compiler")
    compiler = shutil.which("gcc") or shutil.which("cc")
    if compiler is None:
        raise GLCodegenUnavailable("no C compiler on PATH")
    return compiler


def _cc_flags():
    # -O1 buys ~10-20% on the whole-cycle run_cycles loop (the toggle
    # ripple and commit loops vectorize a little) at a still-small
    # compile cost on these straight-line translation units; override
    # with $REPRO_GL_CFLAGS for tuning experiments (-O0 for fastest
    # builds).  The flags are folded into the kernel cache key, so
    # changing them rebuilds rather than reusing a stale .so.
    env = os.environ.get(_ENV_CFLAGS)
    if env:
        return env.split()
    return ["-O1"]


def _build_so(netlist, schedule, workdir):
    """Generate + compile the shared object; returns (source, so_path)."""
    compiler = _find_compiler()
    source = generate_c_source(netlist, schedule)
    c_path = os.path.join(workdir, "gl_kernel.c")
    so_path = os.path.join(workdir, "gl_kernel.so")
    with open(c_path, "w") as f:
        f.write(source)
    cmd = [compiler, *_cc_flags(), "-fPIC", "-shared",
           "-o", so_path, c_path]
    try:
        subprocess.run(cmd, check=True, capture_output=True, timeout=600)
    except (subprocess.CalledProcessError,
            subprocess.TimeoutExpired) as exc:
        raise GLCodegenUnavailable(
            f"C compilation failed: {exc}") from exc
    return source, so_path


def compile_c_kernel(netlist, schedule, use_cache=True):
    """Build (or load from cache) the gcc+ctypes kernel.

    Cache kind ``glso`` stores the C source and the compiled shared
    object.  A cached object that fails to ``CDLL`` (ABI/arch/toolchain
    drift) is counted as ``cache.glso.stale``, warned about once, and
    rebuilt live — never raised.  Raises :class:`GLCodegenUnavailable`
    only when no working C compiler can be found for a live build.
    """
    from ..parallel.cache import get_cache, cache_enabled

    t0 = time.perf_counter()
    key = None
    if use_cache and cache_enabled():
        key = kernel_cache_key(netlist, "c", schedule)
    workdir = tempfile.mkdtemp(prefix="repro_glsim_")
    so_path = os.path.join(workdir, "gl_kernel.so")

    entry = get_cache().get("glso", key) if key is not None else None
    from_cache = False
    if entry is not None:
        with open(so_path, "wb") as f:
            f.write(entry["so"])
        try:
            lib = ctypes.CDLL(so_path)
            # resolve both entry points now, not lazily
            lib.gl_eval
            lib.gl_run_cycles
            source = entry["source"]
            from_cache = True
        except (OSError, AttributeError) as exc:
            # Stale artifact (different toolchain/arch/ABI than the
            # one that built it): fall back to regeneration, visibly.
            get_registry().counter("cache.glso.stale").inc()
            _warn_once(
                "glso-stale",
                f"cached compiled replay kernel failed to load ({exc}); "
                f"regenerating it")
            entry = None
    if not from_cache:
        source, so_path = _build_so(netlist, schedule, workdir)
        lib = ctypes.CDLL(so_path)
        if key is not None:
            with open(so_path, "rb") as f:
                so_bytes = f.read()
            get_cache().put("glso", key, {
                "version": GLCODEGEN_VERSION,
                "source": source,
                "so": so_bytes,
            })
    seconds = time.perf_counter() - t0
    _note_build("c", seconds, from_cache)
    return CKernel(lib, source, workdir,
                   compile_seconds=seconds, from_cache=from_cache)


def build_kernel(netlist, schedule, backend, use_cache=True):
    """Build the evaluation kernel for ``backend``; None for ``interp``.

    Implements the fallback ladder ``c -> compiled-python -> interp``:
    an explicit ``c`` request on a host without a compiler degrades to
    the compiled-Python kernel (one warning + a counter), and ``auto``
    takes the best available rung silently.  Only ``interp`` — or a
    codegen failure, which the interpreter is immune to by construction
    — returns None.
    """
    backend = resolve_backend(backend)
    if backend == "interp":
        return None
    with get_tracer().span("glcodegen.build", cat="flow",
                           backend=backend) as span:
        if backend in ("c", "auto"):
            try:
                kernel = compile_c_kernel(netlist, schedule,
                                          use_cache=use_cache)
                span.set(backend_used="c",
                         from_cache=kernel.from_cache)
                return kernel
            except GLCodegenUnavailable as exc:
                get_registry().counter("glcodegen.c_fallbacks").inc()
                if backend == "c":
                    _warn_once(
                        "c-fallback",
                        f"C replay backend unavailable ({exc}); using "
                        f"the compiled-Python backend instead")
        try:
            kernel = compile_python_kernel(netlist, schedule,
                                           use_cache=use_cache)
        except GLCodegenError as exc:
            get_registry().counter("glcodegen.interp_fallbacks").inc()
            _warn_once(
                "interp-fallback",
                f"gate-level codegen failed ({exc}); using the "
                f"interpreted evaluator")
            span.set(backend_used="interp")
            return None
        span.set(backend_used="compiled", from_cache=kernel.from_cache)
        return kernel
