"""Standalone IR lint: ``python -m repro.passes.lint [targets...]``.

Runs the structural verifier (:mod:`repro.passes.verifier`) over
elaborated circuits without executing any flow.  A target is:

* a design configuration name from :data:`repro.core.configs.CONFIGS`
  (e.g. ``rocket_mini``), or
* a Python file / directory of Python files (e.g. ``examples/``): each
  file is imported and every zero-argument :class:`repro.hdl.dsl.Module`
  subclass it defines is elaborated and linted.

With no targets, every registered design configuration is linted.
``--fame`` and ``--scan`` additionally lint a FAME1-transformed and a
scan-chain-inserted copy of each circuit, exercising the transform
passes themselves.  Exit status is non-zero if any issue is found.
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import sys

from .verifier import verify_circuit


def lint_circuit(circuit):
    """Verify one circuit; returns the list of issues (empty = clean)."""
    return verify_circuit(circuit)


def _module_classes_in_file(path):
    """Import a Python file and yield the Module subclasses it defines."""
    from ..hdl.dsl import Module

    name = "_repro_lint_" + os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    # Imports only: files guard their entry points with __main__ checks.
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    for attr in vars(module).values():
        if (isinstance(attr, type) and issubclass(attr, Module)
                and attr is not Module
                and getattr(attr, "__module__", "") == name):
            yield attr


def iter_targets(names):
    """Yield ``(label, build_fn)`` for every lintable target."""
    from ..core.configs import CONFIGS

    if not names:
        names = sorted(CONFIGS)
    for name in names:
        if name in CONFIGS:
            yield name, CONFIGS[name].build_circuit
        elif os.path.isdir(name):
            for fname in sorted(os.listdir(name)):
                if fname.endswith(".py"):
                    yield from iter_targets([os.path.join(name, fname)])
        elif name.endswith(".py") and os.path.isfile(name):
            from ..hdl.elaborate import elaborate
            for cls in _module_classes_in_file(name):
                try:
                    instance = cls()
                except TypeError:
                    continue  # needs constructor arguments; not lintable
                label = f"{os.path.basename(name)}:{cls.__name__}"
                yield label, (lambda c=cls: elaborate(c()))
        else:
            raise SystemExit(
                f"lint: unknown target {name!r} (not a design config, "
                f".py file, or directory)")


def _lint_variants(label, build_fn, fame, scan, scan_width):
    """Lint a fresh circuit, plus transformed copies when requested."""
    results = []
    circuit = build_fn()
    results.append((label, verify_circuit(circuit)))
    if fame:
        from ..fame.transform import fame1_transform, is_fame1
        famed = build_fn()
        if not is_fame1(famed):
            fame1_transform(famed)
        results.append((f"{label}+fame1", verify_circuit(famed)))
    if scan:
        from ..scan.chains import insert_scan_chains
        scanned = build_fn()
        insert_scan_chains(scanned, scan_width)
        results.append((f"{label}+scan", verify_circuit(scanned)))
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.passes.lint",
        description="Structural IR lint over designs and example files.")
    parser.add_argument("targets", nargs="*",
                        help="design config names, .py files, or "
                             "directories (default: all configs)")
    parser.add_argument("--fame", action="store_true",
                        help="also lint a FAME1-transformed copy")
    parser.add_argument("--scan", action="store_true",
                        help="also lint a scan-chain-inserted copy")
    parser.add_argument("--scan-width", type=int, default=8)
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only print findings and the final summary")
    args = parser.parse_args(argv)

    n_issues = 0
    n_circuits = 0
    for label, build_fn in iter_targets(args.targets):
        for sub_label, issues in _lint_variants(
                label, build_fn, args.fame, args.scan, args.scan_width):
            n_circuits += 1
            if issues:
                n_issues += len(issues)
                print(f"{sub_label}: {len(issues)} issue(s)")
                for issue in issues:
                    print(f"  {issue}")
            elif not args.quiet:
                print(f"{sub_label}: ok")
    status = "clean" if n_issues == 0 else f"{n_issues} issue(s)"
    print(f"lint: {n_circuits} circuit(s) checked, {status}")
    return 1 if n_issues else 0


if __name__ == "__main__":
    sys.exit(main())
