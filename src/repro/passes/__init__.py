"""repro.passes — the unified circuit-transform pipeline.

Strober's enabling idea is a *transformable RTL IR*: the Figure 4 flow
is a sequence of custom compiler transforms.  This package gives those
transforms one substrate:

* :class:`Pass` — the transform contract (declared ``requires`` /
  ``produces`` / ``preserves`` IR properties, ``run(circuit, ctx)``);
* :class:`PassManager` — scheduling, inter-pass structural
  verification in debug mode, per-pass timing/IR-delta reporting
  (:class:`PipelineReport`), and a deterministic pipeline fingerprint
  that composes into artifact-cache keys via
  :func:`compose_cache_key`;
* :mod:`repro.passes.verifier` — the standalone structural IR lint
  (width checks, dangling-wire detection, combinational-loop
  detection), also runnable as ``python -m repro.passes.lint``.

The concrete transform passes live with their transforms:
:class:`repro.fame.transform.Fame1TransformPass`,
:class:`repro.scan.chains.ScanChainSpecPass` /
:class:`repro.scan.chains.InsertScanChainsPass`, and the gate-level
wrappers in :mod:`repro.gatelevel.synthesis`,
:mod:`repro.gatelevel.placement`, and :mod:`repro.gatelevel.formal`.
"""

from .base import (
    Pass, FunctionPass, PassResult, PassContext, PassError,
    PassScheduleError,
)
from .manager import (
    PassManager, PipelineReport, PassRecord, VerifyPass,
    compose_cache_key,
)
from .verifier import (
    verify_circuit, assert_well_formed, VerifyIssue, VerificationError,
)

__all__ = [
    "Pass", "FunctionPass", "PassResult", "PassContext", "PassError",
    "PassScheduleError",
    "PassManager", "PipelineReport", "PassRecord", "VerifyPass",
    "compose_cache_key",
    "verify_circuit", "assert_well_formed", "VerifyIssue",
    "VerificationError",
]
