"""Structural IR verifier: the inter-pass invariant checker.

Every transform pass rewrites the circuit graph in place; a bug in any
of them (a mux with a wide select, an argument pointing at a node the
circuit no longer owns, a feedback path without a register) corrupts
every downstream artifact silently.  This module is the static-analysis
lint the :class:`~repro.passes.manager.PassManager` runs between passes
in debug mode, and the engine behind ``python -m repro.passes.lint``.

Checks:

* **widths** — every node's width is in range and consistent with its
  op and argument widths (comparisons/reductions are 1 bit, ``bits``
  slices stay inside their argument, mux selects are 1 bit, mux arms
  match the result width, register next-state drivers match the
  register width, memory write ports match the memory geometry);
* **dangling wires** — no un-elaborated ``wire`` aliases survive, and
  every ``input``/``reg`` node reachable from a sink is actually owned
  by the circuit (a transform that drops a register but leaves a
  reference produces a net that never updates);
* **combinational loops** — the sink fan-in graph is acyclic through
  combinational ops (registers legitimately close cycles).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl.ir import OP_ARITY, MAX_WIDTH


@dataclass
class VerifyIssue:
    """One verifier finding."""

    kind: str        # 'width' | 'dangling' | 'comb-loop' | 'structure'
    message: str     # human-actionable description, with a fix hint
    where: str = ""  # node repr / path context

    def __str__(self):
        prefix = f"[{self.kind}] "
        if self.where:
            return f"{prefix}{self.where}: {self.message}"
        return f"{prefix}{self.message}"


class VerificationError(Exception):
    """Raised when :func:`verify_circuit` findings are fatal.

    Carries the full issue list on ``.issues``.
    """

    def __init__(self, circuit_name, issues):
        self.issues = list(issues)
        lines = [f"IR verification failed for {circuit_name!r} "
                 f"({len(self.issues)} issue(s)):"]
        lines += [f"  {issue}" for issue in self.issues[:20]]
        if len(self.issues) > 20:
            lines.append(f"  ... and {len(self.issues) - 20} more")
        super().__init__("\n".join(lines))


_ONE_BIT_OPS = frozenset({"eq", "neq", "ltu", "leu", "lts", "les",
                          "orr", "andr", "xorr"})


def _sinks(circuit):
    """circuit.sinks(), but tolerant of a missing reg_next entry (the
    verifier must report that defect, not crash on it)."""
    result = [driver for _, driver in circuit.outputs]
    for reg in circuit.regs:
        nxt = circuit.reg_next.get(reg)
        if nxt is not None:
            result.append(nxt)
    for mem in circuit.mems:
        for addr, data, en in mem.writes:
            result.extend((addr, data, en))
        result.extend(mem.read_ports)
    return result


def _iter_reachable(circuit):
    """Every node reachable from a sink, each exactly once."""
    seen = set()
    stack = _sinks(circuit)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        yield node
        if node.op not in ("const", "input", "reg"):
            stack.extend(node.args)


def _check_node(node, issues):
    """Per-node structural and width rules."""
    op = node.op
    if op not in OP_ARITY:
        issues.append(VerifyIssue(
            "structure", f"unknown op {op!r}; the transform emitted a "
            "node the IR does not define", repr(node)))
        return
    arity = OP_ARITY[op]
    if arity is not None and len(node.args) != arity:
        issues.append(VerifyIssue(
            "structure", f"op {op!r} expects {arity} argument(s) but has "
            f"{len(node.args)}; a graph rewrite dropped or duplicated an "
            "argument", repr(node)))
        return
    if not (1 <= node.width <= MAX_WIDTH):
        issues.append(VerifyIssue(
            "width", f"width {node.width} out of range 1..{MAX_WIDTH}",
            repr(node)))
        return
    if op in _ONE_BIT_OPS and node.width != 1:
        issues.append(VerifyIssue(
            "width", f"op {op!r} must be 1 bit wide, is {node.width}; "
            "wrap the comparison result instead of widening the node",
            repr(node)))
    elif op == "not" and node.width != node.args[0].width:
        issues.append(VerifyIssue(
            "width", f"'not' is {node.width} bits but its argument is "
            f"{node.args[0].width}; invert at the argument width and "
            "pad/truncate explicitly", repr(node)))
    elif op in ("and", "or", "xor"):
        widest = max(a.width for a in node.args)
        if node.width != widest:
            issues.append(VerifyIssue(
                "width", f"op {op!r} is {node.width} bits but its widest "
                f"argument is {widest}; bitwise ops take the max argument "
                "width", repr(node)))
    elif op == "mux":
        sel, a, b = node.args
        if sel.width != 1:
            issues.append(VerifyIssue(
                "width", f"mux select is {sel.width} bits; reduce it to "
                "1 bit (e.g. with .orr()) before muxing", repr(node)))
        if a.width != node.width or b.width != node.width:
            issues.append(VerifyIssue(
                "width", f"mux arms are {a.width}/{b.width} bits but the "
                f"mux is {node.width}; pad both arms to the result width",
                repr(node)))
    elif op == "bits":
        hi, lo = node.params
        src = node.args[0]
        if not (0 <= lo <= hi < src.width):
            issues.append(VerifyIssue(
                "width", f"bits({hi},{lo}) reaches outside its "
                f"{src.width}-bit argument; the slice must satisfy "
                f"0 <= lo <= hi < {src.width}", repr(node)))
        elif node.width != hi - lo + 1:
            issues.append(VerifyIssue(
                "width", f"bits({hi},{lo}) should be {hi - lo + 1} bits, "
                f"node says {node.width}", repr(node)))
    elif op == "cat":
        total = node.args[0].width + node.args[1].width
        if node.width > min(total, MAX_WIDTH):
            issues.append(VerifyIssue(
                "width", f"cat of {node.args[0].width}+"
                f"{node.args[1].width} bits cannot be {node.width} bits "
                "wide", repr(node)))
    elif op == "memread":
        if node.mem is None:
            issues.append(VerifyIssue(
                "structure", "memread node has no memory attached; "
                "create read ports through MemDecl.read()", repr(node)))
        elif node.width != node.mem.width:
            issues.append(VerifyIssue(
                "width", f"memread is {node.width} bits but memory "
                f"{node.mem.path or node.mem.name!r} stores "
                f"{node.mem.width}-bit words", repr(node)))


def _check_ownership(circuit, issues):
    """Dangling references: reachable state/ports the circuit disowns."""
    owned_inputs = set(circuit.inputs)
    owned_regs = set(circuit.regs)
    for node in _iter_reachable(circuit):
        if node.op == "wire":
            issues.append(VerifyIssue(
                "dangling", f"un-elaborated wire alias survives in the "
                "graph; transforms must connect through the wire's "
                "resolved driver, not the wire node itself", repr(node)))
        elif node.op == "input" and node not in owned_inputs:
            issues.append(VerifyIssue(
                "dangling", f"input {node.name!r} is referenced but not "
                "in circuit.inputs; append the node to circuit.inputs "
                "(or reconnect its users) so it gets driven", repr(node)))
        elif node.op == "reg" and node not in owned_regs:
            issues.append(VerifyIssue(
                "dangling", f"register {node.path or node.name!r} is "
                "referenced but not in circuit.regs; its value would "
                "never update — re-register it and give it a reg_next "
                "driver", repr(node)))


def _check_registers(circuit, issues):
    for reg in circuit.regs:
        nxt = circuit.reg_next.get(reg)
        if nxt is None:
            issues.append(VerifyIssue(
                "dangling", f"register {reg.path or reg.name!r} has no "
                "next-state driver in circuit.reg_next; every register "
                "needs one (use the register itself for a hold)",
                repr(reg)))
        elif nxt.width != reg.width:
            issues.append(VerifyIssue(
                "width", f"register {reg.path or reg.name!r} is "
                f"{reg.width} bits but its next-state driver is "
                f"{nxt.width}; resize the driver to the register width",
                repr(reg)))


def _check_memories(circuit, issues):
    for mem in circuit.mems:
        where = f"<mem {mem.path or mem.name}>"
        for addr, data, en in mem.writes:
            if data.width != mem.width:
                issues.append(VerifyIssue(
                    "width", f"write data is {data.width} bits but the "
                    f"memory stores {mem.width}-bit words", where))
            if en.width != 1:
                issues.append(VerifyIssue(
                    "width", f"write enable is {en.width} bits; reduce "
                    "it to 1 bit", where))
            if addr.width > MAX_WIDTH:
                issues.append(VerifyIssue(
                    "width", f"write address is {addr.width} bits", where))
        for port in mem.read_ports:
            if port.mem is not mem:
                issues.append(VerifyIssue(
                    "structure", "read port's .mem does not point back "
                    "at its memory", where))


def _check_comb_loops(circuit, issues):
    """Cycle detection through combinational ops, with the loop path.

    Registers legitimately close sequential cycles, so traversal stops
    at ``reg``/``input``/``const`` sources; anything that reaches itself
    through combinational ops only is a genuine loop.  A duplicate stack
    entry can only pop while its node is in-progress if the node is its
    own combinational descendant, so the in-progress check is exact.
    """
    state = {}  # node -> 1 in progress, 2 done
    for sink in _sinks(circuit):
        if state.get(sink) == 2:
            continue
        path = []   # current in-progress DFS chain
        todo = [(sink, 0)]
        while todo:
            node, phase = todo.pop()
            if phase == 0:
                st = state.get(node)
                if st == 2:
                    continue
                if st == 1:
                    cycle = []
                    for p in reversed(path):
                        cycle.append(p)
                        if p is node:
                            break
                    loop = " -> ".join(repr(n) for n in reversed(cycle))
                    issues.append(VerifyIssue(
                        "comb-loop", f"combinational loop: {loop} -> "
                        "(repeats); break it with a register or "
                        "restructure the feedback", repr(node)))
                    continue
                state[node] = 1
                path.append(node)
                todo.append((node, 1))
                if node.op not in ("const", "input", "reg"):
                    for arg in node.args:
                        todo.append((arg, 0))
            else:
                state[node] = 2
                path.pop()


def verify_circuit(circuit, max_issues=None):
    """Run every structural check; returns a list of :class:`VerifyIssue`.

    An empty list means the IR is well-formed.  Use
    :func:`assert_well_formed` to raise instead.
    """
    issues = []
    for node in _iter_reachable(circuit):
        _check_node(node, issues)
        if max_issues is not None and len(issues) >= max_issues:
            return issues
    _check_ownership(circuit, issues)
    _check_registers(circuit, issues)
    _check_memories(circuit, issues)
    _check_comb_loops(circuit, issues)
    if max_issues is not None:
        issues = issues[:max_issues]
    return issues


def assert_well_formed(circuit):
    """Raise :class:`VerificationError` if the circuit fails any check."""
    issues = verify_circuit(circuit)
    if issues:
        raise VerificationError(getattr(circuit, "name", "<circuit>"),
                                issues)
    return True
