"""The transform-pass contract every circuit transform implements.

Strober's tool flow (Figure 4) is a sequence of custom compiler
transforms over the elaborated IR — FAME1 decoupling, scan-chain
insertion, synthesis, placement, formal matching.  This module defines
the shared shape of those transforms: a :class:`Pass` declares which IR
*properties* it requires, produces, and preserves, and implements
``run(circuit, ctx) -> PassResult``.  The :class:`PassManager`
(:mod:`repro.passes.manager`) schedules passes against those
declarations, verifies the IR between passes in debug mode, and turns
each pass's declared parameters into a deterministic pipeline
fingerprint for the artifact cache.

IR properties are plain strings.  The conventional ones:

``elaborated``
    The circuit came out of :func:`repro.hdl.elaborate.elaborate`
    (every manager run starts with this).
``fame1``
    The FAME1 host-enable gating is in place.
``scan-spec`` / ``scan-chains``
    Scan-chain metadata is attached / scan hardware is inserted.
``netlist`` / ``placement`` / ``name-map``
    Gate-level artifacts exist in the pass context.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class PassError(Exception):
    """A pass could not run or produced an invalid result."""


class PassScheduleError(PassError):
    """Pipeline ordering violates a pass's declared requirements."""


def stable_repr(value):
    """repr() that is deterministic across processes.

    Plain repr() of a function or bound method embeds a memory address,
    which would make pipeline fingerprints differ between runs of the
    same configuration; callables are described by their qualified name
    instead.
    """
    if callable(value) and not isinstance(value, type):
        module = getattr(value, "__module__", "?")
        qualname = getattr(value, "__qualname__",
                           getattr(value, "__name__", repr(value)))
        return f"<callable {module}.{qualname}>"
    if isinstance(value, type):
        return f"<class {value.__module__}.{value.__qualname__}>"
    if isinstance(value, (set, frozenset)):
        return repr(sorted(value, key=repr))
    return repr(value)


@dataclass
class PassResult:
    """What one pass hands back to the manager.

    ``artifacts`` are merged into the shared :class:`PassContext`
    (e.g. ``channels``, ``scan_spec``, ``netlist``); ``stats`` are
    free-form numbers recorded in the pipeline report.
    """

    artifacts: dict = field(default_factory=dict)
    stats: dict = field(default_factory=dict)


@dataclass
class PassContext:
    """Shared state threaded through one pipeline run.

    ``artifacts`` accumulates every pass's side products keyed by name;
    ``options`` carries caller-supplied knobs; ``debug`` turns on the
    inter-pass IR verifier; ``report`` is the in-progress
    :class:`~repro.passes.manager.PipelineReport`.
    """

    artifacts: dict = field(default_factory=dict)
    options: dict = field(default_factory=dict)
    debug: bool = False
    report: object = None

    def __getitem__(self, key):
        return self.artifacts[key]

    def get(self, key, default=None):
        return self.artifacts.get(key, default)


class Pass:
    """Base class for circuit transforms.

    Subclasses set the class attributes below and implement
    :meth:`run`.  Parameters that change the transform's output must be
    returned from :meth:`params` — they feed the pipeline fingerprint
    that keys the on-disk artifact cache, so two differently-configured
    instances of the same pass never share cached artifacts.
    """

    #: short stable identifier; defaults to the class name
    name = None
    #: bump when the transform's semantics change (cache invalidation)
    version = 1
    #: IR properties that must hold before this pass runs
    requires = ("elaborated",)
    #: IR properties established by this pass
    produces = ()
    #: "*" (keeps everything) or a tuple of the properties kept intact
    preserves = "*"

    def __init__(self, **params):
        self._params = dict(params)

    @property
    def pass_name(self):
        return self.name or type(self).__name__

    def params(self):
        """Cache-relevant parameters of this instance."""
        return dict(self._params)

    def is_satisfied(self, circuit):
        """True if the circuit already has this pass's effect (skip)."""
        return False

    def run(self, circuit, ctx):
        """Apply the transform in place; return a :class:`PassResult`."""
        raise NotImplementedError

    def cache_key_parts(self):
        """Deterministic description for the pipeline fingerprint."""
        return (self.pass_name, self.version,
                tuple(sorted((str(k), stable_repr(v))
                             for k, v in self.params().items())))

    def __repr__(self):
        params = ", ".join(f"{k}={v!r}"
                           for k, v in sorted(self.params().items()))
        return f"<pass {self.pass_name}({params})>"


class FunctionPass(Pass):
    """Adapt a plain ``fn(circuit, **params)`` into a :class:`Pass`.

    The thin-wrapper path for transforms that live as functions (e.g.
    the gate-level synthesis entry points): the function's return value
    lands in the context artifacts under ``artifact`` when given.
    """

    def __init__(self, fn, name=None, requires=("elaborated",),
                 produces=(), preserves="*", artifact=None, version=1,
                 **params):
        super().__init__(**params)
        self._fn = fn
        self.name = name or fn.__name__
        self.requires = tuple(requires)
        self.produces = tuple(produces)
        self.preserves = preserves
        self.version = version
        self._artifact = artifact

    def run(self, circuit, ctx):
        value = self._fn(circuit, **self.params())
        artifacts = {self._artifact: value} if self._artifact else {}
        return PassResult(artifacts=artifacts)
