"""PassManager: scheduled, verified, instrumented transform pipelines.

The manager runs a declared sequence of :class:`~repro.passes.base.Pass`
instances over one circuit:

* **scheduling** — before each pass runs, its declared ``requires``
  properties are checked against the set established so far (seeded
  with ``elaborated`` plus whatever :meth:`Pass.is_satisfied` probes
  detect), and a :class:`~repro.passes.base.PassScheduleError` names
  the missing property instead of letting a mis-ordered pipeline
  corrupt the IR;
* **verification** — in debug mode the structural IR verifier
  (:mod:`repro.passes.verifier`) runs after every IR-rewriting pass,
  so the first pass that emits a malformed graph is the one blamed;
* **instrumentation** — per-pass wall-clock and IR-delta statistics
  land in a :class:`PipelineReport` that callers merge into run
  timings and journals;
* **fingerprinting** — every pass contributes its name, version, and
  parameters to a deterministic pipeline fingerprint; composed with
  the circuit fingerprint it keys the on-disk artifact cache, so
  differently-configured pipelines never share cached artifacts.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from .base import Pass, PassContext, PassResult, PassScheduleError
from .verifier import verify_circuit, VerificationError
from ..obs import get_tracer

# Bump when the fingerprint composition itself changes format.
_PIPELINE_FP_VERSION = 1


@dataclass
class PassRecord:
    """One pass's entry in the pipeline report."""

    name: str
    seconds: float = 0.0
    skipped: bool = False
    ir_before: dict = field(default_factory=dict)
    ir_after: dict = field(default_factory=dict)
    stats: dict = field(default_factory=dict)

    @property
    def ir_delta(self):
        return {key: self.ir_after.get(key, 0) - self.ir_before.get(key, 0)
                for key in self.ir_after}

    def as_dict(self):
        return {
            "name": self.name,
            "seconds": self.seconds,
            "skipped": self.skipped,
            "ir_delta": self.ir_delta,
            "stats": dict(self.stats),
        }


@dataclass
class PipelineReport:
    """Everything one pipeline run recorded."""

    pipeline: str
    fingerprint: str = ""
    records: list = field(default_factory=list)   # PassRecord
    total_seconds: float = 0.0
    verify_seconds: float = 0.0
    verified: int = 0          # number of inter-pass verifier runs

    def per_pass_seconds(self):
        """{pass name: seconds} for merging into run timings."""
        return {rec.name: rec.seconds for rec in self.records}

    def as_dict(self):
        return {
            "pipeline": self.pipeline,
            "fingerprint": self.fingerprint,
            "total_seconds": self.total_seconds,
            "verify_seconds": self.verify_seconds,
            "verified": self.verified,
            "passes": [rec.as_dict() for rec in self.records],
        }

    def summary(self):
        lines = [f"pipeline {self.pipeline} "
                 f"({self.total_seconds * 1e3:.1f} ms, "
                 f"fingerprint {self.fingerprint[:12]})"]
        for rec in self.records:
            tag = " (skipped)" if rec.skipped else ""
            delta = {k: v for k, v in rec.ir_delta.items() if v}
            lines.append(f"  {rec.name:<24s} {rec.seconds * 1e3:8.2f} ms"
                         f"{tag} {delta if delta else ''}")
        return "\n".join(lines)


def _ir_shape(circuit):
    """Cheap structural summary used for per-pass IR deltas."""
    return {
        "inputs": len(circuit.inputs),
        "outputs": len(circuit.outputs),
        "regs": len(circuit.regs),
        "mems": len(circuit.mems),
        "comb_nodes": len(circuit.comb_order),
    }


def compose_cache_key(circuit_fingerprint, pipeline_fingerprint="",
                      **extra):
    """One artifact-cache key from circuit + pipeline + parameters.

    ``extra`` carries instrumentation parameters that shape the artifact
    but live outside both fingerprints (e.g. ``scan_width``); they are
    hashed in sorted order so the key is deterministic.
    """
    h = hashlib.blake2b(digest_size=20)
    h.update(b"repro-cache-key\x1f")
    h.update(str(circuit_fingerprint).encode())
    h.update(b"\x1f")
    h.update(str(pipeline_fingerprint).encode())
    for key in sorted(extra):
        h.update(f"\x1f{key}={extra[key]!r}".encode())
    return h.hexdigest()


class VerifyPass(Pass):
    """The structural verifier as an explicit pipeline step.

    The manager already verifies between passes in debug mode; insert
    this pass to force a verification point in release pipelines (e.g.
    straight after elaboration, where it subsumes the ad-hoc checks
    that used to live only inside :mod:`repro.hdl.elaborate`).
    """

    name = "verify"
    requires = ("elaborated",)

    def run(self, circuit, ctx):
        t0 = time.perf_counter()
        issues = verify_circuit(circuit)
        if issues:
            raise VerificationError(circuit.name, issues)
        return PassResult(stats={
            "issues": 0,
            "seconds": time.perf_counter() - t0,
        })


class PassManager:
    """Run a sequence of passes over a circuit with verification.

    Args:
        passes: ordered :class:`Pass` instances.
        name: pipeline label used in reports.
        verify: ``"debug"`` (default — verify only when ``run`` is
            called with ``debug=True``), ``"always"``, or ``"never"``.
    """

    def __init__(self, passes, name="pipeline", verify="debug"):
        self.passes = list(passes)
        self.name = name
        if verify not in ("debug", "always", "never"):
            raise ValueError(f"verify must be debug/always/never, "
                             f"got {verify!r}")
        self.verify = verify

    def add(self, pass_):
        self.passes.append(pass_)
        return self

    def fingerprint(self):
        """Deterministic digest of the pipeline's passes + parameters."""
        h = hashlib.blake2b(digest_size=20)
        h.update(f"repro-pipeline\x1f{_PIPELINE_FP_VERSION}".encode())
        for pass_ in self.passes:
            h.update(f"\x1f{pass_.cache_key_parts()!r}".encode())
        return h.hexdigest()

    def _verify(self, circuit, report, after):
        t0 = time.perf_counter()
        with get_tracer().span("pass.verify", cat="passes",
                               pipeline=self.name, after=after):
            issues = verify_circuit(circuit)
        report.verify_seconds += time.perf_counter() - t0
        report.verified += 1
        if issues:
            raise VerificationError(
                f"{circuit.name} (after pass {after!r})", issues)

    def run(self, circuit, debug=False, options=None, artifacts=None):
        """Execute the pipeline in place; returns the :class:`PassContext`.

        The context's ``report`` is the :class:`PipelineReport`;
        ``artifacts`` accumulates every pass's side products.  With
        ``debug=True`` (or ``verify="always"``) the structural verifier
        runs before the first pass and after each non-skipped pass, and
        the first malformed graph raises
        :class:`~repro.passes.verifier.VerificationError` naming the
        offending pass.
        """
        report = PipelineReport(pipeline=self.name,
                                fingerprint=self.fingerprint())
        ctx = PassContext(artifacts=dict(artifacts or {}),
                          options=dict(options or {}),
                          debug=debug, report=report)
        check = (self.verify == "always"
                 or (self.verify == "debug" and debug))
        tracer = get_tracer()
        t_start = time.perf_counter()
        with tracer.span(f"pipeline.{self.name}", cat="passes",
                         circuit=circuit.name, debug=debug):
            if check:
                self._verify(circuit, report, after="<input>")
            properties = {"elaborated"}
            for pass_ in self.passes:
                record = PassRecord(name=pass_.pass_name,
                                    ir_before=_ir_shape(circuit))
                report.records.append(record)
                if pass_.is_satisfied(circuit):
                    record.skipped = True
                    record.ir_after = record.ir_before
                    properties.update(pass_.produces)
                    continue
                missing = [p for p in pass_.requires
                           if p not in properties]
                if missing:
                    raise PassScheduleError(
                        f"pass {pass_.pass_name!r} requires IR "
                        f"properties {missing} not established at this "
                        f"point in pipeline {self.name!r} "
                        f"(have: {sorted(properties)}); "
                        "reorder the pipeline or add the producing pass")
                t0 = time.perf_counter()
                with tracer.span(f"pass.{pass_.pass_name}",
                                 cat="passes", pipeline=self.name):
                    result = pass_.run(circuit, ctx)
                record.seconds = time.perf_counter() - t0
                if result is None:
                    result = PassResult()
                elif not isinstance(result, PassResult):
                    raise PassScheduleError(
                        f"pass {pass_.pass_name!r} returned "
                        f"{type(result).__name__}, not PassResult")
                ctx.artifacts.update(result.artifacts)
                record.stats = dict(result.stats)
                record.ir_after = _ir_shape(circuit)
                if pass_.preserves == "*":
                    properties.update(pass_.produces)
                else:
                    properties = (properties & set(pass_.preserves)
                                  | set(pass_.produces) | {"elaborated"})
                if check:
                    self._verify(circuit, report, after=pass_.pass_name)
        report.total_seconds = time.perf_counter() - t_start
        return ctx
