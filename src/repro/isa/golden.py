"""Golden ISA-level model of the target SoC.

An instruction-accurate RV32IM simulator with the same memory map and
HTIF conventions as the hardware SoC (tohost/putchar MMIO).  Used to

* validate benchmark programs before they run on RTL,
* co-simulate the cores (architectural state must match at the end),
* stand in for the "fast functional simulator" baseline when measuring
  Strober's speedup over software simulation (Section V-B).
"""

from __future__ import annotations

from . import encoding as enc
from .encoding import decode

# Memory-mapped I/O (matches repro.targets.soc)
MMIO_BASE = 0x40000000
TOHOST_ADDR = 0x40000000
FROMHOST_ADDR = 0x40000004
PUTCHAR_ADDR = 0x40000008
PERF_ADDR = 0x4000000C

MASK32 = 0xFFFFFFFF


class GoldenError(Exception):
    pass


def _s32(value):
    return (value & MASK32) - (1 << 32) if value & 0x80000000 else \
        value & MASK32


class GoldenModel:
    """Instruction-accurate RV32IM simulator."""

    def __init__(self, program=None, mem_size=1 << 20):
        self.mem_size = mem_size
        self.memory = bytearray(mem_size)
        self.regs = [0] * 32
        self.pc = 0
        self.instret = 0
        self.halted = False
        self.exit_code = None
        self.stdout = []
        self.perf_log = []      # values stored to the PERF MMIO port
        self.tohost = 0
        if program is not None:
            self.load_program(program)

    # -- loading -----------------------------------------------------------

    def load_program(self, program):
        for addr, word in program.words.items():
            self.write_mem_word(addr, word)
        self.pc = program.entry

    # -- memory ---------------------------------------------------------------

    def read_mem_word(self, addr):
        if addr >= MMIO_BASE:
            if addr == TOHOST_ADDR:
                return self.tohost
            if addr == FROMHOST_ADDR:
                return 0
            return 0
        if addr + 4 > self.mem_size:
            raise GoldenError(f"load address {addr:#x} out of range")
        return int.from_bytes(self.memory[addr:addr + 4], "little")

    def write_mem_word(self, addr, value):
        value &= MASK32
        if addr >= MMIO_BASE:
            self._mmio_store(addr, value)
            return
        if addr + 4 > self.mem_size:
            raise GoldenError(f"store address {addr:#x} out of range")
        self.memory[addr:addr + 4] = value.to_bytes(4, "little")

    def _mmio_store(self, addr, value):
        if addr == TOHOST_ADDR:
            self.tohost = value
            if value != 0:
                self.halted = True
                self.exit_code = value
        elif addr == PUTCHAR_ADDR:
            self.stdout.append(chr(value & 0xFF))
        elif addr == PERF_ADDR:
            self.perf_log.append(value)

    def _load(self, addr, funct3):
        if funct3 == 0b010:  # lw
            return self.read_mem_word(addr & ~3)
        word = self.read_mem_word(addr & ~3)
        shift = (addr & 3) * 8
        if funct3 == 0b000:  # lb
            byte = (word >> shift) & 0xFF
            return ((byte ^ 0x80) - 0x80) & MASK32
        if funct3 == 0b100:  # lbu
            return (word >> shift) & 0xFF
        if funct3 in (0b001, 0b101):  # lh/lhu
            half = (word >> (16 if addr & 2 else 0)) & 0xFFFF
            if funct3 == 0b001:
                return ((half ^ 0x8000) - 0x8000) & MASK32
            return half
        raise GoldenError(f"bad load funct3 {funct3}")

    def _store(self, addr, value, funct3):
        if funct3 == 0b010:  # sw
            self.write_mem_word(addr & ~3, value)
            return
        if addr >= MMIO_BASE:
            self._mmio_store(addr, value)
            return
        base = addr & ~3
        word = self.read_mem_word(base)
        shift = (addr & 3) * 8
        if funct3 == 0b000:  # sb
            mask = 0xFF << shift
            word = (word & ~mask) | ((value & 0xFF) << shift)
        elif funct3 == 0b001:  # sh
            shift = 16 if addr & 2 else 0
            mask = 0xFFFF << shift
            word = (word & ~mask) | ((value & 0xFFFF) << shift)
        else:
            raise GoldenError(f"bad store funct3 {funct3}")
        self.write_mem_word(base, word)

    # -- execution ---------------------------------------------------------------

    def step(self, n=1):
        for _ in range(n):
            if self.halted:
                return
            self._execute_one()

    def run(self, max_insns=10_000_000):
        executed = 0
        while not self.halted and executed < max_insns:
            self._execute_one()
            executed += 1
        if not self.halted:
            raise GoldenError(f"program did not halt in {max_insns} "
                              "instructions")
        return self.exit_code

    def _execute_one(self):
        word = self.read_mem_word(self.pc)
        d = decode(word)
        regs = self.regs
        rs1 = regs[d.rs1]
        rs2 = regs[d.rs2]
        next_pc = (self.pc + 4) & MASK32
        rd_value = None

        op = d.opcode
        if op == enc.OP_LUI:
            rd_value = d.imm & MASK32
        elif op == enc.OP_AUIPC:
            rd_value = (self.pc + d.imm) & MASK32
        elif op == enc.OP_JAL:
            rd_value = next_pc
            next_pc = (self.pc + d.imm) & MASK32
        elif op == enc.OP_JALR:
            rd_value = next_pc
            next_pc = (rs1 + d.imm) & MASK32 & ~1
        elif op == enc.OP_BRANCH:
            taken = self._branch_taken(d.funct3, rs1, rs2)
            if taken:
                next_pc = (self.pc + d.imm) & MASK32
        elif op == enc.OP_LOAD:
            rd_value = self._load((rs1 + d.imm) & MASK32, d.funct3)
        elif op == enc.OP_STORE:
            self._store((rs1 + d.imm) & MASK32, rs2, d.funct3)
        elif op == enc.OP_IMM:
            rd_value = self._alu_imm(d, rs1)
        elif op == enc.OP_OP:
            rd_value = self._alu_reg(d, rs1, rs2)
        elif op == enc.OP_SYSTEM:
            if d.funct3 == 0b010:  # csrrs
                rd_value = self._read_csr((d.raw >> 20) & 0xFFF)
            else:  # ecall/ebreak: halt with code 1
                self._mmio_store(TOHOST_ADDR, 1)
        elif op == enc.OP_FENCE:
            pass
        else:
            raise GoldenError(
                f"illegal instruction {word:#010x} at pc {self.pc:#x}")

        if rd_value is not None and d.rd != 0:
            regs[d.rd] = rd_value & MASK32
        self.pc = next_pc
        self.instret += 1

    @staticmethod
    def _branch_taken(funct3, rs1, rs2):
        if funct3 == 0b000:
            return rs1 == rs2
        if funct3 == 0b001:
            return rs1 != rs2
        if funct3 == 0b100:
            return _s32(rs1) < _s32(rs2)
        if funct3 == 0b101:
            return _s32(rs1) >= _s32(rs2)
        if funct3 == 0b110:
            return rs1 < rs2
        if funct3 == 0b111:
            return rs1 >= rs2
        raise GoldenError(f"bad branch funct3 {funct3}")

    @staticmethod
    def _alu(funct3, funct7_bit5, a, b):
        if funct3 == 0b000:
            return (a - b if funct7_bit5 else a + b) & MASK32
        if funct3 == 0b001:
            return (a << (b & 31)) & MASK32
        if funct3 == 0b010:
            return 1 if _s32(a) < _s32(b) else 0
        if funct3 == 0b011:
            return 1 if a < b else 0
        if funct3 == 0b100:
            return a ^ b
        if funct3 == 0b101:
            if funct7_bit5:
                return (_s32(a) >> (b & 31)) & MASK32
            return a >> (b & 31)
        if funct3 == 0b110:
            return a | b
        return a & b

    def _alu_imm(self, d, rs1):
        if d.funct3 in (0b001, 0b101):  # shifts use rs2 field as shamt
            return self._alu(d.funct3, (d.raw >> 30) & 1, rs1, d.rs2)
        return self._alu(d.funct3, 0, rs1, d.imm & MASK32)

    def _alu_reg(self, d, rs1, rs2):
        if d.funct7 == 0b0000001:
            return self._muldiv(d.funct3, rs1, rs2)
        return self._alu(d.funct3, (d.raw >> 30) & 1, rs1, rs2)

    @staticmethod
    def _muldiv(funct3, a, b):
        sa, sb = _s32(a), _s32(b)
        if funct3 == 0b000:  # mul
            return (sa * sb) & MASK32
        if funct3 == 0b001:  # mulh
            return ((sa * sb) >> 32) & MASK32
        if funct3 == 0b010:  # mulhsu
            return ((sa * b) >> 32) & MASK32
        if funct3 == 0b011:  # mulhu
            return ((a * b) >> 32) & MASK32
        if funct3 == 0b100:  # div
            if b == 0:
                return MASK32
            if sa == -(1 << 31) and sb == -1:
                return 0x80000000
            return int(abs(sa) // abs(sb)
                       * (1 if (sa < 0) == (sb < 0) else -1)) & MASK32
        if funct3 == 0b101:  # divu
            return MASK32 if b == 0 else (a // b) & MASK32
        if funct3 == 0b110:  # rem
            if b == 0:
                return a
            if sa == -(1 << 31) and sb == -1:
                return 0
            return (sa - _s32(GoldenModel._muldiv(0b100, a, b)) * sb) \
                & MASK32
        # remu
        return a if b == 0 else (a % b) & MASK32

    def _read_csr(self, csr):
        cycle = self.cycle_estimate()
        if csr == enc.CSR_CYCLE:
            return cycle & MASK32
        if csr == enc.CSR_CYCLEH:
            return (cycle >> 32) & MASK32
        if csr == enc.CSR_INSTRET:
            return self.instret & MASK32
        if csr == enc.CSR_INSTRETH:
            return (self.instret >> 32) & MASK32
        raise GoldenError(f"unknown CSR {csr:#x}")

    def cycle_estimate(self):
        """The golden model has no timing; cycle == instret (CPI 1)."""
        return self.instret

    # -- inspection ---------------------------------------------------------------

    def reg(self, name_or_num):
        if isinstance(name_or_num, str):
            return self.regs[enc.reg_num(name_or_num)]
        return self.regs[name_or_num]

    def stdout_text(self):
        return "".join(self.stdout)
