"""RV32IM subset: instruction encoding and decoding.

The target cores implement the 32-bit base integer ISA plus the M
extension (the paper's cores run RV64GC; RV32IM keeps gate counts
tractable in a Python flow while preserving the microarchitectural
structure — see DESIGN.md).  CSR reads for ``cycle``/``instret`` are
included so workloads can self-sample CPI as in Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass

# opcodes
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_OP = 0b0110011
OP_SYSTEM = 0b1110011
OP_FENCE = 0b0001111

# CSR addresses (read-only performance counters)
CSR_CYCLE = 0xC00
CSR_INSTRET = 0xC02
CSR_CYCLEH = 0xC80
CSR_INSTRETH = 0xC82

ABI_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
    "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}


class EncodingError(Exception):
    pass


def reg_num(name):
    """Parse a register name (x-form or ABI form) to its number."""
    name = name.strip().lower()
    if name.startswith("x") and name[1:].isdigit():
        num = int(name[1:])
        if 0 <= num < 32:
            return num
    if name in ABI_NAMES:
        return ABI_NAMES[name]
    raise EncodingError(f"unknown register {name!r}")


def _check_range(value, bits, signed, what):
    if signed:
        low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        low, high = 0, (1 << bits) - 1
    if not low <= value <= high:
        raise EncodingError(f"{what} {value} out of range [{low},{high}]")


def encode_r(opcode, funct3, funct7, rd, rs1, rs2):
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
        | (rd << 7) | opcode


def encode_i(opcode, funct3, rd, rs1, imm):
    _check_range(imm, 12, True, "I-immediate")
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) \
        | (rd << 7) | opcode


def encode_s(opcode, funct3, rs1, rs2, imm):
    _check_range(imm, 12, True, "S-immediate")
    imm &= 0xFFF
    return ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) \
        | (funct3 << 12) | ((imm & 0x1F) << 7) | opcode


def encode_b(opcode, funct3, rs1, rs2, imm):
    if imm % 2:
        raise EncodingError("branch offset must be even")
    _check_range(imm, 13, True, "B-immediate")
    imm &= 0x1FFF
    return (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25) \
        | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
        | (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | opcode


def encode_u(opcode, rd, imm):
    _check_range(imm, 20, False, "U-immediate")
    return (imm << 12) | (rd << 7) | opcode


def encode_j(opcode, rd, imm):
    if imm % 2:
        raise EncodingError("jump offset must be even")
    _check_range(imm, 21, True, "J-immediate")
    imm &= 0x1FFFFF
    return (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21) \
        | (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12) \
        | (rd << 7) | opcode


# name -> (format, opcode, funct3, funct7)
R_OPS = {
    "add": (0b000, 0b0000000), "sub": (0b000, 0b0100000),
    "sll": (0b001, 0b0000000), "slt": (0b010, 0b0000000),
    "sltu": (0b011, 0b0000000), "xor": (0b100, 0b0000000),
    "srl": (0b101, 0b0000000), "sra": (0b101, 0b0100000),
    "or": (0b110, 0b0000000), "and": (0b111, 0b0000000),
    "mul": (0b000, 0b0000001), "mulh": (0b001, 0b0000001),
    "mulhsu": (0b010, 0b0000001), "mulhu": (0b011, 0b0000001),
    "div": (0b100, 0b0000001), "divu": (0b101, 0b0000001),
    "rem": (0b110, 0b0000001), "remu": (0b111, 0b0000001),
}
I_OPS = {
    "addi": 0b000, "slti": 0b010, "sltiu": 0b011, "xori": 0b100,
    "ori": 0b110, "andi": 0b111,
}
SHIFT_OPS = {"slli": (0b001, 0), "srli": (0b101, 0),
             "srai": (0b101, 0b0100000)}
LOAD_OPS = {"lb": 0b000, "lh": 0b001, "lw": 0b010, "lbu": 0b100,
            "lhu": 0b101}
STORE_OPS = {"sb": 0b000, "sh": 0b001, "sw": 0b010}
BRANCH_OPS = {"beq": 0b000, "bne": 0b001, "blt": 0b100, "bge": 0b101,
              "bltu": 0b110, "bgeu": 0b111}
CSRS = {"cycle": CSR_CYCLE, "instret": CSR_INSTRET,
        "cycleh": CSR_CYCLEH, "instreth": CSR_INSTRETH}


@dataclass
class Decoded:
    """Decoded instruction fields (as a hardware decoder would see)."""

    raw: int
    opcode: int
    rd: int
    rs1: int
    rs2: int
    funct3: int
    funct7: int
    imm: int            # sign-extended per the instruction format


def _sext(value, bits):
    sign = 1 << (bits - 1)
    return (value ^ sign) - sign


def decode(word):
    """Field-decode one 32-bit instruction."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F
    if opcode in (OP_LUI, OP_AUIPC):
        imm = word & 0xFFFFF000
        imm = _sext(imm, 32)
    elif opcode == OP_JAL:
        imm = (((word >> 31) & 1) << 20) | (((word >> 21) & 0x3FF) << 1) \
            | (((word >> 20) & 1) << 11) | (((word >> 12) & 0xFF) << 12)
        imm = _sext(imm, 21)
    elif opcode == OP_BRANCH:
        imm = (((word >> 31) & 1) << 12) | (((word >> 25) & 0x3F) << 5) \
            | (((word >> 8) & 0xF) << 1) | (((word >> 7) & 1) << 11)
        imm = _sext(imm, 13)
    elif opcode == OP_STORE:
        imm = (((word >> 25) & 0x7F) << 5) | ((word >> 7) & 0x1F)
        imm = _sext(imm, 12)
    else:  # I-format (loads, jalr, op-imm, system)
        imm = _sext((word >> 20) & 0xFFF, 12)
    return Decoded(word, opcode, rd, rs1, rs2, funct3, funct7, imm)


def disassemble(word):
    """Best-effort text form, for debug output and commit logs."""
    d = decode(word)
    if d.opcode == OP_OP:
        for name, (f3, f7) in R_OPS.items():
            if d.funct3 == f3 and d.funct7 == f7:
                return f"{name} x{d.rd}, x{d.rs1}, x{d.rs2}"
    if d.opcode == OP_IMM:
        for name, f3 in I_OPS.items():
            if d.funct3 == f3:
                return f"{name} x{d.rd}, x{d.rs1}, {d.imm}"
        for name, (f3, f7) in SHIFT_OPS.items():
            if d.funct3 == f3 and (d.funct7 & 0b0100000) == f7:
                return f"{name} x{d.rd}, x{d.rs1}, {d.rs2}"
    if d.opcode == OP_LOAD:
        for name, f3 in LOAD_OPS.items():
            if d.funct3 == f3:
                return f"{name} x{d.rd}, {d.imm}(x{d.rs1})"
    if d.opcode == OP_STORE:
        for name, f3 in STORE_OPS.items():
            if d.funct3 == f3:
                return f"{name} x{d.rs2}, {d.imm}(x{d.rs1})"
    if d.opcode == OP_BRANCH:
        for name, f3 in BRANCH_OPS.items():
            if d.funct3 == f3:
                return f"{name} x{d.rs1}, x{d.rs2}, {d.imm}"
    if d.opcode == OP_LUI:
        return f"lui x{d.rd}, {(d.imm >> 12) & 0xFFFFF}"
    if d.opcode == OP_AUIPC:
        return f"auipc x{d.rd}, {(d.imm >> 12) & 0xFFFFF}"
    if d.opcode == OP_JAL:
        return f"jal x{d.rd}, {d.imm}"
    if d.opcode == OP_JALR:
        return f"jalr x{d.rd}, {d.imm}(x{d.rs1})"
    if d.opcode == OP_SYSTEM:
        if d.funct3 == 0b010:
            return f"csrrs x{d.rd}, {hex((d.raw >> 20) & 0xFFF)}, x{d.rs1}"
        return "ecall" if d.imm == 0 else "ebreak"
    if d.opcode == OP_FENCE:
        return "fence"
    return f".word {word:#010x}"
