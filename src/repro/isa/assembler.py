"""Two-pass RV32IM assembler with labels and pseudo-instructions.

Enough of the GNU-as surface to write the paper's microbenchmarks and
case-study workloads in assembly: labels, ``.text``/``.data``/``.word``/
``.space``/``.align``, character constants, and the usual pseudo-ops
(``li``, ``la``, ``mv``, ``j``, ``call``, ``ret``, ``not``, ``neg``,
``seqz``/``snez``, ``bgt``/``ble``/... operand-swapped branches).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from . import encoding as enc
from .encoding import EncodingError, reg_num


class AssemblerError(Exception):
    pass


@dataclass
class Program:
    """Assembled image: words keyed by word address, plus symbols."""

    words: dict = field(default_factory=dict)   # byte addr -> 32-bit word
    symbols: dict = field(default_factory=dict)
    entry: int = 0

    def as_word_list(self, pad_to=None):
        """Dense little list of words from address 0."""
        if not self.words:
            return []
        top = max(self.words) + 4
        if pad_to is not None:
            top = max(top, pad_to)
        out = [0] * (top // 4)
        for addr, word in self.words.items():
            out[addr // 4] = word
        return out

    @property
    def size_bytes(self):
        return (max(self.words) + 4) if self.words else 0


def _parse_int(text, symbols=None):
    text = text.strip()
    if symbols and text in symbols:
        return symbols[text]
    if len(text) >= 3 and text.startswith("'") and text.endswith("'"):
        body = text[1:-1]
        unescaped = body.encode().decode("unicode_escape")
        if len(unescaped) != 1:
            raise AssemblerError(f"bad char literal {text}")
        return ord(unescaped)
    try:
        return int(text, 0)
    except ValueError as exc:
        raise AssemblerError(f"bad integer {text!r}") from exc


_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


class Assembler:
    """Two-pass assembler.  Use :func:`assemble`."""

    def __init__(self, text_base=0):
        self.text_base = text_base

    def assemble(self, source):
        lines = self._clean(source)
        symbols = self._first_pass(lines)
        return self._second_pass(lines, symbols)

    # -- pass machinery ---------------------------------------------------

    @staticmethod
    def _clean(source):
        cleaned = []
        for raw_no, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if line:
                cleaned.append((raw_no, line))
        return cleaned

    def _instruction_size(self, mnemonic, operands):
        if mnemonic in ("li", "la"):
            return 8  # worst case lui+addi; fixed for simplicity
        if mnemonic == "call":
            return 4
        return 4

    def _first_pass(self, lines):
        symbols = {}
        pc = self.text_base
        for line_no, line in lines:
            while ":" in line:
                label, _, rest = line.partition(":")
                label = label.strip()
                if not label.isidentifier():
                    raise AssemblerError(
                        f"line {line_no}: bad label {label!r}")
                symbols[label] = pc
                line = rest.strip()
            if not line:
                continue
            mnemonic, operands = self._split(line)
            if mnemonic.startswith("."):
                pc = self._directive_size(mnemonic, operands, pc, symbols,
                                          line_no)
            else:
                pc += self._instruction_size(mnemonic, operands)
        return symbols

    def _directive_size(self, directive, operands, pc, symbols, line_no):
        if directive in (".text", ".data", ".globl", ".global"):
            return pc
        if directive == ".word":
            return pc + 4 * len(operands)
        if directive == ".space":
            return pc + _parse_int(operands[0])
        if directive == ".align":
            shift = _parse_int(operands[0])
            mask = (1 << shift) - 1
            return (pc + mask) & ~mask
        if directive == ".equ":
            symbols[operands[0]] = _parse_int(operands[1], symbols)
            return pc
        raise AssemblerError(f"line {line_no}: unknown directive "
                             f"{directive}")

    def _second_pass(self, lines, symbols):
        program = Program(symbols=dict(symbols), entry=self.text_base)
        pc = self.text_base
        for line_no, line in lines:
            while ":" in line:
                _, _, line = line.partition(":")
                line = line.strip()
            if not line:
                continue
            mnemonic, operands = self._split(line)
            try:
                if mnemonic.startswith("."):
                    pc = self._emit_directive(program, mnemonic, operands,
                                              pc, symbols)
                else:
                    words = self._encode(mnemonic, operands, pc, symbols)
                    for word in words:
                        program.words[pc] = word
                        pc += 4
            except (EncodingError, AssemblerError, KeyError) as exc:
                raise AssemblerError(
                    f"line {line_no}: {line!r}: {exc}") from exc
        return program

    def _emit_directive(self, program, directive, operands, pc, symbols):
        if directive in (".text", ".data", ".globl", ".global", ".equ"):
            return pc
        if directive == ".word":
            for op in operands:
                program.words[pc] = _parse_int(op, symbols) & 0xFFFFFFFF
                pc += 4
            return pc
        if directive == ".space":
            count = _parse_int(operands[0])
            for offset in range(0, count, 4):
                program.words[pc + offset] = 0
            return pc + count
        if directive == ".align":
            shift = _parse_int(operands[0])
            mask = (1 << shift) - 1
            new_pc = (pc + mask) & ~mask
            for addr in range(pc, new_pc, 4):
                program.words[addr] = 0
            return new_pc
        raise AssemblerError(f"unknown directive {directive}")

    @staticmethod
    def _split(line):
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = []
        if len(parts) > 1:
            operands = [p.strip() for p in parts[1].split(",")]
        return mnemonic, operands

    # -- encoding one instruction ------------------------------------------

    def _imm(self, text, symbols, pc=None, pcrel=False):
        if pcrel:
            target = (symbols[text] if text in symbols
                      else _parse_int(text, symbols))
            return target - pc
        if text in symbols:
            return symbols[text]
        return _parse_int(text, symbols)

    def _encode(self, m, ops, pc, symbols):
        if m in enc.R_OPS:
            f3, f7 = enc.R_OPS[m]
            return [enc.encode_r(enc.OP_OP, f3, f7, reg_num(ops[0]),
                                 reg_num(ops[1]), reg_num(ops[2]))]
        if m in enc.I_OPS:
            return [enc.encode_i(enc.OP_IMM, enc.I_OPS[m], reg_num(ops[0]),
                                 reg_num(ops[1]),
                                 self._imm(ops[2], symbols))]
        if m in enc.SHIFT_OPS:
            f3, f7 = enc.SHIFT_OPS[m]
            shamt = self._imm(ops[2], symbols)
            if not 0 <= shamt < 32:
                raise AssemblerError(f"shift amount {shamt} out of range")
            return [enc.encode_r(enc.OP_IMM, f3, f7, reg_num(ops[0]),
                                 reg_num(ops[1]), shamt)]
        if m in enc.LOAD_OPS:
            base, offset = self._mem_operand(ops[1], symbols)
            return [enc.encode_i(enc.OP_LOAD, enc.LOAD_OPS[m],
                                 reg_num(ops[0]), base, offset)]
        if m in enc.STORE_OPS:
            base, offset = self._mem_operand(ops[1], symbols)
            return [enc.encode_s(enc.OP_STORE, enc.STORE_OPS[m], base,
                                 reg_num(ops[0]), offset)]
        if m in enc.BRANCH_OPS:
            imm = self._imm(ops[2], symbols, pc=pc, pcrel=True)
            return [enc.encode_b(enc.OP_BRANCH, enc.BRANCH_OPS[m],
                                 reg_num(ops[0]), reg_num(ops[1]), imm)]
        if m in ("bgt", "ble", "bgtu", "bleu"):
            swapped = {"bgt": "blt", "ble": "bge", "bgtu": "bltu",
                       "bleu": "bgeu"}[m]
            imm = self._imm(ops[2], symbols, pc=pc, pcrel=True)
            return [enc.encode_b(enc.OP_BRANCH, enc.BRANCH_OPS[swapped],
                                 reg_num(ops[1]), reg_num(ops[0]), imm)]
        if m in ("beqz", "bnez", "bltz", "bgez", "blez", "bgtz"):
            base = {"beqz": ("beq", "zero"), "bnez": ("bne", "zero"),
                    "bltz": ("blt", "zero"), "bgez": ("bge", "zero")}
            imm = self._imm(ops[1], symbols, pc=pc, pcrel=True)
            if m in base:
                real, other = base[m]
                return [enc.encode_b(enc.OP_BRANCH, enc.BRANCH_OPS[real],
                                     reg_num(ops[0]), 0, imm)]
            if m == "blez":   # rs <= 0  ==  0 >= rs  ==  bge zero, rs
                return [enc.encode_b(enc.OP_BRANCH, enc.BRANCH_OPS["bge"],
                                     0, reg_num(ops[0]), imm)]
            return [enc.encode_b(enc.OP_BRANCH, enc.BRANCH_OPS["blt"],
                                 0, reg_num(ops[0]), imm)]  # bgtz
        if m == "lui":
            return [enc.encode_u(enc.OP_LUI, reg_num(ops[0]),
                                 self._imm(ops[1], symbols) & 0xFFFFF)]
        if m == "auipc":
            return [enc.encode_u(enc.OP_AUIPC, reg_num(ops[0]),
                                 self._imm(ops[1], symbols) & 0xFFFFF)]
        if m == "jal":
            if len(ops) == 1:
                ops = ["ra", ops[0]]
            imm = self._imm(ops[1], symbols, pc=pc, pcrel=True)
            return [enc.encode_j(enc.OP_JAL, reg_num(ops[0]), imm)]
        if m == "jalr":
            if len(ops) == 1:
                return [enc.encode_i(enc.OP_JALR, 0, 1, reg_num(ops[0]),
                                     0)]
            base, offset = self._mem_operand(ops[1], symbols)
            return [enc.encode_i(enc.OP_JALR, 0, reg_num(ops[0]), base,
                                 offset)]
        if m == "j":
            imm = self._imm(ops[0], symbols, pc=pc, pcrel=True)
            return [enc.encode_j(enc.OP_JAL, 0, imm)]
        if m == "jr":
            return [enc.encode_i(enc.OP_JALR, 0, 0, reg_num(ops[0]), 0)]
        if m == "call":
            imm = self._imm(ops[0], symbols, pc=pc, pcrel=True)
            return [enc.encode_j(enc.OP_JAL, 1, imm)]
        if m == "ret":
            return [enc.encode_i(enc.OP_JALR, 0, 0, 1, 0)]
        if m == "nop":
            return [enc.encode_i(enc.OP_IMM, 0, 0, 0, 0)]
        if m == "mv":
            return [enc.encode_i(enc.OP_IMM, 0, reg_num(ops[0]),
                                 reg_num(ops[1]), 0)]
        if m == "not":
            return [enc.encode_i(enc.OP_IMM, 0b100, reg_num(ops[0]),
                                 reg_num(ops[1]), -1)]
        if m == "neg":
            return [enc.encode_r(enc.OP_OP, 0, 0b0100000, reg_num(ops[0]),
                                 0, reg_num(ops[1]))]
        if m == "seqz":
            return [enc.encode_i(enc.OP_IMM, 0b011, reg_num(ops[0]),
                                 reg_num(ops[1]), 1)]
        if m == "snez":
            return [enc.encode_r(enc.OP_OP, 0b011, 0, reg_num(ops[0]),
                                 0, reg_num(ops[1]))]
        if m in ("li", "la"):
            rd = reg_num(ops[0])
            value = self._imm(ops[1], symbols) & 0xFFFFFFFF
            upper = (value + 0x800) >> 12 & 0xFFFFF
            lower = value & 0xFFF
            if lower >= 0x800:
                lower -= 0x1000
            words = [enc.encode_u(enc.OP_LUI, rd, upper),
                     enc.encode_i(enc.OP_IMM, 0, rd, rd, lower)]
            return words
        if m == "csrr":
            csr = enc.CSRS.get(ops[1].lower())
            if csr is None:
                raise AssemblerError(f"unknown CSR {ops[1]!r}")
            word = (csr << 20) | (0 << 15) | (0b010 << 12) \
                | (reg_num(ops[0]) << 7) | enc.OP_SYSTEM
            return [word]
        if m == "ecall":
            return [enc.OP_SYSTEM]
        if m == "ebreak":
            return [(1 << 20) | enc.OP_SYSTEM]
        if m == "fence":
            return [enc.OP_FENCE]
        raise AssemblerError(f"unknown mnemonic {m!r}")

    def _mem_operand(self, text, symbols):
        match = _MEM_RE.match(text.replace(" ", ""))
        if not match:
            raise AssemblerError(f"bad memory operand {text!r}")
        offset = self._imm(match.group(1), symbols)
        return reg_num(match.group(2)), offset


def assemble(source, text_base=0):
    """Assemble a source string into a :class:`Program`."""
    return Assembler(text_base=text_base).assemble(source)
