"""Shared runtime for benchmark programs (crt0 + MMIO map).

Programs follow the HTIF convention: on exit, ``tohost`` receives
``(code << 1) | 1`` so zero exit codes still read as nonzero writes
(pass == 1, like riscv-tests).
"""

from __future__ import annotations

DEFAULT_STACK_TOP = 0x0003FF00   # inside a 256 KiB memory

HEADER = """
.equ TOHOST,  0x40000000
.equ PUTCHAR, 0x40000008
.equ PERF,    0x4000000C
"""

CRT0 = """
_start:
    li sp, {stack_top}
    call main
    slli a0, a0, 1
    ori a0, a0, 1
    li t0, TOHOST
    sw a0, 0(t0)
halt_loop:
    j halt_loop
"""


def wrap(body, stack_top=DEFAULT_STACK_TOP):
    """Prepend the MMIO equates and crt0 to a program body."""
    return HEADER + CRT0.format(stack_top=stack_top) + body


def words_directive(values, per_line=8):
    """Render a list of ints as .word lines."""
    lines = []
    for i in range(0, len(values), per_line):
        chunk = ", ".join(str(v & 0xFFFFFFFF)
                          for v in values[i:i + per_line])
        lines.append(f"    .word {chunk}")
    return "\n".join(lines)


def exit_code_of(tohost_value):
    """Decode the HTIF tohost convention back to an exit code."""
    if tohost_value == 0:
        return None
    return tohost_value >> 1
