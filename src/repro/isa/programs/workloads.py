"""Case-study workloads (Section VI-A).

Paper workloads -> reproduction substitutes (documented in DESIGN.md):

* CoreMark          -> :func:`coremark_lite` — the same three kernels
  CoreMark stresses (linked-list processing, matrix arithmetic, CRC
  state machine), sized to fit L1 like the original.
* Linux boot        -> :func:`boot` — boot-shaped phases: BSS clearing,
  image copy, page-table-ish pointer walks, console output (`uname`,
  `ls` banners), then power-down.
* SPECint 403.gcc   -> :func:`gcc_phases` — a long, phase-varying
  workload alternating compute / streaming / pointer-chasing / branchy
  phases, which produces the CPI-over-time structure of Figure 10 and
  self-samples CPI through the cycle/instret CSRs like the paper's
  user-level sampler.
"""

from __future__ import annotations

import random

from .common import wrap, words_directive


def coremark_lite(iterations=3, list_len=16, matrix_n=4, crc_len=16,
                  seed=21):
    """Linked list find/reverse + matmul + CRC mix, CoreMark-style."""
    rng = random.Random(seed)
    # linked list: (value, next_index) nodes, shuffled order
    order = list(range(list_len))
    rng.shuffle(order)
    nodes = [0] * list_len
    for pos, node in enumerate(order):
        nxt = order[(pos + 1) % list_len]
        nodes[node] = nxt
    values = [rng.randrange(1, 255) for _ in range(list_len)]
    mat = [rng.randrange(0, 64) for _ in range(matrix_n * matrix_n)]
    crc_data = [rng.getrandbits(32) for _ in range(crc_len)]
    body = f"""
main:
    li s0, {iterations}
    li s11, 0                  # result accumulator
cm_iter:
    # --- kernel 1: walk the linked list, summing values ---
    li t0, {order[0]}          # head node index
    li t1, {list_len}
    li t2, 0                   # visited count
    li t3, 0                   # sum
cm_list:
    la t4, list_vals
    slli t5, t0, 2
    add t6, t4, t5
    lw a1, 0(t6)
    add t3, t3, a1
    la t4, list_next
    add t6, t4, t5
    lw t0, 0(t6)
    addi t2, t2, 1
    blt t2, t1, cm_list
    add s11, s11, t3
    # --- kernel 2: small matrix multiply-accumulate ---
    li s1, 0                   # i
cm_mi:
    li s2, 0                   # j
cm_mj:
    li s3, 0                   # k
    li s4, 0                   # acc
cm_mk:
    li t0, {matrix_n}
    mul t1, s1, t0
    add t1, t1, s3
    slli t1, t1, 2
    la t2, matrix
    add t1, t1, t2
    lw t3, 0(t1)
    mul t4, s3, t0
    add t4, t4, s2
    slli t4, t4, 2
    add t4, t4, t2
    lw t5, 0(t4)
    mul t6, t3, t5
    add s4, s4, t6
    addi s3, s3, 1
    li t0, {matrix_n}
    blt s3, t0, cm_mk
    add s11, s11, s4
    addi s2, s2, 1
    blt s2, t0, cm_mj
    addi s1, s1, 1
    blt s1, t0, cm_mi
    # --- kernel 3: CRC-ish state machine over a data block ---
    li t0, 0                   # index
    li t1, {crc_len}
    li t2, 0xFFFF              # crc state
cm_crc:
    la t3, crc_data
    slli t4, t0, 2
    add t3, t3, t4
    lw t5, 0(t3)
    xor t2, t2, t5
    li t6, 8
cm_crc_bit:
    andi a1, t2, 1
    srli t2, t2, 1
    beqz a1, cm_crc_noxor
    li a2, 0xA001
    xor t2, t2, a2
cm_crc_noxor:
    addi t6, t6, -1
    bnez t6, cm_crc_bit
    addi t0, t0, 1
    blt t0, t1, cm_crc
    add s11, s11, t2
    addi s0, s0, -1
    bnez s0, cm_iter
    # fold result into an exit code of 0 (self-consistency check):
    la t0, result
    lw t1, 0(t0)
    beqz t1, cm_first_run
    sub a0, s11, t1            # must reproduce the same result
    ret
cm_first_run:
    sw s11, 0(t0)
    li a0, 0
    ret

.align 4
list_vals:
{words_directive(values)}
list_next:
{words_directive(nodes)}
matrix:
{words_directive(mat)}
crc_data:
{words_directive(crc_data)}
result:
    .word 0
"""
    return wrap(body)


def boot(bss_words=192, image_words=96, banner=True):
    """Boot-shaped workload: clear BSS, copy an image, walk page-table-
    like structures, print `uname`/`ls` banners, power down (exit 0)."""
    uname = "Linux repro 4.6.2-rv32 #1 SMP riscv32 GNU/Linux\\n"
    ls = "bin dev etc home proc sys tmp usr var\\n"
    text = (uname + ls) if banner else ""
    chars = [ord(c) for c in text.encode().decode("unicode_escape")]
    body = f"""
main:
    # phase 1: zero the BSS region
    la t0, bss_start
    li t1, {bss_words}
boot_bss:
    sw zero, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, boot_bss
    # phase 2: copy the "kernel image"
    la t0, image_src
    la t1, bss_start
    li t2, {image_words}
boot_copy:
    lw t3, 0(t0)
    sw t3, 0(t1)
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, -1
    bnez t2, boot_copy
    # phase 3: build and walk a two-level table (page-table flavour)
    la t0, bss_start
    li t1, 16                  # level-1 entries
    la t2, bss_start
boot_pt_build:
    addi t3, t2, 64
    sw t3, 0(t2)
    mv t2, t3
    addi t1, t1, -1
    bnez t1, boot_pt_build
    la t2, bss_start
    li t1, 16
boot_pt_walk:
    lw t2, 0(t2)
    addi t1, t1, -1
    bnez t1, boot_pt_walk
    # phase 4: console output (uname + ls)
    la s0, banner_text
    li s1, {len(chars)}
    li s2, PUTCHAR
boot_print:
    beqz s1, boot_done
    lw t0, 0(s0)
    sw t0, 0(s2)
    addi s0, s0, 4
    addi s1, s1, -1
    j boot_print
boot_done:
    li a0, 0
    ret

.align 4
image_src:
{words_directive([0x10000 + i for i in range(image_words)])}
banner_text:
{words_directive(chars) if chars else "    .word 0"}
bss_start:
    .space {4 * max(bss_words, image_words, 17 * 64 // 4 + 64)}
"""
    return wrap(body)


def gcc_phases(rounds=2, stream_words=256, chase_len=64, seed=17):
    """Phase-varying long workload standing in for 403.gcc.

    Each round runs four phases with distinct CPI signatures and stores
    a scaled CPI sample (cycles*16/instructions) to the PERF MMIO port
    after each phase — the user-level CPI sampler of Figure 10.
    """
    rng = random.Random(seed)
    # dependent pointer-chase ring through chase_len slots
    order = list(range(1, chase_len))
    rng.shuffle(order)
    ring = [0] * chase_len
    prev = 0
    for node in order:
        ring[prev] = node * 4
        prev = node
    ring[prev] = 0
    body = f"""
main:
    addi sp, sp, -4
    sw ra, 0(sp)
    li s0, {rounds}
gcc_round:
    # ---- phase A: ALU-dense (low CPI) ----
    call perf_begin
    li t0, 600
    li t1, 0x12345
    li t2, 0x0F0F1
phaseA:
    add t1, t1, t2
    xor t2, t2, t1
    slli t3, t1, 3
    srli t4, t2, 2
    or t1, t3, t4
    andi t2, t1, 0x7FF
    addi t2, t2, 3
    addi t0, t0, -1
    bnez t0, phaseA
    call perf_sample
    # ---- phase B: streaming stores+loads (cache pressure) ----
    call perf_begin
    la t0, stream_buf
    li t1, {stream_words}
phaseB_w:
    sw t1, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, phaseB_w
    la t0, stream_buf
    li t1, {stream_words}
    li t2, 0
phaseB_r:
    lw t3, 0(t0)
    add t2, t2, t3
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, phaseB_r
    call perf_sample
    # ---- phase C: dependent pointer-chase (high CPI) ----
    call perf_begin
    li t0, 0
    li t1, {3 * chase_len}
    la t2, chase_ring
phaseC:
    add t3, t2, t0
    lw t0, 0(t3)
    addi t1, t1, -1
    bnez t1, phaseC
    call perf_sample
    # ---- phase D: branchy data-dependent code ----
    call perf_begin
    li t0, 400
    li t1, 0xACE1              # LFSR state
phaseD:
    andi t2, t1, 1
    srli t1, t1, 1
    beqz t2, phaseD_skip
    li t3, 0xB400
    xor t1, t1, t3
    addi t1, t1, 1
phaseD_skip:
    andi t4, t1, 7
    beqz t4, phaseD_rare
    j phaseD_next
phaseD_rare:
    slli t1, t1, 1
    ori t1, t1, 1
phaseD_next:
    addi t0, t0, -1
    bnez t0, phaseD
    call perf_sample
    addi s0, s0, -1
    bnez s0, gcc_round
    li a0, 0
    lw ra, 0(sp)
    addi sp, sp, 4
    ret

perf_begin:
    csrr s8, cycle
    csrr s9, instret
    ret

perf_sample:                   # CPI*16 -> PERF port
    csrr t5, cycle
    csrr t6, instret
    sub t5, t5, s8
    sub t6, t6, s9
    slli t5, t5, 4
    beqz t6, perf_skip
    divu t5, t5, t6
    li a5, PERF
    sw t5, 0(a5)
perf_skip:
    ret

.align 4
chase_ring:
{words_directive(ring)}
stream_buf:
    .space {4 * stream_words}
"""
    return wrap(body)


WORKLOADS = {
    "coremark_lite": coremark_lite,
    "boot": boot,
    "gcc_phases": gcc_phases,
}
