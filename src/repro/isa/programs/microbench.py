"""The six Rocket-Chip microbenchmarks used in Table IV / Figure 8.

``vvadd``, ``towers``, ``dhrystone`` (-lite), ``qsort``, ``spmv`` and
``dgemm`` — scaled-down RV32 assembly versions of the riscv-tests
benchmarks the paper replays on gate level.  Each returns exit code 0 on
a correct result, so power experiments double as correctness checks.
"""

from __future__ import annotations

import random

from .common import wrap, words_directive


def vvadd(n=150, seed=11):
    """Element-wise vector add with checksum verification."""
    rng = random.Random(seed)
    a = [rng.getrandbits(31) for _ in range(n)]
    b = [rng.getrandbits(31) for _ in range(n)]
    expected = sum((x + y) & 0xFFFFFFFF for x, y in zip(a, b)) & 0xFFFFFFFF
    body = f"""
main:
    la t0, vec_a
    la t1, vec_b
    la t2, vec_c
    li t3, {n}
    li t4, 0              # index
vvadd_loop:
    lw a1, 0(t0)
    lw a2, 0(t1)
    add a3, a1, a2
    sw a3, 0(t2)
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, 4
    addi t4, t4, 1
    blt t4, t3, vvadd_loop
    # checksum pass
    la t2, vec_c
    li t4, 0
    li a0, 0
check_loop:
    lw a3, 0(t2)
    add a0, a0, a3
    addi t2, t2, 4
    addi t4, t4, 1
    blt t4, t3, check_loop
    li t5, {expected}
    sub a0, a0, t5        # 0 when correct
    ret

.align 4
vec_a:
{words_directive(a)}
vec_b:
{words_directive(b)}
vec_c:
    .space {4 * n}
"""
    return wrap(body)


def towers(n=6):
    """Towers of Hanoi (recursive); verifies the move count 2^n - 1."""
    body = f"""
main:
    addi sp, sp, -4
    sw ra, 0(sp)
    li a0, {n}
    li a1, 1              # from peg
    li a2, 3              # to peg
    li a3, 2              # via peg
    la t0, moves
    sw zero, 0(t0)
    call hanoi
    la t0, moves
    lw a0, 0(t0)
    li t1, {(1 << n) - 1}
    sub a0, a0, t1
    lw ra, 0(sp)
    addi sp, sp, 4
    ret

hanoi:                     # (n, from, to, via)
    addi sp, sp, -20
    sw ra, 16(sp)
    sw a0, 12(sp)
    sw a1, 8(sp)
    sw a2, 4(sp)
    sw a3, 0(sp)
    li t0, 1
    bne a0, t0, hanoi_rec
    la t1, moves
    lw t2, 0(t1)
    addi t2, t2, 1
    sw t2, 0(t1)
    j hanoi_done
hanoi_rec:
    addi a0, a0, -1        # n-1
    mv t3, a2
    mv a2, a3              # to = via
    mv a3, t3              # via = to
    call hanoi             # move n-1 from->via
    la t1, moves
    lw t2, 0(t1)
    addi t2, t2, 1
    sw t2, 0(t1)           # move disk n
    lw a0, 12(sp)
    lw a1, 8(sp)
    lw a2, 4(sp)
    lw a3, 0(sp)
    addi a0, a0, -1
    mv t3, a1
    mv a1, a3              # from = via
    mv a3, t3
    call hanoi             # move n-1 via->to
hanoi_done:
    lw ra, 16(sp)
    addi sp, sp, 20
    ret

.align 4
moves:
    .word 0
"""
    return wrap(body)


def dhrystone(iterations=40):
    """Dhrystone-flavoured mix: string copy/compare, field updates,
    integer arithmetic, and branches."""
    src = "DHRYSTONE PROGRAM, SOME STRING"
    packed = src.encode() + b"\0"
    words = [int.from_bytes(packed[i:i + 4].ljust(4, b"\0"), "little")
             for i in range(0, len(packed), 4)]
    n_words = len(words)
    body = f"""
main:
    li s0, {iterations}
    li s1, 0               # checksum
dhry_iter:
    # string copy (word-wise)
    la t0, str_src
    la t1, str_dst
    li t2, {n_words}
copy_loop:
    lw t3, 0(t0)
    sw t3, 0(t1)
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, -1
    bnez t2, copy_loop
    # string compare
    la t0, str_src
    la t1, str_dst
    li t2, {n_words}
cmp_loop:
    lw t3, 0(t0)
    lw t4, 0(t1)
    bne t3, t4, dhry_fail
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, -1
    bnez t2, cmp_loop
    # record-ish field updates
    la t0, record
    lw t3, 0(t0)
    addi t3, t3, 7
    sw t3, 0(t0)
    lw t4, 4(t0)
    xor t4, t4, t3
    sw t4, 4(t0)
    # arithmetic mix with data-dependent branch
    andi t5, t3, 3
    beqz t5, dhry_even
    add s1, s1, t3
    j dhry_next
dhry_even:
    sub s1, s1, t4
dhry_next:
    addi s0, s0, -1
    bnez s0, dhry_iter
    li a0, 0
    ret
dhry_fail:
    li a0, 1
    ret

.align 4
str_src:
{words_directive(words)}
str_dst:
    .space {4 * n_words}
record:
    .word 3, 5
"""
    return wrap(body)


def qsort(n=48, seed=5):
    """Iterative quicksort with an explicit stack; verifies sortedness."""
    rng = random.Random(seed)
    data = [rng.getrandbits(31) for _ in range(n)]
    body = f"""
main:
    la a0, array
    li a1, 0               # lo index
    li a2, {n - 1}         # hi index
    # explicit stack of (lo,hi) ranges at qstack
    la s0, qstack
    sw a1, 0(s0)
    sw a2, 4(s0)
    addi s0, s0, 8
qsort_loop:
    la t0, qstack
    beq s0, t0, qsort_check
    addi s0, s0, -8
    lw a1, 0(s0)           # lo
    lw a2, 4(s0)           # hi
    bge a1, a2, qsort_loop
    # partition: pivot = array[hi]
    la t0, array
    slli t1, a2, 2
    add t1, t1, t0
    lw t2, 0(t1)           # pivot
    mv t3, a1              # i
    mv t4, a1              # j
part_loop:
    bge t4, a2, part_done
    slli t5, t4, 2
    add t5, t5, t0
    lw t6, 0(t5)
    bge t6, t2, part_skip
    # swap array[i], array[j]
    slli a3, t3, 2
    add a3, a3, t0
    lw a4, 0(a3)
    sw t6, 0(a3)
    sw a4, 0(t5)
    addi t3, t3, 1
part_skip:
    addi t4, t4, 1
    j part_loop
part_done:
    # swap array[i], array[hi]
    slli a3, t3, 2
    add a3, a3, t0
    lw a4, 0(a3)
    sw t2, 0(a3)
    sw a4, 0(t1)
    # push (lo, i-1) and (i+1, hi)
    addi t5, t3, -1
    sw a1, 0(s0)
    sw t5, 4(s0)
    addi s0, s0, 8
    addi t5, t3, 1
    sw t5, 0(s0)
    sw a2, 4(s0)
    addi s0, s0, 8
    j qsort_loop
qsort_check:
    la t0, array
    li t1, 1
    li a0, 0
check_sorted:
    slli t2, t1, 2
    add t2, t2, t0
    lw t3, 0(t2)
    lw t4, -4(t2)
    bgeu t3, t4, check_ok
    li a0, 1
    ret
check_ok:
    addi t1, t1, 1
    li t5, {n}
    blt t1, t5, check_sorted
    ret

.align 4
array:
{words_directive(data)}
qstack:
    .space {8 * 2 * (n + 4)}
"""
    return wrap(body)


def spmv(rows=24, nnz_per_row=4, seed=9):
    """CSR sparse matrix-vector multiply with checksum verification."""
    rng = random.Random(seed)
    cols = rows
    ptr = [0]
    idx = []
    val = []
    for _ in range(rows):
        row_cols = sorted(rng.sample(range(cols), nnz_per_row))
        idx.extend(row_cols)
        val.extend(rng.randrange(1, 1 << 15) for _ in range(nnz_per_row))
        ptr.append(len(idx))
    x = [rng.randrange(1, 1 << 15) for _ in range(cols)]
    y = []
    for r in range(rows):
        acc = 0
        for k in range(ptr[r], ptr[r + 1]):
            acc = (acc + val[k] * x[idx[k]]) & 0xFFFFFFFF
        y.append(acc)
    checksum = sum(y) & 0xFFFFFFFF
    body = f"""
main:
    li s0, 0               # row
    li s1, {rows}
    li s11, 0              # checksum
spmv_row:
    la t0, mat_ptr
    slli t1, s0, 2
    add t2, t0, t1
    lw t3, 0(t2)           # ptr[r]
    lw t4, 4(t2)           # ptr[r+1]
    li s2, 0               # acc
spmv_inner:
    bge t3, t4, spmv_row_done
    la t0, mat_idx
    slli t5, t3, 2
    add t5, t5, t0
    lw t6, 0(t5)           # column
    la t0, mat_val
    slli a3, t3, 2
    add a3, a3, t0
    lw a4, 0(a3)           # value
    la t0, vec_x
    slli a5, t6, 2
    add a5, a5, t0
    lw a6, 0(a5)           # x[col]
    mul a7, a4, a6
    add s2, s2, a7
    addi t3, t3, 1
    j spmv_inner
spmv_row_done:
    la t0, vec_y
    slli t1, s0, 2
    add t1, t1, t0
    sw s2, 0(t1)
    add s11, s11, s2
    addi s0, s0, 1
    blt s0, s1, spmv_row
    li t0, {checksum}
    sub a0, s11, t0
    ret

.align 4
mat_ptr:
{words_directive(ptr)}
mat_idx:
{words_directive(idx)}
mat_val:
{words_directive(val)}
vec_x:
{words_directive(x)}
vec_y:
    .space {4 * rows}
"""
    return wrap(body)


def dgemm(n=8, seed=3):
    """Dense n x n integer matrix multiply (exercises the retimed
    multiplier pipeline), with checksum verification."""
    rng = random.Random(seed)
    a = [rng.randrange(0, 1 << 12) for _ in range(n * n)]
    b = [rng.randrange(0, 1 << 12) for _ in range(n * n)]
    c = [0] * (n * n)
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                acc = (acc + a[i * n + k] * b[k * n + j]) & 0xFFFFFFFF
            c[i * n + j] = acc
    checksum = sum(c) & 0xFFFFFFFF
    body = f"""
main:
    li s0, 0               # i
    li s10, {n}
    li s11, 0              # checksum
gemm_i:
    li s1, 0               # j
gemm_j:
    li s2, 0               # k
    li s3, 0               # acc
gemm_k:
    # a[i*n + k]
    mul t0, s0, s10
    add t0, t0, s2
    slli t0, t0, 2
    la t1, mat_a
    add t0, t0, t1
    lw t2, 0(t0)
    # b[k*n + j]
    mul t3, s2, s10
    add t3, t3, s1
    slli t3, t3, 2
    la t4, mat_b
    add t3, t3, t4
    lw t5, 0(t3)
    mul t6, t2, t5
    add s3, s3, t6
    addi s2, s2, 1
    blt s2, s10, gemm_k
    # c[i*n + j] = acc
    mul t0, s0, s10
    add t0, t0, s1
    slli t0, t0, 2
    la t1, mat_c
    add t0, t0, t1
    sw s3, 0(t0)
    add s11, s11, s3
    addi s1, s1, 1
    blt s1, s10, gemm_j
    addi s0, s0, 1
    blt s0, s10, gemm_i
    li t0, {checksum}
    sub a0, s11, t0
    ret

.align 4
mat_a:
{words_directive(a)}
mat_b:
{words_directive(b)}
mat_c:
    .space {4 * n * n}
"""
    return wrap(body)


MICROBENCHMARKS = {
    "vvadd": vvadd,
    "towers": towers,
    "dhrystone": dhrystone,
    "qsort": qsort,
    "spmv": spmv,
    "dgemm": dgemm,
}
