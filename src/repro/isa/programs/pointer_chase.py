"""Pointer-chase latency microbenchmark (ccbench analog, Figure 7).

Builds a pointer ring spanning a configurable array size, chases it for
a configurable number of dependent loads, and reports the average
load-to-load latency in 1/16ths of a cycle through the PERF MMIO port.
Sweeping the array size exposes the L1 capacity; sweeping the simulated
DRAM latency moves the off-chip plateau, which is exactly what the
paper's Figure 7 demonstrates.
"""

from __future__ import annotations

import random

from .common import wrap, words_directive


def pointer_chase(array_bytes=4096, loads=256, stride_words=16, seed=2,
                  base_addr_label="chase_array"):
    """Dependent-load chain over an ``array_bytes``-sized ring.

    ``stride_words`` spaces consecutive ring nodes one cache line apart
    so each hop touches a new line (defeating spatial locality), as
    ccbench's pointer-chase does with its random permutation.
    """
    n_slots = max(array_bytes // 4, stride_words * 2)
    n_nodes = n_slots // stride_words
    rng = random.Random(seed)
    order = list(range(1, n_nodes))
    rng.shuffle(order)
    ring = [0] * n_slots
    prev = 0
    for node in order:
        ring[prev * stride_words] = node * stride_words * 4
        prev = node
    ring[prev * stride_words] = 0
    body = f"""
main:
    # warm nothing: a cold chase measures the memory hierarchy as-is
    csrr s8, cycle
    li t0, 0                   # current offset
    li t1, {loads}
    la t2, {base_addr_label}
chase_loop:
    add t3, t2, t0
    lw t0, 0(t3)               # next offset (dependent load)
    addi t1, t1, -1
    bnez t1, chase_loop
    csrr s9, cycle
    sub s9, s9, s8
    slli s9, s9, 4
    li t4, {loads}
    divu s9, s9, t4            # load-to-load latency * 16
    li t5, PERF
    sw s9, 0(t5)
    li a0, 0
    ret

.align 4
{base_addr_label}:
{words_directive(ring)}
"""
    return wrap(body)
