"""Benchmark programs: microbenchmarks, case-study workloads, latency."""

from .common import wrap, words_directive, exit_code_of, DEFAULT_STACK_TOP
from .microbench import (
    vvadd, towers, dhrystone, qsort, spmv, dgemm, MICROBENCHMARKS,
)
from .workloads import coremark_lite, boot, gcc_phases, WORKLOADS
from .pointer_chase import pointer_chase

ALL_PROGRAMS = dict(MICROBENCHMARKS)
ALL_PROGRAMS.update(WORKLOADS)
ALL_PROGRAMS["pointer_chase"] = pointer_chase

__all__ = [
    "wrap", "words_directive", "exit_code_of", "DEFAULT_STACK_TOP",
    "vvadd", "towers", "dhrystone", "qsort", "spmv", "dgemm",
    "coremark_lite", "boot", "gcc_phases", "pointer_chase",
    "MICROBENCHMARKS", "WORKLOADS", "ALL_PROGRAMS",
]
