"""RV32IM toolchain: encoding, assembler, golden model, programs."""

from .encoding import decode, disassemble, reg_num, EncodingError, Decoded
from .assembler import assemble, Assembler, AssemblerError, Program
from .golden import (
    GoldenModel, GoldenError,
    TOHOST_ADDR, FROMHOST_ADDR, PUTCHAR_ADDR, PERF_ADDR, MMIO_BASE,
)

__all__ = [
    "decode", "disassemble", "reg_num", "EncodingError", "Decoded",
    "assemble", "Assembler", "AssemblerError", "Program",
    "GoldenModel", "GoldenError",
    "TOHOST_ADDR", "FROMHOST_ADDR", "PUTCHAR_ADDR", "PERF_ADDR",
    "MMIO_BASE",
]
