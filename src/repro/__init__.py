"""repro — a from-scratch reproduction of Strober (ISCA 2016).

Sample-based energy simulation for arbitrary RTL: a hardware DSL with a
transformable IR, a fast compiled RTL simulator, a FAME1 decoupled
simulator with scan-chain snapshot capture, a gate-level CAD substrate
(synthesis, placement, gate simulation, power analysis, formal matching),
statistical sampling with confidence intervals, a DRAM power model, and
two RISC-V target cores (in-order "Rocket-like" and out-of-order
"BOOM-like").

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "0.1.0"
