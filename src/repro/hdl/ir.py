"""Intermediate representation for the repro hardware construction DSL.

This is the analog of Chisel's backend IR (FIRRTL): a dataflow graph of
``Node`` objects plus ``MemDecl`` memories.  Custom transforms (the FAME1
transform, scan-chain insertion, synthesis) manipulate this IR, which is
the property of Chisel the Strober paper leans on (Section IV-A).

Signals are unsigned bit vectors up to 64 bits wide.  Signed behaviour is
expressed through dedicated ops (``lts``, ``sra``) or by explicit sign
extension in the DSL layer.
"""

from __future__ import annotations

import hashlib
import itertools

MAX_WIDTH = 64

# Source ops: no combinational arguments.
SOURCE_OPS = frozenset({"const", "input", "reg"})

# op -> number of arguments (None: variable)
OP_ARITY = {
    "const": 0,
    "input": 0,
    "reg": 0,
    "wire": 1,  # alias; eliminated at elaboration
    "memread": 1,
    "not": 1,
    "orr": 1,
    "andr": 1,
    "xorr": 1,
    "add": 2,
    "sub": 2,
    "mul": 2,
    "divu": 2,
    "modu": 2,
    "and": 2,
    "or": 2,
    "xor": 2,
    "shl": 2,
    "shr": 2,
    "sra": 2,
    "eq": 2,
    "neq": 2,
    "ltu": 2,
    "leu": 2,
    "lts": 2,
    "les": 2,
    "cat": 2,
    "bits": 1,
    "mux": 3,
}

_uid_counter = itertools.count()

# Set by the DSL layer so every node remembers the module whose build()
# created it (used for per-module power attribution downstream).
CURRENT_MODULE_HOOK = None


def mask(width):
    """All-ones mask for a bit vector of the given width."""
    return (1 << width) - 1


class Node:
    """A single IR node: a constant, port, register, or operator result.

    Nodes form a DAG through ``args``.  Identity (not structure) defines
    equality so nodes can be used as dict keys while the graph is being
    rewritten by transform passes.
    """

    __slots__ = (
        "uid", "op", "width", "args", "params", "name", "path",
        "init", "mem", "_module",
    )

    def __init__(self, op, width, args=(), params=None, name=None):
        if op not in OP_ARITY:
            raise ValueError(f"unknown op {op!r}")
        if width < 1 or width > MAX_WIDTH:
            raise ValueError(
                f"node width {width} out of range 1..{MAX_WIDTH} (op={op})")
        arity = OP_ARITY[op]
        if arity is not None and len(args) != arity:
            raise ValueError(f"op {op!r} expects {arity} args, got {len(args)}")
        self.uid = next(_uid_counter)
        self.op = op
        self.width = width
        self.args = tuple(args)
        self.params = params
        self.name = name
        self.path = None      # hierarchical name, filled at elaboration
        self.init = 0         # reset value, for regs
        self.mem = None       # MemDecl, for memread nodes
        self._module = None   # owning Module, for regs/wires/ports
        if CURRENT_MODULE_HOOK is not None:
            self._module = CURRENT_MODULE_HOOK()

    def __repr__(self):
        label = self.name or f"_{self.uid}"
        return f"<{self.op}:{self.width} {label}>"

    # -- DSL operator overloads ------------------------------------------
    # Comparisons are methods (eq/ne/ult/...) rather than ==/< overloads so
    # that nodes stay safely usable as dict keys and in sets.

    def _lift(self, other):
        return lift(other, hint_width=self.width)

    def __add__(self, other):
        other = self._lift(other)
        return Node("add", min(max(self.width, other.width) + 1,
                               MAX_WIDTH), (self, other))

    def __radd__(self, other):
        return self._lift(other).__add__(self)

    def __sub__(self, other):
        other = self._lift(other)
        return Node("sub", min(max(self.width, other.width) + 1,
                               MAX_WIDTH), (self, other))

    def __rsub__(self, other):
        return self._lift(other).__sub__(self)

    def __mul__(self, other):
        other = self._lift(other)
        return Node("mul", min(self.width + other.width, MAX_WIDTH),
                    (self, other))

    def __and__(self, other):
        other = self._lift(other)
        return Node("and", max(self.width, other.width), (self, other))

    def __rand__(self, other):
        return self.__and__(other)

    def __or__(self, other):
        other = self._lift(other)
        return Node("or", max(self.width, other.width), (self, other))

    def __ror__(self, other):
        return self.__or__(other)

    def __xor__(self, other):
        other = self._lift(other)
        return Node("xor", max(self.width, other.width), (self, other))

    def __rxor__(self, other):
        return self.__xor__(other)

    def __invert__(self):
        return Node("not", self.width, (self,))

    def __lshift__(self, other):
        if isinstance(other, int):
            shifted = Node("shl", min(self.width + other, MAX_WIDTH),
                           (self, lift(other)))
            return shifted
        other = lift(other)
        return Node("shl", self.width, (self, other))

    def __rshift__(self, other):
        other = lift(other)
        return Node("shr", self.width, (self, other))

    def __ilshift__(self, other):
        """``sig <<= value`` — connect, Chisel's ``:=``."""
        from .dsl import current_module
        current_module().assign(self, other)
        return self

    def __getitem__(self, key):
        if isinstance(key, slice):
            if key.step is not None:
                raise ValueError("bit slices take no step")
            hi, lo = key.start, key.stop
        else:
            hi = lo = key
        return self.bits(hi, lo)

    def __bool__(self):
        raise TypeError(
            "hardware nodes have no Python truth value; use mux()/when()")

    # -- methods ----------------------------------------------------------

    def bits(self, hi, lo=None):
        """Extract bits [hi:lo] (inclusive, like Verilog part-select)."""
        if lo is None:
            lo = hi
        if not (0 <= lo <= hi < self.width):
            raise ValueError(
                f"bits({hi},{lo}) out of range for width {self.width}")
        return Node("bits", hi - lo + 1, (self,), params=(hi, lo))

    def pad(self, width):
        """Zero-extend to the given width (no-op if already that wide)."""
        if width < self.width:
            raise ValueError("pad cannot shrink; use bits()")
        if width == self.width:
            return self
        return Node("cat", width, (lift(0, width=width - self.width), self))

    def sext(self, width):
        """Sign-extend to the given width."""
        if width < self.width:
            raise ValueError("sext cannot shrink")
        if width == self.width:
            return self
        sign = self.bits(self.width - 1)
        ext = Node("mux", width - self.width,
                   (sign, lift(mask(width - self.width),
                               width=width - self.width),
                    lift(0, width=width - self.width)))
        return Node("cat", width, (ext, self))

    def trunc(self, width):
        """Keep the low ``width`` bits."""
        if width > self.width:
            raise ValueError("trunc cannot grow; use pad()")
        if width == self.width:
            return self
        return self.bits(width - 1, 0)

    def resize(self, width):
        """Zero-extend or truncate to exactly ``width`` bits."""
        if width >= self.width:
            return self.pad(width)
        return self.trunc(width)

    def eq(self, other):
        other = self._lift(other)
        return Node("eq", 1, (self, other))

    def ne(self, other):
        other = self._lift(other)
        return Node("neq", 1, (self, other))

    def ult(self, other):
        other = self._lift(other)
        return Node("ltu", 1, (self, other))

    def ule(self, other):
        other = self._lift(other)
        return Node("leu", 1, (self, other))

    def ugt(self, other):
        return self._lift(other).ult(self)

    def uge(self, other):
        return self._lift(other).ule(self)

    def slt(self, other):
        other = self._lift(other)
        w = max(self.width, other.width)
        return Node("lts", 1, (self.sext(w), other.sext(w)))

    def sle(self, other):
        other = self._lift(other)
        w = max(self.width, other.width)
        return Node("les", 1, (self.sext(w), other.sext(w)))

    def sgt(self, other):
        return self._lift(other).slt(self)

    def sge(self, other):
        return self._lift(other).sle(self)

    def sra(self, shamt):
        shamt = lift(shamt)
        return Node("sra", self.width, (self, shamt))

    def orr(self):
        """OR-reduce: 1 iff any bit set."""
        return Node("orr", 1, (self,))

    def andr(self):
        """AND-reduce: 1 iff all bits set."""
        return Node("andr", 1, (self,))

    def xorr(self):
        """XOR-reduce: parity."""
        return Node("xorr", 1, (self,))


def lift(value, width=None, hint_width=None):
    """Turn a Python int into a const Node; pass Nodes through unchanged."""
    if isinstance(value, Node):
        return value
    if not isinstance(value, int):
        raise TypeError(f"cannot lift {type(value).__name__} into hardware")
    if value < 0:
        if width is None and hint_width is None:
            raise ValueError("negative literals need an explicit width")
        w = width if width is not None else hint_width
        value &= mask(w)
    if width is None:
        width = max(value.bit_length(), 1)
        if hint_width is not None:
            width = max(width, min(hint_width, MAX_WIDTH))
    if value > mask(width):
        raise ValueError(f"literal {value} does not fit in {width} bits")
    node = Node("const", width, params=value)
    return node


def const(value, width=None):
    """Explicit constant constructor (``const(5, width=8)``)."""
    return lift(value, width=width)


def mux(sel, if_true, if_false):
    """2:1 multiplexer; ``sel`` must be 1 bit wide."""
    sel = lift(sel)
    if sel.width != 1:
        sel = sel.orr()
    if_true = lift(if_true)
    if_false = lift(if_false, hint_width=if_true.width)
    if_true = lift(if_true, hint_width=if_false.width)
    w = max(if_true.width, if_false.width)
    return Node("mux", w, (sel, if_true.pad(w), if_false.pad(w)))


def cat(*parts):
    """Concatenate, first argument is most significant (like Chisel Cat)."""
    parts = [lift(p) for p in parts]
    if not parts:
        raise ValueError("cat needs at least one part")
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = Node("cat", min(part.width + result.width, MAX_WIDTH),
                      (part, result))
    return result


# Salt for circuit_fingerprint(); bump whenever the IR node semantics or
# the traversal below change so stale cached artifacts are never reused.
_FINGERPRINT_VERSION = 1


def circuit_fingerprint(circuit):
    """Deterministic content hash of an elaborated circuit.

    Node ``uid``s come from a process-global counter, so they differ
    between processes that build the same design; this hash instead
    assigns canonical indices by traversal order (inputs, registers,
    then ``comb_order``, which is deterministic for a deterministic
    builder) and hashes only structural content: ops, widths, params,
    paths, reset values, connectivity, memory ports, and retimed-block
    annotations.  Two processes elaborating the same design therefore
    agree on the fingerprint, which keys the on-disk artifact cache
    (``repro.parallel.cache``).
    """
    h = hashlib.blake2b(digest_size=20)

    def feed(*parts):
        for part in parts:
            h.update(repr(part).encode())
            h.update(b"\x1f")
        h.update(b"\x1e")

    ids = {}

    def assign(node):
        ids[node] = len(ids)

    def ref(node):
        # Constants are hashed inline: they never appear in comb_order.
        if node.op == "const":
            return ("c", node.width, node.params)
        return ids[node]

    feed("repro-circuit", _FINGERPRINT_VERSION, circuit.name)
    for node in circuit.inputs:
        assign(node)
        feed("in", node.name, node.width)
    for reg in circuit.regs:
        assign(reg)
        feed("reg", reg.path, reg.width, reg.init)
    mem_ids = {}
    for mem in circuit.mems:
        mem_ids[mem] = len(mem_ids)
        feed("mem", mem.path, mem.depth, mem.width)
    for node in circuit.comb_order:
        assign(node)
        if node.op == "memread":
            feed("memread", node.width, mem_ids[node.mem],
                 [ref(a) for a in node.args])
        else:
            feed(node.op, node.width, node.params,
                 [ref(a) for a in node.args])
    for name, driver in circuit.outputs:
        feed("out", name, ref(driver))
    for reg in circuit.regs:
        feed("next", ids[reg], ref(circuit.reg_next[reg]))
    for mem in circuit.mems:
        for addr, data, en in mem.writes:
            feed("write", mem_ids[mem], ref(addr), ref(data), ref(en))
        for port in mem.read_ports:
            feed("rport", mem_ids[mem], ref(port.args[0]))
    for block in getattr(circuit, "retimed_blocks", ()):
        feed("retimed", block.prefix, block.latency,
             [(rin.name, rin.width, tuple(rin.hist_reg_paths))
              for rin in block.inputs])
    return h.hexdigest()


class MemDecl:
    """A memory array (SRAM/BRAM analog).

    Reads are combinational at the IR level; the DSL offers registered-
    address "sync" reads which model BRAM/SRAM single-cycle read latency.
    Writes take effect at the clock edge, in declaration order.
    """

    __slots__ = ("uid", "name", "depth", "width", "writes", "read_ports",
                 "path", "_module")

    def __init__(self, name, depth, width):
        if width < 1 or width > MAX_WIDTH:
            raise ValueError(f"mem width {width} out of range")
        if depth < 1:
            raise ValueError("mem depth must be positive")
        self.uid = next(_uid_counter)
        self.name = name
        self.depth = depth
        self.width = width
        self.writes = []        # list of (addr, data, en) Node triples
        self.read_ports = []    # list of memread Nodes
        self.path = None
        self._module = None

    def __repr__(self):
        return f"<mem {self.name} {self.depth}x{self.width}>"

    @property
    def addr_width(self):
        return max((self.depth - 1).bit_length(), 1)

    def read(self, addr):
        """Combinational (async) read port."""
        addr = lift(addr)
        node = Node("memread", self.width, (addr,))
        node.mem = self
        self.read_ports.append(node)
        return node
