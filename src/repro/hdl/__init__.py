"""Hardware construction DSL (the Chisel analog).

Public surface:

* :class:`Module` — subclass and define ``build()``.
* :func:`elaborate` — flatten a module tree into a :class:`Circuit`.
* Node constructors/combinators: :func:`const`, :func:`mux`, :func:`cat`.
"""

from .ir import (
    Node, MemDecl, const, lift, mux, cat, mask, MAX_WIDTH,
    circuit_fingerprint,
)
from .dsl import Module, Instance, current_module
from .elaborate import elaborate, Circuit, ElaborationError

__all__ = [
    "Node", "MemDecl", "const", "lift", "mux", "cat", "mask", "MAX_WIDTH",
    "circuit_fingerprint",
    "Module", "Instance", "current_module",
    "elaborate", "Circuit", "ElaborationError",
]
