"""Module builder layer of the hardware DSL (the Chisel frontend analog).

A hardware design is a tree of :class:`Module` objects.  Subclasses define
structure in :meth:`Module.build` using ``self.input/output/reg/wire/mem``
plus ``when``/``elsewhen``/``otherwise`` conditional assignment blocks.
Connections use ``target <<= value`` (last connect wins, like Chisel).
"""

from __future__ import annotations

from . import ir
from .ir import Node, MemDecl, lift, mux

_BUILD_STACK = []


def _module_hook():
    return _BUILD_STACK[-1] if _BUILD_STACK else None


ir.CURRENT_MODULE_HOOK = _module_hook


def current_module():
    """The module currently executing its ``build()`` body."""
    if not _BUILD_STACK:
        raise RuntimeError("no module is being built; `<<=` is only legal "
                           "inside Module.build()")
    return _BUILD_STACK[-1]


class _CondBlock:
    """Context manager implementing when/elsewhen/otherwise."""

    def __init__(self, module, cond):
        self._module = module
        self._cond = cond

    def __enter__(self):
        self._module._cond_stack.append(self._cond)
        self._module._chain_stack.append(None)
        return self

    def __exit__(self, exc_type, exc, tb):
        self._module._cond_stack.pop()
        self._module._chain_stack.pop()
        if exc_type is None:
            self._module._merge_chain(self._cond)
        return False


class Instance:
    """Handle to an instantiated child module; index by port name."""

    def __init__(self, module):
        self.module = module

    def __getitem__(self, port_name):
        return self.module.port(port_name)

    def __setitem__(self, port_name, value):
        port = self.module.port(port_name)
        if value is port:
            return  # `inst["a"] <<= x` already recorded the connection
        current_module().assign(port, value)

    def __getattr__(self, port_name):
        try:
            return self.module.port(port_name)
        except KeyError:
            raise AttributeError(port_name) from None


class Module:
    """Base class for hardware modules.

    Subclasses set their parameters in ``__init__`` (calling
    ``super().__init__(name)``) and create hardware in ``build()``.
    Building is lazy: it happens the first time the module is instanced
    into a parent or elaborated as a design top.
    """

    def __init__(self, name=None):
        self.name = name or type(self).__name__
        self._inputs = {}      # name -> Node('input')
        self._outputs = {}     # name -> assignable Node('wire')
        self._regs = []
        self._mems = []
        self._wires = []
        self._instances = []   # (inst_name, Module)
        self._assigns = {}     # target Node -> [(cond Node|None, value Node)]
        self._assign_order = []
        self._cond_stack = []
        self._chain_stack = [None]   # pending elsewhen chain per depth
        self._built = False
        self._building = False
        self._retime_latency = None

    # -- construction helpers --------------------------------------------

    def _ensure_built(self):
        if self._built:
            return
        if self._building:
            raise RuntimeError(f"recursive build of module {self.name}")
        self._building = True
        _BUILD_STACK.append(self)
        try:
            self.build()
        finally:
            _BUILD_STACK.pop()
            self._building = False
        self._built = True

    def build(self):
        raise NotImplementedError(
            f"{type(self).__name__} must define build()")

    def input(self, name, width):
        """Declare an input port."""
        self._check_port_name(name)
        node = Node("input", width, name=name)
        node._module = self
        self._inputs[name] = node
        return node

    def output(self, name, width, value=None):
        """Declare an output port; optionally drive it immediately."""
        self._check_port_name(name)
        node = Node("wire", width, (lift(0, width=width),), name=name)
        node._module = self
        node.params = "output"
        self._outputs[name] = node
        if value is not None:
            self.assign(node, value)
        return node

    def _check_port_name(self, name):
        if name in self._inputs or name in self._outputs:
            raise ValueError(f"duplicate port name {name!r} in {self.name}")

    def reg(self, name, width, init=0):
        """Declare a register with the given reset value."""
        node = Node("reg", width, name=name)
        node.init = init & ((1 << width) - 1)
        node._module = self
        self._regs.append(node)
        return node

    def wire(self, name, width, default=None):
        """Declare a named combinational wire (assign with ``<<=``)."""
        node = Node("wire", width, (lift(0, width=width),), name=name)
        node._module = self
        self._wires.append(node)
        if default is not None:
            self.assign(node, default)
        return node

    def mem(self, name, depth, width):
        """Declare a memory array."""
        decl = MemDecl(name, depth, width)
        decl._module = self
        self._mems.append(decl)
        return decl

    def mem_read_sync(self, memory, addr, name=None):
        """Registered-address read: data valid one cycle after ``addr``.

        Models SRAM/BRAM read latency (read-during-write sees new data).
        """
        addr = lift(addr)
        addr_reg = self.reg(name or f"{memory.name}_raddr_r",
                            memory.addr_width)
        self.assign(addr_reg, addr)
        return memory.read(addr_reg)

    def mem_write(self, memory, addr, data, en=1):
        """Write port; enable is ANDed with the enclosing when conditions."""
        addr = lift(addr)
        data = lift(data, hint_width=memory.width).resize(memory.width)
        en = lift(en)
        cond = self._current_condition()
        if cond is not None:
            en = en & cond
        memory.writes.append((addr.resize(memory.addr_width), data, en))

    def instance(self, child, name=None):
        """Instantiate a child module; returns an :class:`Instance`."""
        child._ensure_built()
        inst_name = name or f"{child.name}_{len(self._instances)}"
        child.name = inst_name
        self._instances.append((inst_name, child))
        return Instance(child)

    def port(self, name):
        """Look up one of this module's ports by name."""
        if name in self._inputs:
            return self._inputs[name]
        if name in self._outputs:
            return self._outputs[name]
        raise KeyError(f"module {self.name} has no port {name!r}")

    # -- conditional assignment -------------------------------------------

    def when(self, cond):
        self._chain_stack[-1] = None   # start a new chain at this depth
        return _CondBlock(self, lift(cond))

    def elsewhen(self, cond):
        chain = self._chain_stack[-1]
        if chain is None:
            raise RuntimeError("elsewhen without a preceding when")
        eff = ~chain & lift(cond)
        return _CondBlock(self, eff)

    def otherwise(self):
        chain = self._chain_stack[-1]
        if chain is None:
            raise RuntimeError("otherwise without a preceding when")
        block = _CondBlock(self, ~chain)
        self._chain_stack[-1] = None
        return block

    def _merge_chain(self, cond):
        chain = self._chain_stack[-1]
        self._chain_stack[-1] = cond if chain is None else (chain | cond)

    def _current_condition(self):
        cond = None
        for c in self._cond_stack:
            cond = c if cond is None else (cond & c)
        return cond

    def assign(self, target, value):
        """Connect ``value`` to ``target`` under the current conditions."""
        if not isinstance(target, Node):
            raise TypeError("assignment target must be a reg/wire/port node")
        if target.op == "input":
            if target._module is self:
                raise ValueError(
                    f"cannot drive own input port {target.name!r}")
        elif target.op not in ("reg", "wire"):
            raise TypeError(f"cannot assign to op {target.op!r}")
        value = lift(value, hint_width=target.width).resize(target.width)
        cond = self._current_condition()
        if target not in self._assigns:
            self._assigns[target] = []
            self._assign_order.append(target)
        self._assigns[target].append((cond, value))

    def mark_retimed(self, latency):
        """Declare this module a retimed datapath of the given latency.

        Mirrors the designer annotation of Strober Section IV-C3: CAD
        tools may freely rebalance the module's internal registers, so
        gate-level replays must recover its state by forcing its inputs
        for ``latency`` cycles.  Elaboration adds the input history shift
        registers the paper describes.
        """
        if latency < 1:
            raise ValueError("retime latency must be >= 1")
        self._retime_latency = latency

    # -- misc ---------------------------------------------------------------

    def all_modules(self):
        """This module and all transitive children, depth first."""
        result = [self]
        for _, child in self._instances:
            result.extend(child.all_modules())
        return result


__all__ = ["Module", "Instance", "current_module", "mux"]
