"""Verilog backend: emit synthesizable Verilog-2001 from a Circuit.

The analog of Chisel's Verilog backend in the paper's Figure 5 flow —
real Strober hands this output to the commercial ASIC tools.  Here the
in-process :mod:`repro.gatelevel` flow consumes the IR directly, so
this backend exists for interoperability and inspection (and to honor
the tool-flow shape): the emitted text is valid Verilog that an
external simulator or synthesizer could consume.
"""

from __future__ import annotations

from .ir import mask


class VerilogError(Exception):
    pass


def _name(node, names):
    if node.op == "const":
        return f"{node.width}'h{node.params:x}"
    return names[node]


def _expr(node, names):
    op = node.op
    if op == "const":
        return f"{node.width}'h{node.params:x}"
    args = [_name(a, names) for a in node.args]
    w = node.width
    binops = {"add": "+", "sub": "-", "mul": "*", "divu": "/",
              "modu": "%", "and": "&", "or": "|", "xor": "^",
              "shl": "<<", "shr": ">>", "eq": "==", "neq": "!=",
              "ltu": "<", "leu": "<="}
    if op in binops:
        return f"({args[0]} {binops[op]} {args[1]})"
    if op == "not":
        return f"(~{args[0]})"
    if op == "sra":
        return f"($signed({args[0]}) >>> {args[1]})"
    if op in ("lts", "les"):
        cmp = "<" if op == "lts" else "<="
        return f"($signed({args[0]}) {cmp} $signed({args[1]}))"
    if op == "mux":
        return f"({args[0]} ? {args[1]} : {args[2]})"
    if op == "cat":
        return f"{{{args[0]}, {args[1]}}}"
    if op == "bits":
        hi, lo = node.params
        if hi == lo:
            return f"{args[0]}[{hi}]"
        return f"{args[0]}[{hi}:{lo}]"
    if op == "orr":
        return f"(|{args[0]})"
    if op == "andr":
        return f"(&{args[0]})"
    if op == "xorr":
        return f"(^{args[0]})"
    if op == "memread":
        mem_name = node.mem.path.replace(".", "_")
        return f"{mem_name}[{args[0]}]"
    raise VerilogError(f"cannot emit op {op!r}")


def emit_verilog(circuit, module_name=None):
    """Render the whole circuit as one flat Verilog module."""
    module_name = module_name or circuit.name.replace(".", "_")
    names = {}
    for node in circuit.inputs:
        names[node] = node.name
    for reg in circuit.regs:
        names[reg] = reg.path.replace(".", "_")
    for i, node in enumerate(circuit.comb_order):
        names[node] = f"_T_{i}"

    lines = [f"module {module_name}(", "  input clock,", "  input reset,"]
    ports = []
    for node in circuit.inputs:
        ports.append(f"  input [{node.width - 1}:0] {node.name}")
    for out_name, driver in circuit.outputs:
        ports.append(f"  output [{driver.width - 1}:0] {out_name}")
    lines.append(",\n".join(ports))
    lines.append(");")

    for reg in circuit.regs:
        lines.append(f"  reg [{reg.width - 1}:0] {names[reg]};")
    for mem in circuit.mems:
        mem_name = mem.path.replace(".", "_")
        lines.append(f"  reg [{mem.width - 1}:0] {mem_name} "
                     f"[0:{mem.depth - 1}];")

    for node in circuit.comb_order:
        lines.append(f"  wire [{node.width - 1}:0] {names[node]} = "
                     f"{_expr(node, names)};")

    for out_name, driver in circuit.outputs:
        ref = (names[driver] if driver.op != "const"
               else _expr(driver, names))
        lines.append(f"  assign {out_name} = {ref};")

    lines.append("  always @(posedge clock) begin")
    lines.append("    if (reset) begin")
    for reg in circuit.regs:
        lines.append(f"      {names[reg]} <= "
                     f"{reg.width}'h{reg.init & mask(reg.width):x};")
    lines.append("    end else begin")
    for reg in circuit.regs:
        nxt = circuit.reg_next[reg]
        ref = names[nxt] if nxt.op != "const" else _expr(nxt, names)
        lines.append(f"      {names[reg]} <= {ref};")
    for mem in circuit.mems:
        mem_name = mem.path.replace(".", "_")
        for addr, data, en in mem.writes:
            en_ref = names[en] if en.op != "const" else _expr(en, names)
            addr_ref = (names[addr] if addr.op != "const"
                        else _expr(addr, names))
            data_ref = (names[data] if data.op != "const"
                        else _expr(data, names))
            lines.append(f"      if ({en_ref}) "
                         f"{mem_name}[{addr_ref}] <= {data_ref};")
    lines.append("    end")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines)
