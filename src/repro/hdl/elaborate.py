"""Elaboration: module tree -> flat, topologically ordered Circuit.

Mirrors the Chisel/FIRRTL lowering step.  The output :class:`Circuit` is
the substrate every transform pass (FAME1, scan chains, synthesis) and
both simulators consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ir import Node, mux
from .dsl import Module


class ElaborationError(Exception):
    """Raised for unresolvable designs (loops, undriven inputs, clashes)."""


@dataclass
class RetimedInput:
    """One input port of a retimed block, plus its history registers."""

    name: str
    width: int
    driver: Node              # canonical net feeding the block input
    hist_reg_paths: list      # paths of h_1..h_n (h_k = input at t-k)


@dataclass
class RetimedBlock:
    """A designer-annotated retimed datapath (Section IV-C3)."""

    prefix: str               # hierarchical prefix, e.g. "core.fpu."
    latency: int
    inputs: list              # list[RetimedInput]


class Circuit:
    """A flattened synchronous design.

    Attributes:
        name: design name.
        inputs: list of top-level input Nodes (op ``input``).
        outputs: list of ``(name, driver Node)`` for top-level outputs.
        regs: list of register Nodes; ``reg_next[reg]`` is the next-state
            driver and ``reg.init`` the reset value.
        mems: list of MemDecl with canonicalized write/read ports.
        comb_order: all operator nodes in dependency order.
    """

    def __init__(self, name, inputs, outputs, regs, reg_next, mems):
        self.name = name
        self.inputs = inputs
        self.outputs = outputs
        self.regs = regs
        self.reg_next = reg_next
        self.mems = mems
        self.comb_order = []
        self.module_prefixes = {}
        self.retimed_blocks = []
        self.retopo()

    def origin(self, node):
        """Hierarchical attribution path for a node (may be '')."""
        if node.path:
            prefix, _, _ = node.path.rpartition(".")
            return prefix
        module = getattr(node, "_module", None)
        if module is not None:
            prefix = self.module_prefixes.get(id(module))
            if prefix is not None:
                return prefix.rstrip(".")
        return ""

    # -- derived views -----------------------------------------------------

    def input_by_name(self, name):
        for node in self.inputs:
            if node.name == name:
                return node
        raise KeyError(f"no input named {name!r}")

    def output_driver(self, name):
        for out_name, driver in self.outputs:
            if out_name == name:
                return driver
        raise KeyError(f"no output named {name!r}")

    def reg_by_path(self, path):
        for reg in self.regs:
            if reg.path == path:
                return reg
        raise KeyError(f"no register at path {path!r}")

    def mem_by_path(self, path):
        for mem in self.mems:
            if mem.path == path:
                return mem
        raise KeyError(f"no memory at path {path!r}")

    def state_bits(self):
        """Total architectural state in bits (registers + memories)."""
        reg_bits = sum(r.width for r in self.regs)
        mem_bits = sum(m.depth * m.width for m in self.mems)
        return reg_bits, mem_bits

    def stats(self):
        ops = {}
        for node in self.comb_order:
            ops[node.op] = ops.get(node.op, 0) + 1
        return {
            "name": self.name,
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "registers": len(self.regs),
            "memories": len(self.mems),
            "comb_nodes": len(self.comb_order),
            "ops": ops,
        }

    # -- graph maintenance ---------------------------------------------------

    def sinks(self):
        """Every node the circuit observes (outputs, reg nexts, mem ports)."""
        result = [driver for _, driver in self.outputs]
        result.extend(self.reg_next[r] for r in self.regs)
        for mem in self.mems:
            for addr, data, en in mem.writes:
                result.extend((addr, data, en))
            result.extend(mem.read_ports)
        return result

    def retopo(self):
        """Recompute ``comb_order`` after a transform rewrites the graph."""
        order = []
        state = {}  # node -> 1 in-progress, 2 done
        for sink in self.sinks():
            if state.get(sink) == 2:
                continue
            stack = [(sink, 0)]
            while stack:
                node, phase = stack.pop()
                if phase == 0:
                    st = state.get(node)
                    if st == 2:
                        continue
                    if st == 1:
                        raise ElaborationError(
                            f"combinational loop through {node!r}")
                    state[node] = 1
                    stack.append((node, 1))
                    if node.op not in ("const", "input", "reg"):
                        for arg in node.args:
                            if state.get(arg) != 2:
                                stack.append((arg, 0))
                else:
                    if state[node] != 2:
                        state[node] = 2
                        if node.op not in ("const", "input", "reg"):
                            order.append(node)
        self.comb_order = order


def _fold_assigns(target, entries):
    """Fold an ordered (condition, value) list into one driver expression.

    Registers default to holding their value; wires fall back to their
    declared default (``args[0]``). Later assignments win (last-connect).
    """
    if target.op == "reg":
        driver = target
    elif target.op == "wire":
        driver = target.args[0]
    else:
        driver = None  # child input port: needs an unconditional base
    for cond, value in entries:
        if cond is None:
            driver = value
        elif driver is None:
            raise ElaborationError(
                f"input port {target.name!r} is only driven conditionally; "
                "add an unconditional default connection first")
        else:
            driver = mux(cond, value, driver)
    if driver is None:
        raise ElaborationError(f"{target!r} has no driver")
    if driver.width != target.width:
        driver = driver.resize(target.width)
    return driver


def elaborate(top, name=None):
    """Flatten a module tree into a :class:`Circuit`."""
    if not isinstance(top, Module):
        raise TypeError("elaborate() expects a Module")
    top._ensure_built()

    modules = []          # (path_prefix, module)
    seen = set()

    def walk(module, prefix):
        if id(module) in seen:
            raise ElaborationError(
                f"module object {module.name!r} instantiated twice; "
                "construct a fresh object per instance")
        seen.add(id(module))
        modules.append((prefix, module))
        child_names = set()
        for inst_name, child in module._instances:
            if inst_name in child_names:
                raise ElaborationError(
                    f"duplicate instance name {inst_name!r} in {module.name}")
            child_names.add(inst_name)
            walk(child, f"{prefix}{inst_name}.")

    walk(top, "")

    # Name every stateful/port node with its hierarchical path.
    used_paths = set()

    def set_path(node, prefix):
        base = f"{prefix}{node.name}"
        path = base
        suffix = 1
        while path in used_paths:
            path = f"{base}_{suffix}"
            suffix += 1
        used_paths.add(path)
        node.path = path

    for prefix, module in modules:
        for reg in module._regs:
            set_path(reg, prefix)
        for mem in module._mems:
            set_path(mem, prefix)

    # Resolve all assignments into single drivers; build the alias map for
    # wires and non-top input ports.
    driver_of = {}
    assigned_targets = set()
    for _prefix, module in modules:
        for target in module._assign_order:
            if target in assigned_targets:
                raise ElaborationError(
                    f"{target!r} is assigned from more than one module")
            assigned_targets.add(target)
            driver_of[target] = _fold_assigns(target, module._assigns[target])

    alias = {}
    for prefix, module in modules:
        is_top = module is top
        for wire_node in list(module._wires) + list(module._outputs.values()):
            alias[wire_node] = driver_of.get(wire_node, wire_node.args[0])
        if not is_top:
            for inp in module._inputs.values():
                if inp not in driver_of:
                    raise ElaborationError(
                        f"input {prefix}{inp.name} is never driven")
                alias[inp] = driver_of[inp]

    # Canonicalize: chase aliases and rewrite args in place, iteratively.
    resolved = {}
    in_progress = set()

    def canon(root):
        stack = [(root, 0)]
        while stack:
            node, phase = stack.pop()
            if node in resolved:
                continue
            if phase == 0:
                if node in in_progress:
                    raise ElaborationError(
                        f"combinational cycle through {node!r}")
                in_progress.add(node)
                stack.append((node, 1))
                if node in alias:
                    target = alias[node]
                    if target not in resolved:
                        stack.append((target, 0))
                elif node.op not in ("const", "input", "reg"):
                    for arg in node.args:
                        if arg not in resolved:
                            stack.append((arg, 0))
            else:
                in_progress.discard(node)
                if node in alias:
                    resolved[node] = resolved[alias[node]]
                else:
                    node.args = tuple(resolved[a] for a in node.args)
                    resolved[node] = node
        return resolved[root]

    outputs = []
    for out_name, out_node in top._outputs.items():
        outputs.append((out_name, canon(out_node)))

    regs = []
    reg_next = {}
    for _prefix, module in modules:
        for reg in module._regs:
            regs.append(reg)
            driver = driver_of.get(reg, reg)
            reg_next[reg] = canon(driver)

    mems = []
    for _prefix, module in modules:
        for mem in module._mems:
            mem.writes = [(canon(a), canon(d), canon(e))
                          for a, d, e in mem.writes]
            live_ports = []
            for port in mem.read_ports:
                port.args = (canon(port.args[0]),)
                resolved[port] = port
                live_ports.append(port)
            mem.read_ports = live_ports
            mems.append(mem)

    inputs = list(top._inputs.values())
    for node in inputs:
        node.path = node.name

    # Retimed datapaths (Section IV-C3): add input-history shift registers
    # so replays can recover CAD-rebalanced internal state by forcing the
    # block's inputs for `latency` cycles.
    retimed_blocks = []
    for prefix, module in modules:
        latency = module._retime_latency
        if latency is None:
            continue
        block_inputs = []
        for port_name, port in module._inputs.items():
            driver = canon(alias[port]) if port in alias else port
            hist_paths = []
            prev = driver
            for k in range(1, latency + 1):
                hist = Node("reg", port.width,
                            name=f"__rt_hist_{port_name}_{k}")
                hist.path = f"{prefix}__rt_hist_{port_name}_{k}"
                hist._module = module
                used_paths.add(hist.path)
                regs.append(hist)
                reg_next[hist] = prev
                prev = hist
            hist_paths = [f"{prefix}__rt_hist_{port_name}_{k}"
                          for k in range(1, latency + 1)]
            block_inputs.append(RetimedInput(port_name, port.width,
                                             driver, hist_paths))
        retimed_blocks.append(RetimedBlock(prefix, latency, block_inputs))

    circuit = Circuit(name or top.name, inputs, outputs, regs, reg_next,
                      mems)
    circuit.module_prefixes = {id(module): prefix
                               for prefix, module in modules}
    circuit.retimed_blocks = retimed_blocks
    return circuit
