"""Design configurations (the paper's Table II), with scaling notes.

Paper Table II:

    |                    | Rocket  | BOOM-1w | BOOM-2w |
    | fetch width        | 1       | 1       | 2       |
    | issue width        | 1       | 1       | 2       |
    | issue slots        | -       | 12      | 16      |
    | ROB size           | -       | 24      | 32      |
    | Ld/St entries      | -       | 8/8     | 8/8     |
    | physical registers | 32/32   | 100     | 110     |
    | L1 I$ / D$         | 16 KiB  | 16 KiB  | 16 KiB  |
    | DRAM latency       | 100     | 100     | 100     |

This reproduction keeps every parameter except:

* physical registers scaled to 48/64 — the rename path is identical,
  and 32 architectural + a full ROB of in-flight destinations still fit
  (the paper's 100/110 sizing targets RV64's FP registers, absent here);
* a unified 8-entry load/store queue instead of split 8/8 queues;
* ``*_mini`` configurations with 4 KiB caches and shallower structures
  for fast unit tests and the power-validation study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..targets import build_soc_circuit, RocketCore
from ..targets.boom import BoomCore


@dataclass(frozen=True)
class DesignConfig:
    name: str
    core: str                     # "rocket" | "boom"
    fetch_width: int = 1
    issue_width: int = 1
    issue_slots: int = 0          # 0 for in-order
    rob_entries: int = 0
    n_phys: int = 32
    lsq_entries: int = 8
    icache_kib: int = 16
    dcache_kib: int = 16
    line_words: int = 8
    dram_latency: int = 100
    freq_hz: float = 1.0e9

    def build_circuit(self):
        """Elaborate a fresh SoC circuit for this configuration."""
        if self.core == "rocket":
            factory = RocketCore
        else:
            factory = lambda: BoomCore(            # noqa: E731
                fetch_width=self.fetch_width,
                issue_slots=self.issue_slots,
                rob_entries=self.rob_entries,
                n_phys=self.n_phys,
                lsq_entries=self.lsq_entries,
            )
        return build_soc_circuit(
            factory,
            icache_kib=self.icache_kib,
            dcache_kib=self.dcache_kib,
            line_words=self.line_words,
            fetch_width=self.fetch_width,
            name=self.name,
        )

    def table2_row(self):
        """Render the Table II parameters for this design."""
        dash = "-"
        return {
            "Fetch-width": self.fetch_width,
            "Issue-width": self.issue_width,
            "Issue slots": self.issue_slots or dash,
            "ROB size": self.rob_entries or dash,
            "Ld/St entries": (f"{self.lsq_entries}"
                              if self.core == "boom" else dash),
            "Physical registers": (f"{self.n_phys}" if self.core == "boom"
                                   else "32(int)"),
            "L1 I$ and D$": f"{self.icache_kib}KiB/{self.dcache_kib}KiB",
            "DRAM latency": f"{self.dram_latency} cycles",
        }


CONFIGS = {
    "rocket": DesignConfig(name="rocket", core="rocket"),
    "boom-1w": DesignConfig(name="boom-1w", core="boom", fetch_width=1,
                            issue_width=1, issue_slots=12, rob_entries=24,
                            n_phys=48),
    "boom-2w": DesignConfig(name="boom-2w", core="boom", fetch_width=2,
                            issue_width=2, issue_slots=16, rob_entries=32,
                            n_phys=64),
    # fast variants for tests and validation studies
    "rocket_mini": DesignConfig(name="rocket_mini", core="rocket",
                                icache_kib=4, dcache_kib=4,
                                dram_latency=20),
    "boom-1w_mini": DesignConfig(name="boom-1w_mini", core="boom",
                                 fetch_width=1, issue_width=1,
                                 issue_slots=12, rob_entries=24,
                                 n_phys=48, icache_kib=4, dcache_kib=4,
                                 dram_latency=20),
    "boom-2w_mini": DesignConfig(name="boom-2w_mini", core="boom",
                                 fetch_width=2, issue_width=2,
                                 issue_slots=16, rob_entries=32,
                                 n_phys=64, icache_kib=4, dcache_kib=4,
                                 dram_latency=20),
}


def get_config(name):
    return CONFIGS[name]
