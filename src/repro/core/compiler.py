"""StroberCompiler: the Figure 4 tool flow as one object.

Takes any elaborated design and produces (a) the FAME1 FPGA-simulator
circuit with scan-chain instrumentation metadata and (b) the untouched
"tapeout" circuit for the ASIC flow, keeping the two in sync (the paper
builds both from the same Chisel source).

The transform sequence runs through a
:class:`~repro.passes.manager.PassManager`: FAME1 decoupling followed
by scan-chain instrumentation (hardware insertion or metadata-only),
with inter-pass structural verification in debug mode and a per-pass
:class:`~repro.passes.manager.PipelineReport` on the output.  The
pipeline's deterministic fingerprint — which covers ``scan_width`` and
``hardware_scan_chains`` — composes into artifact-cache keys via
:meth:`StroberCompiler.artifact_cache_key`, so differently-instrumented
builds of the same design can never collide in the on-disk cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fame.transform import Fame1TransformPass, is_fame1
from ..scan.chains import ScanChainSpecPass, InsertScanChainsPass
from ..passes import PassManager, compose_cache_key


class StroberCompileError(TypeError):
    """``build_fn`` violated the fresh-circuit-per-call contract."""


@dataclass
class StroberOutput:
    """Everything Figure 4 emits for one design."""

    simulator_circuit: object    # FAME1-transformed, for the FPGA side
    target_circuit: object       # plain RTL, for the gate-level side
    scan_spec: object            # chain layout + Trec cost model
    channels: dict               # FAME1 I/O channel metadata
    report: object = None        # PipelineReport of the simulator build
    fingerprint: str = ""        # pipeline fingerprint (cache-key part)


class StroberCompiler:
    """Drive the custom-transform pipeline of Figure 4.

    ``build_fn`` must construct a *fresh* elaborated circuit on each
    call (module objects are single-use, like Chisel module instances);
    returning the same object — or two circuits sharing IR nodes —
    raises :class:`StroberCompileError`, because the FAME1 transform
    would then also rewrite the "untouched" tapeout circuit.

    ``debug=True`` runs the structural IR verifier between passes.
    """

    def __init__(self, build_fn, scan_width=32,
                 hardware_scan_chains=False, debug=False):
        self.build_fn = build_fn
        self.scan_width = scan_width
        self.hardware_scan_chains = hardware_scan_chains
        self.debug = debug

    def pipeline(self):
        """The simulator-side transform pipeline (fresh manager)."""
        if self.hardware_scan_chains:
            scan_pass = InsertScanChainsPass(scan_width=self.scan_width)
        else:
            scan_pass = ScanChainSpecPass(scan_width=self.scan_width)
        return PassManager([Fame1TransformPass(), scan_pass],
                           name="strober-compile")

    def pipeline_fingerprint(self):
        """Deterministic fingerprint of the instrumentation pipeline."""
        return self.pipeline().fingerprint()

    def artifact_cache_key(self, circuit_fingerprint):
        """Cache key for artifacts of this instrumented build.

        Combines the design's structural fingerprint with the pipeline
        fingerprint (which already covers ``scan_width`` and
        ``hardware_scan_chains``), so two compilers with different
        instrumentation parameters key different cache slots for the
        same source design.
        """
        return compose_cache_key(circuit_fingerprint,
                                 self.pipeline_fingerprint(),
                                 scan_width=self.scan_width,
                                 hardware_scan_chains=bool(
                                     self.hardware_scan_chains))

    def _build_pair(self):
        """Two independent elaborations, with aliasing detection."""
        simulator = self.build_fn()
        target = self.build_fn()
        if simulator is target:
            raise StroberCompileError(
                "build_fn returned the same circuit object twice; "
                "elaborated circuits are single-use (the FAME1 transform "
                "mutates the graph in place, so the 'untouched' tapeout "
                "circuit would be silently instrumented too). Make "
                "build_fn elaborate a fresh Module per call, e.g. "
                "lambda: elaborate(MyTop()).")
        shared = _shared_nodes(simulator, target)
        if shared:
            raise StroberCompileError(
                f"build_fn returned circuits sharing {shared} IR "
                "node(s) (same registers/inputs in both); transforms on "
                "the simulator circuit would corrupt the tapeout "
                "circuit. build_fn must construct fresh Module objects "
                "on every call instead of reusing elaborated pieces.")
        return simulator, target

    def compile(self):
        simulator, target = self._build_pair()
        if is_fame1(simulator):
            raise ValueError("build_fn must return a plain circuit")
        manager = self.pipeline()
        ctx = manager.run(simulator, debug=self.debug)
        return StroberOutput(
            simulator_circuit=simulator,
            target_circuit=target,
            scan_spec=ctx["scan_spec"],
            channels=ctx["channels"],
            report=ctx.report,
            fingerprint=ctx.report.fingerprint,
        )


def _shared_nodes(a, b):
    """Count IR state/port objects two circuits have in common."""
    ids_a = {id(n) for n in a.inputs}
    ids_a.update(id(r) for r in a.regs)
    ids_a.update(id(m) for m in a.mems)
    shared = sum(1 for n in b.inputs if id(n) in ids_a)
    shared += sum(1 for r in b.regs if id(r) in ids_a)
    shared += sum(1 for m in b.mems if id(m) in ids_a)
    return shared
