"""StroberCompiler: the Figure 4 tool flow as one object.

Takes any elaborated design and produces (a) the FAME1 FPGA-simulator
circuit with scan-chain instrumentation metadata and (b) the untouched
"tapeout" circuit for the ASIC flow, keeping the two in sync (the paper
builds both from the same Chisel source).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from ..fame.transform import fame1_transform, is_fame1
from ..scan.chains import build_scan_chain_spec, insert_scan_chains


@dataclass
class StroberOutput:
    """Everything Figure 4 emits for one design."""

    simulator_circuit: object    # FAME1-transformed, for the FPGA side
    target_circuit: object       # plain RTL, for the gate-level side
    scan_spec: object            # chain layout + Trec cost model
    channels: dict               # FAME1 I/O channel metadata


class StroberCompiler:
    """Drive the custom-transform pipeline of Figure 4.

    ``build_fn`` must construct a *fresh* elaborated circuit on each
    call (module objects are single-use, like Chisel module instances).
    """

    def __init__(self, build_fn, scan_width=32,
                 hardware_scan_chains=False):
        self.build_fn = build_fn
        self.scan_width = scan_width
        self.hardware_scan_chains = hardware_scan_chains

    def compile(self):
        simulator = self.build_fn()
        target = self.build_fn()
        if is_fame1(simulator):
            raise ValueError("build_fn must return a plain circuit")
        channels = fame1_transform(simulator)
        if self.hardware_scan_chains:
            scan_spec = insert_scan_chains(simulator, self.scan_width)
        else:
            scan_spec = build_scan_chain_spec(simulator, self.scan_width)
        return StroberOutput(
            simulator_circuit=simulator,
            target_circuit=target,
            scan_spec=scan_spec,
            channels=channels,
        )
