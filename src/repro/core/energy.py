"""Energy estimation and reporting (Sections III, VI).

Aggregates replayed-snapshot power into the paper's headline outputs:
average power with confidence intervals (eq. 7), per-module power
breakdown with error bounds (Figure 9a), DRAM power from activity
counters (Section IV-D), and CPI/EPI (Figure 9b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..sampling import estimate_mean, Estimate
from ..dram import Lpddr2PowerCalculator


@dataclass
class EnergyEstimate:
    """Workload-level energy report for one design."""

    workload: str
    design: str
    total_cycles: int
    instructions: int
    replay_length: int
    sample_size: int
    confidence: float
    power: Estimate                      # core average power, mW
    breakdown: dict = field(default_factory=dict)   # group -> Estimate mW
    dram_power_mw: float = 0.0
    dram_breakdown: dict = field(default_factory=dict)
    freq_hz: float = 1.0e9

    @property
    def cpi(self):
        if self.instructions == 0:
            return float("inf")
        return self.total_cycles / self.instructions

    @property
    def total_power_mw(self):
        """Core + DRAM average power."""
        return self.power.mean + self.dram_power_mw

    @property
    def epi_nj(self):
        """Energy per instruction in nanojoules (Figure 9b)."""
        if self.instructions == 0:
            return float("inf")
        seconds = self.total_cycles / self.freq_hz
        joules = self.total_power_mw * 1e-3 * seconds
        return joules / self.instructions * 1e9

    def summary(self):
        lines = [
            f"{self.design} / {self.workload}: "
            f"{self.total_cycles} cycles, {self.instructions} insts, "
            f"CPI {self.cpi:.2f}",
            f"  core power: {self.power} mW   "
            f"DRAM: {self.dram_power_mw:.1f} mW   "
            f"EPI: {self.epi_nj:.2f} nJ/inst",
        ]
        for group, est in sorted(self.breakdown.items(),
                                 key=lambda kv: -kv[1].mean):
            lines.append(f"    {group:<24s} {est.mean:8.2f} mW "
                         f"± {est.half_width:.2f}")
        return "\n".join(lines)


def estimate_energy(replays, total_cycles, replay_length,
                    instructions=0, confidence=0.99, workload="",
                    design="", dram_counters=None, dram_params=None,
                    freq_hz=1.0e9):
    """Fold replay results into an :class:`EnergyEstimate`.

    ``replays`` is a list of ReplayResult.  The population is the set of
    all L-cycle windows of the execution (size total_cycles / L), from
    which the snapshots were drawn without replacement (Section III-A).
    """
    if not replays:
        raise ValueError("no replays to aggregate")
    population = max(int(math.ceil(total_cycles / replay_length)),
                     len(replays))
    totals = [r.power.total_mw for r in replays]
    power = estimate_mean(totals, population, confidence)

    groups = set()
    for r in replays:
        groups.update(r.power.by_group)
    breakdown = {}
    for group in groups:
        values = [r.power.by_group.get(group, 0.0) * 1e3 for r in replays]
        breakdown[group] = estimate_mean(values, population, confidence)

    dram_mw = 0.0
    dram_parts = {}
    if dram_counters is not None:
        calc = Lpddr2PowerCalculator(dram_params)
        report = calc.power(dram_counters, total_cycles,
                            core_freq_hz=freq_hz)
        dram_mw = report.total_mw
        dram_parts = report.as_dict()

    return EnergyEstimate(
        workload=workload,
        design=design,
        total_cycles=total_cycles,
        instructions=instructions,
        replay_length=replay_length,
        sample_size=len(replays),
        confidence=confidence,
        power=power,
        breakdown=breakdown,
        dram_power_mw=dram_mw,
        dram_breakdown=dram_parts,
        freq_hz=freq_hz,
    )
