"""End-to-end Strober flow: one call from design + workload to energy.

Ties the whole methodology together (Figures 2, 4, 5):

1. build the design twice (FPGA-simulator circuit + tapeout circuit);
2. run the workload on the FAME1 simulator, reservoir-sampling
   replayable snapshots;
3. run the ASIC flow (synthesis, placement, formal matching) on the
   tapeout circuit — or load it from the content-addressed artifact
   cache when a prior process already paid that cost;
4. replay every snapshot on gate level (optionally fanned out across a
   worker-process pool) and aggregate power with confidence intervals,
   DRAM power from the activity counters, and CPI/EPI.

Per-stage wall-clock (flow / sim / replay / energy) is recorded on the
returned :class:`StroberRun` so both accelerations are measurable.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field

from ..targets.soc import run_workload
from ..isa.programs import ALL_PROGRAMS
from ..fame.transform import Fame1TransformPass
from ..parallel.cache import get_cache
from ..passes import PassManager
from .configs import get_config
from .replay import ReplayEngine, asic_pipeline, build_asic_flow
from .energy import estimate_energy
from .attribution import refine_attribution, soc_grouping


@dataclass
class StroberRun:
    """Everything one flow invocation produced."""

    design: str
    workload: str
    result: object               # WorkloadResult (performance side)
    replays: list
    energy: object               # EnergyEstimate
    engine: ReplayEngine
    wall_seconds: float = 0.0
    # per-stage wall-clock: flow/sim/replay/energy seconds, replay
    # worker count, and whether the ASIC flow came from the disk cache
    timings: dict = field(default_factory=dict)
    # ReplayHealthReport when the replay stage ran supervised (workers
    # > 1): records every recovery action the supervisor took, or None
    health: object = None

    @property
    def cycles(self):
        return self.result.cycles

    @property
    def snapshots(self):
        return self.result.snapshots


_CIRCUIT_CACHE = {}
_ENGINE_CACHE = {}   # (design, freq_hz) -> ReplayEngine


def clear_caches(disk=False):
    """Empty the in-memory circuit/engine caches (and optionally the
    on-disk artifact cache) so tests and long-running processes can
    bound memory and force cold paths."""
    _CIRCUIT_CACHE.clear()
    _ENGINE_CACHE.clear()
    if disk:
        get_cache().clear()


def _soc_pipeline():
    """The SoC ASIC pipeline: synthesis with functional-unit
    attribution refinement, unit-level floorplanning, formal matching."""
    return asic_pipeline(refine_fn=refine_attribution,
                         cluster_fn=soc_grouping, name="asicflow-soc")


def _sim_pipeline():
    """The simulator-side instrumentation pipeline (FAME1 decoupling).

    Scan-chain metadata is built inside the FAME1 simulator itself (it
    owns the scan-width/readout cost model), so the host pipeline only
    needs the decoupling transform.
    """
    return PassManager([Fame1TransformPass()], name="strober-sim")


def _soc_asic_flow(circuit, use_cache=True, debug=False):
    """ASIC flow with functional-unit attribution and floorplanning.

    Cached on disk under its own artifact kind (``asicflow-soc``); the
    cache key composes the circuit fingerprint with the pipeline
    fingerprint (covering the attribution refiner and floorplan
    grouping), so the SoC flow's artifacts can never collide with the
    generic :func:`~repro.core.replay.run_asic_flow` output — or with a
    differently-parameterized pipeline — for the same circuit.
    """
    return build_asic_flow(circuit, manager=_soc_pipeline(),
                           kind="asicflow-soc", use_cache=use_cache,
                           debug=debug)


def get_circuits(design):
    """(simulator_circuit, target_circuit) for a named configuration.

    Cached: the FAME1 transform happens lazily inside run_workload on
    the simulator circuit; the target circuit stays untouched.
    """
    if design not in _CIRCUIT_CACHE:
        config = get_config(design)
        _CIRCUIT_CACHE[design] = (config.build_circuit(),
                                  config.build_circuit())
    return _CIRCUIT_CACHE[design]


def get_replay_engine(design, freq_hz=None, use_cache=True, debug=False):
    """The (cached) gate-level replay engine for a named configuration.

    Keyed by ``(design, freq_hz)``: the frequency feeds straight into
    power analysis, so engines at different frequencies must not share
    a cache slot.  ``use_cache=False`` skips the on-disk artifact cache
    (the in-memory engine cache still applies); ``debug=True`` runs the
    structural IR verifier between the ASIC pipeline's passes.
    """
    key = (design, freq_hz)
    if key not in _ENGINE_CACHE:
        _, target = get_circuits(design)
        flow = _soc_asic_flow(target, use_cache=use_cache, debug=debug)
        _ENGINE_CACHE[key] = ReplayEngine(
            target, flow=flow, grouping=soc_grouping, freq_hz=freq_hz)
    return _ENGINE_CACHE[key]


def run_strober(design, workload, sample_size=30, replay_length=128,
                max_cycles=2_000_000, backend="auto", seed=0,
                confidence=0.99, workload_kwargs=None, strict_replay=True,
                record_full_io=False, workers=1, journal=None,
                replay_timeout=None, replay_retries=2, batch_lanes=1,
                debug=False):
    """The headline API: energy-evaluate ``workload`` on ``design``.

    ``workload`` is a benchmark name from :data:`ALL_PROGRAMS` or a
    literal assembly source string.  ``workers`` fans snapshot replays
    out across that many processes (``None`` = all CPUs; 1 = serial);
    multi-worker replays run under the fault-tolerant supervisor
    (``replay_timeout`` seconds per snapshot, ``replay_retries``
    attempts before the in-process fallback) and the resulting
    :class:`~repro.robust.ReplayHealthReport` lands on the returned
    run's ``health`` field.

    ``batch_lanes`` packs up to that many snapshots (``None`` = 64)
    into the bit lanes of one batched gate-level replay, multiplying —
    not replacing — the worker-process parallelism.  Results are
    bit-identical to serial scalar replay for any setting.

    Every circuit transform runs through the pass pipeline
    (:mod:`repro.passes`): the FAME1 decoupling on the simulator
    circuit and the synthesis/placement/matching flow on the tapeout
    circuit.  The per-pass wall-clock breakdown lands in the returned
    run's ``timings`` (``sim_pipeline`` / ``asic_pipeline`` /
    ``passes``); ``debug=True`` additionally runs the structural IR
    verifier between passes.

    ``journal`` names a crash-safe run journal file: the simulation
    outcome, every sampled snapshot, and every completed replay result
    are appended (checksummed, fsync'd) as they land, and a rerun with
    the same parameters and the same ``journal`` path resumes from the
    last good record — skipping the FAME simulation and all finished
    replays — instead of restarting from scratch.
    """
    t0 = time.perf_counter()
    batch_lanes = 64 if batch_lanes is None else int(batch_lanes)
    config = get_config(design)
    sim_circuit, _target = get_circuits(design)
    if workload in ALL_PROGRAMS:
        source = ALL_PROGRAMS[workload](**(workload_kwargs or {}))
        workload_name = workload
    else:
        source = workload
        workload_name = "(custom)"

    journal_file = None
    resume = None
    if journal is not None:
        from ..robust.journal import RunJournal, load_resume
        run_key = {
            "design": design,
            "workload": workload_name,
            "source_crc": zlib.crc32(source.encode())
            if isinstance(source, str) else None,
            "sample_size": sample_size,
            "replay_length": replay_length,
            "max_cycles": max_cycles,
            "seed": seed,
            "strict_replay": bool(strict_replay),
            "workload_kwargs": workload_kwargs or {},
            "batch_lanes": batch_lanes,
            # pipeline fingerprints: a journal written under different
            # transform pipelines must not be resumed
            "pipelines": {"sim": _sim_pipeline().fingerprint(),
                          "asic": _soc_pipeline().fingerprint()},
        }
        resume = load_resume(journal, run_key)

    try:
        t_sim = time.perf_counter()
        sim_report = None
        if resume is not None:
            from ..robust.journal import JournaledWorkloadResult
            result = JournaledWorkloadResult(resume.sim, resume.snapshots)
        else:
            sim_ctx = _sim_pipeline().run(sim_circuit, debug=debug)
            sim_report = sim_ctx.report
            result = run_workload(
                sim_circuit, source,
                max_cycles=max_cycles,
                mem_latency=config.dram_latency,
                line_words=config.line_words,
                backend=backend,
                sample_size=sample_size,
                replay_length=replay_length,
                seed=seed,
                record_full_io=record_full_io,
            )
        sim_seconds = time.perf_counter() - t_sim
        if not result.passed:
            raise RuntimeError(
                f"workload {workload_name} failed on {design}: "
                f"exit={result.exit_code}")

        snapshots = list(result.snapshots)
        done = dict(resume.results) if resume is not None else {}

        if journal is not None:
            from ..robust.journal import (
                TYPE_META, TYPE_SNAPSHOT, TYPE_SIM, TYPE_RESULT)
            journal_file = RunJournal(journal).open()
            if resume is None:
                journal_file.reset()
                journal_file.append(TYPE_META, run_key)
                for i, snapshot in enumerate(snapshots):
                    if snapshot.checksum is None:
                        snapshot.seal()
                    journal_file.append(TYPE_SNAPSHOT,
                                        {"index": i, "snapshot": snapshot})
                journal_file.append(TYPE_SIM, {
                    "cycles": result.cycles,
                    "instret": result.instret,
                    "exit_code": result.exit_code,
                    "dram_counters": result.memory.counters,
                    "n_snapshots": len(snapshots),
                })

        t_flow = time.perf_counter()
        engine = get_replay_engine(design, freq_hz=config.freq_hz,
                                   debug=debug)
        flow_seconds = time.perf_counter() - t_flow

        t_replay = time.perf_counter()
        pending = [(i, s) for i, s in enumerate(snapshots) if i not in done]
        on_result = None
        if journal_file is not None:
            pending_index = [i for i, _ in pending]

            def on_result(pos, replay_result):
                journal_file.append(TYPE_RESULT,
                                    {"index": pending_index[pos],
                                     "result": replay_result})

        new_results = engine.replay_all(
            [s for _, s in pending], strict=strict_replay, workers=workers,
            on_result=on_result, timeout=replay_timeout,
            max_retries=replay_retries, batch_lanes=batch_lanes)
        for (i, _), replay_result in zip(pending, new_results):
            done[i] = replay_result
        replays = [done[i] for i in range(len(snapshots))]
        replay_seconds = time.perf_counter() - t_replay

        t_energy = time.perf_counter()
        energy = estimate_energy(
            replays,
            total_cycles=result.cycles,
            replay_length=replay_length,
            instructions=result.instret,
            confidence=confidence,
            workload=workload_name,
            design=design,
            dram_counters=result.memory.counters,
            freq_hz=config.freq_hz,
        )
        energy_seconds = time.perf_counter() - t_energy
    finally:
        if journal_file is not None:
            journal_file.close()
    return StroberRun(
        design=design,
        workload=workload_name,
        result=result,
        replays=replays,
        energy=energy,
        engine=engine,
        wall_seconds=time.perf_counter() - t0,
        timings=_merge_timings(
            {
                "sim_seconds": sim_seconds,
                "flow_seconds": flow_seconds,
                "replay_seconds": replay_seconds,
                "energy_seconds": energy_seconds,
                "workers": workers,
                "batch_lanes": batch_lanes,
                "flow_cache_hit": engine.flow.cache_hit,
                "resumed_sim": resume is not None,
                "resumed_replays": len(resume.results) if resume else 0,
            },
            sim_report,
            getattr(engine.flow, "pipeline_report", None),
        ),
        health=engine.last_health,
    )


def _merge_timings(timings, sim_report, asic_report):
    """Fold the pass-pipeline reports into the run's timing dict.

    ``passes`` is the flat per-pass wall-clock breakdown across both
    pipelines; the full reports (IR deltas, fingerprints, stats) ride
    along under ``sim_pipeline`` / ``asic_pipeline``.  A cache-hit ASIC
    flow carries the report recorded when the artifact was first built.
    """
    passes = {}
    for report in (sim_report, asic_report):
        if report is not None:
            for name, seconds in report.per_pass_seconds().items():
                passes[f"{report.pipeline}/{name}"] = seconds
    timings["passes"] = passes
    timings["sim_pipeline"] = (sim_report.as_dict()
                               if sim_report is not None else None)
    timings["asic_pipeline"] = (asic_report.as_dict()
                                if asic_report is not None else None)
    return timings
