"""End-to-end Strober flow: one call from design + workload to energy.

Ties the whole methodology together (Figures 2, 4, 5):

1. build the design twice (FPGA-simulator circuit + tapeout circuit);
2. run the workload on the FAME1 simulator, reservoir-sampling
   replayable snapshots;
3. run the ASIC flow (synthesis, placement, formal matching) on the
   tapeout circuit — or load it from the content-addressed artifact
   cache when a prior process already paid that cost;
4. replay every snapshot on gate level (optionally fanned out across a
   worker-process pool) and aggregate power with confidence intervals,
   DRAM power from the activity counters, and CPI/EPI.

Per-stage wall-clock (flow / sim / replay / energy) is recorded on the
returned :class:`StroberRun` so both accelerations are measurable.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
import zlib
from dataclasses import dataclass, field

from ..targets.soc import run_workload
from ..isa.programs import ALL_PROGRAMS
from ..fame.transform import Fame1TransformPass
from ..obs import (
    Tracer, set_tracer, get_registry, export_chrome_trace,
    append_run_record,
)
from ..parallel.cache import get_cache
from ..parallel.pool import CancelToken
from ..passes import PassManager
from .configs import get_config
from .controller import AdaptiveSamplingController
from .replay import ReplayEngine, asic_pipeline, build_asic_flow
from .energy import estimate_energy
from .attribution import refine_attribution, soc_grouping


@dataclass
class StroberRun:
    """Everything one flow invocation produced."""

    design: str
    workload: str
    result: object               # WorkloadResult (performance side)
    replays: list
    energy: object               # EnergyEstimate
    engine: ReplayEngine
    wall_seconds: float = 0.0
    # per-stage wall-clock: flow/sim/replay/energy seconds, replay
    # worker count, and whether the ASIC flow came from the disk cache
    timings: dict = field(default_factory=dict)
    # ReplayHealthReport when the replay stage ran supervised (workers
    # > 1): records every recovery action the supervisor took, or None
    health: object = None
    # Chrome-trace JSON path when the run was invoked with trace=path
    # (read it with `python -m repro.obs.report <path>`), else None
    trace_path: str = None
    # Sampling-controller summary: mode, stop reason, sample size,
    # final eq.-7 relative error, fraction of snapshots replayed (see
    # AdaptiveSamplingController.finish)
    sampling: dict = None
    # Short hash of the run's identity parameters — the correlation id
    # stamped on every span this run records and on its history row
    run_key: str = None

    @property
    def cycles(self):
        return self.result.cycles

    @property
    def snapshots(self):
        return self.result.snapshots


def compute_run_key(design, workload, sample_size, replay_length,
                    max_cycles, seed, workload_kwargs):
    """Short stable id over a run's identity parameters.

    Backend/overlap/lane/worker knobs are deliberately excluded — they
    are bit-identical execution strategies, and the correlation id
    should survive a re-run under a different strategy (the history
    row records those knobs separately as ``config``).
    """
    ident = json.dumps(
        [design, workload, sample_size, replay_length, max_cycles,
         seed, workload_kwargs or {}],
        sort_keys=True, default=str)
    return hashlib.blake2b(ident.encode(), digest_size=6).hexdigest()


_CIRCUIT_CACHE = {}
_ENGINE_CACHE = {}   # (design, freq_hz, gl_backend, gl_overlap)
                     #   -> ReplayEngine


def clear_caches(disk=False):
    """Empty the in-memory circuit/engine caches (and optionally the
    on-disk artifact cache) so tests and long-running processes can
    bound memory and force cold paths."""
    _CIRCUIT_CACHE.clear()
    _ENGINE_CACHE.clear()
    if disk:
        get_cache().clear()


def _soc_pipeline():
    """The SoC ASIC pipeline: synthesis with functional-unit
    attribution refinement, unit-level floorplanning, formal matching."""
    return asic_pipeline(refine_fn=refine_attribution,
                         cluster_fn=soc_grouping, name="asicflow-soc")


def _sim_pipeline():
    """The simulator-side instrumentation pipeline (FAME1 decoupling).

    Scan-chain metadata is built inside the FAME1 simulator itself (it
    owns the scan-width/readout cost model), so the host pipeline only
    needs the decoupling transform.
    """
    return PassManager([Fame1TransformPass()], name="strober-sim")


def _soc_asic_flow(circuit, use_cache=True, debug=False):
    """ASIC flow with functional-unit attribution and floorplanning.

    Cached on disk under its own artifact kind (``asicflow-soc``); the
    cache key composes the circuit fingerprint with the pipeline
    fingerprint (covering the attribution refiner and floorplan
    grouping), so the SoC flow's artifacts can never collide with the
    generic :func:`~repro.core.replay.run_asic_flow` output — or with a
    differently-parameterized pipeline — for the same circuit.
    """
    return build_asic_flow(circuit, manager=_soc_pipeline(),
                           kind="asicflow-soc", use_cache=use_cache,
                           debug=debug)


def get_circuits(design):
    """(simulator_circuit, target_circuit) for a named configuration.

    Cached: the FAME1 transform happens lazily inside run_workload on
    the simulator circuit; the target circuit stays untouched.
    """
    if design not in _CIRCUIT_CACHE:
        config = get_config(design)
        _CIRCUIT_CACHE[design] = (config.build_circuit(),
                                  config.build_circuit())
    return _CIRCUIT_CACHE[design]


def get_replay_engine(design, freq_hz=None, use_cache=True, debug=False,
                      gl_backend=None, gl_overlap=None):
    """The (cached) gate-level replay engine for a named configuration.

    Keyed by ``(design, freq_hz, gl_backend, gl_overlap)``: the
    frequency feeds straight into power analysis, the gate-level
    evaluation backend owns a generated kernel, and the thread-overlap
    setting sizes the engine's batch thread pool, so none may share a
    cache slot.  ``use_cache=False`` skips the on-disk artifact cache
    (the in-memory engine cache still applies); ``debug=True`` runs the
    structural IR verifier between the ASIC pipeline's passes.
    """
    from ..gatelevel.glcodegen import resolve_backend, resolve_overlap
    gl_backend = resolve_backend(gl_backend)
    gl_overlap = resolve_overlap(gl_overlap)
    key = (design, freq_hz, gl_backend, gl_overlap)
    if key not in _ENGINE_CACHE:
        _, target = get_circuits(design)
        flow = _soc_asic_flow(target, use_cache=use_cache, debug=debug)
        _ENGINE_CACHE[key] = ReplayEngine(
            target, flow=flow, grouping=soc_grouping, freq_hz=freq_hz,
            gl_backend=gl_backend, overlap=gl_overlap)
    return _ENGINE_CACHE[key]


def run_strober(design, workload, sample_size=30, replay_length=128,
                max_cycles=2_000_000, backend="auto", seed=0,
                confidence=0.99, workload_kwargs=None, strict_replay=True,
                record_full_io=False, workers=1, journal=None,
                replay_timeout=None, replay_retries=2, batch_lanes=1,
                gl_backend=None, gl_overlap=None, debug=False,
                trace=None, tracer=None,
                serial_gl_backend=None, fault_plan=None,
                target_rel_error=None, min_sample=None, max_sample=None):
    """The headline API: energy-evaluate ``workload`` on ``design``.

    ``workload`` is a benchmark name from :data:`ALL_PROGRAMS` or a
    literal assembly source string.  ``workers`` fans snapshot replays
    out across that many processes (``None`` = all CPUs; 1 = serial);
    multi-worker replays run under the fault-tolerant supervisor
    (``replay_timeout`` seconds per snapshot, ``replay_retries``
    attempts before the in-process fallback) and the resulting
    :class:`~repro.robust.ReplayHealthReport` lands on the returned
    run's ``health`` field.

    ``batch_lanes`` packs up to that many snapshots (``None`` = 64)
    into the bit lanes of one batched gate-level replay, multiplying —
    not replacing — the worker-process parallelism.  Results are
    bit-identical to serial scalar replay for any setting.

    ``gl_backend`` selects the gate-level evaluation strategy for
    batched replays: ``"interp"`` (default), ``"compiled"`` (generated
    straight-line Python), ``"c"`` (gcc+ctypes), or ``"auto"`` (best
    available); ``$REPRO_GL_BACKEND`` supplies the default.  Backends
    are bit-identical, so the choice is recorded in the journal run key
    as advisory provenance only — a journal written under one backend
    resumes under another.

    ``gl_overlap`` keeps up to that many replay batches in flight on
    threads *within* each process (``$REPRO_GL_OVERLAP`` supplies the
    default, 1 = off).  The native ``run_cycles`` kernel releases the
    GIL for a batch's whole trace, so overlap buys real parallelism
    without worker processes — and composes with ``workers``, where
    each worker overlaps its own super-task of batches.  Results are
    bit-identical for any setting; like the backend it is advisory in
    the journal run key.

    Every circuit transform runs through the pass pipeline
    (:mod:`repro.passes`): the FAME1 decoupling on the simulator
    circuit and the synthesis/placement/matching flow on the tapeout
    circuit.  The per-pass wall-clock breakdown lands in the returned
    run's ``timings`` (``sim_pipeline`` / ``asic_pipeline`` /
    ``passes``); ``debug=True`` additionally runs the structural IR
    verifier between passes.

    ``journal`` names a crash-safe run journal file: the simulation
    outcome, every sampled snapshot, and every completed replay result
    are appended (checksummed, fsync'd) as they land, and a rerun with
    the same parameters and the same ``journal`` path resumes from the
    last good record — skipping the FAME simulation and all finished
    replays — instead of restarting from scratch.

    ``trace`` names a Chrome-trace JSON output file and turns the
    observability layer (:mod:`repro.obs`) all the way up: every flow
    phase, compiler pass, FAME simulation, synthesis/placement step,
    cache access, gate-level replay batch, and supervisor incident is
    recorded as a span or event — replay *worker processes included*,
    whose spans ship back over the supervisor pipes and merge into the
    one exported timeline (open it in Perfetto, or run ``python -m
    repro.obs.report <path>``).  Live sampling-error telemetry (the
    running mean power and confidence half-width after each completed
    replay) is embedded as counter tracks.  Even without ``trace`` the
    run is spanned locally — the returned ``timings`` dict is *derived
    from the trace* — but worker capture and the export only happen
    when a path is given.

    ``tracer`` supplies an externally-owned :class:`~repro.obs.Tracer`
    instead of the one this call would create — the job service passes
    one per job with an ``on_span`` subscriber so its ``/status``
    endpoint can stream run phases live.  ``serial_gl_backend`` forces
    the supervisor's in-process fallback engine onto that backend
    (the service passes ``"interp"`` so a poisoned compiled kernel is
    never executed in the daemon process).  ``fault_plan`` is the
    fault-injection harness hook (:class:`repro.robust.FaultPlan`):
    it deliberately sabotages chosen replay dispatches and exists so
    chaos campaigns can drive sabotage through the public API.

    ``target_rel_error`` switches the replay phase into *adaptive*
    mode: snapshots are replayed in confidence-driven (bit-reversal)
    order and the run stops — cancelling in-flight batches without
    killing the pool — the moment the eq.-7 confidence interval's
    relative error drops to the target (a fraction, e.g. ``0.05`` for
    ±5%), bounded below by ``min_sample`` (default 2) and above by
    ``max_sample`` (default: every sampled snapshot).  The stop
    reason, sample size, final relative error, and fraction of
    snapshots replayed land on the returned run's ``sampling`` dict
    (and, with ``journal``, in a control record).  Reopening an
    existing journal with a *tighter* target replays only the
    additional snapshots needed.  Left at ``None`` (the default),
    every snapshot is replayed and results are bit-identical to the
    fixed-sample pipeline.
    """
    from ..gatelevel.glcodegen import resolve_backend, resolve_overlap
    batch_lanes = 64 if batch_lanes is None else int(batch_lanes)
    gl_backend = resolve_backend(gl_backend)
    gl_overlap = resolve_overlap(gl_overlap)
    workload_name = workload if workload in ALL_PROGRAMS else "(custom)"
    run_key = compute_run_key(design, workload_name, sample_size,
                              replay_length, max_cycles, seed,
                              workload_kwargs)
    if tracer is None:
        tracer = Tracer(distributed=trace is not None)
    # Every span this run records — replay workers included, via the
    # supervisor's spawn payload — carries the run identity, so traces
    # from a multi-run process (the job service) stay joinable.
    tracer.set_correlation(run_key=run_key)
    prev_tracer = set_tracer(tracer)
    try:
        with tracer.span("strober.run", cat="flow", design=design,
                         workload=workload_name, batch_lanes=batch_lanes,
                         workers=-1 if workers is None else workers):
            run = _run_strober(
                design, workload, sample_size=sample_size,
                replay_length=replay_length, max_cycles=max_cycles,
                backend=backend, seed=seed, confidence=confidence,
                workload_kwargs=workload_kwargs,
                strict_replay=strict_replay,
                record_full_io=record_full_io, workers=workers,
                journal=journal, replay_timeout=replay_timeout,
                replay_retries=replay_retries, batch_lanes=batch_lanes,
                gl_backend=gl_backend, gl_overlap=gl_overlap,
                debug=debug, tracer=tracer,
                serial_gl_backend=serial_gl_backend,
                fault_plan=fault_plan,
                target_rel_error=target_rel_error,
                min_sample=min_sample, max_sample=max_sample)
    finally:
        set_tracer(prev_tracer)
        if trace is not None:
            export_chrome_trace(
                trace, tracer, registry=get_registry(),
                meta={"design": design, "workload": workload_name,
                      "workers": workers, "batch_lanes": batch_lanes,
                      "sample_size": sample_size,
                      "replay_length": replay_length,
                      "run_key": run_key})
    run.trace_path = trace
    run.run_key = run_key
    # Persist the run's history row (append-only store; never raises,
    # no-op when $REPRO_OBS_HISTORY disables the store).
    append_run_record(run)
    return run


def _run_strober(design, workload, *, sample_size, replay_length,
                 max_cycles, backend, seed, confidence, workload_kwargs,
                 strict_replay, record_full_io, workers, journal,
                 replay_timeout, replay_retries, batch_lanes, gl_backend,
                 gl_overlap, debug, tracer, serial_gl_backend=None,
                 fault_plan=None, target_rel_error=None,
                 min_sample=None, max_sample=None):
    """The traced flow body; ``tracer`` is already installed."""
    t0 = time.perf_counter()
    with tracer.span("phase.elaborate", cat="phase", design=design):
        config = get_config(design)
        sim_circuit, _target = get_circuits(design)
        if workload in ALL_PROGRAMS:
            source = ALL_PROGRAMS[workload](**(workload_kwargs or {}))
            workload_name = workload
        else:
            source = workload
            workload_name = "(custom)"

    journal_file = None
    resume = None
    if journal is not None:
        from ..robust.journal import RunJournal, load_resume
        run_key = {
            "design": design,
            "workload": workload_name,
            "source_crc": zlib.crc32(source.encode())
            if isinstance(source, str) else None,
            "sample_size": sample_size,
            "replay_length": replay_length,
            "max_cycles": max_cycles,
            "seed": seed,
            "strict_replay": bool(strict_replay),
            "workload_kwargs": workload_kwargs or {},
            "batch_lanes": batch_lanes,
            # advisory provenance: backends and thread overlap are
            # bit-identical, so resume comparison ignores these keys
            # (see journal module)
            "gl_backend": gl_backend,
            "gl_overlap": gl_overlap,
            # advisory sampling knobs: resume comparison ignores these
            # too — that is what makes incremental re-sampling work
            # (reopen the same journal with a tighter target and only
            # the additional snapshots are replayed)
            "target_rel_error": target_rel_error,
            "min_sample": min_sample,
            "max_sample": max_sample,
            # pipeline fingerprints: a journal written under different
            # transform pipelines must not be resumed
            "pipelines": {"sim": _sim_pipeline().fingerprint(),
                          "asic": _soc_pipeline().fingerprint()},
        }
        resume = load_resume(journal, run_key)

    try:
        sim_report = None
        with tracer.span("phase.sim", cat="phase",
                         resumed=resume is not None) as sim_span:
            if resume is not None:
                from ..robust.journal import JournaledWorkloadResult
                result = JournaledWorkloadResult(resume.sim,
                                                 resume.snapshots)
            else:
                sim_ctx = _sim_pipeline().run(sim_circuit, debug=debug)
                sim_report = sim_ctx.report
                result = run_workload(
                    sim_circuit, source,
                    max_cycles=max_cycles,
                    mem_latency=config.dram_latency,
                    line_words=config.line_words,
                    backend=backend,
                    sample_size=sample_size,
                    replay_length=replay_length,
                    seed=seed,
                    record_full_io=record_full_io,
                )
            sim_span.set(cycles=result.cycles)
        sim_seconds = sim_span.dur
        if not result.passed:
            raise RuntimeError(
                f"workload {workload_name} failed on {design}: "
                f"exit={result.exit_code}")

        snapshots = list(result.snapshots)
        done = dict(resume.results) if resume is not None else {}

        if journal is not None:
            from ..robust.journal import (
                TYPE_META, TYPE_SNAPSHOT, TYPE_SIM, TYPE_RESULT,
                TYPE_CONTROL)
            with tracer.span("phase.journal", cat="phase",
                             resumed=resume is not None):
                journal_file = RunJournal(journal).open()
                if resume is None:
                    journal_file.reset()
                    journal_file.append(TYPE_META, run_key)
                    for i, snapshot in enumerate(snapshots):
                        if snapshot.checksum is None:
                            snapshot.seal()
                        journal_file.append(TYPE_SNAPSHOT,
                                            {"index": i,
                                             "snapshot": snapshot})
                    journal_file.append(TYPE_SIM, {
                        "cycles": result.cycles,
                        "instret": result.instret,
                        "exit_code": result.exit_code,
                        "dram_counters": result.memory.counters,
                        "n_snapshots": len(snapshots),
                    })

        with tracer.span("phase.flow", cat="phase") as flow_span:
            engine = get_replay_engine(design, freq_hz=config.freq_hz,
                                       debug=debug,
                                       gl_backend=gl_backend,
                                       gl_overlap=gl_overlap)
            flow_span.set(cache_hit=engine.flow.cache_hit)
        flow_seconds = flow_span.dur

        with tracer.span("phase.replay", cat="phase",
                         workers=-1 if workers is None else workers,
                         batch_lanes=batch_lanes) as replay_span:
            pending = [i for i in range(len(snapshots))
                       if i not in done]
            population = max(
                int(math.ceil(result.cycles / replay_length)),
                len(snapshots) or 1)
            controller = AdaptiveSamplingController(
                population, available=len(snapshots) or 1,
                confidence=confidence,
                target_rel_error=target_rel_error,
                min_sample=min_sample, max_sample=max_sample,
                tracer=tracer)
            controller.seed(done[i].power.total_mw
                            for i in sorted(done))
            order = controller.plan_order(pending)
            cancel = CancelToken()
            # The stream labels every result with its *original*
            # snapshot index, so out-of-order completion under a
            # worker pool can never journal a result under the wrong
            # index — and the controller's cancel token stops dispatch
            # the moment the target interval is met.
            for idx, replay_result in engine.replay_stream(
                    snapshots, strict=strict_replay, workers=workers,
                    timeout=replay_timeout, max_retries=replay_retries,
                    batch_lanes=batch_lanes, fault_plan=fault_plan,
                    serial_gl_backend=serial_gl_backend, order=order,
                    cancel=cancel):
                done[idx] = replay_result
                if journal_file is not None:
                    journal_file.append(TYPE_RESULT,
                                        {"index": idx,
                                         "result": replay_result})
                controller.observe(idx, replay_result)
                if (controller.should_stop() is not None
                        and not cancel.cancelled):
                    controller.request_cancel(cancel,
                                              controller.stop_reason)
            sampling = controller.finish()
            if journal_file is not None and controller.adaptive:
                journal_file.append(TYPE_CONTROL,
                                    {"controller": sampling})
            replays = [done[i] for i in sorted(done)]
            replay_span.set(snapshots=len(snapshots),
                            resumed=len(snapshots) - len(pending))
            if controller.adaptive:
                replay_span.set(
                    adaptive=True, replayed=controller.replayed,
                    stop_reason=sampling["stop_reason"])
        replay_seconds = replay_span.dur

        with tracer.span("phase.energy", cat="phase") as energy_span:
            energy = estimate_energy(
                replays,
                total_cycles=result.cycles,
                replay_length=replay_length,
                instructions=result.instret,
                confidence=confidence,
                workload=workload_name,
                design=design,
                dram_counters=result.memory.counters,
                freq_hz=config.freq_hz,
            )
        energy_seconds = energy_span.dur
    finally:
        if journal_file is not None:
            journal_file.close()
    return StroberRun(
        design=design,
        workload=workload_name,
        result=result,
        replays=replays,
        energy=energy,
        engine=engine,
        wall_seconds=time.perf_counter() - t0,
        timings=_merge_timings(
            {
                "sim_seconds": sim_seconds,
                "flow_seconds": flow_seconds,
                "replay_seconds": replay_seconds,
                "energy_seconds": energy_seconds,
                "workers": workers,
                "batch_lanes": batch_lanes,
                "gl_backend": engine.gl_backend,
                "gl_overlap": engine.gl_overlap,
                "flow_cache_hit": engine.flow.cache_hit,
                "resumed_sim": resume is not None,
                "resumed_replays": len(resume.results) if resume else 0,
            },
            ("sim_pipeline", sim_report),
            ("asic_pipeline", getattr(engine.flow, "pipeline_report",
                                      None)),
        ),
        health=engine.last_health,
        sampling=sampling,
    )


def _merge_timings(timings, *reports):
    """Fold pass-pipeline reports into the run's timing dict.

    ``reports`` are ``(label, report)`` pairs.  ``passes`` is the flat
    per-pass wall-clock breakdown across every pipeline; each full
    report (IR deltas, fingerprints, stats) rides along under its
    label.  Tolerant by construction: a ``None`` report *anywhere* in
    the list — a resumed simulation, a cache-hit ASIC flow (which
    carries no report for this process's run), an old cached artifact
    without one — contributes an explicit ``None`` under its label and
    never stops later reports from being merged.
    """
    passes = {}
    for label, report in reports:
        if report is None or not hasattr(report, "per_pass_seconds"):
            timings[label] = None
            continue
        for name, seconds in report.per_pass_seconds().items():
            passes[f"{report.pipeline}/{name}"] = seconds
        timings[label] = report.as_dict()
    timings["passes"] = passes
    return timings
