"""End-to-end Strober flow: one call from design + workload to energy.

Ties the whole methodology together (Figures 2, 4, 5):

1. build the design twice (FPGA-simulator circuit + tapeout circuit);
2. run the workload on the FAME1 simulator, reservoir-sampling
   replayable snapshots;
3. run the ASIC flow (synthesis, placement, formal matching) on the
   tapeout circuit;
4. replay every snapshot on gate level (with output verification and
   retimed-datapath warm-up) and aggregate power with confidence
   intervals, DRAM power from the activity counters, and CPI/EPI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..targets.soc import run_workload
from ..isa.programs import ALL_PROGRAMS
from .configs import get_config
from .replay import ReplayEngine, run_asic_flow
from .energy import estimate_energy
from .attribution import refine_attribution, soc_grouping
from ..gatelevel import synthesize, place, match_netlist
from ..gatelevel.formal import NameMap


@dataclass
class StroberRun:
    """Everything one flow invocation produced."""

    design: str
    workload: str
    result: object               # WorkloadResult (performance side)
    replays: list
    energy: object               # EnergyEstimate
    engine: ReplayEngine
    wall_seconds: float = 0.0

    @property
    def cycles(self):
        return self.result.cycles

    @property
    def snapshots(self):
        return self.result.snapshots


_CIRCUIT_CACHE = {}
_ENGINE_CACHE = {}


def _soc_asic_flow(circuit):
    """ASIC flow with functional-unit attribution and floorplanning."""
    t0 = time.perf_counter()
    netlist, hints = synthesize(circuit)
    refine_attribution(netlist)
    placement = place(netlist, cluster_fn=soc_grouping)
    name_map = match_netlist(circuit, netlist, hints)
    from .replay import AsicFlow
    return AsicFlow(netlist=netlist, hints=hints, placement=placement,
                    name_map=name_map,
                    synthesis_seconds=time.perf_counter() - t0)


def get_circuits(design):
    """(simulator_circuit, target_circuit) for a named configuration.

    Cached: the FAME1 transform happens lazily inside run_workload on
    the simulator circuit; the target circuit stays untouched.
    """
    if design not in _CIRCUIT_CACHE:
        config = get_config(design)
        _CIRCUIT_CACHE[design] = (config.build_circuit(),
                                  config.build_circuit())
    return _CIRCUIT_CACHE[design]


def get_replay_engine(design, freq_hz=None):
    if design not in _ENGINE_CACHE:
        _, target = get_circuits(design)
        flow = _soc_asic_flow(target)
        _ENGINE_CACHE[design] = ReplayEngine(
            target, flow=flow, grouping=soc_grouping, freq_hz=freq_hz)
    return _ENGINE_CACHE[design]


def run_strober(design, workload, sample_size=30, replay_length=128,
                max_cycles=2_000_000, backend="auto", seed=0,
                confidence=0.99, workload_kwargs=None, strict_replay=True,
                record_full_io=False):
    """The headline API: energy-evaluate ``workload`` on ``design``.

    ``workload`` is a benchmark name from :data:`ALL_PROGRAMS` or a
    literal assembly source string.
    """
    t0 = time.perf_counter()
    config = get_config(design)
    sim_circuit, _target = get_circuits(design)
    if workload in ALL_PROGRAMS:
        source = ALL_PROGRAMS[workload](**(workload_kwargs or {}))
        workload_name = workload
    else:
        source = workload
        workload_name = "(custom)"

    result = run_workload(
        sim_circuit, source,
        max_cycles=max_cycles,
        mem_latency=config.dram_latency,
        line_words=config.line_words,
        backend=backend,
        sample_size=sample_size,
        replay_length=replay_length,
        seed=seed,
        record_full_io=record_full_io,
    )
    if not result.passed:
        raise RuntimeError(
            f"workload {workload_name} failed on {design}: "
            f"exit={result.exit_code}")

    engine = get_replay_engine(design, freq_hz=config.freq_hz)
    replays = engine.replay_all(result.snapshots, strict=strict_replay)
    energy = estimate_energy(
        replays,
        total_cycles=result.cycles,
        replay_length=replay_length,
        instructions=result.instret,
        confidence=confidence,
        workload=workload_name,
        design=design,
        dram_counters=result.memory.counters,
        freq_hz=config.freq_hz,
    )
    return StroberRun(
        design=design,
        workload=workload_name,
        result=result,
        replays=replays,
        energy=energy,
        engine=engine,
        wall_seconds=time.perf_counter() - t0,
    )
