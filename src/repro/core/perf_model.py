"""Analytic simulation-performance model (Section IV-E).

Implements the paper's equations verbatim:

  T_overall = max(T_FPGAsyn + T_FPGAsim, T_ASIC) + T_replay
  T_FPGAsim = N / K_f  +  T_rec * 2n ln((N/L)/n)
  T_replay  = n * (T_load + L/K_g + T_power) / P

and the two baselines the paper quotes: microarchitectural software
simulation at ~300 KHz and pure gate-level simulation at K_g.  With the
paper's constants this reproduces the worked example: 9.4 hours overall,
3.86 days of software simulation, and 264 years of gate-level simulation
for a 100-billion-cycle benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class StroberPerfParams:
    """Measured constants of one Strober deployment (paper values)."""

    t_fpga_syn_s: float = 3600.0       # FPGA synthesis, ~1 h for BOOM-2w
    t_asic_s: float = 4 * 3600.0       # ASIC tool chain, 3-4 h
    k_f_hz: float = 3.6e6              # FPGA simulation rate
    k_g_hz: float = 12.0               # gate-level simulation rate
    t_rec_s: float = 1.3               # read out one snapshot
    t_load_s: float = 3.0              # load one snapshot into gate sim
    t_power_s: float = 150.0           # power analysis per snapshot
    uarch_sim_hz: float = 300e3        # software simulator baseline
    parallel_replays: int = 10         # P instances of gate-level sim


PAPER_PARAMS = StroberPerfParams()


@dataclass
class PerfBreakdown:
    t_fpga_syn_s: float
    t_run_s: float
    t_sample_s: float
    t_asic_s: float
    t_replay_s: float

    @property
    def t_fpga_sim_s(self):
        return self.t_run_s + self.t_sample_s

    @property
    def t_overall_s(self):
        return max(self.t_fpga_syn_s + self.t_fpga_sim_s,
                   self.t_asic_s) + self.t_replay_s

    @property
    def t_overall_hours(self):
        return self.t_overall_s / 3600.0


def strober_time(total_cycles, sample_size, replay_length,
                 params=PAPER_PARAMS):
    """Full Section IV-E model; returns a :class:`PerfBreakdown`."""
    n = sample_size
    big_n = total_cycles
    t_run = big_n / params.k_f_hz
    elements = big_n / replay_length
    if elements > n:
        t_sample = params.t_rec_s * 2.0 * n * math.log(elements / n)
    else:
        t_sample = params.t_rec_s * n
    t_replay = (n * (params.t_load_s + replay_length / params.k_g_hz
                     + params.t_power_s)
                / params.parallel_replays)
    return PerfBreakdown(
        t_fpga_syn_s=params.t_fpga_syn_s,
        t_run_s=t_run,
        t_sample_s=t_sample,
        t_asic_s=params.t_asic_s,
        t_replay_s=t_replay,
    )


def uarch_sim_time(total_cycles, params=PAPER_PARAMS):
    """Baseline: microarchitectural software simulation (seconds)."""
    return total_cycles / params.uarch_sim_hz


def gate_sim_time(total_cycles, params=PAPER_PARAMS):
    """Baseline: full gate-level simulation (seconds)."""
    return total_cycles / params.k_g_hz


def speedup_over_uarch(total_cycles, sample_size, replay_length,
                       params=PAPER_PARAMS):
    model = strober_time(total_cycles, sample_size, replay_length, params)
    return uarch_sim_time(total_cycles, params) / model.t_overall_s


def speedup_over_gate_sim(total_cycles, sample_size, replay_length,
                          params=PAPER_PARAMS):
    model = strober_time(total_cycles, sample_size, replay_length, params)
    return gate_sim_time(total_cycles, params) / model.t_overall_s


def measured_params(fame_stats, replay_results, rtl_rate_hz, gl_rate_hz,
                    base=PAPER_PARAMS):
    """Derive model constants from *this reproduction's* measurements, so
    the analytic model can be evaluated against locally observed rates."""
    t_rec = (fame_stats.snapshot_wall_seconds
             / max(fame_stats.record_count, 1))
    if replay_results:
        t_load = sum(r.wall_seconds for r in replay_results) \
            / len(replay_results)
    else:
        t_load = base.t_load_s
    return StroberPerfParams(
        t_fpga_syn_s=0.0,
        t_asic_s=base.t_asic_s,
        k_f_hz=rtl_rate_hz,
        k_g_hz=gl_rate_hz,
        t_rec_s=t_rec,
        t_load_s=t_load,
        t_power_s=0.0,
        uarch_sim_hz=base.uarch_sim_hz,
        parallel_replays=1,
    )
