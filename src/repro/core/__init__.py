"""Strober core: the paper's primary contribution, end to end."""

from .compiler import StroberCompiler, StroberOutput, StroberCompileError
from .configs import DesignConfig, CONFIGS, get_config
from .replay import (
    ReplayEngine, ReplayResult, ReplayError, AsicFlow, run_asic_flow,
    asic_pipeline, build_asic_flow, plan_replay_batches,
)
from .controller import (
    AdaptiveSamplingController, confidence_order,
    STOP_TARGET_MET, STOP_EXHAUSTED, STOP_MAX_SAMPLE,
)
from .energy import EnergyEstimate, estimate_energy
from .attribution import soc_grouping, refine_attribution
from .perf_model import (
    StroberPerfParams, PAPER_PARAMS, PerfBreakdown, strober_time,
    uarch_sim_time, gate_sim_time, speedup_over_uarch,
    speedup_over_gate_sim, measured_params,
)
from .flow import (
    run_strober, StroberRun, get_circuits, get_replay_engine, clear_caches,
)

__all__ = [
    "StroberCompiler", "StroberOutput", "StroberCompileError",
    "DesignConfig", "CONFIGS", "get_config",
    "ReplayEngine", "ReplayResult", "ReplayError", "AsicFlow",
    "run_asic_flow", "asic_pipeline", "build_asic_flow",
    "plan_replay_batches",
    "AdaptiveSamplingController", "confidence_order",
    "STOP_TARGET_MET", "STOP_EXHAUSTED", "STOP_MAX_SAMPLE",
    "EnergyEstimate", "estimate_energy",
    "soc_grouping", "refine_attribution",
    "StroberPerfParams", "PAPER_PARAMS", "PerfBreakdown", "strober_time",
    "uarch_sim_time", "gate_sim_time", "speedup_over_uarch",
    "speedup_over_gate_sim", "measured_params",
    "run_strober", "StroberRun", "get_circuits", "get_replay_engine",
    "clear_caches",
]
