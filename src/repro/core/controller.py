"""Adaptive sampling controller: error-driven early stopping.

Strober's sampling theory (Section III-A) is offline: pick a sample
size up front, replay it all, report the eq.-7 confidence interval.
This module closes the loop online.  The controller consumes the
streaming replay scheduler (:meth:`ReplayEngine.replay_stream`),
folds each completed replay into an incremental eq.-7 estimator
(:class:`repro.sampling.OnlineMeanEstimator` — O(1) per result), and
stops the run — cancelling in-flight batches through the supervisor's
:class:`~repro.parallel.CancelToken` without killing the pool — the
moment the interval's relative error meets the target.

State machine::

    collecting --(rel_error <= target, n >= min_sample)--> target-met
    collecting --(every candidate snapshot replayed)-----> exhausted
    collecting --(max_sample replays spent)--------------> max-sample

Dispatch order is the *bit-reversal* (van der Corput) permutation of
the snapshot indices.  Snapshots are drawn uniformly at random by the
reservoir sampler and stored in execution order, so any subset is a
valid simple random sample — but an adaptive stop takes a *prefix*,
and a prefix of the execution order would be biased toward the start
of the run if the stop fired early for value-dependent reasons.  The
bit-reversal order is value-independent and spreads every prefix
evenly across the execution timeline, so the replays an early stop
keeps cover the whole run rather than its first half.

With ``target_rel_error=None`` the controller degrades to pure
telemetry — natural dispatch order, no stopping, byte-identical
journals — exactly the historical fixed-sample behavior.
"""

from __future__ import annotations

from ..obs import get_registry
from ..sampling import OnlineMeanEstimator

STOP_TARGET_MET = "target-met"   # interval met the target rel error
STOP_EXHAUSTED = "exhausted"     # ran out of candidate snapshots
STOP_MAX_SAMPLE = "max-sample"   # hit the max_sample replay budget

# Eq. 7 has no half-width below two samples (estimate_mean hardens
# n=1 to a zero half-width), so a stop decision below this floor
# would mistake "no variance information" for "converged".
DEFAULT_MIN_SAMPLE = 2


def confidence_order(n):
    """Bit-reversal (van der Corput) permutation of ``range(n)``.

    Deterministic and value-independent; every prefix of the returned
    order spreads (near-)evenly over ``0..n-1``.  This is the
    confidence-driven dispatch order: stopping after any prefix keeps
    a subset that covers the whole execution timeline.
    """
    n = int(n)
    if n <= 0:
        return []
    bits = max(1, (n - 1).bit_length())
    out = []
    for i in range(1 << bits):
        r = 0
        for b in range(bits):
            r = (r << 1) | ((i >> b) & 1)
        if r < n:
            out.append(r)
    return out


class AdaptiveSamplingController:
    """Consumes the replay stream; decides order, progress, and stop.

    One instance per run.  The flow seeds it with journal-resumed
    results, asks :meth:`plan_order` for the dispatch order, calls
    :meth:`observe` per completed replay (followed by
    :meth:`should_stop`), and :meth:`finish` at the end for the run's
    sampling summary.  Every decision — dispatch plan, per-result
    progress, cancellation, stop — is emitted as an obs instant under
    the ``controller.`` prefix so ``repro.obs.report`` can show it.
    """

    def __init__(self, population, *, available, confidence=0.99,
                 target_rel_error=None, min_sample=None, max_sample=None,
                 tracer=None):
        if target_rel_error is not None and target_rel_error <= 0:
            raise ValueError("target_rel_error must be positive")
        self.population = int(population)
        self.available = int(available)
        self.confidence = confidence
        self.target_rel_error = target_rel_error
        if min_sample is None:
            min_sample = DEFAULT_MIN_SAMPLE
        self.min_sample = max(int(min_sample), DEFAULT_MIN_SAMPLE)
        if max_sample is None:
            max_sample = self.available
        self.max_sample = max(min(int(max_sample), self.available),
                              self.min_sample)
        if tracer is None:
            from ..obs import get_tracer
            tracer = get_tracer()
        self.tracer = tracer
        self.estimator = OnlineMeanEstimator(self.population,
                                             confidence=confidence)
        self.seeded = 0
        self.replayed = 0
        self.stop_reason = None
        self._planned = 0
        self._capped = False     # plan was truncated by max_sample

    @property
    def adaptive(self):
        return self.target_rel_error is not None

    @property
    def sample_size(self):
        """Samples folded in so far (seeded + freshly replayed)."""
        return self.estimator.n

    # ---- seeding (journal resume) ----

    def seed(self, totals):
        """Fold already-journaled replay totals in, silently.

        Resumed results were counted (and journaled) by the run that
        produced them; re-counting them here would double the
        ``sampling.replays_completed`` metric and replant telemetry
        samples the original run already emitted.
        """
        for total in totals:
            self.estimator.add(total)
            self.seeded += 1

    # ---- dispatch ----

    def plan_order(self, pending):
        """The dispatch order over ``pending`` snapshot indices.

        Fixed mode returns ``pending`` unchanged (natural order — the
        historical batching, byte-identical journals).  Adaptive mode
        reorders ``pending`` by the bit-reversal permutation over all
        ``available`` snapshots and truncates so seeded + planned
        replays never exceed ``max_sample``.  Emits one
        ``controller.dispatch`` instant describing the decision.
        """
        pending = [int(i) for i in pending]
        if not self.adaptive:
            self._planned = len(pending)
            return pending
        pending_set = set(pending)
        ordered = [i for i in confidence_order(self.available)
                   if i in pending_set]
        budget = max(self.max_sample - self.sample_size, 0)
        plan = ordered[:budget]
        self._planned = len(plan)
        self._capped = len(plan) < len(ordered)
        self.tracer.instant(
            "controller.dispatch", cat="controller",
            strategy="bit-reversal", planned=len(plan),
            pending=len(pending), seeded=self.seeded,
            max_sample=self.max_sample,
            target_rel_error=self.target_rel_error)
        return plan

    # ---- per-result progress ----

    def observe(self, index, result):
        """Fold one completed replay in; emit live telemetry."""
        self.estimator.add(result.power.total_mw)
        self.replayed += 1
        n = self.estimator.n
        registry = get_registry()
        registry.counter("sampling.replays_completed").inc()
        if n < 2:
            return      # one sample has no interval half-width yet
        est = self.estimator.estimate()
        rel = est.relative_error_bound
        rel_pct = rel * 100.0
        self.tracer.counter("sampling.n", n)
        self.tracer.counter("sampling.mean_mw", est.mean)
        self.tracer.counter("sampling.rel_error_pct", rel_pct)
        registry.gauge("sampling.rel_error_pct").set(rel_pct)
        registry.gauge("sampling.mean_mw").set(est.mean)
        if self.adaptive:
            self.tracer.instant(
                "controller.progress", cat="controller",
                snapshot_index=int(index), n=n,
                rel_error=rel if rel != float("inf") else None,
                target_rel_error=self.target_rel_error)

    def should_stop(self):
        """The stop reason the current state justifies, or ``None``.

        Only adaptive runs ever stop early; the decision latches (the
        first reason sticks).
        """
        if not self.adaptive or self.stop_reason is not None:
            return self.stop_reason
        n = self.estimator.n
        if n >= self.min_sample:
            rel = self.estimator.relative_error
            if rel <= self.target_rel_error:
                self.stop_reason = STOP_TARGET_MET
                return self.stop_reason
        if n >= self.max_sample:
            self.stop_reason = STOP_MAX_SAMPLE
        return self.stop_reason

    def request_cancel(self, cancel, reason):
        """Set the stream's cancel token; emits ``controller.cancel``."""
        registry = get_registry()
        registry.counter("controller.cancels").inc()
        self.tracer.instant(
            "controller.cancel", cat="controller", reason=reason,
            n=self.estimator.n,
            rel_error=self._finite(self.estimator.relative_error))
        cancel.cancel(reason)

    # ---- completion ----

    def finish(self):
        """Close the run out; returns the sampling summary dict.

        Resolves the final stop reason (a run that drained its whole
        plan without meeting the target stopped because it was
        ``exhausted`` — or hit ``max-sample`` if the plan was capped),
        emits the ``controller.stop`` instant, and builds the summary
        stored on ``StroberRun.sampling``, in the journal's control
        record, and in the service job status.
        """
        if self.adaptive and self.stop_reason is None:
            self.stop_reason = (STOP_MAX_SAMPLE if self._capped
                                else STOP_EXHAUSTED)
        est = self.estimator.estimate()
        rel = self._finite(est.relative_error_bound)
        early = (self.stop_reason == STOP_TARGET_MET
                 and self.sample_size < self.available)
        summary = {
            "mode": "adaptive" if self.adaptive else "fixed",
            "stop_reason": self.stop_reason,
            "early_stop": bool(early),
            "target_rel_error": self.target_rel_error,
            "min_sample": self.min_sample if self.adaptive else None,
            "max_sample": self.max_sample if self.adaptive else None,
            "confidence": self.confidence,
            "population": self.population,
            "available": self.available,
            "seeded": self.seeded,
            "replayed": self.replayed,
            "sample_size": self.sample_size,
            "fraction_replayed": (self.sample_size / self.available
                                  if self.available else 1.0),
            "rel_error": rel,
            "mean_mw": est.mean,
        }
        if self.adaptive:
            self.tracer.instant(
                "controller.stop", cat="controller",
                reason=self.stop_reason, early_stop=bool(early),
                n=self.sample_size, rel_error=rel,
                target_rel_error=self.target_rel_error,
                fraction_replayed=summary["fraction_replayed"])
            registry = get_registry()
            registry.gauge("controller.sample_size").set(self.sample_size)
            if rel is not None:
                registry.gauge("controller.rel_error").set(rel)
        return summary

    @staticmethod
    def _finite(value):
        """inf -> None: the summary must survive strict JSON."""
        if value is None or value != value or value == float("inf"):
            return None
        return value
