"""Power attribution: map netlist origins to Figure 9a report groups.

Synthesis tags DFFs/SRAMs with full register/memory paths and comb gates
with their module prefix; :func:`refine_attribution` then pushes each
state element's fine-grained origin backwards through the cone of logic
that feeds it, so combinational power lands in the right unit too.
:func:`soc_grouping` classifies the refined origins into the categories
the paper's power-breakdown figure uses.
"""

from __future__ import annotations

import re

_CORE_PATTERNS = [
    (re.compile(r"core\.(pc_f|fetch|kill_fetch|gb|dbuf|pc_d|inst_d|v_d)"),
     "Fetch Unit"),
    (re.compile(r"core\.(map_|cmap_|free_|cfree_|busy_)"),
     "Rename + Decode"),
    (re.compile(r"core\.regfile"), "Register File"),
    (re.compile(r"core\.iw\d"), "Issue Logic"),
    (re.compile(r"core\.rob"), "ROB"),
    (re.compile(r"core\.(lsq|dmem_)"), "LSU"),
    (re.compile(r"core\.fpu_mul"), "FPU"),
    (re.compile(r"core\.(div_unit|muldiv)"), "Integer Unit"),
    (re.compile(r"core\.(ex\d|v_x|pc_x|rd_x|f3_x|op1_x|op2_x|rs2val_x"
                r"|imm_x|c_\w+_x|v_m|rd_m|f3_m|res_m|addr_m|c_\w+_m"
                r"|v_w|rd_w|res_w|c_wen_w|mul_wait|div_wait|mw_|div_)"),
     "Integer Unit"),
    (re.compile(r"core\.(misp|cycle_ctr|instret)"), "Misc"),
]


def soc_grouping(origin):
    """Classify a (refined) origin path into a Figure 9a group."""
    if not origin:
        return "Uncore"
    if origin.startswith("icache"):
        return "L1 I-cache"
    if origin.startswith("dcache"):
        if ".tags" in origin or ".data" in origin:
            return "D-cache meta+data"
        return "D-cache control"
    if origin.startswith("uncore"):
        return "Uncore"
    if origin.startswith("core"):
        for pattern, group in _CORE_PATTERNS:
            if pattern.match(origin):
                return group
        return "Misc"
    return "Uncore"


def refine_attribution(netlist):
    """Backward-propagate state-element origins through comb logic.

    Every DFF carries the full path of its RTL register and every SRAM
    its memory path; gates inherit the origin of (one of) their
    consumers, walking the netlist once in reverse topological order.
    Modifies gate origins in place and returns the netlist.
    """
    fine = {}
    for dff in netlist.dffs:
        fine.setdefault(dff.d, dff.origin)
    for macro in netlist.srams:
        for addr, _data in macro.read_ports:
            for net in addr:
                fine.setdefault(net, macro.name)
        for en, addr, data in macro.write_ports:
            fine.setdefault(en, macro.name)
            for net in list(addr) + list(data):
                fine.setdefault(net, macro.name)
    for gate in reversed(netlist.gates):
        origin = fine.get(gate.output)
        if origin is not None:
            gate.origin = origin
            for net in gate.inputs:
                fine.setdefault(net, origin)
        else:
            for net in gate.inputs:
                fine.setdefault(net, gate.origin)
    return netlist
