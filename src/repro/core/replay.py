"""Replay engine: snapshots -> gate-level power (Section IV-C, Figure 5).

For each replayable snapshot: warm up designer-annotated retimed
datapaths by forcing their inputs for ``latency`` cycles (IV-C3), load
the RTL register state through the formal name-mapping table using the
VPI-style bulk loader (IV-C2), load SRAM contents, then drive the
recorded input trace while verifying every output token against the
recorded output trace.  The collected switching activity feeds the
power-analysis tool.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..gatelevel import (
    verify_equivalence, GateLevelSimulator, BatchedGateLevelSimulator,
    build_schedule, pack_lane_words, MAX_LANES, SCHEDULE_VERSION,
    PackedStimulus, StimulusMismatch,
    analyze_power, default_grouping, SynthesisPass, PlacementPass,
    FormalMatchPass,
)
from ..passes import PassManager, compose_cache_key
from ..fame.transform import HOST_ENABLE
from ..obs import get_tracer, get_registry

# Histogram buckets for how full replay batches run (lanes per batch).
_LANE_BUCKETS = (1, 2, 4, 8, 16, 32, 64)

# Packed-stimulus cache entries kept per engine (LRU).  Each entry holds
# the warm-up + main-trace stimulus for one batch of snapshots; resume
# and adaptive re-replays of the same batch skip re-packing entirely.
_STIM_CACHE_MAX = 64


def _note_replay(n_lanes, n_cycles, toggles):
    """Per-batch bookkeeping shared by the scalar and batched paths."""
    registry = get_registry()
    registry.counter("replay.batches").inc()
    registry.counter("replay.snapshots").inc(n_lanes)
    registry.counter("replay.lane_cycles").inc(n_lanes * n_cycles)
    registry.counter("replay.toggles").inc(toggles)
    registry.histogram("replay.lanes_per_batch",
                       _LANE_BUCKETS).observe(n_lanes)


class ReplayError(Exception):
    pass


@dataclass
class ReplayResult:
    snapshot_cycle: int
    power: "PowerReport"
    cycles: int
    mismatches: int
    load_commands: int
    wall_seconds: float


@dataclass
class AsicFlow:
    """Synthesis + placement + formal matching artifacts for one design.

    Picklable as a unit: it is both the payload shipped to replay worker
    processes and the object stored in the on-disk artifact cache.
    """

    netlist: object
    hints: object
    placement: object
    name_map: object
    equivalence: object = None
    synthesis_seconds: float = 0.0
    fingerprint: str = ""
    cache_hit: bool = False

    # port names the replay loop drives (from the source circuit); kept
    # on the artifact so engines can be rebuilt without the circuit.
    port_names: list = field(default_factory=list)

    # PipelineReport of the pass pipeline that built this artifact
    # (None on artifacts cached by older versions).
    pipeline_report: object = None


def load_levelized_schedule(flow):
    """The levelized gate-evaluation schedule for a flow's netlist.

    Levelization costs tens of milliseconds per simulator construction
    and its output is pure structure, so it is persisted in the on-disk
    artifact cache next to the :class:`AsicFlow` (keyed by the flow
    fingerprint + schedule version).  Replay worker processes hit the
    cache instead of re-levelizing at start-up; the time a hit saves is
    credited to ``cache_stats()['sched_seconds_saved']``.  Flows without
    a fingerprint (cache disabled or never cached) just build it live.
    """
    from ..parallel.cache import (
        get_cache, cache_enabled, note_schedule_reuse)

    with get_tracer().span("asic.schedule", cat="flow") as span:
        if flow.fingerprint and cache_enabled():
            key = f"{flow.fingerprint}-sched{SCHEDULE_VERSION}"
            cache = get_cache()
            schedule = cache.get("glsched", key)
            if (schedule is not None
                    and getattr(schedule, "version", None)
                    == SCHEDULE_VERSION):
                note_schedule_reuse(schedule.build_seconds)
                span.set(cached=True)
                return schedule
            schedule = build_schedule(flow.netlist)
            cache.put("glsched", key, schedule)
            span.set(cached=False)
            return schedule
        span.set(cached=False)
        return build_schedule(flow.netlist)


def make_replay_batches(snapshots, lanes):
    """Pack snapshot indices into bit-lane batches of at most ``lanes``.

    Batches hold *consecutive* indices so results and journal callbacks
    keep snapshot order; a new batch starts whenever the lane limit is
    reached or the trace length changes (every lane of a batch must
    step the same number of cycles).  ``N % lanes != 0`` simply leaves
    a ragged final batch.
    """
    if not 1 <= lanes <= MAX_LANES:
        raise ValueError(f"lanes must be in 1..{MAX_LANES}, got {lanes}")
    batches = []
    current = []
    current_len = None
    for i, snapshot in enumerate(snapshots):
        n_cycles = len(snapshot.input_trace)
        if current and (len(current) >= lanes
                        or n_cycles != current_len):
            batches.append(current)
            current = []
        current.append(i)
        current_len = n_cycles
    if current:
        batches.append(current)
    return batches


def plan_replay_batches(snapshots, lanes, order=None):
    """Pack snapshot indices into bit-lane batches following ``order``.

    The ``order``-aware generalization of :func:`make_replay_batches`:
    ``order`` is a sequence of snapshot positions (a permutation, or a
    strict subset for incremental re-sampling) giving the dispatch
    order; batches group *adjacent-in-order* indices sharing one trace
    length, at most ``lanes`` per batch.  With ``order=None`` this is
    exactly :func:`make_replay_batches` — natural order over all
    snapshots — so fixed-sample runs batch byte-identically to the
    historical path.
    """
    if order is None:
        return make_replay_batches(snapshots, lanes)
    if not 1 <= lanes <= MAX_LANES:
        raise ValueError(f"lanes must be in 1..{MAX_LANES}, got {lanes}")
    snapshots = list(snapshots)
    batches = []
    current = []
    current_len = None
    for i in order:
        n_cycles = len(snapshots[i].input_trace)
        if current and (len(current) >= lanes
                        or n_cycles != current_len):
            batches.append(current)
            current = []
        current.append(i)
        current_len = n_cycles
    if current:
        batches.append(current)
    return batches


def replay_port_names(circuit):
    """Input ports a replay drives (everything but the FAME1 host bit)."""
    return [node.name for node in circuit.inputs
            if node.name != HOST_ENABLE]


def asic_pipeline(refine_fn=None, cluster_fn=None, cluster_depth=2,
                  name="asicflow"):
    """The ASIC tool chain (Figure 5) as one pass pipeline.

    synthesis (Design Compiler) -> placement (IC Compiler) -> formal
    matching (Formality), with the attribution refiner and floorplan
    grouping as declared pass parameters so the pipeline fingerprint —
    and therefore the artifact-cache key — covers them.
    """
    return PassManager([
        SynthesisPass(refine_fn=refine_fn),
        PlacementPass(cluster_depth=cluster_depth, cluster_fn=cluster_fn),
        FormalMatchPass(),
    ], name=name)


def build_asic_flow(circuit, manager=None, kind="asicflow",
                    use_cache=False, debug=False):
    """Run (or load from cache) an ASIC pass pipeline over a circuit.

    The cache key composes the circuit's structural fingerprint with
    the pipeline fingerprint, so the same design synthesized under
    different pipelines (different refiners, floorplan groupings, or
    pass versions) occupies distinct cache slots.
    """
    from ..parallel.cache import get_cache, cache_enabled
    from ..hdl.ir import circuit_fingerprint

    manager = manager or asic_pipeline(name=kind)
    with get_tracer().span("asic.flow", cat="flow", kind=kind) as span:
        t0 = time.perf_counter()
        key = ""
        if use_cache and cache_enabled():
            key = compose_cache_key(circuit_fingerprint(circuit),
                                    manager.fingerprint())
            flow = get_cache().get(kind, key)
            if flow is not None:
                flow.cache_hit = True
                flow.synthesis_seconds = time.perf_counter() - t0
                # The pickled report describes the run that built the
                # artifact, not this one; no passes executed here.
                flow.pipeline_report = None
                span.set(cache_hit=True)
                return flow
        ctx = manager.run(circuit, debug=debug)
        flow = AsicFlow(netlist=ctx["netlist"], hints=ctx["hints"],
                        placement=ctx["placement"],
                        name_map=ctx["name_map"], fingerprint=key,
                        port_names=replay_port_names(circuit),
                        synthesis_seconds=time.perf_counter() - t0,
                        pipeline_report=ctx.report)
        if use_cache and cache_enabled():
            get_cache().put(kind, key, flow)
        span.set(cache_hit=False)
        return flow


def run_asic_flow(circuit, verify=False, verify_cycles=24,
                  use_cache=False, debug=False):
    """The 'ASIC tool chain' half of the methodology (T_ASIC).

    With ``use_cache=True`` the flow artifacts are looked up in (and
    stored to) the content-addressed disk cache keyed by the circuit
    fingerprint composed with the pass-pipeline fingerprint, so
    repeated invocations skip synthesis, placement, and matching
    entirely; ``verify`` co-simulation always runs live.  ``debug``
    runs the structural IR verifier between passes.
    """
    flow = build_asic_flow(circuit, use_cache=use_cache, debug=debug)
    if verify:
        equivalence = verify_equivalence(circuit, flow.netlist,
                                         n_cycles=verify_cycles)
        if not equivalence.equivalent:
            raise ReplayError(
                f"gate-level netlist is not equivalent to the RTL: "
                f"{equivalence.counterexample}")
        flow.equivalence = equivalence
    return flow


class ReplayEngine:
    """Gate-level replay of snapshots for one (plain, non-FAME) design.

    ``circuit`` must be the un-transformed RTL circuit — the gate-level
    netlist corresponds to the tapeout design, not the FPGA simulator.
    """

    def __init__(self, circuit, flow=None, grouping=default_grouping,
                 freq_hz=None, verify_equiv=False, port_names=None,
                 gl_backend=None, overlap=None):
        if circuit is None and flow is None:
            raise ValueError("ReplayEngine needs a circuit or a flow")
        self.circuit = circuit
        self.flow = flow or run_asic_flow(circuit, verify=verify_equiv)
        self.grouping = grouping
        self.freq_hz = freq_hz
        # One levelized schedule (cached on disk next to the flow)
        # shared by the scalar simulator and every batched simulator.
        self._schedule = load_levelized_schedule(self.flow)
        self.gl = GateLevelSimulator(self.flow.netlist,
                                     schedule=self._schedule)
        # One generated kernel (compiled-or-cache-loaded here, at
        # engine init) shared by every batched simulator: kernels are
        # lane-oblivious, so lane count does not key them.
        from ..gatelevel.glcodegen import (
            build_kernel, resolve_backend, resolve_overlap)
        self.gl_backend = resolve_backend(gl_backend)
        self.gl_overlap = resolve_overlap(overlap)
        self._gl_kernel = (build_kernel(self.flow.netlist, self._schedule,
                                        self.gl_backend)
                           if self.gl_backend != "interp" else None)
        # (thread,) lanes -> BatchedGateLevelSimulator; keyed by thread
        # as well when overlap threads each need a private simulator.
        self._batched = {}
        self._batched_lock = threading.Lock()
        self._stim_cache = OrderedDict()
        self._stim_lock = threading.Lock()
        self._overlap_pool = None
        if port_names is None:
            if circuit is not None:
                port_names = replay_port_names(circuit)
            else:
                port_names = self.flow.port_names
        self._port_names = list(port_names)
        # ReplayHealthReport of the most recent supervised replay_all
        self.last_health = None

    @classmethod
    def from_flow(cls, flow, port_names=None, grouping=default_grouping,
                  freq_hz=None, gl_backend=None, overlap=None):
        """Rebuild an engine from a shipped/cached :class:`AsicFlow`.

        This is how replay worker processes come up: no circuit IR is
        needed, only the (picklable) flow artifact.
        """
        return cls(None, flow=flow, grouping=grouping, freq_hz=freq_hz,
                   port_names=port_names, gl_backend=gl_backend,
                   overlap=overlap)

    def _warm_up_retimed(self, reg_state):
        """Force retimed-block inputs from the history registers."""
        for block in self.flow.name_map.retimed:
            for k in range(block.latency, 0, -1):
                for _name, _width, label, hist_paths in block.inputs:
                    self.gl.force_label(label, reg_state[hist_paths[k - 1]])
                self.gl.step()
            self.gl.release_all()

    def replay(self, snapshot, strict=True):
        """Replay one snapshot; returns a :class:`ReplayResult`."""
        with get_tracer().span("replay.snapshot", cat="replay",
                               snapshot_cycle=snapshot.cycle) as span:
            result = self._replay(snapshot, strict=strict)
            span.set(cycles=result.cycles,
                     mismatches=result.mismatches)
        return result

    def _replay(self, snapshot, strict=True):
        snapshot.validate()
        t0 = time.perf_counter()
        gl = self.gl
        # Canonical starting state: replay results must not depend on
        # what this simulator ran before (serial loop vs fresh worker).
        gl.full_reset()
        self._warm_up_retimed(snapshot.state.regs)
        commands = self.flow.name_map.load_commands(snapshot.state.regs)
        gl.load_dffs(commands)
        for mem_path, contents in snapshot.state.mems.items():
            gl.load_sram(mem_path, contents)
        gl.clear_activity()

        mismatches = 0
        for inputs, expected in zip(snapshot.input_trace,
                                    snapshot.output_trace):
            for port in self._port_names:
                if port in inputs:
                    gl.poke(port, inputs[port])
            gl.eval()
            for name, value in expected.items():
                if gl.peek(name) != value:
                    mismatches += 1
                    if strict:
                        raise ReplayError(
                            f"replay mismatch at snapshot cycle "
                            f"{snapshot.cycle}: output {name} = "
                            f"{gl.peek(name):#x}, trace has {value:#x}")
            gl.step()

        activity = gl.activity()
        power = analyze_power(self.flow.netlist, activity,
                              self.flow.placement,
                              freq_hz=self.freq_hz,
                              grouping=self.grouping)
        _note_replay(1, gl.cycles, int(activity["toggles"].sum()))
        return ReplayResult(
            snapshot_cycle=snapshot.cycle,
            power=power,
            cycles=gl.cycles,
            mismatches=mismatches,
            load_commands=len(commands),
            wall_seconds=time.perf_counter() - t0,
        )

    def _get_batched(self, lanes):
        # Under thread overlap every worker thread gets its own
        # simulator: lane state, toggle arenas, and SRAM stores are
        # per-simulator mutable, only the (stateless) kernel is shared.
        key = ((threading.get_ident(), lanes) if self.gl_overlap > 1
               else lanes)
        with self._batched_lock:
            sim = self._batched.get(key)
        if sim is None:
            sim = BatchedGateLevelSimulator(
                self.flow.netlist, lanes=lanes, schedule=self._schedule,
                kernel=self._gl_kernel)
            with self._batched_lock:
                sim = self._batched.setdefault(key, sim)
        return sim

    # -- stimulus packing -------------------------------------------------------

    def _pack_warm_stimulus(self, snapshots):
        """Retimed warm-up as per-cycle force segments.

        Equivalent to the historical loop — block-major, latency
        descending, every one of a block's input labels re-forced each
        cycle, all forces released between blocks — expressed as one
        :class:`PackedStimulus` whose every cycle carries a complete
        force segment.  Returns ``None`` when the flow has no retimed
        blocks (the common case).
        """
        retimed = self.flow.name_map.retimed
        if not retimed:
            return None
        n = len(snapshots)
        netlist = self.flow.netlist
        active = np.uint64((1 << n) - 1 if n < 64 else 0xFFFFFFFFFFFFFFFF)
        total = sum(block.latency for block in retimed)
        stim = PackedStimulus(total)
        t = 0
        for block in retimed:
            for k in range(block.latency, 0, -1):
                seg = {}            # net -> packed word (label order)
                for _name, _width, label, hist_paths in block.inputs:
                    nets = netlist.preserved_nets.get(label)
                    if nets is None:
                        raise ReplayError(
                            f"no preserved nets labelled {label!r}")
                    words = pack_lane_words(
                        [s.state.regs[hist_paths[k - 1]]
                         for s in snapshots], len(nets))
                    for i, net in enumerate(nets):
                        seg[net] = words[i]
                nets_arr = np.fromiter(seg, dtype=np.int64,
                                       count=len(seg))
                vals = np.fromiter(seg.values(), dtype=np.uint64,
                                   count=len(seg)) & active
                masks = np.full(len(seg), active, dtype=np.uint64)
                stim.set_forces(t, nets_arr, masks, vals)
                t += 1
        return stim

    def _pack_main_stimulus(self, snapshots):
        """Pack a batch's I/O traces into one :class:`PackedStimulus`.

        Pokes are masked input scatters (lanes whose trace lacks a port
        that cycle keep their value, like the scalar poke loop); checks
        compare each lane's outputs against its own trace.
        """
        n = len(snapshots)
        netlist = self.flow.netlist
        n_cycles = len(snapshots[0].input_trace)
        stim = PackedStimulus(n_cycles)
        for t in range(n_cycles):
            for port in self._port_names:
                mask = 0
                values = [0] * n
                for lane, snapshot in enumerate(snapshots):
                    inputs = snapshot.input_trace[t]
                    if port in inputs:
                        mask |= 1 << lane
                        values[lane] = inputs[port]
                if mask:
                    nets = netlist.inputs.get(port)
                    if nets is None:
                        raise ReplayError(f"no input port {port!r}")
                    stim.add_poke(t, np.array(nets, dtype=np.int64),
                                  mask, pack_lane_words(values, len(nets)))
            expected = {}
            order = []
            for lane, snapshot in enumerate(snapshots):
                for name, value in snapshot.output_trace[t].items():
                    if name not in expected:
                        expected[name] = [0, [0] * n]
                        order.append(name)
                    expected[name][0] |= 1 << lane
                    expected[name][1][lane] = value
            for name in order:
                mask, values = expected[name]
                nets = netlist.outputs.get(name)
                if nets is None:
                    raise ReplayError(f"no output port {name!r}")
                stim.add_check(t, name, np.array(nets, dtype=np.int64),
                               mask, pack_lane_words(values, len(nets)))
        return stim

    def _batch_stimulus(self, snapshots):
        """Warm-up + main stimulus for a batch, LRU-cached by identity.

        Journal resume and adaptive tighter-target passes replay the
        same snapshot objects again; the packed arrays (and the native
        kernel's flattened view of them) are reused verbatim.  Identity
        is verified with ``is`` on a cache hit — the cached entry keeps
        strong references, so ``id`` reuse cannot alias a dead batch.
        """
        key = tuple(id(s) for s in snapshots)
        registry = get_registry()
        with self._stim_lock:
            entry = self._stim_cache.get(key)
            if entry is not None:
                cached, warm, main = entry
                if all(a is b for a, b in zip(cached, snapshots)):
                    self._stim_cache.move_to_end(key)
                    registry.counter("replay.stim_cache.hits").inc()
                    return warm, main
                del self._stim_cache[key]
        registry.counter("replay.stim_cache.misses").inc()
        warm = self._pack_warm_stimulus(snapshots)
        main = self._pack_main_stimulus(snapshots)
        with self._stim_lock:
            self._stim_cache[key] = (list(snapshots), warm, main)
            self._stim_cache.move_to_end(key)
            while len(self._stim_cache) > _STIM_CACHE_MAX:
                self._stim_cache.popitem(last=False)
        return warm, main

    def replay_batch(self, snapshots, strict=True):
        """Replay up to :data:`MAX_LANES` snapshots bit-parallel.

        All snapshots run in the lanes of one
        :class:`BatchedGateLevelSimulator`: one netlist evaluation per
        cycle advances every lane, each lane's outputs are verified
        against its own I/O trace, and each lane's exact activity feeds
        its own power analysis.  Results are bit-identical to
        :meth:`replay`, in snapshot order.  Every snapshot in a batch
        must share one trace length (see :func:`make_replay_batches`).
        """
        snapshots = list(snapshots)
        n = len(snapshots)
        if n == 0:
            return []
        if n > MAX_LANES:
            raise ValueError(
                f"batch of {n} snapshots exceeds {MAX_LANES} lanes")
        if n == 1:
            return [self.replay(snapshots[0], strict=strict)]
        with get_tracer().span("replay.batch", cat="replay",
                               lanes=n) as span:
            results = self._replay_batch(snapshots, strict=strict)
            span.set(cycles=results[0].cycles,
                     mismatches=sum(r.mismatches for r in results))
        return results

    def _replay_batch(self, snapshots, strict=True):
        n = len(snapshots)
        for snapshot in snapshots:
            snapshot.validate()
        if len({len(s.input_trace) for s in snapshots}) != 1:
            raise ValueError(
                "snapshots in one batch must share a trace length")
        t0 = time.perf_counter()
        netlist = self.flow.netlist
        gl = self._get_batched(n)
        gl.full_reset()
        warm, main = self._batch_stimulus(snapshots)
        # Retimed warm-up, all lanes at once: the same block-major,
        # latency-descending forcing as the scalar path, packed into
        # per-cycle force segments.
        if warm is not None:
            gl.run_cycles(stim=warm)
        commands = [self.flow.name_map.load_commands(s.state.regs)
                    for s in snapshots]
        load_counts = gl.load_dffs_lanes(commands)
        for lane, snapshot in enumerate(snapshots):
            for mem_path, contents in snapshot.state.mems.items():
                gl.load_sram(mem_path, contents, lane=lane)
        gl.clear_activity()

        # The whole-trace hot loop: with a native kernel this is ONE
        # foreign call for the entire batch (pokes, eval, checks,
        # toggle counting, SRAM ports, DFF commit all in C).
        try:
            lane_mismatches = gl.run_cycles(stim=main, strict=strict)
        except StimulusMismatch as exc:
            snapshot = snapshots[exc.lane]
            raise ReplayError(
                f"replay mismatch at snapshot cycle "
                f"{snapshot.cycle} (batch lane {exc.lane}): "
                f"output {exc.name} = "
                f"{gl.peek(exc.name, lane=exc.lane):#x}, trace has "
                f"{snapshot.output_trace[exc.cycle][exc.name]:#x}"
            ) from exc
        mismatches = lane_mismatches.tolist()

        activities = [gl.activity(lane) for lane in range(n)]
        powers = [analyze_power(netlist, act,
                                self.flow.placement, freq_hz=self.freq_hz,
                                grouping=self.grouping)
                  for act in activities]
        _note_replay(n, gl.cycles,
                     int(sum(int(act["toggles"].sum())
                             for act in activities)))
        per_lane_seconds = (time.perf_counter() - t0) / n
        return [ReplayResult(
                    snapshot_cycle=snapshot.cycle,
                    power=powers[lane],
                    cycles=gl.cycles,
                    mismatches=mismatches[lane],
                    load_commands=load_counts[lane],
                    wall_seconds=per_lane_seconds)
                for lane, snapshot in enumerate(snapshots)]

    # -- thread-level batch overlap ---------------------------------------------

    def _overlap_executor(self):
        if self._overlap_pool is None:
            from concurrent.futures import ThreadPoolExecutor
            self._overlap_pool = ThreadPoolExecutor(
                max_workers=self.gl_overlap,
                thread_name_prefix="replay-overlap")
        return self._overlap_pool

    def _replay_batch_any(self, snapshots, strict=True):
        """:meth:`replay_batch` without the single-snapshot scalar
        shortcut — overlap threads must not share ``self.gl``, so even
        singleton batches run on a (per-thread) batched simulator."""
        snapshots = list(snapshots)
        n = len(snapshots)
        if n == 0:
            return []
        if n > MAX_LANES:
            raise ValueError(
                f"batch of {n} snapshots exceeds {MAX_LANES} lanes")
        with get_tracer().span("replay.batch", cat="replay",
                               lanes=n) as span:
            results = self._replay_batch(snapshots, strict=strict)
            span.set(cycles=results[0].cycles,
                     mismatches=sum(r.mismatches for r in results))
        return results

    def replay_batches(self, groups, strict=True):
        """Replay several independent lane-batches, flattened in order.

        With ``gl_overlap`` > 1 the batches run concurrently on the
        engine's thread pool: the native ``run_cycles`` kernel releases
        the GIL for the whole trace, so threads buy real parallelism.
        Each thread drives its own batched simulator; results are
        bit-identical to replaying the groups serially.  This is the
        unit of work a supervised replay worker executes when handed a
        super-task of several batches.
        """
        groups = [list(group) for group in groups]
        if self.gl_overlap > 1 and len(groups) > 1:
            pool = self._overlap_executor()
            futures = [pool.submit(self._replay_batch_any, group, strict)
                       for group in groups]
            out = []
            for future in futures:
                out.extend(future.result())
            return out
        out = []
        for group in groups:
            out.extend(self.replay_batch(group, strict=strict))
        return out

    def replay_stream(self, snapshots, strict=True, workers=1,
                      timeout=None, max_retries=2, fault_plan=None,
                      batch_lanes=1, serial_gl_backend=None, order=None,
                      cancel=None):
        """Stream replays: a generator of ``(index, result)`` pairs.

        The streaming core of :meth:`replay_all`.  Batches are
        dispatched incrementally and each completed replay is yielded
        in *completion* order, labelled with the snapshot's position in
        ``snapshots`` — the original index travels with the result, so
        out-of-order completion under a multi-worker pool can never be
        attributed to the wrong snapshot.

        ``order`` — optional sequence of snapshot positions fixing the
        dispatch order (may be a strict subset, in which case only
        those snapshots are replayed).  The adaptive sampling
        controller passes a confidence-driven order; incremental
        journal re-sampling passes the not-yet-journaled subset.

        ``cancel`` — optional :class:`repro.parallel.CancelToken`:
        once set, no further batches are dispatched, already-completed
        results still stream out, and in-flight work is abandoned
        without killing the pool (supervised runs count the abandoned
        snapshots in ``self.last_health.cancelled``).

        Arguments are validated here, eagerly; the returned generator
        is lazy.  Supervised runs (``workers`` > 1) that lose their
        worker pool mid-stream (e.g. a worker-init failure) degrade to
        in-process serial replay of the *remaining* snapshots only —
        results already yielded stay credited and are not re-replayed.
        Other parameters are as :meth:`replay_all`.
        """
        snapshots = list(snapshots)
        self.last_health = None
        if batch_lanes is None:
            batch_lanes = MAX_LANES
        batch_lanes = int(batch_lanes)
        if not 1 <= batch_lanes <= MAX_LANES:
            raise ValueError(
                f"batch_lanes must be in 1..{MAX_LANES}, got {batch_lanes}")
        if workers is None:
            import os
            workers = os.cpu_count() or 1
        workers = max(1, min(int(workers), len(snapshots) or 1))
        if order is not None:
            order = [int(i) for i in order]
            if len(set(order)) != len(order):
                raise ValueError(
                    "order contains duplicate snapshot indices")
            if any(not 0 <= i < len(snapshots) for i in order):
                raise ValueError("order index out of range")
        if workers == 1:
            return self._stream_serial(snapshots, strict, batch_lanes,
                                       order, cancel)
        return self._stream_supervised(
            snapshots, strict, workers, timeout, max_retries,
            fault_plan, batch_lanes, serial_gl_backend, order, cancel)

    def _serial_batches(self, snapshots, batch_lanes, order):
        if batch_lanes == 1:
            positions = order if order is not None \
                else range(len(snapshots))
            return [[i] for i in positions]
        return plan_replay_batches(snapshots, batch_lanes, order=order)

    def _stream_serial(self, snapshots, strict, batch_lanes, order,
                       cancel):
        overlap = self.gl_overlap
        with get_tracer().span("replay.all", cat="replay", workers=1,
                               batch_lanes=batch_lanes,
                               snapshots=len(snapshots),
                               overlap=overlap):
            batches = self._serial_batches(snapshots, batch_lanes, order)
            if overlap <= 1 or len(batches) <= 1:
                for batch in batches:
                    if cancel is not None and cancel.cancelled:
                        break
                    batch_results = self.replay_batch(
                        [snapshots[i] for i in batch], strict=strict)
                    for i, result in zip(batch, batch_results):
                        yield i, result
                return
            # Thread-overlapped: keep up to ``overlap`` batches in
            # flight and yield each as it completes.  Completion order
            # may differ from dispatch order; the index labels travel
            # with the results, exactly as under a worker pool.
            from concurrent.futures import FIRST_COMPLETED, wait
            pool = self._overlap_executor()
            pending = {}
            next_batch = 0
            stop = False
            try:
                while pending or (not stop and next_batch < len(batches)):
                    while (not stop and next_batch < len(batches)
                           and len(pending) < overlap):
                        if cancel is not None and cancel.cancelled:
                            stop = True
                            break
                        batch = batches[next_batch]
                        next_batch += 1
                        future = pool.submit(
                            self._replay_batch_any,
                            [snapshots[i] for i in batch], strict)
                        pending[future] = batch
                    if not pending:
                        break
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        batch = pending.pop(future)
                        for i, result in zip(batch, future.result()):
                            yield i, result
            finally:
                for future in pending:
                    future.cancel()

    def _stream_supervised(self, snapshots, strict, workers, timeout,
                           max_retries, fault_plan, batch_lanes,
                           serial_gl_backend, order, cancel):
        from ..parallel import ParallelReplayError
        from ..robust.supervisor import (
            replay_supervised_stream, ReplayHealthReport)
        tracer = get_tracer()
        report = ReplayHealthReport()
        # When the caller demands a specific fallback backend and
        # this engine runs a different one, the supervisor must
        # build its own fallback engine instead of reusing this
        # one (whose kernel is exactly what the caller distrusts).
        serial_self = (serial_gl_backend is None
                       or serial_gl_backend == self.gl_backend)
        with tracer.span("replay.all", cat="replay", workers=workers,
                         batch_lanes=batch_lanes,
                         snapshots=len(snapshots)) as span:
            done = set()
            try:
                for idx, result in replay_supervised_stream(
                        self.flow, snapshots, workers=workers,
                        port_names=self._port_names,
                        grouping=self.grouping, freq_hz=self.freq_hz,
                        strict=strict, timeout=timeout,
                        max_retries=max_retries, fault_plan=fault_plan,
                        serial_engine=self if serial_self else None,
                        batch_lanes=batch_lanes,
                        gl_backend=self.gl_backend,
                        gl_overlap=self.gl_overlap,
                        serial_gl_backend=serial_gl_backend,
                        order=order, cancel=cancel, report=report):
                    done.add(idx)
                    yield idx, result
                self.last_health = report
                span.set(healthy=report.healthy,
                         incidents=len(report.incidents))
                if report.cancelled:
                    span.set(cancelled=report.cancelled)
                if not report.healthy:
                    warnings.warn(report.summary(), RuntimeWarning)
            except ParallelReplayError as exc:
                span.set(serial_fallback=True)
                warnings.warn(f"parallel replay unavailable ({exc}); "
                              "falling back to serial", RuntimeWarning)
                positions = (order if order is not None
                             else range(len(snapshots)))
                remaining = [i for i in positions if i not in done]
                for batch in self._serial_batches(snapshots, batch_lanes,
                                                  remaining):
                    if cancel is not None and cancel.cancelled:
                        break
                    batch_results = self.replay_batch(
                        [snapshots[i] for i in batch], strict=strict)
                    for i, result in zip(batch, batch_results):
                        yield i, result

    def replay_all(self, snapshots, strict=True, workers=1,
                   on_result=None, timeout=None, max_retries=2,
                   fault_plan=None, batch_lanes=1,
                   serial_gl_backend=None):
        """Replay every snapshot; optionally across worker processes.

        Thin collecting wrapper over :meth:`replay_stream`: consumes
        the stream to completion and returns results in snapshot
        order.

        The paper parallelizes this step — each replay is independent,
        so results are identical regardless of ``workers``.  With
        ``workers=1`` (the default) this is exactly the serial loop;
        ``workers=None`` uses every CPU.  Results preserve snapshot
        order, and deterministic verification failures (strict-mode
        mismatches, snapshot integrity failures) propagate.  If the
        flow payload cannot be pickled (e.g. a closure grouping
        function), falls back to serial with a warning.

        Multi-worker runs go through the supervised pool
        (:mod:`repro.robust.supervisor`): crashed or hung workers are
        respawned, their snapshots retried with exponential backoff
        (``max_retries`` attempts, per-snapshot ``timeout`` seconds),
        and stragglers degrade to in-process serial replay.  The
        resulting :class:`~repro.robust.ReplayHealthReport` lands on
        ``self.last_health``.  ``on_result(index, result)`` fires as
        each replay completes — the hook the crash-safe run journal
        uses to persist progress incrementally.

        ``batch_lanes`` packs that many snapshots into the bit lanes of
        one batched gate-level evaluation (``None`` = the full 64; 1 =
        the scalar path).  Batching composes with ``workers``: each
        worker process replays whole batches, and its per-snapshot
        deadline scales to a per-batch deadline.  Results stay
        bit-identical to the serial scalar path either way.

        ``serial_gl_backend`` overrides the gate-level backend of the
        supervisor's last-resort in-process fallback engine.  The job
        service passes ``"interp"``: when workers keep dying under a
        compiled kernel, the kernel itself is suspect, and the
        supervising process must not execute it in-process (backends
        are bit-identical, so only the speed changes).
        """
        snapshots = list(snapshots)
        out = [None] * len(snapshots)
        for i, result in self.replay_stream(
                snapshots, strict=strict, workers=workers,
                timeout=timeout, max_retries=max_retries,
                fault_plan=fault_plan, batch_lanes=batch_lanes,
                serial_gl_backend=serial_gl_backend):
            out[i] = result
            if on_result is not None:
                on_result(i, result)
        return out

    def replay_full_trace(self, io_trace, from_reset=True, strict=False):
        """Ground-truth run: replay an *entire* execution's I/O trace on
        gate level from reset (no state loading needed — gate-level reset
        state equals RTL reset state).  This is the slow full-benchmark
        gate-level simulation the Figure 8 validation compares against.

        ``io_trace`` is a list of (inputs, outputs) dicts per cycle.
        Returns ``(PowerReport, mismatches)``.
        """
        gl = self.gl
        if from_reset:
            for macro in self.flow.netlist.srams:
                gl.load_sram(macro.name, [0] * macro.depth)
            gl.full_reset()
        gl.clear_activity()
        mismatches = 0
        for inputs, expected in io_trace:
            for port in self._port_names:
                if port in inputs:
                    gl.poke(port, inputs[port])
            gl.eval()
            for name, value in expected.items():
                if gl.peek(name) != value:
                    mismatches += 1
                    if strict:
                        raise ReplayError(
                            f"full-trace mismatch on output {name}")
            gl.step()
        power = analyze_power(self.flow.netlist, gl.activity(),
                              self.flow.placement, freq_hz=self.freq_hz,
                              grouping=self.grouping)
        return power, mismatches
