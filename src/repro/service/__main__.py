"""CLI entry point: ``python -m repro.service --state-dir DIR ...``.

Starts the job daemon and serves until drained: SIGTERM and SIGINT
both trigger a graceful drain (stop accepting, finish the queue, exit)
— kill -9 is the crash path, which the journaled queue survives.

The bound address is printed as one JSON line on stdout (``{"family":
"tcp", "host": ..., "port": ...}``) as soon as the socket is
listening, so wrappers that asked for an ephemeral port (``--port 0``)
can read where to connect.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

from .daemon import ServiceConfig, StroberService


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Strober job daemon: submit energy-simulation jobs "
                    "over a line-delimited JSON socket API.")
    parser.add_argument("--state-dir", required=True,
                        help="directory for the jobs journal and "
                             "per-job run journals (resume state)")
    transport = parser.add_mutually_exclusive_group()
    transport.add_argument("--unix-socket",
                           help="serve on this Unix socket path")
    transport.add_argument("--host", default="127.0.0.1",
                           help="TCP bind host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default 0 = ephemeral; the "
                             "bound address is printed on stdout)")
    parser.add_argument("--max-queue", type=int, default=16,
                        help="queued-job admission limit (default 16)")
    parser.add_argument("--max-running", type=int, default=1,
                        help="concurrently running jobs (default 1)")
    parser.add_argument("--job-retries", type=int, default=2,
                        help="retries per job on recoverable faults "
                             "(default 2)")
    parser.add_argument("--retry-backoff-s", type=float, default=0.25,
                        help="full-jitter backoff base (default 0.25)")
    parser.add_argument("--deadline-s", type=float, default=None,
                        help="default per-job wall-clock deadline")
    parser.add_argument("--gl-backend", default=None,
                        help="default gate-level backend request "
                             "(interp|compiled|c|auto)")
    parser.add_argument("--breaker-threshold", type=int, default=2,
                        help="worker crashes on one backend rung "
                             "before demotion (default 2)")
    parser.add_argument("--breaker-cooldown-s", type=float, default=None,
                        help="seconds before a demoted backend is "
                             "probed again (default: sticky)")
    parser.add_argument("--trace-dir", default=None,
                        help="write one Chrome-trace JSON per job here")
    parser.add_argument("--metrics-port", type=int, default=None,
                        help="also serve Prometheus text exposition "
                             "over plain HTTP (GET /metrics) on this "
                             "port (0 = ephemeral; the bound port is "
                             "printed in the stdout address line as "
                             "metrics_port)")
    return parser


async def serve(config):
    service = StroberService(config)
    await service.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, service.begin_drain, True)
    address = dict(service.address)
    if service.metrics_address is not None:
        # Extra keys are safe: ServiceClient.from_address only reads
        # family/path/host/port.
        address["metrics_host"] = service.metrics_address[0]
        address["metrics_port"] = service.metrics_address[1]
    print(json.dumps(address), flush=True)
    await service.wait_stopped()


def main(argv=None):
    args = build_parser().parse_args(argv)
    config = ServiceConfig(
        state_dir=args.state_dir,
        unix_socket=args.unix_socket,
        host=args.host, port=args.port,
        max_queue=args.max_queue, max_running=args.max_running,
        job_retries=args.job_retries,
        retry_backoff_s=args.retry_backoff_s,
        default_deadline_s=args.deadline_s,
        default_gl_backend=args.gl_backend,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s,
        trace_dir=args.trace_dir,
        metrics_port=args.metrics_port,
    )
    asyncio.run(serve(config))
    return 0


if __name__ == "__main__":
    sys.exit(main())
